# Empty compiler generated dependencies file for fig7_nanomos.
# This may be replaced when dependencies are built.
