file(REMOVE_RECURSE
  "CMakeFiles/fig7_nanomos.dir/fig7_nanomos.cpp.o"
  "CMakeFiles/fig7_nanomos.dir/fig7_nanomos.cpp.o.d"
  "fig7_nanomos"
  "fig7_nanomos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nanomos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
