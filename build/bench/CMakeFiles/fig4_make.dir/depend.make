# Empty dependencies file for fig4_make.
# This may be replaced when dependencies are built.
