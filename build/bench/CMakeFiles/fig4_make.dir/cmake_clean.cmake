file(REMOVE_RECURSE
  "CMakeFiles/fig4_make.dir/fig4_make.cpp.o"
  "CMakeFiles/fig4_make.dir/fig4_make.cpp.o.d"
  "fig4_make"
  "fig4_make.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_make.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
