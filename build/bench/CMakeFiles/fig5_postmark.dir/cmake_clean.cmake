file(REMOVE_RECURSE
  "CMakeFiles/fig5_postmark.dir/fig5_postmark.cpp.o"
  "CMakeFiles/fig5_postmark.dir/fig5_postmark.cpp.o.d"
  "fig5_postmark"
  "fig5_postmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
