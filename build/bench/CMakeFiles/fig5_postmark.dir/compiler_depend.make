# Empty compiler generated dependencies file for fig5_postmark.
# This may be replaced when dependencies are built.
