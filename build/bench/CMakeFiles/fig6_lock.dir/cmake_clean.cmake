file(REMOVE_RECURSE
  "CMakeFiles/fig6_lock.dir/fig6_lock.cpp.o"
  "CMakeFiles/fig6_lock.dir/fig6_lock.cpp.o.d"
  "fig6_lock"
  "fig6_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
