# Empty compiler generated dependencies file for fig6_lock.
# This may be replaced when dependencies are built.
