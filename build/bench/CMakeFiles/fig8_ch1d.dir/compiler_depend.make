# Empty compiler generated dependencies file for fig8_ch1d.
# This may be replaced when dependencies are built.
