# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/memfs_test[1]_include.cmake")
include("/root/repo/build/tests/nfs3_test[1]_include.cmake")
include("/root/repo/build/tests/kclient_test[1]_include.cmake")
include("/root/repo/build/tests/gvfs_cache_test[1]_include.cmake")
include("/root/repo/build/tests/gvfs_polling_test[1]_include.cmake")
include("/root/repo/build/tests/gvfs_delegation_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/afs_test[1]_include.cmake")
include("/root/repo/build/tests/gvfs_failure_test[1]_include.cmake")
include("/root/repo/build/tests/gvfs_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
