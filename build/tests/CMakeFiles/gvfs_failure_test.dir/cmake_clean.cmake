file(REMOVE_RECURSE
  "CMakeFiles/gvfs_failure_test.dir/gvfs_failure_test.cpp.o"
  "CMakeFiles/gvfs_failure_test.dir/gvfs_failure_test.cpp.o.d"
  "gvfs_failure_test"
  "gvfs_failure_test.pdb"
  "gvfs_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
