# Empty dependencies file for gvfs_failure_test.
# This may be replaced when dependencies are built.
