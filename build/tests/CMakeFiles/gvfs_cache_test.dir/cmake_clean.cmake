file(REMOVE_RECURSE
  "CMakeFiles/gvfs_cache_test.dir/gvfs_cache_test.cpp.o"
  "CMakeFiles/gvfs_cache_test.dir/gvfs_cache_test.cpp.o.d"
  "gvfs_cache_test"
  "gvfs_cache_test.pdb"
  "gvfs_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
