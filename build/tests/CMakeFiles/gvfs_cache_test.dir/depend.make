# Empty dependencies file for gvfs_cache_test.
# This may be replaced when dependencies are built.
