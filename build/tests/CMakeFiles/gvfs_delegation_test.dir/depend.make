# Empty dependencies file for gvfs_delegation_test.
# This may be replaced when dependencies are built.
