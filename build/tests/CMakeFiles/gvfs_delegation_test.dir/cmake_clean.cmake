file(REMOVE_RECURSE
  "CMakeFiles/gvfs_delegation_test.dir/gvfs_delegation_test.cpp.o"
  "CMakeFiles/gvfs_delegation_test.dir/gvfs_delegation_test.cpp.o.d"
  "gvfs_delegation_test"
  "gvfs_delegation_test.pdb"
  "gvfs_delegation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_delegation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
