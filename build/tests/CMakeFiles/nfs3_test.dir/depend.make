# Empty dependencies file for nfs3_test.
# This may be replaced when dependencies are built.
