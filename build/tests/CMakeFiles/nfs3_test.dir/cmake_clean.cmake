file(REMOVE_RECURSE
  "CMakeFiles/nfs3_test.dir/nfs3_test.cpp.o"
  "CMakeFiles/nfs3_test.dir/nfs3_test.cpp.o.d"
  "nfs3_test"
  "nfs3_test.pdb"
  "nfs3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
