# Empty compiler generated dependencies file for gvfs_polling_test.
# This may be replaced when dependencies are built.
