file(REMOVE_RECURSE
  "CMakeFiles/gvfs_polling_test.dir/gvfs_polling_test.cpp.o"
  "CMakeFiles/gvfs_polling_test.dir/gvfs_polling_test.cpp.o.d"
  "gvfs_polling_test"
  "gvfs_polling_test.pdb"
  "gvfs_polling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_polling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
