file(REMOVE_RECURSE
  "CMakeFiles/afs_test.dir/afs_test.cpp.o"
  "CMakeFiles/afs_test.dir/afs_test.cpp.o.d"
  "afs_test"
  "afs_test.pdb"
  "afs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
