file(REMOVE_RECURSE
  "CMakeFiles/memfs_test.dir/memfs_test.cpp.o"
  "CMakeFiles/memfs_test.dir/memfs_test.cpp.o.d"
  "memfs_test"
  "memfs_test.pdb"
  "memfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
