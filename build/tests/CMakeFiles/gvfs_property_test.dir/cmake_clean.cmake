file(REMOVE_RECURSE
  "CMakeFiles/gvfs_property_test.dir/gvfs_property_test.cpp.o"
  "CMakeFiles/gvfs_property_test.dir/gvfs_property_test.cpp.o.d"
  "gvfs_property_test"
  "gvfs_property_test.pdb"
  "gvfs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
