# Empty dependencies file for gvfs_property_test.
# This may be replaced when dependencies are built.
