# Empty compiler generated dependencies file for kclient_test.
# This may be replaced when dependencies are built.
