file(REMOVE_RECURSE
  "CMakeFiles/kclient_test.dir/kclient_test.cpp.o"
  "CMakeFiles/kclient_test.dir/kclient_test.cpp.o.d"
  "kclient_test"
  "kclient_test.pdb"
  "kclient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kclient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
