file(REMOVE_RECURSE
  "CMakeFiles/software_repository.dir/software_repository.cpp.o"
  "CMakeFiles/software_repository.dir/software_repository.cpp.o.d"
  "software_repository"
  "software_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
