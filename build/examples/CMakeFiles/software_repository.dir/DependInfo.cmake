
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/software_repository.cpp" "examples/CMakeFiles/software_repository.dir/software_repository.cpp.o" "gcc" "examples/CMakeFiles/software_repository.dir/software_repository.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gvfs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/afs/CMakeFiles/gvfs_afs.dir/DependInfo.cmake"
  "/root/repo/build/src/gvfs/CMakeFiles/gvfs_gvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kclient/CMakeFiles/gvfs_kclient.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs3/CMakeFiles/gvfs_nfs3.dir/DependInfo.cmake"
  "/root/repo/build/src/memfs/CMakeFiles/gvfs_memfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gvfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gvfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
