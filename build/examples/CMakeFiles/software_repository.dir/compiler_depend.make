# Empty compiler generated dependencies file for software_repository.
# This may be replaced when dependencies are built.
