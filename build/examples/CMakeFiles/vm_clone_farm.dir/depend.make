# Empty dependencies file for vm_clone_farm.
# This may be replaced when dependencies are built.
