file(REMOVE_RECURSE
  "CMakeFiles/vm_clone_farm.dir/vm_clone_farm.cpp.o"
  "CMakeFiles/vm_clone_farm.dir/vm_clone_farm.cpp.o.d"
  "vm_clone_farm"
  "vm_clone_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_clone_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
