file(REMOVE_RECURSE
  "libgvfs_workloads.a"
)
