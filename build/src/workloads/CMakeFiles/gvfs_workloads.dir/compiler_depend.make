# Empty compiler generated dependencies file for gvfs_workloads.
# This may be replaced when dependencies are built.
