file(REMOVE_RECURSE
  "CMakeFiles/gvfs_workloads.dir/ch1d.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/ch1d.cpp.o.d"
  "CMakeFiles/gvfs_workloads.dir/lock_bench.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/lock_bench.cpp.o.d"
  "CMakeFiles/gvfs_workloads.dir/make_bench.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/make_bench.cpp.o.d"
  "CMakeFiles/gvfs_workloads.dir/nanomos.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/nanomos.cpp.o.d"
  "CMakeFiles/gvfs_workloads.dir/postmark.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/postmark.cpp.o.d"
  "CMakeFiles/gvfs_workloads.dir/testbed.cpp.o"
  "CMakeFiles/gvfs_workloads.dir/testbed.cpp.o.d"
  "libgvfs_workloads.a"
  "libgvfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
