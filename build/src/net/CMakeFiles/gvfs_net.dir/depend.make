# Empty dependencies file for gvfs_net.
# This may be replaced when dependencies are built.
