file(REMOVE_RECURSE
  "CMakeFiles/gvfs_net.dir/network.cpp.o"
  "CMakeFiles/gvfs_net.dir/network.cpp.o.d"
  "libgvfs_net.a"
  "libgvfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
