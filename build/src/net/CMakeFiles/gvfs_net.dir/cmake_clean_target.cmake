file(REMOVE_RECURSE
  "libgvfs_net.a"
)
