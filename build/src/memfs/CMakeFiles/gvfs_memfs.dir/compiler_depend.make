# Empty compiler generated dependencies file for gvfs_memfs.
# This may be replaced when dependencies are built.
