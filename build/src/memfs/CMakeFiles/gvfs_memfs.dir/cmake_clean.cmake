file(REMOVE_RECURSE
  "CMakeFiles/gvfs_memfs.dir/memfs.cpp.o"
  "CMakeFiles/gvfs_memfs.dir/memfs.cpp.o.d"
  "libgvfs_memfs.a"
  "libgvfs_memfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_memfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
