file(REMOVE_RECURSE
  "libgvfs_memfs.a"
)
