# Empty dependencies file for gvfs_rpc.
# This may be replaced when dependencies are built.
