file(REMOVE_RECURSE
  "libgvfs_rpc.a"
)
