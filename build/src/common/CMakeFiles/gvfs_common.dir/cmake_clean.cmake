file(REMOVE_RECURSE
  "CMakeFiles/gvfs_common.dir/logging.cpp.o"
  "CMakeFiles/gvfs_common.dir/logging.cpp.o.d"
  "libgvfs_common.a"
  "libgvfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
