file(REMOVE_RECURSE
  "libgvfs_kclient.a"
)
