file(REMOVE_RECURSE
  "CMakeFiles/gvfs_kclient.dir/kernel_client.cpp.o"
  "CMakeFiles/gvfs_kclient.dir/kernel_client.cpp.o.d"
  "libgvfs_kclient.a"
  "libgvfs_kclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_kclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
