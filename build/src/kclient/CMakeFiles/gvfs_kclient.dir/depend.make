# Empty dependencies file for gvfs_kclient.
# This may be replaced when dependencies are built.
