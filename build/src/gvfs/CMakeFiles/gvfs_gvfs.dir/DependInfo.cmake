
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gvfs/disk_cache.cpp" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/disk_cache.cpp.o" "gcc" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/disk_cache.cpp.o.d"
  "/root/repo/src/gvfs/proto.cpp" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proto.cpp.o" "gcc" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proto.cpp.o.d"
  "/root/repo/src/gvfs/proxy_client.cpp" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proxy_client.cpp.o" "gcc" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proxy_client.cpp.o.d"
  "/root/repo/src/gvfs/proxy_server.cpp" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proxy_server.cpp.o" "gcc" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/proxy_server.cpp.o.d"
  "/root/repo/src/gvfs/session.cpp" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/session.cpp.o" "gcc" "src/gvfs/CMakeFiles/gvfs_gvfs.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfs3/CMakeFiles/gvfs_nfs3.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gvfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gvfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/memfs/CMakeFiles/gvfs_memfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
