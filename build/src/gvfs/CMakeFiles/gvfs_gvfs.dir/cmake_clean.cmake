file(REMOVE_RECURSE
  "CMakeFiles/gvfs_gvfs.dir/disk_cache.cpp.o"
  "CMakeFiles/gvfs_gvfs.dir/disk_cache.cpp.o.d"
  "CMakeFiles/gvfs_gvfs.dir/proto.cpp.o"
  "CMakeFiles/gvfs_gvfs.dir/proto.cpp.o.d"
  "CMakeFiles/gvfs_gvfs.dir/proxy_client.cpp.o"
  "CMakeFiles/gvfs_gvfs.dir/proxy_client.cpp.o.d"
  "CMakeFiles/gvfs_gvfs.dir/proxy_server.cpp.o"
  "CMakeFiles/gvfs_gvfs.dir/proxy_server.cpp.o.d"
  "CMakeFiles/gvfs_gvfs.dir/session.cpp.o"
  "CMakeFiles/gvfs_gvfs.dir/session.cpp.o.d"
  "libgvfs_gvfs.a"
  "libgvfs_gvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_gvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
