# Empty compiler generated dependencies file for gvfs_gvfs.
# This may be replaced when dependencies are built.
