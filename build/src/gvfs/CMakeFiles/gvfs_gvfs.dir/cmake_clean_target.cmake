file(REMOVE_RECURSE
  "libgvfs_gvfs.a"
)
