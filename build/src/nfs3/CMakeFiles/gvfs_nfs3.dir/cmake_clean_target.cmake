file(REMOVE_RECURSE
  "libgvfs_nfs3.a"
)
