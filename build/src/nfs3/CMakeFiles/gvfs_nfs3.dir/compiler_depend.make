# Empty compiler generated dependencies file for gvfs_nfs3.
# This may be replaced when dependencies are built.
