file(REMOVE_RECURSE
  "CMakeFiles/gvfs_nfs3.dir/proto.cpp.o"
  "CMakeFiles/gvfs_nfs3.dir/proto.cpp.o.d"
  "CMakeFiles/gvfs_nfs3.dir/server.cpp.o"
  "CMakeFiles/gvfs_nfs3.dir/server.cpp.o.d"
  "libgvfs_nfs3.a"
  "libgvfs_nfs3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_nfs3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
