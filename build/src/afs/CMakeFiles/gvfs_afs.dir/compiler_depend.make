# Empty compiler generated dependencies file for gvfs_afs.
# This may be replaced when dependencies are built.
