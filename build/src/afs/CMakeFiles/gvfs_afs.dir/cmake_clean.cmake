file(REMOVE_RECURSE
  "CMakeFiles/gvfs_afs.dir/afs.cpp.o"
  "CMakeFiles/gvfs_afs.dir/afs.cpp.o.d"
  "libgvfs_afs.a"
  "libgvfs_afs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvfs_afs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
