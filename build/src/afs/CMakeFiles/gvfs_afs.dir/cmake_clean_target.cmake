file(REMOVE_RECURSE
  "libgvfs_afs.a"
)
