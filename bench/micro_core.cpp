// Microbenchmarks (google-benchmark) for the hot paths of the stack:
// XDR encoding/decoding, disk-cache operations, the simulation scheduler,
// and a full simulated NFS GETATTR round trip.
#include <benchmark/benchmark.h>

#include "gvfs/disk_cache.h"
#include "memfs/memfs.h"
#include "net/network.h"
#include "nfs3/client.h"
#include "nfs3/server.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "xdr/xdr.h"

namespace gvfs {
namespace {

void BM_XdrEncodeFattr(benchmark::State& state) {
  nfs3::Fattr attr;
  attr.size = 123456;
  attr.fileid = 42;
  for (auto _ : state) {
    xdr::Encoder enc;
    attr.Encode(enc);
    benchmark::DoNotOptimize(enc.bytes());
  }
}
BENCHMARK(BM_XdrEncodeFattr);

void BM_XdrDecodeFattr(benchmark::State& state) {
  nfs3::Fattr attr;
  attr.size = 123456;
  xdr::Encoder enc;
  attr.Encode(enc);
  Bytes wire = enc.Take();
  for (auto _ : state) {
    xdr::Decoder dec(wire);
    auto decoded = nfs3::Fattr::Decode(dec);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_XdrDecodeFattr);

void BM_XdrOpaqueRoundTrip(benchmark::State& state) {
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    xdr::Encoder enc;
    enc.PutOpaque(payload);
    xdr::Decoder dec(enc.bytes());
    auto out = dec.GetOpaque();
    benchmark::DoNotOptimize(out);
    if (out) benchmark::DoNotOptimize(out->ptr);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XdrOpaqueRoundTrip)->Arg(1024)->Arg(32 * 1024);

void BM_DiskCacheAttrLookup(benchmark::State& state) {
  proxy::DiskCache cache(32 * 1024);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    nfs3::Fattr attr;
    attr.fileid = i;
    cache.StoreAttr(nfs3::Fh{1, i}, attr, 0);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.ValidAttr(nfs3::Fh{1, i % 10000}));
    ++i;
  }
}
BENCHMARK(BM_DiskCacheAttrLookup);

void BM_DiskCacheBlockWrite(benchmark::State& state) {
  proxy::DiskCache cache(32 * 1024);
  Bytes data(32 * 1024, 0x5a);
  std::uint64_t i = 0;
  for (auto _ : state) {
    cache.StoreBlock(nfs3::Fh{1, 1}, i % 64, data, false);
    ++i;
  }
  state.SetBytesProcessed(state.iterations() * 32 * 1024);
}
BENCHMARK(BM_DiskCacheBlockWrite);

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int i = 0; i < 1000; ++i) {
      sched.At(i, [] {});
    }
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_MemFsCreateWrite(benchmark::State& state) {
  SimTime now = 0;
  std::uint64_t i = 0;
  memfs::MemFs fs(&now);
  Bytes data(4096, 1);
  for (auto _ : state) {
    auto ino = fs.Create(fs.root(), "f" + std::to_string(i++), 0644);
    benchmark::DoNotOptimize(fs.Write(*ino, 0, data));
  }
}
BENCHMARK(BM_MemFsCreateWrite);

/// One full simulated GETATTR round trip: client node -> WAN -> NFS server
/// and back, including XDR, RPC framing, and event scheduling.
void BM_SimulatedGetattrRoundTrip(benchmark::State& state) {
  sim::Scheduler sched;
  net::Network network(sched);
  rpc::Domain domain(sched, network);
  memfs::MemFs fs(sched.NowPtr());
  HostId client_host = network.AddHost("c");
  HostId server_host = network.AddHost("s");
  network.Connect(client_host, server_host, net::LinkConfig{Milliseconds(20), 4'000'000});
  rpc::RpcNode& client_node = domain.CreateNode(client_host, 1, "c");
  rpc::RpcNode& server_node = domain.CreateNode(server_host, 2049, "nfsd");
  nfs3::Nfs3Server server(sched, fs, server_node);
  nfs3::Nfs3Client client(client_node, server_node.address());
  nfs3::Fh root = server.RootFh();

  for (auto _ : state) {
    bool done = false;
    sim::Spawn([](nfs3::Nfs3Client* c, nfs3::Fh fh, bool* flag) -> sim::Task<void> {
      auto res = co_await c->Call<nfs3::GetAttrRes>(nfs3::kGetAttr,
                                                    nfs3::GetAttrArgs{fh});
      benchmark::DoNotOptimize(res);
      *flag = true;
    }(&client, root, &done));
    while (!done) sched.Run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedGetattrRoundTrip);

}  // namespace
}  // namespace gvfs

BENCHMARK_MAIN();
