// Fleet-scale GETINV sweep (fig_scale): client count 6 -> 4096 against the
// four fleet topologies — direct polling vs. the aggregation tier, 1 vs. 4
// proxy-server shards — measuring what the fleet subsystem exists to fix:
//
//   * server-side GETINV load (polls actually absorbed by the shards);
//   * per-shard invalidation-buffer occupancy (peak entries the server must
//     hold while slow pollers lag);
//
// plus per-shard gauges (inv-buffer occupancy, callback count, recall queue
// depth) read live from the metrics observatory. Every point runs under the
// TraceChecker — including the kAggTier invariant — and fails the benchmark
// on any violation or on a truncated trace, so the scaling numbers can never
// come from a run that silently lost invalidations.
//
// All reported fields are virtual-time deterministic: CI gates BENCH_scale
// results exactly (tools/bench/compare.py --scale-*), the same way it gates
// the flush benchmark. `--smoke` runs the small-N prefix of the very same
// sweep (identical per-point config), so smoke rows are a subset of the
// committed baseline.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "trace/checker.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::FleetConfig;
using workloads::FleetSession;
using workloads::Testbed;

constexpr int kFiles = 8;
constexpr int kRounds = 2;
constexpr Duration kPollPeriod = Seconds(15);
constexpr Duration kRoundGap = Seconds(20);
// Two tier hops (client->aggregator and aggregator->shard poll phases) plus
// slack: every buffered invalidation drains before we sample the counters.
constexpr Duration kDrain = Seconds(50);

struct Topology {
  std::uint32_t shards;
  bool aggregate;
};

constexpr Topology kTopologies[] = {
    {1, false}, {4, false}, {1, true}, {4, true}};

const char* ModeName(bool aggregate) { return aggregate ? "agg" : "direct"; }

struct Point {
  int clients = 0;
  std::uint32_t shards = 1;
  bool aggregate = false;

  double virtual_s = 0;           // sim-clock duration of the point
  std::uint64_t getinv_total = 0;  // GETINV polls absorbed by the shards
  std::uint64_t getinv_max_shard = 0;
  std::uint64_t inv_peak_total = 0;  // summed shard buffer high-water marks
  std::uint64_t inv_peak_max_shard = 0;
  std::uint64_t notifyinv = 0;  // cross-shard forwards
  std::uint64_t server_forces = 0;
  std::uint64_t applied = 0;  // invalidations applied across all clients
  std::uint64_t client_forces = 0;

  // Aggregation tier (zero in direct mode).
  std::uint64_t agg_upstream_polls = 0;
  std::uint64_t agg_getinv_served = 0;
  std::uint64_t agg_fanned_out = 0;
  std::uint64_t agg_delivered = 0;
  std::uint64_t agg_inv_peak = 0;

  // Staleness-probe read-out for the SLO gate (printed under --check, kept
  // out of the JSON so BENCH_scale.json stays byte-identical).
  std::uint64_t staleness_count = 0;
  std::uint64_t staleness_p99_us = 0;

  /// Per-shard observatory gauges, sampled at collection time.
  struct ShardGauges {
    double inv_buffer_entries = 0;
    double inv_entries_peak = 0;
    double inv_buffer_clients = 0;
    double recall_queue_depth = 0;
    double callbacks_sent = 0;
  };
  std::vector<ShardGauges> gauges;
};

sim::Task<void> Workload(Testbed& bed, FleetSession& session) {
  kclient::OpenFlags flags{.read = true, .write = true, .create = true};
  for (int round = 0; round < kRounds; ++round) {
    for (int f = 0; f < kFiles; ++f) {
      auto fd = co_await session.mount(0).Open("/f" + std::to_string(f), flags);
      Bytes payload(1024, static_cast<std::uint8_t>(round * kFiles + f + 1));
      (void)co_await session.mount(0).Write(*fd, 0, payload);
      (void)co_await session.mount(0).Close(*fd);
    }
    // One RENAME per round: the directory mutation and the moved file's
    // handle usually land on different shards, exercising the NOTIFYINV
    // cross-shard forwarding path under the sweep.
    (void)co_await session.mount(0).Rename("/f" + std::to_string(round),
                                           "/r" + std::to_string(round));
    co_await sim::Sleep(bed.sched(), kRoundGap);
  }
  co_await sim::Sleep(bed.sched(), kDrain);
}

double ProbeValue(const metrics::Registry& registry, const std::string& name) {
  auto it = registry.probes().find(name);
  return it == registry.probes().end() ? 0.0 : it->second();
}

/// Runs one sweep point. Returns false (and prints why) when the trace was
/// truncated or the checker found a violation.
bool RunOne(int clients, const Topology& topo, Point* out) {
  Testbed bed;
  std::vector<int> members;
  members.reserve(clients);
  for (int i = 0; i < clients; ++i) members.push_back(bed.AddWanClient());

  trace::TraceBuffer& trace = bed.EnableTracing(1 << 21);
  metrics::Registry& registry = bed.EnableMetrics(Seconds(10));

  FleetConfig config;
  config.shards = topo.shards;
  config.aggregate = topo.aggregate;
  config.session.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.session.poll_period = kPollPeriod;
  config.session.poll_max_period = kPollPeriod;  // fixed cadence: the sweep
                                                 // measures steady-state load
  config.session.inv_buffer_capacity = 1 << 20;  // no overflow: incremental
                                                 // delivery end to end
  config.aggregator.poll_period = kPollPeriod;
  config.aggregator.inv_buffer_capacity = 1 << 20;

  FleetSession& session =
      bed.CreateFleetSession(config, members, /*active_mounts=*/1);

  const SimTime t0 = bed.sched().Now();
  Drive(bed.sched(), Workload(bed, session));

  Point point;
  point.clients = clients;
  point.shards = topo.shards;
  point.aggregate = topo.aggregate;
  point.virtual_s = ToSeconds(bed.sched().Now() - t0);
  for (std::size_t k = 0; k < session.shards.size(); ++k) {
    const proxy::ProxyServerStats& s = session.shard(k).stats();
    point.getinv_total += s.getinv_served;
    point.getinv_max_shard = std::max(point.getinv_max_shard, s.getinv_served);
    point.inv_peak_total += s.inv_entries_peak;
    point.inv_peak_max_shard =
        std::max(point.inv_peak_max_shard, s.inv_entries_peak);
    point.notifyinv += s.notifyinv_sent;
    point.server_forces += s.force_invalidations;

    const std::string prefix = "f0.s" + std::to_string(k) + ".";
    Point::ShardGauges gauges;
    gauges.inv_buffer_entries = ProbeValue(registry, prefix + "inv_buffer_entries");
    gauges.inv_entries_peak = ProbeValue(registry, prefix + "inv_entries_peak");
    gauges.inv_buffer_clients = ProbeValue(registry, prefix + "inv_buffer_clients");
    gauges.recall_queue_depth = ProbeValue(registry, prefix + "recall_queue_depth");
    gauges.callbacks_sent = ProbeValue(registry, prefix + "callbacks_sent");
    point.gauges.push_back(gauges);
  }
  for (auto* proxy : session.proxies) {
    point.applied += proxy->stats().invalidations_applied;
    point.client_forces += proxy->stats().force_invalidations;
  }
  if (session.aggregator != nullptr) {
    const fleet::InvAggregatorStats& a = session.aggregator->stats();
    point.agg_upstream_polls = a.upstream_polls;
    point.agg_getinv_served = a.getinv_served;
    point.agg_fanned_out = a.handles_fanned_out;
    point.agg_delivered = a.handles_delivered;
    point.agg_inv_peak = a.inv_entries_peak;
  }
  auto hist_it = registry.histograms().find("f0.staleness_us");
  if (hist_it != registry.histograms().end()) {
    point.staleness_count = hist_it->second.hist().count();
    point.staleness_p99_us = hist_it->second.hist().Percentile(99);
  }
  Drive(bed.sched(), session.Shutdown());

  if (trace.dropped() != 0) {
    std::fprintf(stderr,
                 "FAIL: trace ring overflowed (%llu dropped) at clients=%d "
                 "shards=%u mode=%s — results unverifiable\n",
                 static_cast<unsigned long long>(trace.dropped()), clients,
                 topo.shards, ModeName(topo.aggregate));
    return false;
  }
  trace::TraceChecker checker(proxy::NfsTraceCheckerConfig());
  const auto violations = checker.Check(trace);
  if (!violations.empty()) {
    std::fprintf(stderr, "FAIL: trace checker at clients=%d shards=%u mode=%s\n%s",
                 clients, topo.shards, ModeName(topo.aggregate),
                 trace::FormatViolations(violations).c_str());
    return false;
  }
  *out = point;
  return true;
}

JsonObject PointJson(const Point& p) {
  JsonObject row;
  row.Add("clients", static_cast<std::uint64_t>(p.clients));
  row.Add("shards", static_cast<std::uint64_t>(p.shards));
  row.Add("mode", ModeName(p.aggregate));
  row.Add("virtual_s", p.virtual_s);
  row.Add("getinv_total", p.getinv_total);
  row.Add("getinv_max_shard", p.getinv_max_shard);
  row.Add("inv_peak_total", p.inv_peak_total);
  row.Add("inv_peak_max_shard", p.inv_peak_max_shard);
  row.Add("notifyinv", p.notifyinv);
  row.Add("server_forces", p.server_forces);
  row.Add("applied", p.applied);
  row.Add("client_forces", p.client_forces);
  row.Add("agg_upstream_polls", p.agg_upstream_polls);
  row.Add("agg_getinv_served", p.agg_getinv_served);
  row.Add("agg_fanned_out", p.agg_fanned_out);
  row.Add("agg_delivered", p.agg_delivered);
  row.Add("agg_inv_peak", p.agg_inv_peak);
  std::vector<JsonObject> gauges;
  for (std::size_t k = 0; k < p.gauges.size(); ++k) {
    const Point::ShardGauges& g = p.gauges[k];
    JsonObject shard;
    shard.Add("shard", static_cast<std::uint64_t>(k));
    shard.Add("inv_buffer_entries", g.inv_buffer_entries);
    shard.Add("inv_entries_peak", g.inv_entries_peak);
    shard.Add("inv_buffer_clients", g.inv_buffer_clients);
    shard.Add("recall_queue_depth", g.recall_queue_depth);
    shard.Add("callbacks_sent", g.callbacks_sent);
    gauges.push_back(std::move(shard));
  }
  row.Add("shard_gauges", gauges);
  return row;
}

const Point* Find(const std::vector<Point>& points, int clients,
                  std::uint32_t shards, bool aggregate) {
  for (const Point& p : points) {
    if (p.clients == clients && p.shards == shards && p.aggregate == aggregate) {
      return &p;
    }
  }
  return nullptr;
}

/// The scaling claims the fleet subsystem is sold on, asserted at the
/// largest client count of this run.
bool CheckClaims(const std::vector<Point>& points, int top) {
  const Point* d1 = Find(points, top, 1, false);
  const Point* d4 = Find(points, top, 4, false);
  const Point* a1 = Find(points, top, 1, true);
  const Point* a4 = Find(points, top, 4, true);
  if (d1 == nullptr || d4 == nullptr || a1 == nullptr || a4 == nullptr) {
    std::fprintf(stderr, "CHECK FAIL: missing sweep points at N=%d\n", top);
    return false;
  }
  bool ok = true;
  // The tier absorbs the poll fan-in: the shards serve only the aggregator.
  if (a1->getinv_total * 4 >= d1->getinv_total) {
    std::fprintf(stderr,
                 "CHECK FAIL: aggregation did not cut server GETINV load "
                 "(agg %llu vs direct %llu)\n",
                 static_cast<unsigned long long>(a1->getinv_total),
                 static_cast<unsigned long long>(d1->getinv_total));
    ok = false;
  }
  // Sharding spreads buffered invalidations across owners.
  if (d4->inv_peak_max_shard >= d1->inv_peak_max_shard) {
    std::fprintf(stderr,
                 "CHECK FAIL: sharding did not reduce per-shard buffer peak "
                 "(4-shard %llu vs 1-shard %llu)\n",
                 static_cast<unsigned long long>(d4->inv_peak_max_shard),
                 static_cast<unsigned long long>(d1->inv_peak_max_shard));
    ok = false;
  }
  // The tier keeps per-client buffers off the server entirely: each shard
  // holds one downstream (the aggregator) instead of N.
  if (a1->inv_peak_max_shard >= d1->inv_peak_max_shard) {
    std::fprintf(stderr,
                 "CHECK FAIL: tier did not reduce server buffer peak "
                 "(agg %llu vs direct %llu)\n",
                 static_cast<unsigned long long>(a1->inv_peak_max_shard),
                 static_cast<unsigned long long>(d1->inv_peak_max_shard));
    ok = false;
  }
  // No invalidations went missing: with the tier in place, clients still
  // apply (or are force-invalidated for) every mutation round.
  if (a4->applied + a4->client_forces == 0) {
    std::fprintf(stderr, "CHECK FAIL: no invalidations reached clients "
                         "through the tier\n");
    ok = false;
  }
  return ok;
}

/// Passive staleness-SLO gate (runs under --check): any point whose probe
/// recorded samples must hold the poll_period + 2*RTT budget. The sweep has
/// a single writer and active mount, so most points legitimately record no
/// cross-client cached reads — those pass vacuously, but the sample count is
/// printed so a silently-dead probe is still visible in the logs.
bool CheckStaleness(const std::vector<Point>& points) {
  const Duration budget =
      kPollPeriod + 4 * workloads::TestbedConfig{}.wan.one_way_latency;
  const auto budget_us = static_cast<std::uint64_t>(ToSeconds(budget) * 1e6);
  std::uint64_t sampled_points = 0;
  bool ok = true;
  for (const Point& p : points) {
    if (p.staleness_count == 0) continue;
    ++sampled_points;
    if (p.staleness_p99_us > budget_us) {
      std::fprintf(stderr,
                   "CHECK FAIL: p99 staleness %llu us exceeds the "
                   "poll_period + 2*RTT budget (%llu us) at clients=%d "
                   "shards=%u mode=%s\n",
                   static_cast<unsigned long long>(p.staleness_p99_us),
                   static_cast<unsigned long long>(budget_us), p.clients,
                   p.shards, ModeName(p.aggregate));
      ok = false;
    }
  }
  std::printf("staleness SLO: %llu/%zu points sampled the probe, budget "
              "%llu us\n",
              static_cast<unsigned long long>(sampled_points), points.size(),
              static_cast<unsigned long long>(budget_us));
  return ok;
}

int Main(bool smoke, bool check, const std::optional<std::string>& json_out) {
  const std::vector<int> sweep =
      smoke ? std::vector<int>{6, 64}
            : std::vector<int>{6, 64, 256, 1024, 4096};

  PrintHeader("Fleet scaling: GETINV load and buffer occupancy vs client "
              "count (8 files x 2 write rounds, 15 s poll period)");
  std::printf("%-8s %-7s %-7s %12s %14s %14s %10s %10s\n", "clients", "shards",
              "mode", "getinv", "inv peak/shd", "agg fanout", "notifyinv",
              "applied");
  PrintRule();

  std::vector<Point> points;
  for (int clients : sweep) {
    for (const Topology& topo : kTopologies) {
      Point point;
      if (!RunOne(clients, topo, &point)) return 1;
      points.push_back(point);
      std::printf("%-8d %-7u %-7s %12llu %14llu %14llu %10llu %10llu\n",
                  point.clients, point.shards, ModeName(point.aggregate),
                  static_cast<unsigned long long>(point.getinv_total),
                  static_cast<unsigned long long>(point.inv_peak_max_shard),
                  static_cast<unsigned long long>(point.agg_fanned_out),
                  static_cast<unsigned long long>(point.notifyinv),
                  static_cast<unsigned long long>(point.applied));
    }
  }

  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("benchmark", "fig_scale");
    doc.Add("smoke", smoke);
    doc.Add("files", static_cast<std::uint64_t>(kFiles));
    doc.Add("rounds", static_cast<std::uint64_t>(kRounds));
    doc.Add("poll_period_s", ToSeconds(kPollPeriod));
    std::vector<JsonObject> rows;
    for (const Point& p : points) rows.push_back(PointJson(p));
    doc.Add("points", rows);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }

  if (check) {
    bool ok = CheckClaims(points, sweep.back());
    ok = CheckStaleness(points) && ok;
    if (!ok) return 1;
  }
  if (check) {
    std::printf("CHECK OK: aggregation and sharding reduce server-side "
                "GETINV load and per-shard buffer peaks at N=%d\n",
                sweep.back());
  }
  return 0;
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  return gvfs::bench::Main(gvfs::bench::HasFlag(argc, argv, "--smoke"),
                           gvfs::bench::HasFlag(argc, argv, "--check"),
                           gvfs::bench::FlagValue(argc, argv, "--json-out"));
}
