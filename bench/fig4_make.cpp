// Figure 4 (paper §5.1.1): the Make microbenchmark on a Tcl/Tk-sized tree
// (357 sources, 103 headers, 168 objects).
//
//  (a) RPCs transferred over the network, by procedure, for NFS / GVFS
//      (read-only caching) / GVFS-WB (write-back caching) in the WAN.
//  (b) Runtime in LAN and WAN for the same three setups. The LAN columns
//      also quantify the user-level interception overhead the paper reports
//      (~4 % read-only, ~8 % write-back).
//
// Paper shape to reproduce: GVFS eliminates nearly all GETATTR consistency
// checks (tens of GETINVs instead), cuts LOOKUPs via the large disk cache,
// write-back removes most WRITEs, and WAN runtime improves ~3x; in LAN the
// proxy costs only a few percent.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "workloads/make_bench.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::MakeConfig;
using workloads::PopulateMakeTree;
using workloads::RunMake;
using workloads::Testbed;
using workloads::TestbedConfig;

enum class Setup { kNfs, kGvfs, kGvfsWb, kGvfsWbPipe };

const char* SetupName(Setup setup) {
  switch (setup) {
    case Setup::kNfs:
      return "NFS";
    case Setup::kGvfs:
      return "GVFS";
    case Setup::kGvfsWb:
      return "GVFS-WB";
    case Setup::kGvfsWbPipe:
      return "GVFS-WB-P";
  }
  return "?";
}

struct Result {
  double runtime_seconds = 0;
  rpc::StatsMap rpcs;
};

/// --metrics-out wiring: when set, each WAN GVFS run samples the observatory
/// and writes <prefix>.<setup>.wan.{csv,json,prom}.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Milliseconds(1000);

Result RunOne(Setup setup, bool wan) {
  TestbedConfig net_config;
  if (!wan) {
    // LAN: 100 Mbps, sub-millisecond RTT (the paper's 100 Mbps LAN).
    net_config.wan = net_config.lan;
  }
  Testbed bed(net_config);
  bed.AddWanClient();
  MakeConfig make_config;
  PopulateMakeTree(bed.fs(), make_config);

  Result result;
  if (setup == Setup::kNfs) {
    auto& mount = bed.NativeMount(0);
    auto report = Drive(bed.sched(), RunMake(bed.sched(), mount, make_config));
    result.runtime_seconds = report.RuntimeSeconds();
    result.rpcs = bed.StatsOf(mount);
  } else {
    proxy::SessionConfig session_config;
    session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
    session_config.poll_period = Seconds(30);
    session_config.poll_max_period = Seconds(30);
    session_config.cache_mode = setup == Setup::kGvfs
                                    ? proxy::CacheMode::kReadOnly
                                    : proxy::CacheMode::kWriteBack;
    session_config.wb_flush_period = 0;  // flush on shutdown
    if (setup == Setup::kGvfsWbPipe) {
      // Pipelined variant: windowed write-back plus sequential read-ahead.
      session_config.wb_window = 8;
      session_config.read_ahead = 8;
    }
    const bool metrics = g_metrics_prefix.has_value() && wan;
    if (metrics) bed.EnableMetrics(g_metrics_period);
    auto& session = bed.CreateSession(session_config, {0});
    auto report =
        Drive(bed.sched(), RunMake(bed.sched(), session.mount(0), make_config));
    // Count the RPCs of the measured window; the deferred write-back flush
    // happens afterwards (the paper's counts likewise cover the run itself).
    result.runtime_seconds = report.RuntimeSeconds();
    result.rpcs = *session.stats;
    Drive(bed.sched(), session.Shutdown());
    if (metrics) {
      FinishMetrics(*g_metrics_prefix, std::string(SetupName(setup)) + ".wan",
                    bed.metrics_registry(), bed.metrics_sampler());
    }
  }
  return result;
}

void Main(const std::optional<std::string>& json_out) {
  PrintHeader("Figure 4(a): Make benchmark - RPCs over the WAN (thousands)");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "setup", "GETATTR",
              "LOOKUP", "READ", "WRITE", "GETINV", "total");
  PrintRule();

  Result wan_results[4];
  const Setup setups[4] = {Setup::kNfs, Setup::kGvfs, Setup::kGvfsWb,
                           Setup::kGvfsWbPipe};
  for (int i = 0; i < 4; ++i) {
    wan_results[i] = RunOne(setups[i], /*wan=*/true);
    const auto& rpcs = wan_results[i].rpcs;
    std::printf("%-10s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                SetupName(setups[i]), rpcs.Calls("GETATTR") / 1000.0,
                rpcs.Calls("LOOKUP") / 1000.0, rpcs.Calls("READ") / 1000.0,
                (rpcs.Calls("WRITE") + rpcs.Calls("COMMIT")) / 1000.0,
                rpcs.Calls("GETINV") / 1000.0, rpcs.TotalCalls() / 1000.0);
  }

  PrintHeader("Figure 4(b): Make benchmark - runtime (seconds)");
  std::printf("%-10s %12s %12s\n", "setup", "LAN", "WAN");
  PrintRule();
  double lan_nfs = 0;
  std::vector<JsonObject> rows;
  for (int i = 0; i < 4; ++i) {
    Result lan = RunOne(setups[i], /*wan=*/false);
    if (setups[i] == Setup::kNfs) lan_nfs = lan.runtime_seconds;
    JsonObject row;
    row.Add("setup", SetupName(setups[i]));
    row.Add("lan_s", lan.runtime_seconds);
    row.Add("wan_s", wan_results[i].runtime_seconds);
    row.Add("wan_rpcs", RpcStatsJson(wan_results[i].rpcs));
    rows.push_back(std::move(row));
    std::printf("%-10s %12.1f %12.1f", SetupName(setups[i]), lan.runtime_seconds,
                wan_results[i].runtime_seconds);
    if (setups[i] != Setup::kNfs && lan_nfs > 0) {
      std::printf("   (LAN overhead vs NFS: %+.1f%%)",
                  100.0 * (lan.runtime_seconds - lan_nfs) / lan_nfs);
    }
    std::printf("\n");
  }

  const double speedup =
      wan_results[0].runtime_seconds / wan_results[2].runtime_seconds;
  std::printf("\nWAN speedup GVFS-WB over NFS: %.2fx (paper: ~3x)\n", speedup);
  std::printf("Paper shape: GVFS serves the GETATTR storm locally (tens of "
              "GETINVs instead),\nreduces LOOKUPs via the disk cache, and "
              "write-back removes most WRITEs.\n");
  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("figure", "fig4_make");
    doc.Add("wan_speedup_gvfs_wb", speedup);
    doc.Add("setups", rows);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  gvfs::bench::Main(gvfs::bench::FlagValue(argc, argv, "--json-out"));
  return 0;
}
