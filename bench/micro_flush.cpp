// Write-back flush pipelining microbenchmark: flush latency of a 64-block
// (2 MB) dirty file over a 40 ms RTT WAN as a function of the write-back
// window (`wb_window`), emitting both a human-readable table and a JSON
// record for tooling.
//
// The WAN here is provisioned at 100 Mbps: at the paper's 4 Mbps the 32 KB
// block serialization delay (~65 ms) dominates the 40 ms RTT and caps the
// achievable overlap; with bandwidth to spare, the sliding window converts
// "one round trip per block" into "one round trip per window drain", which
// is the effect this benchmark isolates.
//
// `--check` exits non-zero unless wb_window=8 beats the serialized flush by
// at least 4x (the regression bar for the pipelined path).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::GvfsSession;
using workloads::Testbed;
using workloads::TestbedConfig;

constexpr int kBlocks = 64;
constexpr std::size_t kBlockSize = 32 * 1024;
constexpr double kRttMs = 40.0;
constexpr std::uint64_t kBandwidthBps = 100'000'000;

struct Point {
  std::size_t window = 0;
  double flush_seconds = 0;
  std::uint64_t writes = 0;
  std::uint64_t commits = 0;
  std::uint64_t peak_in_flight = 0;
};

/// --metrics-out wiring: the detailed window=8 run samples the observatory
/// (write-back queue depth draining through the flush) and writes
/// <prefix>.w8.{csv,json,prom}.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Milliseconds(1000);

Point RunOne(std::size_t window, bool print_stats) {
  TestbedConfig net_config;
  net_config.wan.one_way_latency = SecondsF(kRttMs / 2.0 / 1000.0);
  net_config.wan.bandwidth_bps = kBandwidthBps;
  Testbed bed(net_config);
  bed.AddWanClient();

  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(30);
  config.poll_max_period = Seconds(30);
  config.cache_mode = proxy::CacheMode::kWriteBack;
  config.wb_flush_period = 0;  // flush only when we say so
  config.wb_window = window;
  const bool metrics = g_metrics_prefix.has_value() && print_stats;
  if (metrics) bed.EnableMetrics(g_metrics_period);
  auto& session = bed.CreateSession(config, {0});

  // Dirty a 64-block file entirely inside the write-back cache.
  kclient::OpenFlags flags{.read = true, .write = true, .create = true};
  auto fd = Drive(bed.sched(), session.mount(0).Open("/big", flags));
  for (int i = 0; i < kBlocks; ++i) {
    Bytes payload(kBlockSize, static_cast<std::uint8_t>(i + 1));
    (void)Drive(bed.sched(), session.mount(0).Write(*fd, i * kBlockSize, payload));
  }
  (void)Drive(bed.sched(), session.mount(0).Close(*fd));

  session.stats->Reset();
  const SimTime t0 = bed.sched().Now();
  Drive(bed.sched(), session.proxy(0).FlushAll());
  Point point;
  point.window = window;
  point.flush_seconds = ToSeconds(bed.sched().Now() - t0);
  point.writes = session.stats->Calls("WRITE");
  point.commits = session.stats->Calls("COMMIT");
  point.peak_in_flight = session.stats->PeakInFlight();
  if (print_stats) PrintRpcStats("flush window=" + std::to_string(window), *session.stats);
  Drive(bed.sched(), session.Shutdown());
  if (metrics) {
    FinishMetrics(*g_metrics_prefix, "w" + std::to_string(window),
                  bed.metrics_registry(), bed.metrics_sampler());
  }
  return point;
}

int Main(bool check, const std::optional<std::string>& json_out) {
  PrintHeader("Write-back flush latency vs wb_window (64 x 32 KB dirty blocks, "
              "40 ms RTT, 100 Mbps)");
  std::printf("%-10s %12s %10s %10s %14s %10s\n", "wb_window", "flush (s)",
              "WRITEs", "COMMITs", "peak in-flt", "speedup");
  PrintRule();

  const std::size_t windows[] = {1, 2, 4, 8, 16};
  std::vector<Point> points;
  for (std::size_t w : windows) {
    points.push_back(RunOne(w, /*print_stats=*/false));
    const Point& p = points.back();
    std::printf("%-10zu %12.3f %10llu %10llu %14llu %9.2fx\n", p.window,
                p.flush_seconds, static_cast<unsigned long long>(p.writes),
                static_cast<unsigned long long>(p.commits),
                static_cast<unsigned long long>(p.peak_in_flight),
                points.front().flush_seconds / p.flush_seconds);
  }

  // Per-procedure latency breakdown for the window=8 run (the gauge shows
  // the window actually filling).
  std::printf("\n");
  (void)RunOne(8, /*print_stats=*/true);

  std::printf("\nJSON: {\"benchmark\":\"micro_flush\",\"rtt_ms\":%.0f,"
              "\"bandwidth_bps\":%llu,\"blocks\":%d,\"points\":[",
              kRttMs, static_cast<unsigned long long>(kBandwidthBps), kBlocks);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::printf("%s{\"wb_window\":%zu,\"flush_s\":%.4f,\"writes\":%llu,"
                "\"commits\":%llu,\"peak_in_flight\":%llu}",
                i == 0 ? "" : ",", p.window, p.flush_seconds,
                static_cast<unsigned long long>(p.writes),
                static_cast<unsigned long long>(p.commits),
                static_cast<unsigned long long>(p.peak_in_flight));
  }
  const double speedup8 = points[0].flush_seconds / points[3].flush_seconds;
  std::printf("],\"speedup_w8_vs_w1\":%.2f}\n", speedup8);

  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("benchmark", "micro_flush");
    doc.Add("rtt_ms", kRttMs);
    doc.Add("bandwidth_bps", static_cast<std::uint64_t>(kBandwidthBps));
    doc.Add("blocks", kBlocks);
    doc.Add("speedup_w8_vs_w1", speedup8);
    std::vector<JsonObject> rows;
    for (const Point& p : points) {
      JsonObject row;
      row.Add("wb_window", static_cast<std::uint64_t>(p.window));
      row.Add("flush_s", p.flush_seconds);
      row.Add("writes", p.writes);
      row.Add("commits", p.commits);
      row.Add("peak_in_flight", p.peak_in_flight);
      rows.push_back(std::move(row));
    }
    doc.Add("points", rows);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }

  if (check && speedup8 < 4.0) {
    std::fprintf(stderr, "FAIL: wb_window=8 speedup %.2fx < 4x\n", speedup8);
    return 1;
  }
  if (check) std::printf("CHECK OK: wb_window=8 speedup %.2fx >= 4x\n", speedup8);
  return 0;
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  const bool check = gvfs::bench::HasFlag(argc, argv, "--check");
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  return gvfs::bench::Main(check,
                           gvfs::bench::FlagValue(argc, argv, "--json-out"));
}
