// Adaptive consistency (fig_adapt): a three-phase mixed workload driven
// against three static configurations and the adaptive policy engine
// (src/policy), measuring the case the engine exists to make: no single
// static consistency model wins every phase, and per-file runtime migration
// beats both static choices end to end.
//
//   phase 1 (read-mostly):      one writer seeds a config-file set, then all
//                               three clients re-read it in rounds. Polling
//                               and delegation both serve this locally; the
//                               adaptive engine promotes the set to read
//                               delegations.
//   phase 2 (write-burst):      client 0 rewrites /hot in a timed burst
//                               while client 1 polls it for the final value.
//                               Static polling is stale for up to a full
//                               poll period; delegation (and the promoted
//                               adaptive session) learns via recall push.
//                               The phase clock runs until the reader
//                               actually observes the last write, so this
//                               measures freshness, not op cost.
//   phase 3 (shared contention): every client reads AND appends to every
//                               file in rounds. Static delegation bounces
//                               grants (each write pays recall round trips
//                               for the whole phase); polling is cheap; the
//                               adaptive engine demotes the set back to
//                               polling after its hysteresis window.
//
// Every point runs under the TraceChecker — including invariant 6 (no
// migration may strand a buffered invalidation) — and fails on a truncated
// trace, so the timings can never come from a run that lost consistency
// events. All reported fields are virtual-time deterministic; CI gates
// BENCH_adapt.json exactly (tools/bench/compare.py --adapt-*). `--smoke`
// runs the three single-server points with identical per-point config; the
// full run adds the 2-shard fleet point (MIGRATE routed to the owning
// shard).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/anomaly.h"
#include "trace/checker.h"
#include "trace/export.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::FleetConfig;
using workloads::FleetSession;
using workloads::GvfsSession;
using workloads::Testbed;

constexpr int kClients = 3;
constexpr int kCfgFiles = 6;          // /cfg0../cfg5, plus /hot
constexpr int kReadRounds = 12;       // phase 1
constexpr int kBursts = 12;           // phase 2 writer burst count
constexpr int kContendRounds = 8;     // phase 3
constexpr std::uint32_t kBlock = 1024;
constexpr Duration kPollPeriod = Seconds(10);
constexpr Duration kReadGap = Seconds(1);
constexpr Duration kBurstGap = Milliseconds(2500);
constexpr Duration kProbeGap = Seconds(1);
constexpr Duration kContendGap = Seconds(1);
// Lets the last demotions/migrations settle before teardown, so the traced
// run ends in a quiesced state the checker can vet.
constexpr Duration kSettle = Seconds(12);

enum class Mode { kPolling, kDelegation, kAdaptive, kAdaptiveSharded };

const char* ModeKey(Mode mode) {
  switch (mode) {
    case Mode::kPolling:
      return "polling";
    case Mode::kDelegation:
      return "delegation";
    case Mode::kAdaptive:
      return "adaptive";
    case Mode::kAdaptiveSharded:
      return "adaptive_sharded";
  }
  return "?";
}

std::vector<std::string> FileSet() {
  std::vector<std::string> files;
  for (int f = 0; f < kCfgFiles; ++f) files.push_back("/cfg" + std::to_string(f));
  files.push_back("/hot");
  return files;
}

struct PhaseTimes {
  SimTime start = 0;
  SimTime p1_end = 0;
  SimTime p2_end = 0;
  SimTime p3_end = 0;
};

struct Point {
  Mode mode = Mode::kPolling;
  double phase1_s = 0;
  double phase2_s = 0;
  double phase3_s = 0;
  double total_s = 0;
  std::uint64_t migrations = 0;   // client MIGRATE handshakes completed
  std::uint64_t promotions = 0;   // policy commits toward delegation
  std::uint64_t demotions = 0;    // policy commits toward polling
  std::uint64_t storm_freezes = 0;
  std::uint64_t inv_drained = 0;  // invalidations delivered inside MIGRATE
  std::uint64_t recalls = 0;      // server-side recall callbacks (rd+wr)
  std::uint64_t callbacks = 0;
  std::uint64_t getinv = 0;
  std::uint64_t applied = 0;      // invalidations applied across clients

  // Staleness-probe read-out for the SLO gate (printed under --check, kept
  // out of the JSON so BENCH_adapt.json stays byte-identical).
  std::uint64_t staleness_count = 0;
  std::uint64_t staleness_p99_us = 0;
};

template <typename Session>
sim::Task<void> ReadOnce(Session& session, int client, const std::string& path) {
  kclient::OpenFlags ro{.read = true};
  auto fd = co_await session.mount(client).Open(path, ro);
  if (fd.has_value()) {
    (void)co_await session.mount(client).Read(*fd, 0, kBlock);
    (void)co_await session.mount(client).Close(*fd);
  }
}

/// Phase 2 writer: rewrites /hot in a timed burst; the final burst flips the
/// first byte to the completion marker the prober waits for.
template <typename Session>
sim::Task<void> BurstWriter(Testbed& bed, Session& session) {
  kclient::OpenFlags rw{.read = true, .write = true};
  for (int burst = 1; burst <= kBursts; ++burst) {
    auto fd = co_await session.mount(0).Open("/hot", rw);
    if (fd.has_value()) {
      const bool last = burst == kBursts;
      Bytes payload(kBlock, static_cast<std::uint8_t>(last ? 0xFF : burst));
      (void)co_await session.mount(0).Write(*fd, 0, payload);
      (void)co_await session.mount(0).Close(*fd);
    }
    if (burst != kBursts) co_await sim::Sleep(bed.sched(), kBurstGap);
  }
}

/// Phase 2 prober: client 1 re-reads /hot until it observes the completion
/// marker. How long this takes IS the freshness of the consistency model.
template <typename Session>
sim::Task<void> Prober(Testbed& bed, Session& session) {
  kclient::OpenFlags ro{.read = true};
  while (true) {
    auto fd = co_await session.mount(1).Open("/hot", ro);
    if (fd.has_value()) {
      auto data = co_await session.mount(1).Read(*fd, 0, kBlock);
      (void)co_await session.mount(1).Close(*fd);
      if (data.has_value() && !data->empty() && (*data)[0] == 0xFF) co_return;
    }
    co_await sim::Sleep(bed.sched(), kProbeGap);
  }
}

template <typename Session>
sim::Task<void> Workload(Testbed& bed, Session& session, PhaseTimes* times) {
  const std::vector<std::string> files = FileSet();
  kclient::OpenFlags rw{.read = true, .write = true, .create = true};
  times->start = bed.sched().Now();

  // Phase 1: client 0 seeds the set, then everyone re-reads it in rounds.
  for (const std::string& path : files) {
    auto fd = co_await session.mount(0).Open(path, rw);
    if (!fd.has_value()) continue;
    Bytes payload(kBlock, 0x01);
    (void)co_await session.mount(0).Write(*fd, 0, payload);
    (void)co_await session.mount(0).Close(*fd);
  }
  for (int round = 0; round < kReadRounds; ++round) {
    for (int c = 0; c < kClients; ++c) {
      for (const std::string& path : files) co_await ReadOnce(session, c, path);
    }
    co_await sim::Sleep(bed.sched(), kReadGap);
  }
  times->p1_end = bed.sched().Now();

  // Phase 2: concurrent burst writer (client 0) and freshness prober
  // (client 1); the phase ends when the prober has seen the final write.
  {
    sim::WaitGroup wg(bed.sched());
    wg.Spawn(BurstWriter(bed, session));
    wg.Spawn(Prober(bed, session));
    co_await wg.Wait();
  }
  times->p2_end = bed.sched().Now();

  // Phase 3: every client reads and appends to every file, in rounds.
  for (int round = 0; round < kContendRounds; ++round) {
    for (int c = 0; c < kClients; ++c) {
      for (const std::string& path : files) {
        auto fd = co_await session.mount(c).Open(path, rw);
        if (!fd.has_value()) continue;
        (void)co_await session.mount(c).Read(*fd, 0, kBlock);
        Bytes payload(kBlock, static_cast<std::uint8_t>(0x10 + c));
        (void)co_await session.mount(c).Write(
            *fd, kBlock * static_cast<std::uint64_t>(1 + c), payload);
        (void)co_await session.mount(c).Close(*fd);
      }
    }
    co_await sim::Sleep(bed.sched(), kContendGap);
  }
  co_await sim::Sleep(bed.sched(), kSettle);
  times->p3_end = bed.sched().Now();
}

proxy::SessionConfig SessionFor(Mode mode) {
  proxy::SessionConfig config;
  config.model = mode == Mode::kDelegation
                     ? proxy::ConsistencyModel::kDelegationCallback
                     : proxy::ConsistencyModel::kInvalidationPolling;
  config.adaptive = mode == Mode::kAdaptive || mode == Mode::kAdaptiveSharded;
  config.cache_mode = proxy::CacheMode::kReadOnly;
  config.poll_period = kPollPeriod;
  config.poll_max_period = kPollPeriod;  // fixed cadence: staleness is the
                                         // measured quantity, keep it flat
  config.inv_buffer_capacity = 1 << 16;
  config.policy_period = Seconds(5);
  config.policy_dwell = Seconds(10);
  return config;
}

/// The kernel mounts defer all caching to the proxy: noac plus a zero-byte
/// page cache make every application read visible to the proxy client, which
/// is both what the policy engine classifies on and what makes the phase-2
/// staleness measurement an attribute of the consistency model rather than
/// of the kernel cache.
kclient::MountOptions MountFor() {
  kclient::MountOptions options;
  options.noac = true;
  options.max_cached_bytes = 0;
  return options;
}

void Collect(const std::vector<proxy::ProxyServer*>& shards,
             const std::vector<proxy::ProxyClient*>& proxies, Point* point) {
  for (const proxy::ProxyServer* shard : shards) {
    const proxy::ProxyServerStats& s = shard->stats();
    point->recalls += s.recalls_read + s.recalls_write;
    point->callbacks += s.callbacks_sent;
    point->getinv += s.getinv_served;
    point->inv_drained += s.inv_drained;
  }
  for (proxy::ProxyClient* proxy : proxies) {
    point->applied += proxy->stats().invalidations_applied;
    point->migrations += proxy->stats().migrations;
    if (proxy->policy() != nullptr) {
      point->promotions += proxy->policy()->promotions();
      point->demotions += proxy->policy()->demotions();
      point->storm_freezes += proxy->policy()->storm_freezes();
    }
  }
}

/// --metrics-out / --trace-out wiring for the CI bench job: the headline
/// adaptive point samples the observatory and dumps its trace.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Seconds(5);
std::optional<std::string> g_trace_out;

bool RunOne(Mode mode, Point* out) {
  Testbed bed;
  for (int i = 0; i < kClients; ++i) bed.AddWanClient();

  trace::TraceBuffer& trace = bed.EnableTracing(1 << 21);
  const bool artifacts = mode == Mode::kAdaptive &&
                         (g_metrics_prefix.has_value() || g_trace_out.has_value());
  metrics::Registry& registry =
      bed.EnableMetrics(artifacts ? g_metrics_period : Seconds(5));

  Point point;
  point.mode = mode;
  PhaseTimes times;
  if (mode == Mode::kAdaptiveSharded) {
    FleetConfig config;
    config.shards = 2;
    config.aggregate = false;
    config.session = SessionFor(mode);
    FleetSession& session =
        bed.CreateFleetSession(config, {0, 1, 2}, kClients, MountFor());
    Drive(bed.sched(), Workload(bed, session, &times));
    Collect(session.shards, session.proxies, &point);
    Drive(bed.sched(), session.Shutdown());
  } else {
    GvfsSession& session = bed.CreateSession(SessionFor(mode), {0, 1, 2}, MountFor());
    Drive(bed.sched(), Workload(bed, session, &times));
    Collect({session.server}, session.proxies, &point);
    Drive(bed.sched(), session.Shutdown());
  }
  point.phase1_s = ToSeconds(times.p1_end - times.start);
  point.phase2_s = ToSeconds(times.p2_end - times.p1_end);
  point.phase3_s = ToSeconds(times.p3_end - times.p2_end);
  point.total_s = ToSeconds(times.p3_end - times.start);

  // Staleness probe read-out: the testbed registers the session histogram as
  // s0.staleness_us (f0.staleness_us for the fleet point).
  const std::string staleness_key =
      std::string(mode == Mode::kAdaptiveSharded ? "f0" : "s0") +
      ".staleness_us";
  auto hist_it = registry.histograms().find(staleness_key);
  if (hist_it != registry.histograms().end()) {
    point.staleness_count = hist_it->second.hist().count();
    point.staleness_p99_us = hist_it->second.hist().Percentile(99);
  }

  if (artifacts && g_metrics_prefix.has_value()) {
    FinishMetrics(*g_metrics_prefix, ModeKey(mode), bed.metrics_registry(),
                  bed.metrics_sampler());
  }
  if (artifacts && g_trace_out.has_value()) {
    trace::ChromeTraceWriter writer;
    writer.Add(trace, {});
    if (writer.WriteTo(*g_trace_out)) {
      std::printf("trace written: %s (%zu events)\n", g_trace_out->c_str(),
                  writer.event_count());
    }
  }

  if (trace.dropped() != 0) {
    std::fprintf(stderr,
                 "FAIL: trace ring overflowed (%llu dropped) at mode=%s — "
                 "results unverifiable\n",
                 static_cast<unsigned long long>(trace.dropped()), ModeKey(mode));
    return false;
  }
  trace::TraceChecker checker(proxy::NfsTraceCheckerConfig());
  const auto violations = checker.Check(trace);
  if (!violations.empty()) {
    std::fprintf(stderr, "FAIL: trace checker at mode=%s\n%s", ModeKey(mode),
                 trace::FormatViolations(violations).c_str());
    return false;
  }
  *out = point;
  return true;
}

JsonObject PointJson(const Point& p) {
  JsonObject row;
  row.Add("mode", std::string(ModeKey(p.mode)));
  row.Add("phase1_s", p.phase1_s);
  row.Add("phase2_s", p.phase2_s);
  row.Add("phase3_s", p.phase3_s);
  row.Add("total_s", p.total_s);
  row.Add("migrations", p.migrations);
  row.Add("promotions", p.promotions);
  row.Add("demotions", p.demotions);
  row.Add("storm_freezes", p.storm_freezes);
  row.Add("inv_drained", p.inv_drained);
  row.Add("recalls", p.recalls);
  row.Add("callbacks", p.callbacks);
  row.Add("getinv", p.getinv);
  row.Add("applied", p.applied);
  return row;
}

const Point* Find(const std::vector<Point>& points, Mode mode) {
  for (const Point& p : points) {
    if (p.mode == mode) return &p;
  }
  return nullptr;
}

/// The claims the adaptive engine is sold on: each static model loses one
/// phase, and the migrating session beats both end to end.
bool CheckClaims(const std::vector<Point>& points) {
  const Point* poll = Find(points, Mode::kPolling);
  const Point* deleg = Find(points, Mode::kDelegation);
  const Point* adapt = Find(points, Mode::kAdaptive);
  if (poll == nullptr || deleg == nullptr || adapt == nullptr) {
    std::fprintf(stderr, "CHECK FAIL: missing benchmark points\n");
    return false;
  }
  bool ok = true;
  if (poll->phase2_s <= deleg->phase2_s) {
    std::fprintf(stderr,
                 "CHECK FAIL: polling was not staler than delegation in the "
                 "write burst (%.2f s vs %.2f s)\n",
                 poll->phase2_s, deleg->phase2_s);
    ok = false;
  }
  if (deleg->phase3_s <= poll->phase3_s) {
    std::fprintf(stderr,
                 "CHECK FAIL: delegation did not pay for contention "
                 "(%.2f s vs polling %.2f s)\n",
                 deleg->phase3_s, poll->phase3_s);
    ok = false;
  }
  if (adapt->total_s >= poll->total_s) {
    std::fprintf(stderr,
                 "CHECK FAIL: adaptive did not beat static polling end to "
                 "end (%.2f s vs %.2f s)\n",
                 adapt->total_s, poll->total_s);
    ok = false;
  }
  if (adapt->total_s >= deleg->total_s) {
    std::fprintf(stderr,
                 "CHECK FAIL: adaptive did not beat static delegation end to "
                 "end (%.2f s vs %.2f s)\n",
                 adapt->total_s, deleg->total_s);
    ok = false;
  }
  if (adapt->promotions == 0 || adapt->demotions == 0) {
    std::fprintf(stderr,
                 "CHECK FAIL: the engine never migrated both ways "
                 "(%llu promotions, %llu demotions)\n",
                 static_cast<unsigned long long>(adapt->promotions),
                 static_cast<unsigned long long>(adapt->demotions));
    ok = false;
  }
  if (const Point* sharded = Find(points, Mode::kAdaptiveSharded)) {
    if (sharded->migrations == 0) {
      std::fprintf(stderr,
                   "CHECK FAIL: no MIGRATE handshake reached the 2-shard "
                   "fleet\n");
      ok = false;
    }
  }
  return ok;
}

/// Staleness-SLO gate (runs under --check): every polling-path point must
/// keep its p99 cached-read staleness within the paper's proven
/// poll_period + 2*RTT budget, and the probe must actually have sampled
/// (count > 0) — a vacuously-passing gate would hide a dead probe. Static
/// delegation has no polling path to bound, so it is exempt.
bool CheckStaleness(const std::vector<Point>& points) {
  const Duration budget =
      kPollPeriod + 4 * workloads::TestbedConfig{}.wan.one_way_latency;
  const auto budget_us = static_cast<std::uint64_t>(ToSeconds(budget) * 1e6);
  bool ok = true;
  for (const Point& p : points) {
    if (p.mode == Mode::kDelegation) continue;
    if (p.staleness_count == 0) {
      std::fprintf(stderr,
                   "CHECK FAIL: staleness probe recorded no samples at "
                   "mode=%s (dead probe?)\n",
                   ModeKey(p.mode));
      ok = false;
      continue;
    }
    std::printf("staleness SLO: mode=%-16s p99 %8llu us <= %llu us budget "
                "(%llu samples)\n",
                ModeKey(p.mode),
                static_cast<unsigned long long>(p.staleness_p99_us),
                static_cast<unsigned long long>(budget_us),
                static_cast<unsigned long long>(p.staleness_count));
    if (p.staleness_p99_us > budget_us) {
      std::fprintf(stderr,
                   "CHECK FAIL: p99 staleness %llu us exceeds the "
                   "poll_period + 2*RTT budget (%llu us) at mode=%s\n",
                   static_cast<unsigned long long>(p.staleness_p99_us),
                   static_cast<unsigned long long>(budget_us), ModeKey(p.mode));
      ok = false;
    }
  }
  return ok;
}

/// --dump-on-anomaly: a dedicated recall-storm run for the diagnosis layer.
/// Runs the adaptive point with the online watchdog armed at a deliberately
/// low recall threshold (mirrored into the policy engine's own storm
/// breaker), so the phase-3 contention rounds trip the recall-storm detector
/// mid-run and the flight recorder snapshots the session into `dump_path`.
/// Exits 0 iff the detector fired AND the dump was written — the doctor tier
/// then round-trips that dump through gvfs-doctor and expects the same
/// recall-storm verdict back.
int RunStorm(const std::string& dump_path, std::uint64_t storm_threshold) {
  Testbed bed;
  for (int i = 0; i < kClients; ++i) bed.AddWanClient();

  trace::TraceBuffer& trace = bed.EnableTracing(1 << 21);
  obs::ObsConfig obs;
  obs.watch_period = Seconds(1);
  obs.recall_storm_threshold = storm_threshold;
  bed.EnableDiagnosis(obs);
  bed.DumpOnAnomaly(dump_path);

  proxy::SessionConfig config = SessionFor(Mode::kAdaptive);
  config.policy_storm_recalls = static_cast<std::uint32_t>(storm_threshold);
  GvfsSession& session = bed.CreateSession(config, {0, 1, 2}, MountFor());

  PhaseTimes times;
  Drive(bed.sched(), Workload(bed, session, &times));
  Drive(bed.sched(), session.Shutdown());
  bed.watchdog()->ScanNow();  // flush the tail window

  if (trace.dropped() != 0) {
    std::fprintf(stderr, "FAIL: trace ring overflowed (%llu dropped)\n",
                 static_cast<unsigned long long>(trace.dropped()));
    return 1;
  }
  trace::TraceChecker checker(proxy::NfsTraceCheckerConfig());
  const auto violations = checker.Check(trace);
  if (!violations.empty()) {
    std::fprintf(stderr, "FAIL: trace checker\n%s",
                 trace::FormatViolations(violations).c_str());
    return 1;
  }

  std::uint64_t storms = 0;
  for (const obs::Anomaly& a : bed.watchdog()->anomalies()) {
    if (a.kind == obs::AnomalyKind::kRecallStorm) ++storms;
  }
  if (storms == 0) {
    std::fprintf(stderr,
                 "FAIL: no recall-storm anomaly fired (threshold %llu)\n",
                 static_cast<unsigned long long>(storm_threshold));
    return 1;
  }
  std::FILE* dump = std::fopen(dump_path.c_str(), "rb");
  if (dump == nullptr) {
    std::fprintf(stderr, "FAIL: anomaly fired but no dump at %s\n",
                 dump_path.c_str());
    return 1;
  }
  std::fclose(dump);
  std::printf("recall storm: %llu firing(s) at threshold %llu, dump written: "
              "%s\n",
              static_cast<unsigned long long>(storms),
              static_cast<unsigned long long>(storm_threshold),
              dump_path.c_str());
  return 0;
}

int Main(bool smoke, bool check, const std::optional<std::string>& json_out) {
  const std::vector<Mode> modes =
      smoke ? std::vector<Mode>{Mode::kPolling, Mode::kDelegation, Mode::kAdaptive}
            : std::vector<Mode>{Mode::kPolling, Mode::kDelegation, Mode::kAdaptive,
                                Mode::kAdaptiveSharded};

  PrintHeader("Adaptive consistency: three-phase mixed workload "
              "(read-mostly -> write-burst -> shared contention)");
  std::printf("%-17s %9s %9s %9s %9s %7s %6s %6s %8s\n", "mode", "phase1",
              "phase2", "phase3", "total", "migr", "promo", "demo", "recalls");
  PrintRule();

  std::vector<Point> points;
  for (Mode mode : modes) {
    Point point;
    if (!RunOne(mode, &point)) return 1;
    points.push_back(point);
    std::printf("%-17s %9.1f %9.1f %9.1f %9.1f %7llu %6llu %6llu %8llu\n",
                ModeKey(point.mode), point.phase1_s, point.phase2_s,
                point.phase3_s, point.total_s,
                static_cast<unsigned long long>(point.migrations),
                static_cast<unsigned long long>(point.promotions),
                static_cast<unsigned long long>(point.demotions),
                static_cast<unsigned long long>(point.recalls));
  }

  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("benchmark", "fig_adapt");
    doc.Add("smoke", smoke);
    doc.Add("cfg_files", static_cast<std::uint64_t>(kCfgFiles));
    doc.Add("read_rounds", static_cast<std::uint64_t>(kReadRounds));
    doc.Add("bursts", static_cast<std::uint64_t>(kBursts));
    doc.Add("contend_rounds", static_cast<std::uint64_t>(kContendRounds));
    doc.Add("poll_period_s", ToSeconds(kPollPeriod));
    std::vector<JsonObject> rows;
    for (const Point& p : points) rows.push_back(PointJson(p));
    doc.Add("points", rows);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }

  if (check) {
    bool ok = CheckClaims(points);
    ok = CheckStaleness(points) && ok;
    if (!ok) return 1;
    std::printf("CHECK OK: adaptive migration beats both static models end "
                "to end (and every polling-path point held its staleness "
                "SLO)\n");
  }
  return 0;
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  if (auto dump = gvfs::bench::FlagValue(argc, argv, "--dump-on-anomaly")) {
    std::uint64_t threshold = 2;
    if (auto t = gvfs::bench::FlagValue(argc, argv, "--storm-threshold")) {
      threshold = std::strtoull(t->c_str(), nullptr, 10);
    }
    if (threshold == 0) {
      std::fprintf(stderr, "--storm-threshold must be positive\n");
      return 2;
    }
    return gvfs::bench::RunStorm(*dump, threshold);
  }
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  gvfs::bench::g_trace_out = gvfs::bench::FlagValue(argc, argv, "--trace-out");
  return gvfs::bench::Main(gvfs::bench::HasFlag(argc, argv, "--smoke"),
                           gvfs::bench::HasFlag(argc, argv, "--check"),
                           gvfs::bench::FlagValue(argc, argv, "--json-out"));
}
