// Figure 6 (paper §5.1.2): the file-based lock benchmark across six WAN
// clients — 10 acquisitions each, 10 s hold, 1 s retry.
//
//  (a) Consistency-related RPCs over the network for NFS-inv (30 s
//      revalidation), GVFS-inv (30 s invalidation polling), NFS-noac, and
//      GVFS-cb (delegation + callback).
//  (b) Runtime for the same setups plus AFS as a strong-consistency
//      reference.
//
// Paper shape to reproduce: the weak models run ~2x longer (stale caches
// delay lock handoff; the previous owner tends to reacquire), GVFS-inv uses
// ~44% fewer consistency calls than NFS-inv, and NFS-noac issues >10x the
// consistency calls of GVFS-cb.
//
// `--sweep-period` additionally runs the GVFS-inv ablation over polling
// periods (the §4.2.1 design knob).
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "workloads/lock_bench.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::LockBenchConfig;
using workloads::LockBenchReport;
using workloads::RunLockBench;
using workloads::Testbed;

constexpr int kClients = 6;

enum class Setup { kNfsInv, kGvfsInv, kNfsNoac, kGvfsCb, kAfs };

const char* SetupName(Setup setup) {
  switch (setup) {
    case Setup::kNfsInv:
      return "NFS-inv";
    case Setup::kGvfsInv:
      return "GVFS-inv";
    case Setup::kNfsNoac:
      return "NFS-noac";
    case Setup::kGvfsCb:
      return "GVFS-cb";
    case Setup::kAfs:
      return "AFS";
  }
  return "?";
}

struct Result {
  LockBenchReport report;
  rpc::StatsMap rpcs;
  bool rpcs_comparable = true;
};

/// --metrics-out wiring: the headline GVFS runs (not the sweep) sample the
/// observatory and write <prefix>.<setup>.{csv,json,prom}.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Milliseconds(1000);

Result RunOne(Setup setup, Duration poll_period = Seconds(30),
              const char* metrics_label = nullptr) {
  Testbed bed;
  for (int i = 0; i < kClients; ++i) bed.AddWanClient();

  LockBenchConfig config;  // paper parameters

  Result result;
  std::vector<kclient::Vfs*> mounts;

  if (setup == Setup::kNfsInv || setup == Setup::kNfsNoac) {
    kclient::MountOptions options;
    options.noac = setup == Setup::kNfsNoac;
    options.attr_timeout = Seconds(30);
    std::vector<kclient::KernelClient*> kmounts;
    for (int i = 0; i < kClients; ++i) {
      kmounts.push_back(&bed.NativeMount(i, options));
      mounts.push_back(kmounts.back());
    }
    result.report = Drive(bed.sched(), RunLockBench(bed.sched(), mounts, config));
    for (auto* mount : kmounts) {
      const rpc::StatsMap& kstats = bed.StatsOf(*mount);
      for (const auto& label : kstats.Labels()) {
        const std::uint64_t count = kstats.Calls(label);
        for (std::uint64_t i = 0; i < count; ++i) result.rpcs.Count(label, 0);
      }
    }
  } else if (setup == Setup::kAfs) {
    for (int i = 0; i < kClients; ++i) mounts.push_back(&bed.AfsMount(i));
    result.report = Drive(bed.sched(), RunLockBench(bed.sched(), mounts, config));
    result.rpcs_comparable = false;  // different RPC protocol (as in the paper)
  } else {
    proxy::SessionConfig session_config;
    kclient::MountOptions kernel_options;
    if (setup == Setup::kGvfsInv) {
      session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
      session_config.poll_period = poll_period;
      session_config.poll_max_period = poll_period;
    } else {
      session_config.model = proxy::ConsistencyModel::kDelegationCallback;
      kernel_options.noac = true;
    }
    session_config.cache_mode = proxy::CacheMode::kReadOnly;
    const bool metrics =
        g_metrics_prefix.has_value() && metrics_label != nullptr;
    if (metrics) bed.EnableMetrics(g_metrics_period);
    std::vector<int> indices;
    for (int i = 0; i < kClients; ++i) indices.push_back(i);
    auto& session = bed.CreateSession(session_config, indices, kernel_options);
    for (auto* mount : session.mounts) mounts.push_back(mount);
    result.report = Drive(bed.sched(), RunLockBench(bed.sched(), mounts, config));
    result.rpcs = *session.stats;
    if (metrics) {
      FinishMetrics(*g_metrics_prefix, metrics_label, bed.metrics_registry(),
                    bed.metrics_sampler());
    }
  }
  return result;
}

std::uint64_t ConsistencyCalls(const rpc::StatsMap& rpcs) {
  return rpcs.Calls("GETATTR") + rpcs.Calls("GETINV") + rpcs.Calls("CALLBACK") +
         rpcs.Calls("LOOKUP");
}

void PrintResult(Setup setup, const Result& result) {
  std::printf("%-10s %10.0f", SetupName(setup), result.report.RuntimeSeconds());
  if (result.rpcs_comparable) {
    std::printf(" %9.2fK %9.2fK %9.2fK %9.2fK %9.2fK",
                result.rpcs.Calls("GETATTR") / 1000.0,
                result.rpcs.Calls("LOOKUP") / 1000.0,
                result.rpcs.Calls("GETINV") / 1000.0,
                result.rpcs.Calls("CALLBACK") / 1000.0,
                ConsistencyCalls(result.rpcs) / 1000.0);
  } else {
    std::printf(" %10s %10s %10s %10s %10s", "n/a", "n/a", "n/a", "n/a", "n/a");
  }
  std::printf("   handoffs-to-self=%d max-streak=%d\n",
              result.report.self_handoffs,
              result.report.MaxConsecutiveByOneClient());
}

JsonObject ResultJson(Setup setup, const Result& result) {
  JsonObject row;
  row.Add("setup", SetupName(setup));
  row.Add("runtime_s", result.report.RuntimeSeconds());
  row.Add("self_handoffs", result.report.self_handoffs);
  row.Add("max_streak", result.report.MaxConsecutiveByOneClient());
  if (result.rpcs_comparable) row.Add("rpcs", RpcStatsJson(result.rpcs));
  return row;
}

void Main(bool sweep_period, const std::optional<std::string>& json_out) {
  PrintHeader("Figure 6: lock benchmark (6 clients, 10 acquisitions each)");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "setup", "runtime",
              "GETATTR", "LOOKUP", "GETINV", "CALLBACK", "consist.");
  PrintRule();

  Result nfs_inv = RunOne(Setup::kNfsInv);
  PrintResult(Setup::kNfsInv, nfs_inv);
  Result gvfs_inv = RunOne(Setup::kGvfsInv, Seconds(30), "GVFS-inv");
  PrintResult(Setup::kGvfsInv, gvfs_inv);
  Result nfs_noac = RunOne(Setup::kNfsNoac);
  PrintResult(Setup::kNfsNoac, nfs_noac);
  Result gvfs_cb = RunOne(Setup::kGvfsCb, Seconds(30), "GVFS-cb");
  PrintResult(Setup::kGvfsCb, gvfs_cb);
  Result afs = RunOne(Setup::kAfs);
  PrintResult(Setup::kAfs, afs);

  std::printf("\nWeak/strong runtime ratio: %.2fx (paper figure 6b: weak setups "
              "run ~10-20%% longer;\n  the release-visibility gaps also show as "
              "handoffs-to-self / max-streak above)\n",
              nfs_inv.report.RuntimeSeconds() / gvfs_cb.report.RuntimeSeconds());
  std::printf("GVFS-inv consistency calls vs NFS-inv: %.0f%% fewer (paper: 44%%)\n",
              100.0 * (1.0 - static_cast<double>(ConsistencyCalls(gvfs_inv.rpcs)) /
                                 ConsistencyCalls(nfs_inv.rpcs)));
  std::printf("NFS-noac / GVFS-cb consistency calls: %.1fx (paper: >10x)\n",
              static_cast<double>(ConsistencyCalls(nfs_noac.rpcs)) /
                  ConsistencyCalls(gvfs_cb.rpcs));

  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("figure", "fig6_lock");
    std::vector<JsonObject> rows;
    rows.push_back(ResultJson(Setup::kNfsInv, nfs_inv));
    rows.push_back(ResultJson(Setup::kGvfsInv, gvfs_inv));
    rows.push_back(ResultJson(Setup::kNfsNoac, nfs_noac));
    rows.push_back(ResultJson(Setup::kGvfsCb, gvfs_cb));
    rows.push_back(ResultJson(Setup::kAfs, afs));
    doc.Add("setups", rows);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }

  if (sweep_period) {
    PrintHeader("Ablation: GVFS-inv polling period (staleness/traffic tradeoff)");
    std::printf("%-12s %10s %10s %12s %12s\n", "period (s)", "runtime", "GETINV",
                "consist.", "self-handoffs");
    PrintRule();
    for (int period : {5, 15, 30, 60}) {
      Result r = RunOne(Setup::kGvfsInv, Seconds(period));
      std::printf("%-12d %10.0f %10llu %12llu %12d\n", period,
                  r.report.RuntimeSeconds(),
                  static_cast<unsigned long long>(r.rpcs.Calls("GETINV")),
                  static_cast<unsigned long long>(ConsistencyCalls(r.rpcs)),
                  r.report.self_handoffs);
    }
  }
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  const bool sweep = gvfs::bench::HasFlag(argc, argv, "--sweep-period");
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  gvfs::bench::Main(sweep, gvfs::bench::FlagValue(argc, argv, "--json-out"));
  return 0;
}
