// Shared helpers for the figure-reproduction harnesses: table printing and
// a driver that runs a workload coroutine to completion on a testbed.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "rpc/stats.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::bench {

template <typename T>
sim::Task<void> CaptureInto(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

/// Runs `task` to completion, stepping the scheduler (sessions keep
/// background pollers alive, so we cannot simply drain the queue).
template <typename T>
T Drive(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(CaptureInto(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  if (!out.has_value()) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
  return std::move(*out);
}

inline sim::Task<void> MarkDone(sim::Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

/// void overload.
inline void Drive(sim::Scheduler& sched, sim::Task<void> task) {
  bool done = false;
  sim::Spawn(MarkDone(std::move(task), &done));
  while (!done && !sched.Idle()) sched.Run(1);
  if (!done) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------"
              "---------------\n");
}

/// Per-procedure WAN RPC breakdown: call/byte counts plus completion latency
/// (mean and max) and the node's peak concurrency gauge, so pipelined paths
/// (windowed write-back, read-ahead, callback multicast) show up directly.
inline void PrintRpcStats(const std::string& name, const rpc::StatsMap& stats) {
  std::printf("%s: %llu RPCs, %.1f KB, peak in-flight %llu\n", name.c_str(),
              static_cast<unsigned long long>(stats.TotalCalls()),
              static_cast<double>(stats.TotalBytes()) / 1024.0,
              static_cast<unsigned long long>(stats.PeakInFlight()));
  for (const auto& [label, calls] : stats.calls()) {
    std::printf("  %-10s %8llu calls %10.1f KB  lat avg %8.2f ms  max %8.2f ms\n",
                label.c_str(), static_cast<unsigned long long>(calls),
                static_cast<double>(stats.Bytes(label)) / 1024.0,
                ToSeconds(stats.LatencyAvg(label)) * 1e3,
                ToSeconds(stats.LatencyMax(label)) * 1e3);
  }
}

}  // namespace gvfs::bench
