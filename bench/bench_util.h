// Shared helpers for the figure-reproduction harnesses: table printing and
// a driver that runs a workload coroutine to completion on a testbed.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::bench {

template <typename T>
sim::Task<void> CaptureInto(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

/// Runs `task` to completion, stepping the scheduler (sessions keep
/// background pollers alive, so we cannot simply drain the queue).
template <typename T>
T Drive(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(CaptureInto(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  if (!out.has_value()) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
  return std::move(*out);
}

inline sim::Task<void> MarkDone(sim::Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

/// void overload.
inline void Drive(sim::Scheduler& sched, sim::Task<void> task) {
  bool done = false;
  sim::Spawn(MarkDone(std::move(task), &done));
  while (!done && !sched.Idle()) sched.Run(1);
  if (!done) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------"
              "---------------\n");
}

}  // namespace gvfs::bench
