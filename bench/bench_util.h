// Shared helpers for the figure-reproduction harnesses: table printing, a
// driver that runs a workload coroutine to completion on a testbed, JSON
// artifact assembly for machine-readable BENCH_*.json files (emitter lives
// in common/json_writer.h), metrics artifact writing, and tiny argv flag
// parsing (--json-out / --trace-out / --metrics-out style).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/types.h"
#include "metrics/export.h"
#include "metrics/sampler.h"
#include "rpc/stats.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::bench {

using gvfs::JsonObject;
using gvfs::JsonQuote;
using gvfs::WriteTextFile;

template <typename T>
sim::Task<void> CaptureInto(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

/// Runs `task` to completion, stepping the scheduler (sessions keep
/// background pollers alive, so we cannot simply drain the queue).
template <typename T>
T Drive(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(CaptureInto(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  if (!out.has_value()) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
  return std::move(*out);
}

inline sim::Task<void> MarkDone(sim::Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

/// void overload.
inline void Drive(sim::Scheduler& sched, sim::Task<void> task) {
  bool done = false;
  sim::Spawn(MarkDone(std::move(task), &done));
  while (!done && !sched.Idle()) sched.Run(1);
  if (!done) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------"
              "---------------\n");
}

/// Per-procedure WAN RPC breakdown: call/byte counts plus completion latency
/// (mean and max) and the node's peak concurrency gauge, so pipelined paths
/// (windowed write-back, read-ahead, callback multicast) show up directly.
inline void PrintRpcStats(const std::string& name, const rpc::StatsMap& stats) {
  std::printf("%s: %llu RPCs, %.1f KB, peak in-flight %llu\n", name.c_str(),
              static_cast<unsigned long long>(stats.TotalCalls()),
              static_cast<double>(stats.TotalBytes()) / 1024.0,
              static_cast<unsigned long long>(stats.PeakInFlight()));
  for (const auto& label : stats.Labels()) {
    std::printf("  %-10s %8llu calls %10.1f KB  lat avg %8.2f"
                "  p50 %8.2f  p95 %8.2f  p99 %8.2f  max %8.2f ms\n",
                label.c_str(),
                static_cast<unsigned long long>(stats.Calls(label)),
                static_cast<double>(stats.Bytes(label)) / 1024.0,
                ToSeconds(stats.LatencyAvg(label)) * 1e3,
                ToSeconds(stats.LatencyP50(label)) * 1e3,
                ToSeconds(stats.LatencyP95(label)) * 1e3,
                ToSeconds(stats.LatencyP99(label)) * 1e3,
                ToSeconds(stats.LatencyMax(label)) * 1e3);
  }
}

// ---------------------------------------------------------------------------
// JSON artifacts
// ---------------------------------------------------------------------------

/// Per-procedure RPC stats as a JSON object (the machine-readable twin of
/// PrintRpcStats; latencies in milliseconds).
inline JsonObject RpcStatsJson(const rpc::StatsMap& stats) {
  JsonObject out;
  out.Add("total_calls", stats.TotalCalls());
  out.Add("total_bytes", stats.TotalBytes());
  out.Add("peak_in_flight", stats.PeakInFlight());
  std::vector<JsonObject> procs;
  for (const auto& label : stats.Labels()) {
    JsonObject proc;
    proc.Add("proc", label);
    proc.Add("calls", stats.Calls(label));
    proc.Add("bytes", stats.Bytes(label));
    proc.Add("lat_avg_ms", ToSeconds(stats.LatencyAvg(label)) * 1e3);
    proc.Add("lat_p50_ms", ToSeconds(stats.LatencyP50(label)) * 1e3);
    proc.Add("lat_p95_ms", ToSeconds(stats.LatencyP95(label)) * 1e3);
    proc.Add("lat_p99_ms", ToSeconds(stats.LatencyP99(label)) * 1e3);
    proc.Add("lat_max_ms", ToSeconds(stats.LatencyMax(label)) * 1e3);
    procs.push_back(std::move(proc));
  }
  out.Add("procs", procs);
  return out;
}

// ---------------------------------------------------------------------------
// Metrics artifacts
// ---------------------------------------------------------------------------

/// Writes a sampled time series plus a final Prometheus snapshot under a
/// common path prefix: <prefix>.<label>.csv / .json / .prom. Returns false
/// if any file could not be written.
inline bool WriteMetricsArtifacts(const std::string& prefix,
                                  const std::string& label,
                                  const metrics::Registry& registry,
                                  const metrics::TimeSeries& series) {
  const std::string base = label.empty() ? prefix : prefix + "." + label;
  bool ok = WriteTextFile(base + ".csv", metrics::TimeSeriesCsv(series));
  ok = WriteTextFile(base + ".json", metrics::TimeSeriesJson(series)) && ok;
  ok = WriteTextFile(base + ".prom", metrics::PrometheusText(registry)) && ok;
  if (ok) {
    std::printf("metrics written: %s.{csv,json,prom} (%zu samples)\n",
                base.c_str(), series.size());
  }
  return ok;
}

/// Stops the sampler, takes one final snapshot (so the series always covers
/// the run's end state), and writes the artifacts. No-op when metrics were
/// never enabled on the testbed.
inline void FinishMetrics(const std::string& prefix, const std::string& label,
                          metrics::Registry* registry,
                          metrics::Sampler* sampler) {
  if (registry == nullptr || sampler == nullptr) return;
  sampler->Stop();
  sampler->SampleNow();
  WriteMetricsArtifacts(prefix, label, *registry, sampler->series());
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

/// Returns the value of `--flag value` or `--flag=value`, or nullopt.
inline std::optional<std::string> FlagValue(int argc, char** argv,
                                            const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) return std::string(argv[i + 1]);
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Sampler period from --metrics-period-ms; defaults to 1 s of sim time.
inline Duration MetricsPeriod(int argc, char** argv) {
  if (auto v = FlagValue(argc, argv, "--metrics-period-ms")) {
    const long ms = std::atol(v->c_str());
    return Milliseconds(ms > 0 ? ms : 1000);
  }
  return Milliseconds(1000);
}

}  // namespace gvfs::bench
