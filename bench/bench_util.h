// Shared helpers for the figure-reproduction harnesses: table printing, a
// driver that runs a workload coroutine to completion on a testbed, a
// minimal JSON emitter for machine-readable BENCH_*.json artifacts, and
// tiny argv flag parsing (--json-out / --trace-out style).
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "rpc/stats.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::bench {

template <typename T>
sim::Task<void> CaptureInto(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

/// Runs `task` to completion, stepping the scheduler (sessions keep
/// background pollers alive, so we cannot simply drain the queue).
template <typename T>
T Drive(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(CaptureInto(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  if (!out.has_value()) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
  return std::move(*out);
}

inline sim::Task<void> MarkDone(sim::Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

/// void overload.
inline void Drive(sim::Scheduler& sched, sim::Task<void> task) {
  bool done = false;
  sim::Spawn(MarkDone(std::move(task), &done));
  while (!done && !sched.Idle()) sched.Run(1);
  if (!done) {
    std::fprintf(stderr, "FATAL: workload did not complete\n");
    std::abort();
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule() {
  std::printf("---------------------------------------------------------------"
              "---------------\n");
}

/// Per-procedure WAN RPC breakdown: call/byte counts plus completion latency
/// (mean and max) and the node's peak concurrency gauge, so pipelined paths
/// (windowed write-back, read-ahead, callback multicast) show up directly.
inline void PrintRpcStats(const std::string& name, const rpc::StatsMap& stats) {
  std::printf("%s: %llu RPCs, %.1f KB, peak in-flight %llu\n", name.c_str(),
              static_cast<unsigned long long>(stats.TotalCalls()),
              static_cast<double>(stats.TotalBytes()) / 1024.0,
              static_cast<unsigned long long>(stats.PeakInFlight()));
  for (const auto& [label, calls] : stats.calls()) {
    std::printf("  %-10s %8llu calls %10.1f KB  lat avg %8.2f"
                "  p50 %8.2f  p95 %8.2f  p99 %8.2f  max %8.2f ms\n",
                label.c_str(), static_cast<unsigned long long>(calls),
                static_cast<double>(stats.Bytes(label)) / 1024.0,
                ToSeconds(stats.LatencyAvg(label)) * 1e3,
                ToSeconds(stats.LatencyP50(label)) * 1e3,
                ToSeconds(stats.LatencyP95(label)) * 1e3,
                ToSeconds(stats.LatencyP99(label)) * 1e3,
                ToSeconds(stats.LatencyMax(label)) * 1e3);
  }
}

// ---------------------------------------------------------------------------
// JSON artifacts
// ---------------------------------------------------------------------------

inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Build-a-string JSON object; values nest by passing another JsonObject (or
/// a vector of them) as the value. Key order is insertion order.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return AddRaw(key, buf);
  }
  JsonObject& Add(const std::string& key, std::uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, int value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonObject& Add(const std::string& key, const char* value) {
    return AddRaw(key, JsonQuote(value));
  }
  JsonObject& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, JsonQuote(value));
  }
  JsonObject& Add(const std::string& key, const JsonObject& value) {
    return AddRaw(key, value.Dump());
  }
  JsonObject& Add(const std::string& key, const std::vector<JsonObject>& value) {
    std::string arr = "[";
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (i > 0) arr += ",";
      arr += value[i].Dump();
    }
    arr += "]";
    return AddRaw(key, arr);
  }

  std::string Dump() const { return "{" + body_ + "}"; }

 private:
  JsonObject& AddRaw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ",";
    body_ += JsonQuote(key) + ":" + rendered;
    return *this;
  }

  std::string body_;
};

/// Per-procedure RPC stats as a JSON object (the machine-readable twin of
/// PrintRpcStats; latencies in milliseconds).
inline JsonObject RpcStatsJson(const rpc::StatsMap& stats) {
  JsonObject out;
  out.Add("total_calls", stats.TotalCalls());
  out.Add("total_bytes", stats.TotalBytes());
  out.Add("peak_in_flight", stats.PeakInFlight());
  std::vector<JsonObject> procs;
  for (const auto& [label, calls] : stats.calls()) {
    JsonObject proc;
    proc.Add("proc", label);
    proc.Add("calls", calls);
    proc.Add("bytes", stats.Bytes(label));
    proc.Add("lat_avg_ms", ToSeconds(stats.LatencyAvg(label)) * 1e3);
    proc.Add("lat_p50_ms", ToSeconds(stats.LatencyP50(label)) * 1e3);
    proc.Add("lat_p95_ms", ToSeconds(stats.LatencyP95(label)) * 1e3);
    proc.Add("lat_p99_ms", ToSeconds(stats.LatencyP99(label)) * 1e3);
    proc.Add("lat_max_ms", ToSeconds(stats.LatencyMax(label)) * 1e3);
    procs.push_back(std::move(proc));
  }
  out.Add("procs", procs);
  return out;
}

/// Writes `content` to `path`; complains on stderr (and returns false) when
/// the file cannot be created.
inline bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

/// Returns the value of `--flag value` or `--flag=value`, or nullopt.
inline std::optional<std::string> FlagValue(int argc, char** argv,
                                            const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) return std::string(argv[i + 1]);
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace gvfs::bench
