// Figure 8 (paper §5.2.2): CH1D coastal-modeling pipeline. The on-site
// producer runs 15 times, each adding 30 input files; after each producer
// run the off-site consumer processes the entire accumulated dataset. Data
// shared via native NFS or a GVFS session with delegation/callback
// consistency.
//
// Paper shape to reproduce: the NFS consumer's consistency overhead grows
// linearly with the dataset (per-file revalidation of every cached input),
// while GVFS's stays nearly constant (~30 callbacks per run, one per new
// file); by run 15 the paper sees ~5x speedup.
//
// `--sweep-expiry` runs the §4.3.3 ablation: the delegation expiry/renewal
// tradeoff.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "workloads/ch1d.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::Ch1dConfig;
using workloads::Ch1dReport;
using workloads::RunCh1d;
using workloads::Testbed;

struct Outcome {
  Ch1dReport report;
  std::uint64_t callbacks = 0;
};

/// --metrics-out wiring: the headline GVFS run (not the ablations) samples
/// the observatory and writes <prefix>.{csv,json,prom}.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Milliseconds(1000);

Outcome RunOne(bool gvfs, Duration expiry = Seconds(600), Duration renew = Seconds(480),
               bool readdir_refresh = true, bool metrics_run = false) {
  Testbed bed;
  bed.AddWanClient();  // producer (on-site)
  bed.AddWanClient();  // consumer (off-site compute center)

  Ch1dConfig config;  // paper parameters: 15 runs x 30 files

  Outcome outcome;
  if (gvfs) {
    proxy::SessionConfig session_config;
    session_config.model = proxy::ConsistencyModel::kDelegationCallback;
    session_config.cache_mode = proxy::CacheMode::kWriteBack;
    session_config.deleg_expiry = expiry;
    session_config.deleg_renew = renew;
    session_config.readdir_refresh = readdir_refresh;
    kclient::MountOptions noac;
    noac.noac = true;
    const bool metrics = g_metrics_prefix.has_value() && metrics_run;
    if (metrics) bed.EnableMetrics(g_metrics_period);
    auto& session = bed.CreateSession(session_config, {0, 1}, noac);
    outcome.report = Drive(
        bed.sched(), RunCh1d(bed.sched(), session.mount(0), session.mount(1), config));
    outcome.callbacks = session.server->stats().callbacks_sent;
    Drive(bed.sched(), session.Shutdown());
    if (metrics) {
      FinishMetrics(*g_metrics_prefix, "", bed.metrics_registry(),
                    bed.metrics_sampler());
    }
  } else {
    auto& producer = bed.NativeMount(0);
    auto& consumer = bed.NativeMount(1);
    outcome.report =
        Drive(bed.sched(), RunCh1d(bed.sched(), producer, consumer, config));
  }
  return outcome;
}

void Main(bool sweep_expiry, const std::optional<std::string>& json_out) {
  PrintHeader("Figure 8: CH1D consumer runtime per run (seconds)");
  Outcome nfs = RunOne(/*gvfs=*/false);
  Outcome gvfs = RunOne(/*gvfs=*/true, Seconds(600), Seconds(480),
                        /*readdir_refresh=*/true, /*metrics_run=*/true);

  std::printf("%-6s %10s %10s\n", "run", "NFS", "GVFS");
  PrintRule();
  for (std::size_t i = 0; i < nfs.report.run_seconds.size(); ++i) {
    std::printf("%-6zu %10.1f %10.1f\n", i + 1, nfs.report.run_seconds[i],
                gvfs.report.run_seconds[i]);
  }
  const double final_speedup =
      nfs.report.run_seconds.back() / gvfs.report.run_seconds.back();
  std::printf("\nNFS growth run15/run2: %.2fx (paper: linear growth, ~3.5x)\n",
              nfs.report.run_seconds.back() / nfs.report.run_seconds[1]);
  std::printf("GVFS growth run15/run2: %.2fx (paper: ~flat)\n",
              gvfs.report.run_seconds.back() / gvfs.report.run_seconds[1]);
  std::printf("speedup at run 15: %.2fx (paper: ~5x)\n", final_speedup);
  std::printf("callbacks per producer run (avg): %.1f (paper: ~30, one per new file)\n",
              static_cast<double>(gvfs.callbacks) / 15.0);

  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("figure", "fig8_ch1d");
    doc.Add("final_speedup", final_speedup);
    doc.Add("callbacks", gvfs.callbacks);
    std::vector<JsonObject> runs;
    for (std::size_t i = 0; i < nfs.report.run_seconds.size(); ++i) {
      JsonObject run;
      run.Add("run", static_cast<std::uint64_t>(i + 1));
      run.Add("nfs_s", nfs.report.run_seconds[i]);
      run.Add("gvfs_s", gvfs.report.run_seconds[i]);
      runs.push_back(std::move(run));
    }
    doc.Add("runs", runs);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }

  {
    // Ablation: the READDIR-based name-cache refresh (DESIGN.md §5). Without
    // it, every producer run re-issues one LOOKUP per accumulated file.
    Outcome no_refresh = RunOne(/*gvfs=*/true, Seconds(600), Seconds(480),
                                /*readdir_refresh=*/false);
    std::printf("\nAblation - readdir_refresh off: run15 = %.1f s (vs %.1f s with "
                "it; the\nper-name LOOKUP storm returns)\n",
                no_refresh.report.run_seconds.back(),
                gvfs.report.run_seconds.back());
  }

  if (sweep_expiry) {
    PrintHeader("Ablation: delegation expiry/renewal (state vs callbacks, §4.3.3)");
    std::printf("%-14s %12s %14s\n", "expiry (s)", "runtime (s)", "callbacks");
    PrintRule();
    for (int expiry : {30, 120, 600, 1800}) {
      Outcome r = RunOne(/*gvfs=*/true, Seconds(expiry), Seconds(expiry * 4 / 5));
      double total = 0;
      for (double t : r.report.run_seconds) total += t;
      std::printf("%-14d %12.1f %14llu\n", expiry, total,
                  static_cast<unsigned long long>(r.callbacks));
    }
  }
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  const bool sweep = gvfs::bench::HasFlag(argc, argv, "--sweep-expiry");
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  gvfs::bench::Main(sweep, gvfs::bench::FlagValue(argc, argv, "--json-out"));
  return 0;
}
