// Figure 5 (paper §5.1.1): PostMark runtime versus network round-trip time.
//
// Setups:
//   NFS    — native kernel NFS (30 s attribute cache).
//   GVFS1  — GVFS with the default kernel buffer configuration, base for the
//            invalidation-polling model.
//   GVFS2  — GVFS with kernel attribute caching disabled (noac), base for
//            the strong delegation/callback model.
//
// Paper shape to reproduce: both GVFS setups lose slightly at sub-10 ms RTT
// (user-level interception + disk-cache access), overtake NFS once the RTT
// exceeds ~10 ms, and reach >2x speedup at the 40 ms WAN point.
//
// PostMark parameters (from the figure): 600 files, 600 transactions,
// 32-640 KB files, 100 subdirectories, 32 KB blocks, read/append bias 9,
// create/delete bias 5.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "trace/checker.h"
#include "trace/export.h"
#include "workloads/postmark.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::PostmarkConfig;
using workloads::RunPostmark;
using workloads::Testbed;
using workloads::TestbedConfig;

enum class Setup { kNfs, kGvfs1, kGvfs2 };

double RunOne(Setup setup, double rtt_ms) {
  TestbedConfig net_config;
  net_config.wan.one_way_latency = SecondsF(rtt_ms / 2.0 / 1000.0);
  net_config.wan.bandwidth_bps = 4'000'000;
  Testbed bed(net_config);
  bed.AddWanClient();

  PostmarkConfig config;  // paper defaults

  if (setup == Setup::kNfs) {
    auto& mount = bed.NativeMount(0);
    auto report = Drive(bed.sched(), RunPostmark(bed.sched(), mount, config));
    return report.TransactionSeconds();
  }

  proxy::SessionConfig session_config;
  kclient::MountOptions kernel_options;
  if (setup == Setup::kGvfs1) {
    // Default kernel buffers; invalidation polling overlays them.
    session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
    session_config.poll_period = Seconds(30);
    session_config.poll_max_period = Seconds(30);
  } else {
    // noac kernel: every consistency check reaches the proxy, which realizes
    // strong consistency with delegations. Sequential read-ahead pipelines
    // the file-read halves of the transactions (the delegation protects the
    // prefetched blocks from staleness).
    session_config.model = proxy::ConsistencyModel::kDelegationCallback;
    session_config.read_ahead = 8;
    session_config.wb_window = 8;  // pipelines the unstable write-through path
    kernel_options.noac = true;
  }
  // Write-through (read caching only): writes reach the server
  // synchronously in all setups, keeping durability comparable to NFS.
  session_config.cache_mode = proxy::CacheMode::kReadOnly;
  auto& session = bed.CreateSession(session_config, {0}, kernel_options);
  auto report =
      Drive(bed.sched(), RunPostmark(bed.sched(), session.mount(0), config));
  Drive(bed.sched(), session.Shutdown());
  return report.TransactionSeconds();
}

/// One 40 ms WAN point (the paper's headline latency) for the smoke tier:
/// asserts GVFS2's pipelined read path still beats native NFS.
int Smoke() {
  const double nfs = RunOne(Setup::kNfs, 40);
  const double gvfs2 = RunOne(Setup::kGvfs2, 40);
  std::printf("fig5 smoke @40ms: NFS %.1f s, GVFS2 %.1f s (%.2fx)\n", nfs,
              gvfs2, nfs / gvfs2);
  if (gvfs2 >= nfs) {
    std::fprintf(stderr, "FAIL: GVFS2 no faster than NFS at 40 ms RTT\n");
    return 1;
  }
  return 0;
}

std::vector<std::string> HostNames(workloads::Testbed& bed) {
  std::vector<std::string> names;
  for (HostId h = 0; h < bed.network().HostCount(); ++h) {
    names.push_back(bed.network().HostName(h));
  }
  return names;
}

sim::Task<void> ConflictingStat(kclient::KernelClient& mount,
                                const char* path = "/shared.dat") {
  // A cold Stat from a second client forces the proxy server to recall the
  // write delegation the first client acquired on the shared file — that
  // recall is the CALLBACK span the trace exists to show.
  auto attr = co_await mount.Stat(path);
  (void)attr;
}

sim::Task<void> WriteShared(kclient::KernelClient& mount,
                            const char* path = "/shared.dat") {
  kclient::OpenFlags flags;
  flags.write = true;
  flags.create = true;
  auto fd = co_await mount.Open(path, flags);
  if (!fd.has_value()) co_return;
  Bytes data(32 * 1024, 0x5a);
  auto written = co_await mount.Write(*fd, 0, data);
  (void)written;
  auto closed = co_await mount.Close(*fd);
  (void)closed;
}

/// Trace mode: one small GVFS1 (polling) run for GETINV spans and one
/// two-client GVFS2 (delegation) run whose conflicting Stat produces a
/// CALLBACK span, merged into one Chrome trace file with separate tracks.
int RunTraced(const std::string& trace_out, const char* trace_dump) {
  trace::ChromeTraceWriter writer;
  std::uint64_t violations = 0;

  PostmarkConfig small;  // keep the trace readable: tens of files, not 600
  small.files = 30;
  small.transactions = 40;
  small.subdirectories = 5;
  small.max_size = 64 * 1024;

  std::ofstream dump;
  if (trace_dump != nullptr) dump.open(trace_dump, std::ios::trunc);

  {
    TestbedConfig net_config;  // paper 40 ms WAN
    Testbed bed(net_config);
    bed.AddWanClient();
    trace::TraceBuffer& buffer = bed.EnableTracing();
    proxy::SessionConfig session_config;
    session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
    session_config.poll_period = Seconds(5);  // frequent GETINV spans
    session_config.poll_max_period = Seconds(5);
    auto& session = bed.CreateSession(session_config, {0});
    Drive(bed.sched(), RunPostmark(bed.sched(), session.mount(0), small));
    Drive(bed.sched(), session.Shutdown());

    trace::ChromeTraceOptions options;
    options.host_names = HostNames(bed);
    options.process_prefix = "gvfs1/";
    options.pid_offset = 0;
    writer.Add(buffer, options);
    if (dump.is_open()) trace::WriteTimeline(buffer, dump, options.host_names);
    auto found = trace::TraceChecker(proxy::NfsTraceCheckerConfig()).Check(buffer);
    violations += found.size();
    if (!found.empty()) {
      std::fprintf(stderr, "%s", trace::FormatViolations(found).c_str());
    }
    std::printf("gvfs1 trace: %llu events (%llu dropped)\n",
                static_cast<unsigned long long>(buffer.recorded()),
                static_cast<unsigned long long>(buffer.dropped()));
  }

  {
    TestbedConfig net_config;
    Testbed bed(net_config);
    bed.AddWanClient();
    bed.AddWanClient();
    trace::TraceBuffer& buffer = bed.EnableTracing();
    proxy::SessionConfig session_config;
    session_config.model = proxy::ConsistencyModel::kDelegationCallback;
    session_config.read_ahead = 8;
    session_config.wb_window = 8;
    kclient::MountOptions kernel_options;
    kernel_options.noac = true;
    auto& session = bed.CreateSession(session_config, {0, 1}, kernel_options);
    Drive(bed.sched(), RunPostmark(bed.sched(), session.mount(0), small));
    Drive(bed.sched(), WriteShared(session.mount(0)));
    Drive(bed.sched(), ConflictingStat(session.mount(1)));
    Drive(bed.sched(), session.Shutdown());

    trace::ChromeTraceOptions options;
    options.host_names = HostNames(bed);
    options.process_prefix = "gvfs2/";
    options.pid_offset = 100;  // keep the runs' tracks apart when merged
    writer.Add(buffer, options);
    if (dump.is_open()) trace::WriteTimeline(buffer, dump, options.host_names);
    auto found = trace::TraceChecker(proxy::NfsTraceCheckerConfig()).Check(buffer);
    violations += found.size();
    if (!found.empty()) {
      std::fprintf(stderr, "%s", trace::FormatViolations(found).c_str());
    }
    std::printf("gvfs2 trace: %llu events (%llu dropped)\n",
                static_cast<unsigned long long>(buffer.recorded()),
                static_cast<unsigned long long>(buffer.dropped()));
  }

  if (!writer.WriteTo(trace_out)) return 1;
  std::printf("wrote %zu Chrome trace events to %s "
              "(load at ui.perfetto.dev); %llu invariant violations\n",
              writer.event_count(), trace_out.c_str(),
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}

sim::Task<void> StatLoop(sim::Scheduler& sched, kclient::KernelClient& mount,
                         const char* path, int rounds, Duration gap) {
  for (int i = 0; i < rounds; ++i) {
    auto attr = co_await mount.Stat(path);
    (void)attr;
    co_await sim::Sleep(sched, gap);
  }
}

sim::Task<void> WriteLoop(sim::Scheduler& sched, kclient::KernelClient& mount,
                          const char* path, int rounds, Duration gap) {
  for (int i = 0; i < rounds; ++i) {
    co_await WriteShared(mount, path);
    co_await sim::Sleep(sched, gap);
  }
}

/// Staleness workload for the polling session: client 1 rewrites a shared
/// file every few seconds while client 0 stats it continuously. Between a
/// write landing at the server and client 0's next GETINV, client 0 serves
/// stale cached attributes — exactly the window the staleness histogram
/// must bound by poll period + round trips.
sim::Task<void> PollingStalenessWorkload(sim::Scheduler& sched,
                                         workloads::GvfsSession& session) {
  // Prime: the writer creates the file; the reader caches its attributes.
  co_await WriteShared(session.mount(1));
  co_await ConflictingStat(session.mount(0));
  sim::WaitGroup tasks(sched);
  tasks.Spawn(WriteLoop(sched, session.mount(1), "/shared.dat", 8, Seconds(7)));
  tasks.Spawn(
      StatLoop(sched, session.mount(0), "/shared.dat", 600, Milliseconds(100)));
  co_await tasks.Wait();
}

/// Metrics mode (--metrics-out): one two-client testbed carrying a polling
/// session (staleness-bound check) and a delegation session (postmark +
/// forced recall for the hold-time and recall-write-back histograms), with
/// the registry sampled on the sim clock and exported as CSV/JSON/Prometheus.
int RunMetrics(const std::string& prefix, Duration period) {
  const Duration poll_period = Seconds(5);
  TestbedConfig net_config;  // paper 40 ms WAN
  Testbed bed(net_config);
  bed.AddWanClient();
  bed.AddWanClient();
  metrics::Registry& registry = bed.EnableMetrics(period);

  kclient::MountOptions noac;
  noac.noac = true;  // every Stat reaches the proxy, so cached serves are counted

  // Session 0: invalidation polling, fixed period (no back-off) so the
  // staleness bound below is exact.
  proxy::SessionConfig poll_config;
  poll_config.model = proxy::ConsistencyModel::kInvalidationPolling;
  poll_config.poll_period = poll_period;
  poll_config.poll_max_period = poll_period;
  auto& polling = bed.CreateSession(poll_config, {0, 1}, noac);

  // Session 1: delegation/callback with write-back; postmark drives grants
  // and the write/stat conflict forces a recall.
  proxy::SessionConfig deleg_config;
  deleg_config.model = proxy::ConsistencyModel::kDelegationCallback;
  deleg_config.read_ahead = 8;
  deleg_config.wb_window = 8;
  deleg_config.cache_mode = proxy::CacheMode::kWriteBack;
  auto& deleg = bed.CreateSession(deleg_config, {0, 1}, noac);

  PostmarkConfig small;
  small.files = 30;
  small.transactions = 40;
  small.subdirectories = 5;
  small.max_size = 64 * 1024;

  Drive(bed.sched(), PollingStalenessWorkload(bed.sched(), polling));
  Drive(bed.sched(), RunPostmark(bed.sched(), deleg.mount(0), small));
  Drive(bed.sched(), WriteShared(deleg.mount(0), "/deleg_shared.dat"));
  Drive(bed.sched(), ConflictingStat(deleg.mount(1), "/deleg_shared.dat"));
  Drive(bed.sched(), deleg.Shutdown());
  Drive(bed.sched(), polling.Shutdown());
  bed.metrics_sampler()->Stop();
  bed.metrics_sampler()->SampleNow();  // final state, post-shutdown

  int failures = 0;
  if (!WriteMetricsArtifacts(prefix, "", registry,
                             bed.metrics_sampler()->series())) {
    ++failures;
  }

  const auto& staleness = registry.GetHistogram("s0.staleness_us").hist();
  // Bound: a cached read can miss a write for at most one polling period
  // plus the GETINV round trip plus the write's own propagation (§4.2).
  const double p99_us = static_cast<double>(staleness.Percentile(99));
  const Duration rtt = 2 * net_config.wan.one_way_latency;
  const double bound_us =
      static_cast<double>((poll_period + 2 * rtt) / kMicrosecond);
  std::printf("staleness (polling session): %llu cached reads, p99 %.0f us, "
              "bound %.0f us (poll %0.1f s + 2 RTT)\n",
              static_cast<unsigned long long>(staleness.count()), p99_us,
              bound_us, ToSeconds(poll_period));
  if (staleness.count() == 0) {
    std::fprintf(stderr, "FAIL: staleness histogram is empty\n");
    ++failures;
  }
  if (p99_us > bound_us) {
    std::fprintf(stderr, "FAIL: staleness p99 exceeds the polling bound\n");
    ++failures;
  }
  const auto& hold = registry.GetHistogram("s1.deleg_hold_time_us").hist();
  std::printf("delegation hold time (delegation session): %llu ended, "
              "p50 %llu us\n",
              static_cast<unsigned long long>(hold.count()),
              static_cast<unsigned long long>(hold.Percentile(50)));
  if (hold.count() == 0) {
    std::fprintf(stderr, "FAIL: no delegation hold times recorded\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

/// Dump mode (--dump-out): the polling staleness workload under the full
/// diagnosis stack (tracing + watchdog + flight recorder); writes a
/// .gvfsdump at end of run so gvfs-doctor has a healthy reference input.
int RunDump(const std::string& path) {
  const Duration poll_period = Seconds(5);
  TestbedConfig net_config;  // paper 40 ms WAN
  Testbed bed(net_config);
  bed.AddWanClient();
  bed.AddWanClient();
  bed.EnableTracing(1 << 18);
  bed.EnableDiagnosis();
  bed.recorder()->SetMaxTraceEvents(1 << 18);  // keep the whole run

  kclient::MountOptions noac;
  noac.noac = true;
  proxy::SessionConfig poll_config;
  poll_config.model = proxy::ConsistencyModel::kInvalidationPolling;
  poll_config.poll_period = poll_period;
  poll_config.poll_max_period = poll_period;
  auto& polling = bed.CreateSession(poll_config, {0, 1}, noac);

  Drive(bed.sched(), PollingStalenessWorkload(bed.sched(), polling));
  Drive(bed.sched(), polling.Shutdown());
  bed.watchdog()->ScanNow();  // final detector pass over the run's end state

  if (!bed.recorder()->Dump(path, "fig5: end of polling staleness run")) {
    return 1;
  }
  const auto found = trace::TraceChecker(proxy::NfsTraceCheckerConfig())
                         .Check(*bed.trace_buffer());
  if (!found.empty()) {
    std::fprintf(stderr, "%s", trace::FormatViolations(found).c_str());
  }
  std::printf("wrote %s (%llu trace events, %zu anomalies, %zu violations)\n",
              path.c_str(),
              static_cast<unsigned long long>(bed.trace_buffer()->recorded()),
              bed.watchdog()->anomalies().size(), found.size());
  return (found.empty() && bed.watchdog()->anomalies().empty()) ? 0 : 1;
}

void Main(const std::optional<std::string>& json_out) {
  PrintHeader("Figure 5: PostMark transaction-phase runtime (seconds) vs RTT");
  std::printf("%-10s %10s %10s %10s\n", "RTT (ms)", "NFS", "GVFS1", "GVFS2");
  PrintRule();
  const double rtts[] = {0.5, 5, 10, 20, 40};
  double crossover_seen = -1;
  double nfs40 = 0, gvfs40 = 0;
  std::vector<JsonObject> points;
  for (double rtt : rtts) {
    const double nfs = RunOne(Setup::kNfs, rtt);
    const double gvfs1 = RunOne(Setup::kGvfs1, rtt);
    const double gvfs2 = RunOne(Setup::kGvfs2, rtt);
    std::printf("%-10.1f %10.1f %10.1f %10.1f\n", rtt, nfs, gvfs1, gvfs2);
    JsonObject point;
    point.Add("rtt_ms", rtt);
    point.Add("nfs_s", nfs);
    point.Add("gvfs1_s", gvfs1);
    point.Add("gvfs2_s", gvfs2);
    points.push_back(std::move(point));
    if (crossover_seen < 0 && gvfs1 < nfs) crossover_seen = rtt;
    if (rtt == 40) {
      nfs40 = nfs;
      gvfs40 = std::min(gvfs1, gvfs2);
    }
  }
  std::printf("\nGVFS overtakes NFS from RTT ~%.1f ms on; "
              "speedup at 40 ms: %.2fx (paper: crossover ~10 ms, >2x at 40 ms)\n",
              crossover_seen, nfs40 / gvfs40);
  std::printf("Note: with the dataset exceeding the client page cache, the\n"
              "proxy's disk-cache capacity advantage already pays off at LAN\n"
              "latency in this model, which pulls the crossover below the\n"
              "paper's ~10 ms (see EXPERIMENTS.md).\n");
  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("figure", "fig5_postmark");
    doc.Add("unit", "transaction-phase seconds");
    doc.Add("crossover_rtt_ms", crossover_seen);
    doc.Add("speedup_at_40ms", nfs40 / gvfs40);
    doc.Add("points", points);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  using gvfs::bench::FlagValue;
  if (gvfs::bench::HasFlag(argc, argv, "--smoke")) {
    return gvfs::bench::Smoke();
  }
  const auto trace_out = FlagValue(argc, argv, "--trace-out");
  const auto trace_dump = FlagValue(argc, argv, "--trace-dump");
  if (trace_out.has_value() || trace_dump.has_value()) {
    return gvfs::bench::RunTraced(
        trace_out.value_or("BENCH_fig5_trace.json"),
        trace_dump.has_value() ? trace_dump->c_str() : nullptr);
  }
  if (const auto metrics_out = FlagValue(argc, argv, "--metrics-out")) {
    return gvfs::bench::RunMetrics(*metrics_out,
                                   gvfs::bench::MetricsPeriod(argc, argv));
  }
  if (const auto dump_out = FlagValue(argc, argv, "--dump-out")) {
    return gvfs::bench::RunDump(*dump_out);
  }
  gvfs::bench::Main(FlagValue(argc, argv, "--json-out"));
  return 0;
}
