// Figure 5 (paper §5.1.1): PostMark runtime versus network round-trip time.
//
// Setups:
//   NFS    — native kernel NFS (30 s attribute cache).
//   GVFS1  — GVFS with the default kernel buffer configuration, base for the
//            invalidation-polling model.
//   GVFS2  — GVFS with kernel attribute caching disabled (noac), base for
//            the strong delegation/callback model.
//
// Paper shape to reproduce: both GVFS setups lose slightly at sub-10 ms RTT
// (user-level interception + disk-cache access), overtake NFS once the RTT
// exceeds ~10 ms, and reach >2x speedup at the 40 ms WAN point.
//
// PostMark parameters (from the figure): 600 files, 600 transactions,
// 32-640 KB files, 100 subdirectories, 32 KB blocks, read/append bias 9,
// create/delete bias 5.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "workloads/postmark.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::PostmarkConfig;
using workloads::RunPostmark;
using workloads::Testbed;
using workloads::TestbedConfig;

enum class Setup { kNfs, kGvfs1, kGvfs2 };

double RunOne(Setup setup, double rtt_ms) {
  TestbedConfig net_config;
  net_config.wan.one_way_latency = SecondsF(rtt_ms / 2.0 / 1000.0);
  net_config.wan.bandwidth_bps = 4'000'000;
  Testbed bed(net_config);
  bed.AddWanClient();

  PostmarkConfig config;  // paper defaults

  if (setup == Setup::kNfs) {
    auto& mount = bed.NativeMount(0);
    auto report = Drive(bed.sched(), RunPostmark(bed.sched(), mount, config));
    return report.TransactionSeconds();
  }

  proxy::SessionConfig session_config;
  kclient::MountOptions kernel_options;
  if (setup == Setup::kGvfs1) {
    // Default kernel buffers; invalidation polling overlays them.
    session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
    session_config.poll_period = Seconds(30);
    session_config.poll_max_period = Seconds(30);
  } else {
    // noac kernel: every consistency check reaches the proxy, which realizes
    // strong consistency with delegations. Sequential read-ahead pipelines
    // the file-read halves of the transactions (the delegation protects the
    // prefetched blocks from staleness).
    session_config.model = proxy::ConsistencyModel::kDelegationCallback;
    session_config.read_ahead = 8;
    session_config.wb_window = 8;  // pipelines the unstable write-through path
    kernel_options.noac = true;
  }
  // Write-through (read caching only): writes reach the server
  // synchronously in all setups, keeping durability comparable to NFS.
  session_config.cache_mode = proxy::CacheMode::kReadOnly;
  auto& session = bed.CreateSession(session_config, {0}, kernel_options);
  auto report =
      Drive(bed.sched(), RunPostmark(bed.sched(), session.mount(0), config));
  Drive(bed.sched(), session.Shutdown());
  return report.TransactionSeconds();
}

/// One 40 ms WAN point (the paper's headline latency) for the smoke tier:
/// asserts GVFS2's pipelined read path still beats native NFS.
int Smoke() {
  const double nfs = RunOne(Setup::kNfs, 40);
  const double gvfs2 = RunOne(Setup::kGvfs2, 40);
  std::printf("fig5 smoke @40ms: NFS %.1f s, GVFS2 %.1f s (%.2fx)\n", nfs,
              gvfs2, nfs / gvfs2);
  if (gvfs2 >= nfs) {
    std::fprintf(stderr, "FAIL: GVFS2 no faster than NFS at 40 ms RTT\n");
    return 1;
  }
  return 0;
}

void Main() {
  PrintHeader("Figure 5: PostMark transaction-phase runtime (seconds) vs RTT");
  std::printf("%-10s %10s %10s %10s\n", "RTT (ms)", "NFS", "GVFS1", "GVFS2");
  PrintRule();
  const double rtts[] = {0.5, 5, 10, 20, 40};
  double crossover_seen = -1;
  double nfs40 = 0, gvfs40 = 0;
  for (double rtt : rtts) {
    const double nfs = RunOne(Setup::kNfs, rtt);
    const double gvfs1 = RunOne(Setup::kGvfs1, rtt);
    const double gvfs2 = RunOne(Setup::kGvfs2, rtt);
    std::printf("%-10.1f %10.1f %10.1f %10.1f\n", rtt, nfs, gvfs1, gvfs2);
    if (crossover_seen < 0 && gvfs1 < nfs) crossover_seen = rtt;
    if (rtt == 40) {
      nfs40 = nfs;
      gvfs40 = std::min(gvfs1, gvfs2);
    }
  }
  std::printf("\nGVFS overtakes NFS from RTT ~%.1f ms on; "
              "speedup at 40 ms: %.2fx (paper: crossover ~10 ms, >2x at 40 ms)\n",
              crossover_seen, nfs40 / gvfs40);
  std::printf("Note: with the dataset exceeding the client page cache, the\n"
              "proxy's disk-cache capacity advantage already pays off at LAN\n"
              "latency in this model, which pulls the crossover below the\n"
              "paper's ~10 ms (see EXPERIMENTS.md).\n");
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return gvfs::bench::Smoke();
  }
  gvfs::bench::Main();
  return 0;
}
