// Figure 7 (paper §5.2.1): parallel NanoMOS executions on six WAN clients
// read-sharing a software repository (MATLAB ~14K files/dirs, MPITB 540
// files), 8 iterations; between the 4th and 5th a LAN administrator updates
// (a) the entire MATLAB directory or (b) only MPITB. Repository shared via
// native NFS or a GVFS session with 30 s invalidation polling.
//
// Paper shape to reproduce: >2x warm-iteration speedup for GVFS; the NFS
// clients re-issue the full volume of consistency checks every run
// regardless of update size, while GVFS's invalidations are proportional to
// the update and batched (~30 GETINV calls/client for the MATLAB update,
// ~2 for MPITB).
#include <cstdio>

#include "bench_util.h"
#include "workloads/nanomos.h"
#include "workloads/testbed.h"

namespace gvfs::bench {
namespace {

using workloads::NanomosConfig;
using workloads::NanomosReport;
using workloads::PopulateRepository;
using workloads::RunNanomos;
using workloads::Testbed;
using workloads::UpdateKind;

constexpr int kComputeClients = 6;

struct Outcome {
  NanomosReport report;
  double getinv_per_client = 0;
};

/// --metrics-out wiring: GVFS runs with a real update sample the observatory
/// and write <prefix>.<case>.{csv,json,prom}.
std::optional<std::string> g_metrics_prefix;
Duration g_metrics_period = Milliseconds(1000);

Outcome RunOne(bool gvfs, UpdateKind kind,
               const char* metrics_label = nullptr) {
  Testbed bed;
  for (int i = 0; i < kComputeClients; ++i) bed.AddWanClient();
  const int admin = bed.AddLanClient();

  NanomosConfig config;  // paper-scale repository
  PopulateRepository(bed.fs(), config);

  Outcome outcome;
  std::vector<kclient::KernelClient*> mounts;
  if (gvfs) {
    proxy::SessionConfig session_config;
    session_config.model = proxy::ConsistencyModel::kInvalidationPolling;
    session_config.poll_period = Seconds(30);
    session_config.poll_max_period = Seconds(30);
    session_config.cache_mode = proxy::CacheMode::kReadOnly;
    // Middleware tailoring: the repository session sizes its invalidation
    // buffers for package-scale updates (>14K files).
    session_config.inv_buffer_capacity = 20000;
    const bool metrics =
        g_metrics_prefix.has_value() && metrics_label != nullptr;
    if (metrics) bed.EnableMetrics(g_metrics_period);
    std::vector<int> indices;
    for (int i = 0; i <= kComputeClients; ++i) indices.push_back(i);
    auto& session = bed.CreateSession(session_config, indices);
    for (int i = 0; i < kComputeClients; ++i) mounts.push_back(&session.mount(i));
    const auto polls_before = session.proxy(0).stats().polls;
    outcome.report = Drive(
        bed.sched(), RunNanomos(bed.sched(), mounts, &session.mount(kComputeClients),
                                kind, config));
    outcome.getinv_per_client =
        static_cast<double>(session.proxy(0).stats().polls - polls_before);
    if (metrics) {
      FinishMetrics(*g_metrics_prefix, metrics_label, bed.metrics_registry(),
                    bed.metrics_sampler());
    }
  } else {
    for (int i = 0; i < kComputeClients; ++i) {
      mounts.push_back(&bed.NativeMount(i));
    }
    auto& admin_mount = bed.NativeMount(admin);
    outcome.report =
        Drive(bed.sched(), RunNanomos(bed.sched(), mounts, &admin_mount, kind, config));
  }
  return outcome;
}

JsonObject PrintCase(const char* title, UpdateKind kind,
                     double baseline_getinv, const char* metrics_label) {
  PrintHeader(title);
  Outcome nfs = RunOne(/*gvfs=*/false, kind);
  Outcome gvfs = RunOne(/*gvfs=*/true, kind, metrics_label);

  std::printf("%-12s", "iteration");
  for (std::size_t i = 0; i < nfs.report.iteration_seconds.size(); ++i) {
    std::printf(" %7zu", i + 1);
  }
  std::printf("\n");
  PrintRule();
  std::printf("%-12s", "NFS (s)");
  for (double t : nfs.report.iteration_seconds) std::printf(" %7.1f", t);
  std::printf("\n%-12s", "GVFS (s)");
  for (double t : gvfs.report.iteration_seconds) std::printf(" %7.1f", t);
  std::printf("\n");

  // Warm iterations: 3 and 4 (post-cold, pre-update).
  const double warm_speedup =
      (nfs.report.iteration_seconds[2] + nfs.report.iteration_seconds[3]) /
      (gvfs.report.iteration_seconds[2] + gvfs.report.iteration_seconds[3]);
  std::printf("\nwarm-iteration speedup: %.2fx (paper: >2x)\n", warm_speedup);
  std::printf("GETINV calls per client attributable to the update: %.0f\n",
              gvfs.getinv_per_client - baseline_getinv);

  JsonObject row;
  row.Add("case", title);
  row.Add("warm_speedup", warm_speedup);
  row.Add("update_getinv_per_client", gvfs.getinv_per_client - baseline_getinv);
  std::vector<JsonObject> iterations;
  for (std::size_t i = 0; i < nfs.report.iteration_seconds.size(); ++i) {
    JsonObject it;
    it.Add("iteration", static_cast<std::uint64_t>(i + 1));
    it.Add("nfs_s", nfs.report.iteration_seconds[i]);
    it.Add("gvfs_s", gvfs.report.iteration_seconds[i]);
    iterations.push_back(std::move(it));
  }
  row.Add("iterations", iterations);
  return row;
}

void Main(const std::optional<std::string>& json_out) {
  // Baseline (no update) isolates the GETINV traffic the update causes.
  Outcome baseline = RunOne(/*gvfs=*/true, UpdateKind::kNone);
  std::vector<JsonObject> cases;
  cases.push_back(
      PrintCase("Figure 7(a): NanoMOS, whole-MATLAB update between runs 4 and 5",
                UpdateKind::kMatlab, baseline.getinv_per_client, "matlab"));
  cases.push_back(
      PrintCase("Figure 7(b): NanoMOS, MPITB-only update between runs 4 and 5",
                UpdateKind::kMpitb, baseline.getinv_per_client, "mpitb"));
  std::printf(
      "\nPaper shape: NFS pays the same consistency-check volume every run\n"
      "(and after any update); GVFS batches invalidations in GETINV replies\n"
      "proportional to the update size (~30 calls/client for MATLAB, ~2 for\n"
      "MPITB, at 512 handles per reply).\n");
  if (json_out.has_value()) {
    JsonObject doc;
    doc.Add("figure", "fig7_nanomos");
    doc.Add("cases", cases);
    if (WriteTextFile(*json_out, doc.Dump() + "\n")) {
      std::printf("wrote %s\n", json_out->c_str());
    }
  }
}

}  // namespace
}  // namespace gvfs::bench

int main(int argc, char** argv) {
  gvfs::bench::g_metrics_prefix =
      gvfs::bench::FlagValue(argc, argv, "--metrics-out");
  gvfs::bench::g_metrics_period = gvfs::bench::MetricsPeriod(argc, argv);
  gvfs::bench::Main(gvfs::bench::FlagValue(argc, argv, "--json-out"));
  return 0;
}
