#include "policy/policy.h"

#include <algorithm>

namespace gvfs::policy {

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool IsPromotion(FileMode from, FileMode to) {
  return static_cast<std::uint32_t>(to) > static_cast<std::uint32_t>(from);
}

}  // namespace

const char* FileModeName(FileMode mode) {
  switch (mode) {
    case FileMode::kPolling:
      return "polling";
    case FileMode::kReadDelegation:
      return "read-delegation";
    case FileMode::kWriteDelegation:
      return "write-delegation";
  }
  return "?";
}

const char* AccessClassName(AccessClass cls) {
  switch (cls) {
    case AccessClass::kIdle:
      return "idle";
    case AccessClass::kReadShared:
      return "read-shared";
    case AccessClass::kSingleWriter:
      return "single-writer";
    case AccessClass::kWriteHot:
      return "write-hot";
    case AccessClass::kContended:
      return "contended";
  }
  return "?";
}

PolicyEngine::PolicyEngine(PolicyConfig config) : config_(config) {}

void PolicyEngine::OnRead(const FileId& file) { ++files_[file].reads; }

void PolicyEngine::OnWrite(const FileId& file) { ++files_[file].writes; }

void PolicyEngine::OnInvalidation(const FileId& file) {
  ++files_[file].remote_invs;
}

void PolicyEngine::OnRecall(const FileId& file) {
  ++files_[file].recalls;
  ++local_recalls_;
}

AccessClass PolicyEngine::Classify(const PolicyState& s) const {
  // Write sharing: we write a file that remote parties also touch (their
  // writes reach us as invalidations, or their access recalls our grant).
  // Any delegation here just bounces, so back off to polling.
  if (s.writes > 0 && (s.remote_invs > 0 || s.recalls > 0)) {
    return AccessClass::kContended;
  }
  if (s.writes >= config_.write_hot && s.writes > s.reads) {
    return AccessClass::kWriteHot;
  }
  if (s.writes > 0) return AccessClass::kSingleWriter;
  // A hot read file earns (and keeps) a read delegation even while a remote
  // writer keeps recalling it: the recall push delivers freshness faster
  // than the poll period does, which is the whole point of migrating. The
  // recall cost is only worth paying for a *fast* reader, though — a file
  // read too rarely to clear the promotion bar but still drawing recalls is
  // contended, and demotes.
  if (s.reads >= config_.promote_reads) return AccessClass::kReadShared;
  if (s.recalls > 0) return AccessClass::kContended;
  return AccessClass::kIdle;
}

FileMode PolicyEngine::TargetFor(const PolicyState& s, AccessClass cls) const {
  switch (cls) {
    case AccessClass::kIdle:
      return s.mode;  // hold
    case AccessClass::kReadShared:
      return FileMode::kReadDelegation;
    case AccessClass::kSingleWriter:
    case AccessClass::kWriteHot:
      // Write-through sessions gain nothing from a write grant: hold.
      return config_.write_delegation ? FileMode::kWriteDelegation : s.mode;
    case AccessClass::kContended:
      return FileMode::kPolling;
  }
  return s.mode;
}

AccessClass PolicyEngine::ClassifyOpenWindow(const FileId& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? AccessClass::kIdle : Classify(it->second);
}

std::uint64_t PolicyEngine::RecallTotal() const {
  if (registry_ == nullptr) return local_recalls_;
  double total = 0.0;
  for (const auto& [name, probe] : registry_->probes()) {
    if (EndsWith(name, "recalls_read") || EndsWith(name, "recalls_write")) {
      total += probe();
    }
  }
  return static_cast<std::uint64_t>(total);
}

std::vector<Migration> PolicyEngine::Tick(SimTime now) {
  // Storm breaker first, so this window's decisions see the fresh state.
  const std::uint64_t recall_total = RecallTotal();
  const std::uint64_t delta = recall_total - std::min(recall_total, prev_recall_total_);
  prev_recall_total_ = recall_total;
  if (delta >= config_.storm_recalls) {
    frozen_until_ = now + config_.storm_freeze;
    ++storm_freezes_;
    if (frozen_counter_ != nullptr) frozen_counter_->Inc();
  }
  frozen_now_ = now < frozen_until_;

  std::vector<Migration> out;
  for (auto& [file, s] : files_) {
    const AccessClass cls = Classify(s);
    const FileMode target = TargetFor(s, cls);
    ++decisions_;
    if (decisions_counter_ != nullptr) decisions_counter_->Inc();
    if (tracer_.enabled()) {
      tracer_.Policy(trace::EventType::kPolicyDecide, host_, file.fsid,
                     file.ino, static_cast<std::uint32_t>(s.mode),
                     static_cast<std::uint32_t>(target),
                     frozen_now_ ? trace::kPolicyFlagFrozen : 0);
    }

    const bool agreed = s.has_prev_target && s.prev_target == target;
    const bool dwell_over =
        !s.ever_migrated || now - s.migrated_at >= config_.dwell;
    if (target != s.mode && agreed && dwell_over) {
      if (frozen_now_ && IsPromotion(s.mode, target)) {
        ++promotions_frozen_;
      } else {
        out.push_back(Migration{file, s.mode, target});
      }
    }

    s.prev_target = target;
    s.has_prev_target = true;
    s.reads = s.writes = s.remote_invs = s.recalls = 0;
  }
  return out;
}

void PolicyEngine::Commit(const FileId& file, FileMode to, SimTime now) {
  PolicyState& s = files_[file];
  if (IsPromotion(s.mode, to)) {
    ++promotions_;
    if (promotions_counter_ != nullptr) promotions_counter_->Inc();
  } else if (to != s.mode) {
    ++demotions_;
    if (demotions_counter_ != nullptr) demotions_counter_->Inc();
  }
  s.mode = to;
  s.prev_target = to;
  s.migrated_at = now;
  s.ever_migrated = true;
}

FileMode PolicyEngine::ModeOf(const FileId& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? FileMode::kPolling : it->second.mode;
}

void PolicyEngine::AttachMetrics(metrics::Registry& registry,
                                 const std::string& prefix) {
  registry_ = &registry;
  decisions_counter_ = &registry.GetCounter(prefix + "policy_decisions");
  promotions_counter_ = &registry.GetCounter(prefix + "policy_promotions");
  demotions_counter_ = &registry.GetCounter(prefix + "policy_demotions");
  frozen_counter_ = &registry.GetCounter(prefix + "policy_storm_freezes");
  registry.AddProbe(prefix + "policy_files_delegated", [this] {
    double n = 0;
    for (const auto& [file, s] : files_) {
      (void)file;
      if (s.mode != FileMode::kPolling) ++n;
    }
    return n;
  });
  registry.AddProbe(prefix + "policy_frozen",
                    [this] { return frozen_now_ ? 1.0 : 0.0; });
}

void PolicyEngine::SetTracer(trace::Tracer tracer, HostId host) {
  tracer_ = tracer;
  host_ = host;
}

JsonObject PolicyEngine::SnapshotState() const {
  JsonObject snap;
  snap.Add("role", "policy_engine");
  snap.Add("frozen", frozen_now_);
  snap.Add("frozen_until_ns", static_cast<std::uint64_t>(frozen_until_));
  snap.Add("decisions", decisions_);
  snap.Add("promotions", promotions_);
  snap.Add("demotions", demotions_);
  snap.Add("storm_freezes", storm_freezes_);
  std::vector<JsonObject> files;
  for (const auto& [file, s] : files_) {
    JsonObject f;
    f.Add("fh", std::to_string(file.fsid) + ":" + std::to_string(file.ino));
    f.Add("mode", FileModeName(s.mode));
    f.Add("prev_target",
          s.has_prev_target ? FileModeName(s.prev_target) : "none");
    f.Add("migrated_at_ns", static_cast<std::uint64_t>(s.migrated_at));
    f.Add("ever_migrated", s.ever_migrated);
    f.Add("reads", static_cast<std::uint64_t>(s.reads));
    f.Add("writes", static_cast<std::uint64_t>(s.writes));
    f.Add("remote_invs", static_cast<std::uint64_t>(s.remote_invs));
    f.Add("recalls", static_cast<std::uint64_t>(s.recalls));
    files.push_back(f);
  }
  snap.Add("files", files);
  return snap;
}

}  // namespace gvfs::policy
