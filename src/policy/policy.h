// Adaptive consistency policy engine (ROADMAP item 3): makes the paper's
// "application-tailored" consistency self-tuning. A session starts every
// file under invalidation polling; this engine watches the per-file access
// pattern the proxy client observes (reads, writes, remote invalidations,
// delegation recalls), classifies each file once per policy window, and
// decides when a file should migrate between invalidation polling, a read
// delegation, and a write delegation at runtime.
//
// The engine is a pure decision component: it never talks to the network.
// The proxy client feeds it observations (OnRead/OnWrite/OnInvalidation/
// OnRecall), asks it for migrations (Tick), performs the MIGRATE handshake
// with the owning server shard, and confirms the switch (Commit). Keeping
// the FSM transport-free makes every transition unit-testable without a
// testbed and keeps this library a leaf below src/gvfs.
//
// Stability machinery:
//  - hysteresis: a migration is proposed only when two consecutive policy
//    windows classify the file into the same target mode, so one bursty
//    window cannot flip a file;
//  - dwell: after a migration the file is pinned to its new mode for a
//    minimum time, damping ping-pong between modes;
//  - recall-storm breaker: when the fleet-wide recall count (summed from
//    the metrics registry's *.recalls_read/*.recalls_write probes, or from
//    locally observed recalls without a registry) jumps by more than a
//    threshold inside one window, promotions freeze for a cool-down while
//    demotions keep running — delegation load sheds instead of compounding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/types.h"
#include "metrics/registry.h"
#include "trace/trace.h"

namespace gvfs::policy {

/// File identity as raw (fsid, ino), mirroring src/trace: this library must
/// not depend on nfs3::Fh.
struct FileId {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;

  friend bool operator<(const FileId& a, const FileId& b) {
    return a.fsid != b.fsid ? a.fsid < b.fsid : a.ino < b.ino;
  }
  friend bool operator==(const FileId& a, const FileId& b) {
    return a.fsid == b.fsid && a.ino == b.ino;
  }
};

/// Per-file consistency mode. Numeric values order modes by strength and
/// match proxy::DelegationType for the delegation modes, so the MIGRATE wire
/// encoding and grant mapping are direct casts.
enum class FileMode : std::uint32_t {
  kPolling = 0,
  kReadDelegation = 1,
  kWriteDelegation = 2,
};

const char* FileModeName(FileMode mode);

/// Observed access pattern of one file over one policy window.
enum class AccessClass {
  kIdle,          // no traffic: hold the current mode
  kReadShared,    // read-only locally (remote writes OK) -> read delegation
  kSingleWriter,  // local writes, no remote writers -> write delegation
  kWriteHot,      // single-writer with a heavy write rate -> write delegation
  kContended,     // recalls, or write-write sharing -> polling
};

const char* AccessClassName(AccessClass cls);

struct PolicyConfig {
  /// Minimum time a file keeps its mode after a migration.
  Duration dwell = Seconds(10);
  /// Reads per window before a read-shared file earns a read delegation.
  std::uint32_t promote_reads = 4;
  /// Writes per window before a single-writer file earns a write delegation.
  std::uint32_t write_hot = 3;
  /// Recall-count jump per window that trips the storm breaker.
  std::uint32_t storm_recalls = 8;
  /// How long promotions stay frozen once the breaker trips.
  Duration storm_freeze = Seconds(30);
  /// Whether write-delegation targets are ever proposed. A write delegation
  /// only pays when the cache can absorb writes locally (write-back
  /// sessions); under write-through it adds recall traffic for nothing, so
  /// the proxy client clears this for kReadOnly sessions.
  bool write_delegation = true;
};

/// A migration the engine wants the proxy client to perform.
struct Migration {
  FileId file;
  FileMode from = FileMode::kPolling;
  FileMode to = FileMode::kPolling;
};

class PolicyEngine {
 public:
  explicit PolicyEngine(PolicyConfig config = {});

  /// Observation hooks, called by the proxy client on its own request path.
  void OnRead(const FileId& file);
  void OnWrite(const FileId& file);
  /// A remote invalidation for the file was applied (GETINV delivery).
  void OnInvalidation(const FileId& file);
  /// A delegation on the file was recalled out from under this client.
  void OnRecall(const FileId& file);

  /// Closes the current policy window: classifies every tracked file,
  /// updates the storm breaker, and returns the migrations that cleared
  /// hysteresis + dwell. The caller performs each MIGRATE handshake and
  /// calls Commit() per file that actually switched.
  std::vector<Migration> Tick(SimTime now);

  /// Confirms that `file` now runs under `to` (the handshake succeeded).
  void Commit(const FileId& file, FileMode to, SimTime now);

  /// Current mode of a file (kPolling when never tracked).
  FileMode ModeOf(const FileId& file) const;

  /// Classification of the access counters accumulated so far in the open
  /// window (exposed for tests; Tick uses the same function).
  AccessClass ClassifyOpenWindow(const FileId& file) const;

  bool frozen() const { return frozen_now_; }

  /// Counters/gauges under `prefix` (e.g. "s0.c1.policy_"). Also remembers
  /// the registry so the storm breaker can sum the fleet-wide
  /// *.recalls_read / *.recalls_write probes each Tick.
  void AttachMetrics(metrics::Registry& registry, const std::string& prefix);

  /// Enables kPolicyDecide tracing, stamped with this client's host id.
  void SetTracer(trace::Tracer tracer, HostId host);

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t promotions_frozen() const { return promotions_frozen_; }
  std::uint64_t storm_freezes() const { return storm_freezes_; }

  /// Per-file FSM snapshot for the flight recorder (obs/recorder.h): every
  /// tracked file's mode, hysteresis target, dwell anchor and open-window
  /// counters, plus the breaker state.
  JsonObject SnapshotState() const;

 private:
  struct PolicyState {
    FileMode mode = FileMode::kPolling;
    /// Target classified in the previous window (hysteresis: the current
    /// window must agree before a migration is proposed).
    FileMode prev_target = FileMode::kPolling;
    bool has_prev_target = false;
    SimTime migrated_at = 0;
    bool ever_migrated = false;
    // Open-window access counters, reset every Tick.
    std::uint32_t reads = 0;
    std::uint32_t writes = 0;
    std::uint32_t remote_invs = 0;
    std::uint32_t recalls = 0;
  };

  AccessClass Classify(const PolicyState& s) const;
  /// Desired mode for a classification; kIdle holds the current mode.
  FileMode TargetFor(const PolicyState& s, AccessClass cls) const;
  /// Total recalls visible to the breaker: registry probe sum when attached,
  /// locally observed recalls otherwise.
  std::uint64_t RecallTotal() const;

  PolicyConfig config_;
  std::map<FileId, PolicyState> files_;

  SimTime frozen_until_ = 0;
  bool frozen_now_ = false;
  std::uint64_t prev_recall_total_ = 0;
  std::uint64_t local_recalls_ = 0;

  std::uint64_t decisions_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_frozen_ = 0;
  std::uint64_t storm_freezes_ = 0;

  metrics::Registry* registry_ = nullptr;
  metrics::Counter* decisions_counter_ = nullptr;
  metrics::Counter* promotions_counter_ = nullptr;
  metrics::Counter* demotions_counter_ = nullptr;
  metrics::Counter* frozen_counter_ = nullptr;

  trace::Tracer tracer_;
  HostId host_ = kInvalidHost;
};

}  // namespace gvfs::policy
