#include "obs/dump.h"

#include <fstream>
#include <sstream>

namespace gvfs::obs {

namespace {

using trace::Event;
using trace::EventType;

enum class Family { kRpc, kNet, kCache, kDeleg, kInv, kPolicy, kAnomaly, kNode };

Family FamilyOf(EventType type) {
  switch (type) {
    case EventType::kRpcSend:
    case EventType::kRpcRetransmit:
    case EventType::kRpcReply:
    case EventType::kRpcTimeout:
    case EventType::kRpcExec:
    case EventType::kRpcHandlerDone:
    case EventType::kRpcDrcHit:
      return Family::kRpc;
    case EventType::kNetDrop:
      return Family::kNet;
    case EventType::kCacheHit:
    case EventType::kCacheMiss:
    case EventType::kCacheWriteBack:
      return Family::kCache;
    case EventType::kDelegGrant:
    case EventType::kDelegRecall:
    case EventType::kDelegRelease:
    case EventType::kDelegExpiry:
      return Family::kDeleg;
    case EventType::kInvAppend:
    case EventType::kInvPoll:
    case EventType::kInvWrap:
    case EventType::kInvForce:
    case EventType::kAggFanout:
    case EventType::kAggIngest:
    case EventType::kAggDeliver:
    case EventType::kAggServe:
      return Family::kInv;
    case EventType::kPolicyDecide:
    case EventType::kPolicyMigrate:
      return Family::kPolicy;
    case EventType::kAnomaly:
      return Family::kAnomaly;
    case EventType::kNodeCrash:
    case EventType::kNodeRecover:
      return Family::kNode;
  }
  return Family::kNode;
}

}  // namespace

/// Name -> type lookup over every enumerator. kAnomaly is the last entry of
/// EventType; keep that in sync if the enum grows.
bool EventTypeFromName(const std::string& name, EventType* out) {
  const auto last = static_cast<std::uint32_t>(EventType::kAnomaly);
  for (std::uint32_t t = 0; t <= last; ++t) {
    const auto type = static_cast<EventType>(t);
    if (name == trace::EventTypeName(type)) {
      *out = type;
      return true;
    }
  }
  return false;
}

std::string EventToJson(const trace::TraceBuffer& buffer, const Event& ev) {
  JsonObject o;
  o.Add("t", static_cast<std::uint64_t>(ev.time));
  o.Add("type", trace::EventTypeName(ev.type));
  o.Add("host", static_cast<std::uint64_t>(ev.host));
  if (ev.port != 0) o.Add("port", static_cast<std::uint64_t>(ev.port));
  switch (FamilyOf(ev.type)) {
    case Family::kRpc: {
      const auto& r = ev.u.rpc;
      o.Add("peer_host", static_cast<std::uint64_t>(r.peer_host));
      o.Add("peer_port", static_cast<std::uint64_t>(r.peer_port));
      o.Add("xid", static_cast<std::uint64_t>(r.xid));
      o.Add("prog", static_cast<std::uint64_t>(r.prog));
      o.Add("proc", static_cast<std::uint64_t>(r.proc));
      o.Add("label", buffer.LabelName(r.label));
      o.Add("trace_id", r.trace_id);
      o.Add("span_id", r.span_id);
      o.Add("parent_span_id", r.parent_span_id);
      break;
    }
    case Family::kNet: {
      o.Add("dst_host", static_cast<std::uint64_t>(ev.u.net.dst_host));
      o.Add("wire_size", static_cast<std::uint64_t>(ev.u.net.wire_size));
      break;
    }
    case Family::kCache: {
      const auto& c = ev.u.cache;
      o.Add("fsid", c.fsid);
      o.Add("ino", c.ino);
      o.Add("offset", c.offset);
      o.Add("op", buffer.LabelName(c.label));
      break;
    }
    case Family::kDeleg: {
      const auto& d = ev.u.deleg;
      o.Add("fsid", d.fsid);
      o.Add("ino", d.ino);
      o.Add("wanted_offset", d.wanted_offset);
      o.Add("deleg_type", static_cast<std::uint64_t>(d.deleg_type));
      o.Add("peer_host", static_cast<std::uint64_t>(d.peer_host));
      o.Add("flags", static_cast<std::uint64_t>(d.flags));
      break;
    }
    case Family::kInv: {
      const auto& i = ev.u.inv;
      o.Add("fsid", i.fsid);
      o.Add("ino", i.ino);
      o.Add("timestamp", i.timestamp);
      o.Add("count", static_cast<std::uint64_t>(i.count));
      o.Add("peer_host", static_cast<std::uint64_t>(i.peer_host));
      break;
    }
    case Family::kPolicy: {
      const auto& p = ev.u.policy;
      o.Add("fsid", p.fsid);
      o.Add("ino", p.ino);
      o.Add("from", static_cast<std::uint64_t>(p.from));
      o.Add("to", static_cast<std::uint64_t>(p.to));
      o.Add("flags", static_cast<std::uint64_t>(p.flags));
      break;
    }
    case Family::kAnomaly: {
      const auto& a = ev.u.anomaly;
      o.Add("fsid", a.fsid);
      o.Add("ino", a.ino);
      o.Add("kind", static_cast<std::uint64_t>(a.kind));
      o.Add("value", a.value);
      o.Add("threshold", a.threshold);
      break;
    }
    case Family::kNode:
      break;
  }
  return o.Dump();
}

bool EventFromJson(const JsonValue& doc, trace::TraceBuffer& buffer,
                   Event* out) {
  EventType type;
  if (!EventTypeFromName(doc["type"].AsString(), &type)) return false;
  Event ev;
  ev.time = static_cast<SimTime>(doc["t"].AsU64());
  ev.type = type;
  ev.host = static_cast<HostId>(doc["host"].AsU64());
  ev.port = static_cast<std::uint32_t>(doc["port"].AsU64());
  switch (FamilyOf(type)) {
    case Family::kRpc: {
      auto& r = ev.u.rpc;
      r.peer_host = static_cast<std::uint32_t>(doc["peer_host"].AsU64());
      r.peer_port = static_cast<std::uint32_t>(doc["peer_port"].AsU64());
      r.xid = static_cast<std::uint32_t>(doc["xid"].AsU64());
      r.prog = static_cast<std::uint32_t>(doc["prog"].AsU64());
      r.proc = static_cast<std::uint32_t>(doc["proc"].AsU64());
      r.label = buffer.InternLabel(doc["label"].AsString());
      r.trace_id = doc["trace_id"].AsU64();
      r.span_id = doc["span_id"].AsU64();
      r.parent_span_id = doc["parent_span_id"].AsU64();
      break;
    }
    case Family::kNet: {
      ev.u.net.dst_host = static_cast<std::uint32_t>(doc["dst_host"].AsU64());
      ev.u.net.wire_size = static_cast<std::uint32_t>(doc["wire_size"].AsU64());
      break;
    }
    case Family::kCache: {
      auto& c = ev.u.cache;
      c.fsid = doc["fsid"].AsU64();
      c.ino = doc["ino"].AsU64();
      c.offset = doc["offset"].AsU64(trace::kNoOffset);
      c.label = buffer.InternLabel(doc["op"].AsString());
      break;
    }
    case Family::kDeleg: {
      auto& d = ev.u.deleg;
      d.fsid = doc["fsid"].AsU64();
      d.ino = doc["ino"].AsU64();
      d.wanted_offset = doc["wanted_offset"].AsU64();
      d.deleg_type = static_cast<std::uint32_t>(doc["deleg_type"].AsU64());
      d.peer_host = static_cast<std::uint32_t>(doc["peer_host"].AsU64());
      d.flags = static_cast<std::uint32_t>(doc["flags"].AsU64());
      break;
    }
    case Family::kInv: {
      auto& i = ev.u.inv;
      i.fsid = doc["fsid"].AsU64();
      i.ino = doc["ino"].AsU64();
      i.timestamp = doc["timestamp"].AsU64();
      i.count = static_cast<std::uint32_t>(doc["count"].AsU64());
      i.peer_host = static_cast<std::uint32_t>(doc["peer_host"].AsU64());
      break;
    }
    case Family::kPolicy: {
      auto& p = ev.u.policy;
      p.fsid = doc["fsid"].AsU64();
      p.ino = doc["ino"].AsU64();
      p.from = static_cast<std::uint32_t>(doc["from"].AsU64());
      p.to = static_cast<std::uint32_t>(doc["to"].AsU64());
      p.flags = static_cast<std::uint32_t>(doc["flags"].AsU64());
      break;
    }
    case Family::kAnomaly: {
      auto& a = ev.u.anomaly;
      a.fsid = doc["fsid"].AsU64();
      a.ino = doc["ino"].AsU64();
      a.kind = static_cast<std::uint32_t>(doc["kind"].AsU64());
      a.value = doc["value"].AsDouble();
      a.threshold = doc["threshold"].AsDouble();
      break;
    }
    case Family::kNode:
      break;
  }
  *out = ev;
  return true;
}

bool ReadDump(const std::string& path, DumpFile* out, std::string* error) {
  std::string parse_error;
  const JsonValue doc = ReadJsonFile(path, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (doc["format"].AsString() != "gvfsdump") {
    if (error != nullptr) *error = path + ": not a gvfsdump document";
    return false;
  }

  out->reason = doc["reason"].AsString();
  out->time = static_cast<SimTime>(doc["time_ns"].AsU64());
  out->config = doc["config"];
  out->metrics = doc["metrics"];
  out->state = doc["state"];

  const JsonValue& trace = doc["trace"];
  out->trace_recorded = trace["recorded"].AsU64();
  out->trace_dropped = trace["dropped"].AsU64();
  out->trace_omitted = trace["omitted"].AsU64();
  const JsonValue& events = trace["events"];
  std::size_t capacity = trace["capacity"].AsU64();
  if (capacity == 0) capacity = events.size() > 0 ? events.size() : 1;
  out->trace = trace::TraceBuffer(capacity);
  for (std::size_t i = 0; i < events.size(); ++i) {
    Event ev;
    if (!EventFromJson(events[i], out->trace, &ev)) {
      if (error != nullptr) {
        *error = path + ": unknown event type " +
                 events[i]["type"].AsString() + " at index " +
                 std::to_string(i);
      }
      return false;
    }
    out->trace.Push(ev);
  }

  out->anomalies.clear();
  const JsonValue& anomalies = doc["anomalies"];
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    const JsonValue& a = anomalies[i];
    Anomaly rec;
    if (!AnomalyKindFromName(a["kind"].AsString(), &rec.kind)) {
      if (error != nullptr) {
        *error = path + ": unknown anomaly kind " + a["kind"].AsString();
      }
      return false;
    }
    rec.time = static_cast<SimTime>(a["time_ns"].AsU64());
    rec.host = static_cast<HostId>(a["host"].AsU64(kInvalidHost));
    rec.fsid = a["fsid"].AsU64();
    rec.ino = a["ino"].AsU64();
    rec.value = a["value"].AsDouble();
    rec.threshold = a["threshold"].AsDouble();
    rec.detail = a["detail"].AsString();
    out->anomalies.push_back(std::move(rec));
  }
  return true;
}

}  // namespace gvfs::obs
