// Online anomaly detection for consistency runs (the diagnosis layer).
//
// A Watchdog is a simulated coroutine that wakes every watch period and
// evaluates a fixed set of detectors against the observatory (metrics
// registry probes/histograms) and the trace stream:
//
//   recall-storm      delegation recalls per window beyond the policy
//                     engine's breaker threshold — the fleet is thrashing
//   staleness-slo     p99 cached-read staleness above the proven
//                     poll_period + 2*RTT budget for a registered histogram
//   migration-flap    one file promoted/demoted repeatedly inside a short
//                     window — hysteresis or dwell is not holding
//   inv-overflow      invalidation buffers wrapped (clients owe whole-cache
//                     invalidations) or occupancy has risen for several
//                     consecutive windows
//   shard-imbalance   one shard of a registered group carries a multiple of
//                     the mean load of its peers
//
// Each firing appends an Anomaly record, bumps an observatory counter,
// emits a kAnomaly trace event, and invokes the on-anomaly hook (the flight
// recorder). Everything here is strictly opt-in: nothing in this library is
// constructed unless a testbed enables diagnosis, so disabled runs pay zero
// cost and produce byte-identical results.
//
// Like src/trace, this library is a leaf over common/sim/trace/metrics; it
// never includes gvfs headers. Protocol state reaches the flight recorder
// through callbacks registered by the testbed (see recorder.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/registry.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "trace/trace.h"

namespace gvfs::obs {

enum class AnomalyKind : std::uint32_t {
  kRecallStorm,
  kStalenessSlo,
  kMigrationFlap,
  kInvOverflow,
  kShardImbalance,
};

/// Kebab-case detector name ("recall-storm", ...); "?" for out-of-range.
const char* AnomalyKindName(AnomalyKind kind);

/// Inverse of AnomalyKindName; returns false when `name` is not a detector.
bool AnomalyKindFromName(const std::string& name, AnomalyKind* out);

/// One registered detector. The table drives the doctor's verdict rendering
/// and the gvfs-lint anomaly-coverage rule: every AnomalyKind must appear
/// here, in AnomalyKindName, and in the doctor's VerdictFor table.
struct DetectorInfo {
  AnomalyKind kind;
  const char* name;     // AnomalyKindName(kind)
  const char* summary;  // one-line description for reports
};

constexpr std::size_t kDetectorCount = 5;
extern const DetectorInfo kDetectors[kDetectorCount];

/// Detector thresholds. A zero threshold disables that detector.
struct ObsConfig {
  Duration watch_period = Seconds(5);

  /// recall-storm: delegation recalls (read + write) observed fleet-wide
  /// within one watch window. Mirrors SessionConfig::policy_storm_recalls,
  /// but fires even when the policy breaker is disabled or frozen.
  std::uint64_t recall_storm_threshold = 64;

  /// migration-flap: completed MIGRATEs for one file within flap_window.
  std::uint32_t flap_threshold = 3;
  Duration flap_window = Seconds(30);

  /// inv-overflow: buffer wraps per window, and the occupancy trend — the
  /// summed buffer occupancy rising for `occupancy_trend_windows`
  /// consecutive windows while at or above `occupancy_floor` entries.
  std::uint64_t overflow_wraps = 1;
  int occupancy_trend_windows = 3;
  double occupancy_floor = 1024.0;

  /// shard-imbalance: max/mean occupancy ratio across a registered shard
  /// group, ignored until the loaded shard holds `imbalance_min` entries.
  double imbalance_ratio = 4.0;
  double imbalance_min = 256.0;
};

/// One detector firing.
struct Anomaly {
  AnomalyKind kind = AnomalyKind::kRecallStorm;
  SimTime time = 0;
  HostId host = kInvalidHost;  // implicated host when known
  std::uint64_t fsid = 0;      // offending file for file-scoped detectors
  std::uint64_t ino = 0;
  double value = 0;      // observed measurement
  double threshold = 0;  // configured limit it crossed
  std::string detail;    // human-readable one-liner
};

class Watchdog {
 public:
  Watchdog(sim::Scheduler& sched, ObsConfig config = {});
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Metrics-side detectors read probe values / histograms from here.
  void WatchRegistry(const metrics::Registry* registry) {
    registry_ = registry;
  }
  /// Trace-side detectors (migration-flap) scan new events incrementally.
  void WatchTrace(const trace::TraceBuffer* buffer) { trace_ = buffer; }
  /// Firings are recorded as kAnomaly events attributed to `host` (the
  /// watchdog is fleet-scoped; by convention the primary server's host id).
  void SetTracer(trace::Tracer tracer, HostId host) {
    tracer_ = tracer;
    host_ = host;
  }
  /// Registers obs.* counters (total + one per detector kind).
  void AttachMetrics(metrics::Registry& registry,
                     const std::string& prefix = "obs.");

  /// staleness-slo: gate `histogram` (microsecond staleness samples) at
  /// `budget` — for polling sessions, poll_period + 2*RTT.
  void AddStalenessSlo(const std::string& histogram, Duration budget);
  /// shard-imbalance: watch the named occupancy probes as one shard group.
  void WatchShardGroup(const std::string& label,
                       std::vector<std::string> probe_names);
  /// Invoked on every firing, after the trace event and counters. The flight
  /// recorder hooks in here.
  void SetOnAnomaly(std::function<void(const Anomaly&)> fn) {
    on_anomaly_ = std::move(fn);
  }

  /// Starts the periodic scan loop (idempotent).
  void Start();
  void Stop() { running_ = false; }
  /// One synchronous detector pass at the current sim time. Called by the
  /// loop; exposed so tests and shutdown paths can scan deterministically.
  void ScanNow();

  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  const ObsConfig& config() const { return config_; }
  const std::vector<std::pair<std::string, Duration>>& slos() const {
    return slos_;
  }

 private:
  struct ShardGroup {
    std::string label;
    std::vector<std::string> probe_names;
    bool latched = false;
  };

  sim::Task<void> Loop();
  void Raise(AnomalyKind kind, HostId host, std::uint64_t fsid,
             std::uint64_t ino, double value, double threshold,
             std::string detail);
  double SumProbesWithSuffix(const std::string& suffix) const;

  void ScanRecallStorm();
  void ScanStalenessSlo();
  void ScanMigrationFlap();
  void ScanInvOverflow();
  void ScanShardImbalance();

  sim::Scheduler& sched_;
  ObsConfig config_;
  const metrics::Registry* registry_ = nullptr;
  const trace::TraceBuffer* trace_ = nullptr;
  trace::Tracer tracer_;
  HostId host_ = kInvalidHost;
  bool running_ = false;

  std::vector<std::pair<std::string, Duration>> slos_;
  std::vector<bool> slo_latched_;
  std::vector<ShardGroup> shard_groups_;
  std::function<void(const Anomaly&)> on_anomaly_;

  // Detector state between scans.
  double prev_recalls_ = 0;
  bool have_prev_recalls_ = false;
  double prev_wraps_ = 0;
  bool have_prev_wraps_ = false;
  double prev_occupancy_ = 0;
  int occupancy_rising_ = 0;
  std::uint64_t trace_cursor_ = 0;  // global index of the next unseen event
  std::map<std::tuple<HostId, std::uint64_t, std::uint64_t>,
           std::deque<SimTime>>
      migrations_;

  metrics::Counter* total_counter_ = nullptr;
  std::vector<metrics::Counter*> kind_counters_;

  std::vector<Anomaly> anomalies_;
};

}  // namespace gvfs::obs
