// Flight recorder: serializes the run's observable state — trace ring,
// metrics registry, registered protocol-state snapshots, recorded anomalies
// and the watchdog configuration — into one .gvfsdump file (see dump.h).
//
// Protocol state reaches the recorder through provider callbacks registered
// by the testbed (each returns a rendered JSON object), so this library does
// not depend on src/gvfs. Dumps are written on demand: the testbed triggers
// one on the first anomaly, a checker violation, or a failed bench gate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/registry.h"
#include "obs/anomaly.h"
#include "trace/trace.h"

namespace gvfs::obs {

class FlightRecorder {
 public:
  /// Newest trace events serialized per dump; older ones are counted in the
  /// dump's "omitted" field. Bounds dump size on multi-million-event rings.
  static constexpr std::size_t kDefaultMaxTraceEvents = 1 << 16;

  void SetTrace(const trace::TraceBuffer* buffer) { trace_ = buffer; }
  void SetRegistry(const metrics::Registry* registry) { registry_ = registry; }
  void SetClock(const SimTime* clock) { clock_ = clock; }
  /// Recorded anomalies and watchdog thresholds are embedded in the dump.
  void SetWatchdog(const Watchdog* watchdog) { watchdog_ = watchdog; }
  void SetMaxTraceEvents(std::size_t n) { max_trace_events_ = n; }

  /// Registers a protocol-state snapshot; `render` returns a JSON object
  /// (e.g. gvfs::proxy::ProxyServer::SnapshotState().Dump()), evaluated at
  /// dump time.
  void AddStateProvider(const std::string& name,
                        std::function<std::string()> render) {
    providers_.emplace_back(name, std::move(render));
  }

  /// Extra self-description merged into the dump's "config" section
  /// (session parameters, workload name, ...). `rendered` must be valid
  /// JSON.
  void AddConfig(const std::string& key, const std::string& rendered) {
    config_extra_.emplace_back(key, rendered);
  }

  /// Renders the dump document.
  std::string Render(const std::string& reason) const;

  /// Writes Render(reason) to `path`; returns false when the file cannot be
  /// created.
  bool Dump(const std::string& path, const std::string& reason) const;

 private:
  const trace::TraceBuffer* trace_ = nullptr;
  const metrics::Registry* registry_ = nullptr;
  const SimTime* clock_ = nullptr;
  const Watchdog* watchdog_ = nullptr;
  std::size_t max_trace_events_ = kDefaultMaxTraceEvents;
  std::vector<std::pair<std::string, std::function<std::string()>>> providers_;
  std::vector<std::pair<std::string, std::string>> config_extra_;
};

}  // namespace gvfs::obs
