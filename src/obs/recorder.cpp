#include "obs/recorder.h"

#include <cstdio>

#include "common/json_writer.h"
#include "obs/dump.h"

namespace gvfs::obs {

namespace {

std::string HistogramJson(const metrics::LogHistogram& hist) {
  JsonObject o;
  o.Add("count", hist.count());
  o.Add("sum", hist.sum());
  o.Add("max", hist.max());
  o.Add("p50", hist.Percentile(50));
  o.Add("p95", hist.Percentile(95));
  o.Add("p99", hist.Percentile(99));
  std::string buckets = "[";
  for (std::size_t b = 0; b < hist.buckets().size(); ++b) {
    if (b > 0) buckets += ',';
    buckets += std::to_string(hist.buckets()[b]);
  }
  buckets += ']';
  o.AddRaw("buckets", buckets);
  return o.Dump();
}

std::string AnomalyJson(const Anomaly& a) {
  JsonObject o;
  o.Add("kind", AnomalyKindName(a.kind));
  o.Add("time_ns", static_cast<std::uint64_t>(a.time));
  o.Add("host", static_cast<std::uint64_t>(a.host));
  o.Add("fsid", a.fsid);
  o.Add("ino", a.ino);
  o.Add("value", a.value);
  o.Add("threshold", a.threshold);
  o.Add("detail", a.detail);
  return o.Dump();
}

}  // namespace

std::string FlightRecorder::Render(const std::string& reason) const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"format\":\"gvfsdump\",\"version\":1,";
  out += "\"reason\":" + JsonQuote(reason) + ",";
  const SimTime now = clock_ != nullptr ? *clock_ : 0;
  out += "\"time_ns\":" + std::to_string(now) + ",";

  // config: watchdog thresholds + staleness budgets + caller extras.
  {
    JsonObject config;
    if (watchdog_ != nullptr) {
      const ObsConfig& c = watchdog_->config();
      JsonObject wd;
      wd.Add("watch_period_ns", static_cast<std::uint64_t>(c.watch_period));
      wd.Add("recall_storm_threshold", c.recall_storm_threshold);
      wd.Add("flap_threshold", static_cast<std::uint64_t>(c.flap_threshold));
      wd.Add("flap_window_ns", static_cast<std::uint64_t>(c.flap_window));
      wd.Add("overflow_wraps", c.overflow_wraps);
      wd.Add("occupancy_trend_windows", c.occupancy_trend_windows);
      wd.Add("occupancy_floor", c.occupancy_floor);
      wd.Add("imbalance_ratio", c.imbalance_ratio);
      wd.Add("imbalance_min", c.imbalance_min);
      config.Add("watchdog", wd);
      std::vector<JsonObject> slos;
      for (const auto& [name, budget] : watchdog_->slos()) {
        JsonObject s;
        s.Add("histogram", name);
        s.Add("budget_ns", static_cast<std::uint64_t>(budget));
        slos.push_back(s);
      }
      config.Add("staleness_slos", slos);
    }
    for (const auto& [key, rendered] : config_extra_) {
      config.AddRaw(key, rendered);
    }
    out += "\"config\":" + config.Dump() + ",";
  }

  // trace: the newest max_trace_events_ ring entries.
  {
    out += "\"trace\":{";
    if (trace_ != nullptr) {
      const std::size_t have = trace_->size();
      const std::size_t keep =
          max_trace_events_ > 0 && have > max_trace_events_
              ? max_trace_events_
              : have;
      out += "\"capacity\":" + std::to_string(trace_->capacity()) + ",";
      out += "\"recorded\":" + std::to_string(trace_->recorded()) + ",";
      out += "\"dropped\":" + std::to_string(trace_->dropped()) + ",";
      out += "\"omitted\":" + std::to_string(have - keep) + ",";
      out += "\"events\":[";
      for (std::size_t i = have - keep; i < have; ++i) {
        if (i != have - keep) out += ',';
        out += EventToJson(*trace_, trace_->at(i));
      }
      out += "]";
    } else {
      out += "\"capacity\":0,\"recorded\":0,\"dropped\":0,\"omitted\":0,"
             "\"events\":[]";
    }
    out += "},";
  }

  // metrics: full registry snapshot, deterministic order (std::map).
  {
    out += "\"metrics\":{";
    bool first = true;
    out += "\"counters\":{";
    if (registry_ != nullptr) {
      for (const auto& [name, c] : registry_->counters()) {
        if (!first) out += ',';
        first = false;
        out += JsonQuote(name) + ":" + std::to_string(c.value());
      }
    }
    out += "},\"gauges\":{";
    first = true;
    if (registry_ != nullptr) {
      char buf[32];
      for (const auto& [name, g] : registry_->gauges()) {
        if (!first) out += ',';
        first = false;
        std::snprintf(buf, sizeof(buf), "%.17g", g.value());
        out += JsonQuote(name) + ":" + buf;
      }
    }
    out += "},\"probes\":{";
    first = true;
    if (registry_ != nullptr) {
      char buf[32];
      for (const auto& [name, fn] : registry_->probes()) {
        if (!first) out += ',';
        first = false;
        std::snprintf(buf, sizeof(buf), "%.17g", fn ? fn() : 0.0);
        out += JsonQuote(name) + ":" + buf;
      }
    }
    out += "},\"histograms\":{";
    first = true;
    if (registry_ != nullptr) {
      for (const auto& [name, h] : registry_->histograms()) {
        if (!first) out += ',';
        first = false;
        out += JsonQuote(name) + ":" + HistogramJson(h.hist());
      }
    }
    out += "}},";
  }

  // state: provider snapshots, in registration order.
  {
    out += "\"state\":{";
    for (std::size_t i = 0; i < providers_.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonQuote(providers_[i].first) + ":" +
             (providers_[i].second ? providers_[i].second() : "{}");
    }
    out += "},";
  }

  // anomalies recorded by the watchdog so far.
  {
    out += "\"anomalies\":[";
    if (watchdog_ != nullptr) {
      const auto& list = watchdog_->anomalies();
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ',';
        out += AnomalyJson(list[i]);
      }
    }
    out += "]";
  }

  out += "}\n";
  return out;
}

bool FlightRecorder::Dump(const std::string& path,
                          const std::string& reason) const {
  return WriteTextFile(path, Render(reason));
}

}  // namespace gvfs::obs
