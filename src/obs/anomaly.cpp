#include "obs/anomaly.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/sync.h"

namespace gvfs::obs {

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRecallStorm:
      return "recall-storm";
    case AnomalyKind::kStalenessSlo:
      return "staleness-slo";
    case AnomalyKind::kMigrationFlap:
      return "migration-flap";
    case AnomalyKind::kInvOverflow:
      return "inv-overflow";
    case AnomalyKind::kShardImbalance:
      return "shard-imbalance";
  }
  return "?";
}

bool AnomalyKindFromName(const std::string& name, AnomalyKind* out) {
  for (const DetectorInfo& d : kDetectors) {
    if (name == d.name) {
      *out = d.kind;
      return true;
    }
  }
  return false;
}

const DetectorInfo kDetectors[kDetectorCount] = {
    {AnomalyKind::kRecallStorm, "recall-storm",
     "delegation recalls per window beyond the breaker threshold"},
    {AnomalyKind::kStalenessSlo, "staleness-slo",
     "p99 cached-read staleness above the poll_period + 2*RTT budget"},
    {AnomalyKind::kMigrationFlap, "migration-flap",
     "one file migrated repeatedly inside the flap window"},
    {AnomalyKind::kInvOverflow, "inv-overflow",
     "invalidation buffers wrapped or occupancy keeps rising"},
    {AnomalyKind::kShardImbalance, "shard-imbalance",
     "one shard carries a multiple of its peers' mean load"},
};

Watchdog::Watchdog(sim::Scheduler& sched, ObsConfig config)
    : sched_(sched), config_(config) {}

void Watchdog::AttachMetrics(metrics::Registry& registry,
                             const std::string& prefix) {
  total_counter_ = &registry.GetCounter(prefix + "anomalies");
  kind_counters_.clear();
  for (const DetectorInfo& d : kDetectors) {
    kind_counters_.push_back(
        &registry.GetCounter(prefix + "anomaly." + d.name));
  }
}

void Watchdog::AddStalenessSlo(const std::string& histogram, Duration budget) {
  slos_.emplace_back(histogram, budget);
  slo_latched_.push_back(false);
}

void Watchdog::WatchShardGroup(const std::string& label,
                               std::vector<std::string> probe_names) {
  shard_groups_.push_back(ShardGroup{label, std::move(probe_names), false});
}

void Watchdog::Start() {
  if (running_) return;
  running_ = true;
  sim::Spawn(Loop());
}

sim::Task<void> Watchdog::Loop() {
  while (running_) {
    co_await sim::Sleep(sched_, config_.watch_period);
    if (!running_) break;
    ScanNow();
  }
}

void Watchdog::Raise(AnomalyKind kind, HostId host, std::uint64_t fsid,
                     std::uint64_t ino, double value, double threshold,
                     std::string detail) {
  Anomaly a;
  a.kind = kind;
  a.time = sched_.Now();
  a.host = host;
  a.fsid = fsid;
  a.ino = ino;
  a.value = value;
  a.threshold = threshold;
  a.detail = std::move(detail);

  if (total_counter_ != nullptr) total_counter_->Inc();
  const auto idx = static_cast<std::size_t>(kind);
  if (idx < kind_counters_.size()) kind_counters_[idx]->Inc();
  tracer_.Anomaly(host != kInvalidHost ? host : host_, fsid, ino,
                  static_cast<std::uint32_t>(kind), value, threshold);
  anomalies_.push_back(a);
  if (on_anomaly_) on_anomaly_(anomalies_.back());
}

double Watchdog::SumProbesWithSuffix(const std::string& suffix) const {
  if (registry_ == nullptr) return 0;
  double sum = 0;
  for (const auto& [name, fn] : registry_->probes()) {
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    if (fn) sum += fn();
  }
  return sum;
}

void Watchdog::ScanNow() {
  ScanRecallStorm();
  ScanStalenessSlo();
  ScanMigrationFlap();
  ScanInvOverflow();
  ScanShardImbalance();
}

void Watchdog::ScanRecallStorm() {
  if (config_.recall_storm_threshold == 0 || registry_ == nullptr) return;
  const double recalls = SumProbesWithSuffix(".recalls_read") +
                         SumProbesWithSuffix(".recalls_write");
  const double delta = have_prev_recalls_ ? recalls - prev_recalls_ : recalls;
  prev_recalls_ = recalls;
  have_prev_recalls_ = true;
  if (delta < static_cast<double>(config_.recall_storm_threshold)) return;
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "%.0f delegation recalls in one %.1fs window (threshold %" PRIu64
                ")",
                delta, ToSeconds(config_.watch_period),
                config_.recall_storm_threshold);
  Raise(AnomalyKind::kRecallStorm, kInvalidHost, 0, 0, delta,
        static_cast<double>(config_.recall_storm_threshold), detail);
}

void Watchdog::ScanStalenessSlo() {
  if (registry_ == nullptr) return;
  for (std::size_t i = 0; i < slos_.size(); ++i) {
    const auto& [name, budget] = slos_[i];
    auto it = registry_->histograms().find(name);
    if (it == registry_->histograms().end()) continue;
    const metrics::LogHistogram& hist = it->second.hist();
    if (hist.count() == 0) continue;
    const auto p99 = static_cast<double>(hist.Percentile(99));
    const auto budget_us = static_cast<double>(budget / kMicrosecond);
    const bool over = p99 > budget_us;
    if (!over) {
      slo_latched_[i] = false;
      continue;
    }
    if (slo_latched_[i]) continue;  // fire once until it recovers
    slo_latched_[i] = true;
    char detail[192];
    std::snprintf(detail, sizeof(detail),
                  "%s p99 staleness %.0fus exceeds the %.0fus "
                  "poll_period + 2*RTT budget",
                  name.c_str(), p99, budget_us);
    Raise(AnomalyKind::kStalenessSlo, kInvalidHost, 0, 0, p99, budget_us,
          detail);
  }
}

void Watchdog::ScanMigrationFlap() {
  if (config_.flap_threshold == 0 || trace_ == nullptr) return;
  // Incremental scan of events that arrived since the last pass. Events the
  // ring already overwrote are simply skipped — the metrics detectors do not
  // depend on them and a flap, by definition, is recent.
  const std::uint64_t recorded = trace_->recorded();
  const std::uint64_t oldest = recorded - trace_->size();
  std::uint64_t start = std::max(trace_cursor_, oldest);
  const SimTime now = sched_.Now();
  for (; start < recorded; ++start) {
    const trace::Event& ev =
        trace_->at(static_cast<std::size_t>(start - oldest));
    if (ev.type != trace::EventType::kPolicyMigrate) continue;
    // Count each handshake once: the client-side completion record.
    if ((ev.u.policy.flags & trace::kPolicyFlagServerSide) != 0) continue;
    auto& times = migrations_[{ev.host, ev.u.policy.fsid, ev.u.policy.ino}];
    times.push_back(ev.time);
  }
  trace_cursor_ = recorded;
  for (auto& [key, times] : migrations_) {
    while (!times.empty() && times.front() < now - config_.flap_window) {
      times.pop_front();
    }
    if (times.size() < config_.flap_threshold) continue;
    const auto& [host, fsid, ino] = key;
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "file %" PRIu64 ":%" PRIu64 " on host %u migrated %zu times "
                  "within %.1fs (threshold %u)",
                  fsid, ino, host, times.size(),
                  ToSeconds(config_.flap_window), config_.flap_threshold);
    Raise(AnomalyKind::kMigrationFlap, host, fsid, ino,
          static_cast<double>(times.size()),
          static_cast<double>(config_.flap_threshold), detail);
    times.clear();  // re-arm this file
  }
}

void Watchdog::ScanInvOverflow() {
  if (registry_ == nullptr) return;
  if (config_.overflow_wraps != 0) {
    const double wraps = SumProbesWithSuffix(".inv_wraps");
    const double delta = have_prev_wraps_ ? wraps - prev_wraps_ : wraps;
    prev_wraps_ = wraps;
    have_prev_wraps_ = true;
    if (delta >= static_cast<double>(config_.overflow_wraps)) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "%.0f invalidation-buffer wrap(s) in one window — "
                    "affected clients owe whole-cache invalidations",
                    delta);
      Raise(AnomalyKind::kInvOverflow, kInvalidHost, 0, 0, delta,
            static_cast<double>(config_.overflow_wraps), detail);
    }
  }
  if (config_.occupancy_trend_windows > 0) {
    const double occupancy = SumProbesWithSuffix(".inv_buffer_entries");
    if (occupancy > prev_occupancy_ && occupancy >= config_.occupancy_floor) {
      if (++occupancy_rising_ >= config_.occupancy_trend_windows) {
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "invalidation-buffer occupancy rose for %d consecutive "
                      "windows, now %.0f entries",
                      occupancy_rising_, occupancy);
        Raise(AnomalyKind::kInvOverflow, kInvalidHost, 0, 0, occupancy,
              config_.occupancy_floor, detail);
        occupancy_rising_ = 0;  // re-arm the trend
      }
    } else {
      occupancy_rising_ = 0;
    }
    prev_occupancy_ = occupancy;
  }
}

void Watchdog::ScanShardImbalance() {
  if (config_.imbalance_ratio <= 0 || registry_ == nullptr) return;
  for (ShardGroup& group : shard_groups_) {
    if (group.probe_names.size() < 2) continue;
    double max_v = 0, sum = 0;
    std::size_t max_i = 0;
    for (std::size_t i = 0; i < group.probe_names.size(); ++i) {
      double v = 0;
      auto it = registry_->probes().find(group.probe_names[i]);
      if (it != registry_->probes().end() && it->second) v = it->second();
      sum += v;
      if (v > max_v) {
        max_v = v;
        max_i = i;
      }
    }
    const double mean =
        sum / static_cast<double>(group.probe_names.size());
    const bool over = max_v >= config_.imbalance_min && mean > 0 &&
                      max_v / mean >= config_.imbalance_ratio;
    if (!over) {
      group.latched = false;
      continue;
    }
    if (group.latched) continue;
    group.latched = true;
    char detail[192];
    std::snprintf(detail, sizeof(detail),
                  "shard group %s: %s holds %.0f entries vs group mean %.1f "
                  "(ratio %.1f, threshold %.1f)",
                  group.label.c_str(), group.probe_names[max_i].c_str(), max_v,
                  mean, max_v / mean, config_.imbalance_ratio);
    Raise(AnomalyKind::kShardImbalance, kInvalidHost, 0, 0, max_v / mean,
          config_.imbalance_ratio, detail);
  }
}

}  // namespace gvfs::obs
