// The .gvfsdump flight-recorder snapshot format.
//
// A dump is a single self-describing JSON document capturing everything the
// doctor needs to diagnose a run after the fact:
//
//   {"format":"gvfsdump","version":1,"reason":...,"time_ns":...,
//    "config":{...watchdog thresholds, staleness budgets, caller extras...},
//    "trace":{"capacity":...,"recorded":...,"dropped":...,"omitted":...,
//             "events":[{"t":...,"type":"INV_APPEND","host":...,...},...]},
//    "metrics":{"counters":{...},"gauges":{...},"probes":{...},
//               "histograms":{name:{count,sum,max,p50,p95,p99,buckets}}},
//    "state":{provider-name:{...protocol state...},...},
//    "anomalies":[{"kind":"recall-storm",...},...]}
//
// Trace events serialize losslessly per payload family (the same fields the
// Chrome exporter renders, plus interned labels as strings), so ReadDump can
// rebuild a real trace::TraceBuffer and re-run the TraceChecker offline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_value.h"
#include "common/json_writer.h"
#include "obs/anomaly.h"
#include "trace/trace.h"

namespace gvfs::obs {

/// Inverse of trace::EventTypeName over every enumerator; returns false for
/// an unknown name. Shared with the doctor's Chrome-trace ingester.
bool EventTypeFromName(const std::string& name, trace::EventType* out);

/// Renders one trace event as a JSON object line (no trailing newline).
std::string EventToJson(const trace::TraceBuffer& buffer,
                        const trace::Event& ev);

/// Inverse of EventToJson. Labels are re-interned into `buffer`. Returns
/// false (and leaves `buffer` untouched) for an unknown event type.
bool EventFromJson(const JsonValue& doc, trace::TraceBuffer& buffer,
                   trace::Event* out);

/// A parsed .gvfsdump.
struct DumpFile {
  std::string reason;
  SimTime time = 0;
  JsonValue config;   // raw "config" section
  JsonValue metrics;  // raw "metrics" section
  JsonValue state;    // raw "state" section
  std::vector<Anomaly> anomalies;
  /// Caveats attached by an ingester (e.g. the doctor's Chrome-trace reader
  /// noting that RPC spans were collapsed); empty for a real dump.
  std::vector<std::string> notes;

  // The reconstructed trace ring plus the original producer-side accounting
  // (the rebuilt buffer itself never dropped anything).
  trace::TraceBuffer trace;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_omitted = 0;  // events the dump itself left out
};

/// Parses a .gvfsdump from disk. Returns false and sets *error on malformed
/// input (wrong format tag, unreadable file, bad JSON).
bool ReadDump(const std::string& path, DumpFile* out, std::string* error);

}  // namespace gvfs::obs
