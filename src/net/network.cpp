#include "net/network.h"

#include <utility>

#include "common/logging.h"

namespace gvfs::net {

void Network::Send(Packet packet) {
  const HostId from = packet.src.host;
  const HostId to = packet.dst.host;

  if (from == to) {
    // Loopback: fixed small latency, no bandwidth cost. Models the
    // user-level proxy interception hop. The packet move-captures into the
    // event, which keeps it inline in the scheduler slot (no allocation).
    sched_.After(loopback_latency_, [this, p = std::move(packet)]() mutable {
      Deliver(std::move(p));
    });
    return;
  }

  Link* found = links_.Find(DirKey(from, to));
  if (found == nullptr) {
    ++no_link_stats_[DirKey(from, to)].dropped;
    tracer_.NetDrop(from, to, packet.wire_size);
    GVFS_WARN("drop: no link %s -> %s", HostName(from).c_str(), HostName(to).c_str());
    return;
  }
  Link& link = *found;
  if (!link.up) {
    ++link.stats.dropped;
    tracer_.NetDrop(from, to, packet.wire_size);
    GVFS_TRACE("drop: link down %s -> %s", HostName(from).c_str(),
               HostName(to).c_str());
    return;
  }

  ++link.stats.packets;
  link.stats.bytes += packet.wire_size;

  // FIFO serialization: the packet starts transmitting when the link frees
  // up, occupies it for size/bandwidth, and arrives one latency later.
  const SimTime start = std::max(sched_.Now(), link.busy_until);
  const Duration tx_time = static_cast<Duration>(
      static_cast<double>(packet.wire_size) * 8.0 /
      static_cast<double>(link.config.bandwidth_bps) * static_cast<double>(kSecond));
  link.busy_until = start + tx_time;
  const SimTime arrival = link.busy_until + link.config.one_way_latency;

  sched_.At(arrival, [this, p = std::move(packet)]() mutable {
    Deliver(std::move(p));
  });
}

void Network::Deliver(Packet packet) {
  const HostState& host = hosts_.at(packet.dst.host);
  if (!host.receiver) {
    GVFS_TRACE("drop: host %s has no receiver", host.name.c_str());
    return;
  }
  host.receiver(std::move(packet));
}

}  // namespace gvfs::net
