#include "net/network.h"

#include <memory>

#include "common/logging.h"

namespace gvfs::net {

void Network::Send(Packet packet) {
  const HostId from = packet.src.host;
  const HostId to = packet.dst.host;

  if (from == to) {
    // Loopback: fixed small latency, no bandwidth cost. Models the
    // user-level proxy interception hop.
    auto shared = std::make_shared<Packet>(std::move(packet));
    sched_.After(loopback_latency_, [this, shared] { Deliver(std::move(*shared)); });
    return;
  }

  auto it = links_.find(DirKey(from, to));
  if (it == links_.end()) {
    ++no_link_stats_[DirKey(from, to)].dropped;
    tracer_.NetDrop(from, to, packet.wire_size);
    GVFS_WARN("drop: no link %s -> %s", HostName(from).c_str(), HostName(to).c_str());
    return;
  }
  Link& link = it->second;
  if (!link.up) {
    ++link.stats.dropped;
    tracer_.NetDrop(from, to, packet.wire_size);
    GVFS_TRACE("drop: link down %s -> %s", HostName(from).c_str(),
               HostName(to).c_str());
    return;
  }

  ++link.stats.packets;
  link.stats.bytes += packet.wire_size;

  // FIFO serialization: the packet starts transmitting when the link frees
  // up, occupies it for size/bandwidth, and arrives one latency later.
  const SimTime start = std::max(sched_.Now(), link.busy_until);
  const Duration tx_time = static_cast<Duration>(
      static_cast<double>(packet.wire_size) * 8.0 /
      static_cast<double>(link.config.bandwidth_bps) * static_cast<double>(kSecond));
  link.busy_until = start + tx_time;
  const SimTime arrival = link.busy_until + link.config.one_way_latency;

  auto shared = std::make_shared<Packet>(std::move(packet));
  sched_.At(arrival, [this, shared] { Deliver(std::move(*shared)); });
}

void Network::Deliver(Packet packet) {
  const HostState& host = hosts_.at(packet.dst.host);
  if (!host.receiver) {
    GVFS_TRACE("drop: host %s has no receiver", host.name.c_str());
    return;
  }
  host.receiver(std::move(packet));
}

}  // namespace gvfs::net
