// Simulated network: hosts joined by duplex links with one-way latency,
// finite bandwidth (FIFO serialization), and up/down state for partition
// injection. Stands in for the paper's NIST Net WAN emulation (40 ms RTT,
// 4 Mbps) between physical hosts.
//
// Delivery model: a message sent at time t over a link with latency L and
// bandwidth B occupies the link for size/B (FIFO behind earlier messages)
// and arrives L after its serialization completes. Messages addressed to the
// sending host itself take a fixed loopback latency — this models the
// kernel-client <-> user-level-proxy hop whose interception cost the paper
// measures in LAN.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace gvfs::net {

/// A (host, port) address; multiple RPC endpoints share a host.
struct Address {
  HostId host = kInvalidHost;
  std::uint32_t port = 0;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

/// An opaque datagram in flight. `wire_size` includes all header overhead.
struct Packet {
  Address src;
  Address dst;
  std::size_t wire_size = 0;
  Bytes payload;
};

struct LinkConfig {
  Duration one_way_latency = Milliseconds(20);   // 40 ms RTT default (paper WAN)
  std::uint64_t bandwidth_bps = 4'000'000;       // 4 Mbps default (paper WAN)
};

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
};

class Network {
 public:
  /// Each host's incoming packets are handed to one receiver (the RPC mux).
  using Receiver = std::function<void(Packet)>;

  explicit Network(sim::Scheduler& sched) : sched_(sched) {}

  HostId AddHost(std::string name) {
    hosts_.push_back(HostState{std::move(name), nullptr});
    return static_cast<HostId>(hosts_.size() - 1);
  }

  const std::string& HostName(HostId h) const { return hosts_.at(h).name; }
  std::size_t HostCount() const { return hosts_.size(); }

  void SetReceiver(HostId host, Receiver receiver) {
    hosts_.at(host).receiver = std::move(receiver);
  }

  /// Creates a duplex link between a and b. Replaces any existing link.
  void Connect(HostId a, HostId b, const LinkConfig& config) {
    links_[DirKey(a, b)] = Link{config, 0, true, {}};
    links_[DirKey(b, a)] = Link{config, 0, true, {}};
  }

  /// Partition injection: take both directions of the a<->b link up or down.
  void SetLinkUp(HostId a, HostId b, bool up) {
    LinkAt(a, b).up = up;
    LinkAt(b, a).up = up;
  }

  /// Asymmetric-failure injection: one direction only (e.g. drop replies but
  /// deliver requests, to exercise duplicate-request handling).
  void SetOneWayUp(HostId from, HostId to, bool up) {
    LinkAt(from, to).up = up;
  }

  bool LinkUp(HostId a, HostId b) const {
    return const_cast<Network*>(this)->LinkAt(a, b).up;
  }

  /// Per-call latency of a same-host (kernel client -> local proxy) hop.
  void SetLoopbackLatency(Duration d) { loopback_latency_ = d; }
  Duration loopback_latency() const { return loopback_latency_; }

  /// Sends a packet. Fire-and-forget: delivery (or silent drop on a downed /
  /// missing link) is scheduled on the simulation clock.
  void Send(Packet packet);

  LinkStats StatsFor(HostId from, HostId to) const {
    if (const Link* link = links_.Find(DirKey(from, to))) return link->stats;
    // Sends over a never-connected pair still account their drops (packets
    // and bytes stay zero: nothing was ever carried).
    auto nit = no_link_stats_.find(DirKey(from, to));
    return nit == no_link_stats_.end() ? LinkStats{} : nit->second;
  }

  /// Attaches a tracer recording packet-drop events. Disabled by default.
  void SetTracer(trace::Tracer tracer) { tracer_ = tracer; }

 private:
  struct HostState {
    std::string name;
    Receiver receiver;
  };

  struct Link {
    LinkConfig config;
    SimTime busy_until = 0;
    bool up = true;
    LinkStats stats;
  };

  static std::uint64_t DirKey(HostId from, HostId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Link& LinkAt(HostId from, HostId to) {
    Link* link = links_.Find(DirKey(from, to));
    assert(link != nullptr && "no such link");
    return *link;
  }

  void Deliver(Packet packet);

  sim::Scheduler& sched_;
  std::vector<HostState> hosts_;
  /// Per-packet lookup: open-addressed, keyed by the packed host pair.
  FlatMap<std::uint64_t, Link> links_;
  /// Drop counters for (from, to) pairs with no link configured.
  std::map<std::uint64_t, LinkStats> no_link_stats_;
  trace::Tracer tracer_;
  Duration loopback_latency_ = Microseconds(30);
};

}  // namespace gvfs::net
