// Per-procedure RPC counters. The paper's figures report "RPCs transferred
// over the network" by procedure (GETATTR, LOOKUP, READ, WRITE, GETINV,
// CALLBACK); a StatsMap is attached to each WAN-facing RPC node and counts
// outgoing calls at send time. Loopback (kernel-client -> local proxy)
// traffic is deliberately left unattached, matching the paper's counting.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace gvfs::rpc {

class StatsMap {
 public:
  void Count(const std::string& label, std::size_t wire_bytes) {
    ++calls_[label];
    bytes_[label] += wire_bytes;
  }

  std::uint64_t Calls(const std::string& label) const {
    auto it = calls_.find(label);
    return it == calls_.end() ? 0 : it->second;
  }

  std::uint64_t Bytes(const std::string& label) const {
    auto it = bytes_.find(label);
    return it == bytes_.end() ? 0 : it->second;
  }

  std::uint64_t TotalCalls() const {
    std::uint64_t sum = 0;
    for (const auto& [label, n] : calls_) sum += n;
    return sum;
  }

  std::uint64_t TotalBytes() const {
    std::uint64_t sum = 0;
    for (const auto& [label, n] : bytes_) sum += n;
    return sum;
  }

  const std::map<std::string, std::uint64_t>& calls() const { return calls_; }

  void Reset() {
    calls_.clear();
    bytes_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> calls_;
  std::map<std::string, std::uint64_t> bytes_;
};

}  // namespace gvfs::rpc
