// Per-procedure RPC counters. The paper's figures report "RPCs transferred
// over the network" by procedure (GETATTR, LOOKUP, READ, WRITE, GETINV,
// CALLBACK); a StatsMap is attached to each WAN-facing RPC node and counts
// outgoing calls at send time. Loopback (kernel-client -> local proxy)
// traffic is deliberately left unattached, matching the paper's counting.
//
// Beyond the paper's counts, the map tracks a concurrency gauge (calls in
// flight now / at peak) and per-procedure completion latency (sum + max), so
// pipelined paths (windowed write-back, read-ahead, callback multicast) are
// observable in bench output rather than inferred from runtimes.
//
// Hot-path shape: labels are interned once into dense Handles (Intern is the
// only string-keyed lookup, and callers cache its result), and every counter
// update is an array index. Reset() zeroes counters but keeps the interning
// table, so cached handles stay valid across measurement windows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "metrics/histogram.h"

namespace gvfs::rpc {

class StatsMap {
 public:
  /// Dense id for an interned procedure label.
  using Handle = std::uint32_t;

  /// Interns `label`, returning its dense handle (stable for the lifetime of
  /// the StatsMap, including across Reset()). Cold path: callers on per-call
  /// paths intern once and reuse the handle.
  Handle Intern(const std::string& label) {
    auto [it, inserted] =
        index_.emplace(label, static_cast<Handle>(entries_.size()));
    if (inserted) entries_.emplace_back(Entry{label, 0, 0, {}});
    return it->second;
  }

  void Count(Handle h, std::size_t wire_bytes) {
    Entry& e = entries_[h];
    ++e.calls;
    e.bytes += wire_bytes;
  }

  void Count(const std::string& label, std::size_t wire_bytes) {
    Count(Intern(label), wire_bytes);
  }

  /// A logical call (send through final reply/timeout) entered flight.
  void BeginCall() {
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  }

  /// The matching completion; `latency` spans first send to resolution
  /// (including retransmissions), so it is what the application observed.
  void EndCall(Handle h, Duration latency) {
    if (in_flight_ > 0) --in_flight_;
    Latency& lat = entries_[h].latency;
    lat.sum += latency;
    lat.max = std::max(lat.max, latency);
    lat.hist.Record(
        static_cast<std::uint64_t>(latency > 0 ? latency / kMicrosecond : 0));
  }

  void EndCall(const std::string& label, Duration latency) {
    EndCall(Intern(label), latency);
  }

  std::uint64_t Calls(const std::string& label) const {
    const Entry* e = FindEntry(label);
    return e == nullptr ? 0 : e->calls;
  }

  std::uint64_t Bytes(const std::string& label) const {
    const Entry* e = FindEntry(label);
    return e == nullptr ? 0 : e->bytes;
  }

  std::uint64_t TotalCalls() const {
    std::uint64_t sum = 0;
    for (const Entry& e : entries_) sum += e.calls;
    return sum;
  }

  std::uint64_t TotalBytes() const {
    std::uint64_t sum = 0;
    for (const Entry& e : entries_) sum += e.bytes;
    return sum;
  }

  std::uint64_t InFlight() const { return in_flight_; }
  std::uint64_t PeakInFlight() const { return peak_in_flight_; }

  Duration LatencySum(const std::string& label) const {
    const Entry* e = FindEntry(label);
    return e == nullptr ? 0 : e->latency.sum;
  }

  Duration LatencyMax(const std::string& label) const {
    const Entry* e = FindEntry(label);
    return e == nullptr ? 0 : e->latency.max;
  }

  /// Mean completion latency, or 0 when no call finished under this label.
  Duration LatencyAvg(const std::string& label) const {
    const Entry* e = FindEntry(label);
    if (e == nullptr || e->latency.hist.count() == 0) return 0;
    return e->latency.sum / static_cast<Duration>(e->latency.hist.count());
  }

  /// Latency percentile from the log-bucketed histogram (power-of-two
  /// microsecond buckets, metrics::LogHistogram), or 0 when no call finished
  /// under this label. The value returned is the bucket's upper bound,
  /// clamped to the nanosecond-resolution max we track here, so the tail is
  /// never under-reported by more than one bucket (a factor of two at
  /// microsecond resolution).
  Duration LatencyPercentile(const std::string& label, double pct) const {
    const Entry* e = FindEntry(label);
    if (e == nullptr || e->latency.hist.count() == 0) return 0;
    const auto upper_us = e->latency.hist.PercentileBucketUpperBound(pct);
    return std::min(e->latency.max,
                    static_cast<Duration>(upper_us) * kMicrosecond);
  }

  Duration LatencyP50(const std::string& label) const {
    return LatencyPercentile(label, 50);
  }
  Duration LatencyP95(const std::string& label) const {
    return LatencyPercentile(label, 95);
  }
  Duration LatencyP99(const std::string& label) const {
    return LatencyPercentile(label, 99);
  }

  /// Labels that counted at least one call, in sorted order — the stable
  /// iteration order every report uses.
  std::vector<std::string> Labels() const {
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [label, h] : index_) {
      if (entries_[h].calls > 0) out.push_back(label);
    }
    return out;
  }

  /// Zeroes every counter and gauge. Interned labels (and therefore handles
  /// cached by RPC nodes) survive, so measurement windows can be re-armed
  /// mid-run.
  void Reset() {
    for (Entry& e : entries_) {
      e.calls = 0;
      e.bytes = 0;
      e.latency = Latency{};
    }
    in_flight_ = 0;
    peak_in_flight_ = 0;
  }

 private:
  /// Latency distribution: the shared log-bucketed histogram records
  /// truncated microseconds (bucket b holds [2^(b-1), 2^b) us); sum and max
  /// stay at nanosecond resolution for exact averages and tail clamping.
  struct Latency {
    metrics::LogHistogram hist;
    Duration sum = 0;
    Duration max = 0;
  };

  struct Entry {
    std::string label;
    std::uint64_t calls = 0;
    std::uint64_t bytes = 0;
    Latency latency;
  };

  const Entry* FindEntry(const std::string& label) const {
    auto it = index_.find(label);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  // gvfs-lint: allow(hot-path-type): ordered iteration feeds reports; per-call paths use the Handle fast path, not this index
  std::map<std::string, Handle> index_;
  std::vector<Entry> entries_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t peak_in_flight_ = 0;
};

}  // namespace gvfs::rpc
