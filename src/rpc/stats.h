// Per-procedure RPC counters. The paper's figures report "RPCs transferred
// over the network" by procedure (GETATTR, LOOKUP, READ, WRITE, GETINV,
// CALLBACK); a StatsMap is attached to each WAN-facing RPC node and counts
// outgoing calls at send time. Loopback (kernel-client -> local proxy)
// traffic is deliberately left unattached, matching the paper's counting.
//
// Beyond the paper's counts, the map tracks a concurrency gauge (calls in
// flight now / at peak) and per-procedure completion latency (sum + max), so
// pipelined paths (windowed write-back, read-ahead, callback multicast) are
// observable in bench output rather than inferred from runtimes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"
#include "metrics/histogram.h"

namespace gvfs::rpc {

class StatsMap {
 public:
  void Count(const std::string& label, std::size_t wire_bytes) {
    ++calls_[label];
    bytes_[label] += wire_bytes;
  }

  /// A logical call (send through final reply/timeout) entered flight.
  void BeginCall() {
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  }

  /// The matching completion; `latency` spans first send to resolution
  /// (including retransmissions), so it is what the application observed.
  void EndCall(const std::string& label, Duration latency) {
    if (in_flight_ > 0) --in_flight_;
    Latency& lat = latency_[label];
    lat.sum += latency;
    lat.max = std::max(lat.max, latency);
    lat.hist.Record(
        static_cast<std::uint64_t>(latency > 0 ? latency / kMicrosecond : 0));
  }

  std::uint64_t Calls(const std::string& label) const {
    auto it = calls_.find(label);
    return it == calls_.end() ? 0 : it->second;
  }

  std::uint64_t Bytes(const std::string& label) const {
    auto it = bytes_.find(label);
    return it == bytes_.end() ? 0 : it->second;
  }

  std::uint64_t TotalCalls() const {
    std::uint64_t sum = 0;
    for (const auto& [label, n] : calls_) sum += n;
    return sum;
  }

  std::uint64_t TotalBytes() const {
    std::uint64_t sum = 0;
    for (const auto& [label, n] : bytes_) sum += n;
    return sum;
  }

  std::uint64_t InFlight() const { return in_flight_; }
  std::uint64_t PeakInFlight() const { return peak_in_flight_; }

  Duration LatencySum(const std::string& label) const {
    auto it = latency_.find(label);
    return it == latency_.end() ? 0 : it->second.sum;
  }

  Duration LatencyMax(const std::string& label) const {
    auto it = latency_.find(label);
    return it == latency_.end() ? 0 : it->second.max;
  }

  /// Mean completion latency, or 0 when no call finished under this label.
  Duration LatencyAvg(const std::string& label) const {
    auto it = latency_.find(label);
    if (it == latency_.end() || it->second.hist.count() == 0) return 0;
    return it->second.sum / static_cast<Duration>(it->second.hist.count());
  }

  /// Latency percentile from the log-bucketed histogram (power-of-two
  /// microsecond buckets, metrics::LogHistogram), or 0 when no call finished
  /// under this label. The value returned is the bucket's upper bound,
  /// clamped to the nanosecond-resolution max we track here, so the tail is
  /// never under-reported by more than one bucket (a factor of two at
  /// microsecond resolution).
  Duration LatencyPercentile(const std::string& label, double pct) const {
    auto it = latency_.find(label);
    if (it == latency_.end() || it->second.hist.count() == 0) return 0;
    const Latency& lat = it->second;
    const auto upper_us = lat.hist.PercentileBucketUpperBound(pct);
    return std::min(lat.max, static_cast<Duration>(upper_us) * kMicrosecond);
  }

  Duration LatencyP50(const std::string& label) const {
    return LatencyPercentile(label, 50);
  }
  Duration LatencyP95(const std::string& label) const {
    return LatencyPercentile(label, 95);
  }
  Duration LatencyP99(const std::string& label) const {
    return LatencyPercentile(label, 99);
  }

  const std::map<std::string, std::uint64_t>& calls() const { return calls_; }

  void Reset() {
    calls_.clear();
    bytes_.clear();
    latency_.clear();
    in_flight_ = 0;
    peak_in_flight_ = 0;
  }

 private:
  /// Latency distribution: the shared log-bucketed histogram records
  /// truncated microseconds (bucket b holds [2^(b-1), 2^b) us); sum and max
  /// stay at nanosecond resolution for exact averages and tail clamping.
  struct Latency {
    metrics::LogHistogram hist;
    Duration sum = 0;
    Duration max = 0;
  };

  std::map<std::string, std::uint64_t> calls_;
  std::map<std::string, std::uint64_t> bytes_;
  std::map<std::string, Latency> latency_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t peak_in_flight_ = 0;
};

}  // namespace gvfs::rpc
