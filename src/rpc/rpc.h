// ONC-RPC-style request/reply layer over the simulated network.
//
// Every RpcNode is simultaneously client and server — the property GVFS
// proxies rely on for server-to-client CALLBACK RPCs (§4.3.2 of the paper).
// Features modeled after the real stack: xid matching, timeout +
// retransmission (UDP semantics), a bounded duplicate-request cache so
// retransmitted non-idempotent calls are not re-executed, and per-procedure
// wire statistics.
//
// Hot-path shape (this layer is crossed twice per simulated RPC):
//   - handler dispatch is a two-level dense table (program scan + proc
//     index), not a map lookup;
//   - pending calls and the duplicate-request cache live in open-addressed
//     FlatMaps;
//   - received bodies are zero-copy: rpc::Body is a window into the datagram
//     buffer, which it owns and recycles into the XDR encode arena when
//     dropped;
//   - per-procedure stats go through pre-resolved StatsMap handles cached by
//     (prog, proc).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/flat_map.h"
#include "common/types.h"
#include "net/network.h"
#include "rpc/stats.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "trace/trace.h"
#include "xdr/xdr.h"

namespace gvfs::rpc {

enum class RpcError {
  kTimedOut,      // no reply after all retransmissions
  kProcUnavail,   // no handler registered at the peer
  kGarbageArgs,   // peer failed to decode the arguments
  kSystemErr,     // peer handler failed internally
  kHostDown,      // local node is crashed; cannot send
};

const char* RpcErrorName(RpcError e);

/// A received RPC message body: a zero-copy window into the datagram that
/// carried it. Owns the datagram buffer and recycles it into the XDR encode
/// arena on destruction, closing the buffer lifecycle (Encoder -> packet ->
/// Body -> arena). Decode through the ByteView conversion; call ToBytes()
/// for the rare paths that need an owned copy.
///
/// NOTE: ctors are user-declared (non-aggregate) on purpose — same GCC 12
/// by-value coroutine parameter rule as CallOptions below.
class Body {
 public:
  Body() = default;
  /// Takes ownership of `buffer`; the body is buffer[offset, offset+len).
  Body(Bytes buffer, std::size_t offset, std::size_t len)
      : buffer_(std::move(buffer)), offset_(offset), len_(len) {}

  Body(Body&& o) noexcept
      : buffer_(std::move(o.buffer_)),
        offset_(std::exchange(o.offset_, 0)),
        len_(std::exchange(o.len_, 0)) {}

  Body& operator=(Body&& o) noexcept {
    if (this != &o) {
      Release();
      buffer_ = std::move(o.buffer_);
      offset_ = std::exchange(o.offset_, 0);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }

  Body(const Body&) = delete;
  Body& operator=(const Body&) = delete;

  ~Body() { Release(); }

  const std::uint8_t* data() const { return buffer_.data() + offset_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  ByteView view() const { return ByteView(data(), len_); }
  operator ByteView() const { return view(); }  // NOLINT: view adaptor

  /// Ownership escape hatch: materializes just the body bytes.
  Bytes ToBytes() const { return Bytes(data(), data() + len_); }

 private:
  void Release() {
    if (buffer_.capacity() != 0) xdr::detail::ArenaRelease(std::move(buffer_));
    offset_ = 0;
    len_ = 0;
  }

  Bytes buffer_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

/// Per-call knobs. `label` names the procedure in stats output.
///
/// NOTE: the constructors are user-declared (making this a non-aggregate) on
/// purpose: GCC 12 miscompiles by-value coroutine parameters of aggregate
/// type with non-trivial members (frame copy corruption). Any struct with
/// string/vector members that is passed by value into a coroutine in this
/// codebase must declare its ctors the same way (see tests/sim_test.cpp
/// regression note).
struct CallOptions {
  CallOptions() = default;
  CallOptions(const CallOptions&) = default;
  CallOptions(CallOptions&&) noexcept = default;
  CallOptions& operator=(const CallOptions&) = default;
  CallOptions& operator=(CallOptions&&) noexcept = default;

  std::string label;
  Duration timeout = Milliseconds(1100);  // NFS-over-UDP default retrans time
  int max_retries = 5;
  /// Causal parent: when valid, the new call becomes a child span in the
  /// parent's trace; otherwise the call starts a fresh trace (root span).
  trace::SpanRef parent{};
};

/// Context handed to server handlers.
struct CallContext {
  net::Address caller;
  std::uint32_t xid = 0;
  /// The call's span, decoded from the wire header. Handlers pass it as
  /// CallOptions::parent on nested RPCs to extend the causal tree.
  trace::SpanRef span{};
};

/// Handlers return the XDR-encoded reply body; protocol-level errors (e.g.
/// NFS3ERR_*) ride inside that body as in real NFS.
// gvfs-lint: allow(hot-path-type): handler erasure happens once at Register time; dispatch stores and calls it without re-wrapping
using Handler = std::function<sim::Task<Bytes>(CallContext, Body)>;

class RpcNode {
 public:
  RpcNode(sim::Scheduler& sched, net::Network& network, net::Address address,
          std::string name);

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  net::Address address() const { return address_; }
  const std::string& name() const { return name_; }

  void RegisterHandler(std::uint32_t prog, std::uint32_t proc, Handler handler);

  /// Issues a call and awaits the matching reply, retransmitting on timeout.
  sim::Task<Expected<Body, RpcError>> Call(net::Address dst, std::uint32_t prog,
                                           std::uint32_t proc, Bytes args,
                                           CallOptions opts);

  /// Attaches a per-procedure stats sink (counts outgoing calls). May be null.
  void SetStatsSink(StatsMap* sink) {
    stats_ = sink;
    stat_handles_.Clear();  // handles belong to the previous sink
  }

  /// Attaches a tracer recording RPC lifecycle events (send, retransmit,
  /// reply, timeout, handler execution, duplicate-cache hits). Components
  /// layered on this node (the gvfs proxies) record through it as well.
  void SetTracer(trace::Tracer tracer) { tracer_ = tracer; }
  const trace::Tracer& tracer() const { return tracer_; }

  /// Crash simulation: a down node drops all incoming packets and refuses to
  /// send. Soft state (duplicate-request cache, pending calls) is lost.
  void SetDown(bool down);
  bool down() const { return down_; }

  /// Called by the host packet mux.
  void OnPacket(net::Packet packet);

 private:
  enum class AcceptStat : std::uint32_t {
    kSuccess = 0,
    kProcUnavail = 2,
    kGarbageArgs = 4,
    kSystemErr = 5,
  };

  struct Reply {
    AcceptStat stat;
    Body body;
  };

  /// Reply slot for one in-flight call. Lives on the Call coroutine's frame
  /// (which always outlives the wait: the frame erases its pending_ entry
  /// before dying, and a timeout event is either cancelled on reply delivery
  /// or has already fired), so no shared-ownership allocation is needed.
  struct PendingCall {
    std::optional<Reply> reply;
    std::coroutine_handle<> waiter;
    sim::EventId timeout_event;
    bool timed_out = false;
  };

  struct ReplyAwaiter;  // defined in rpc.cpp; awaits a PendingCall

  // Duplicate-request cache entry. `reply` is empty while in progress.
  struct DrcEntry {
    bool completed = false;
    AcceptStat stat = AcceptStat::kSuccess;
    Bytes reply;
  };

  struct DrcKey {
    HostId host = kInvalidHost;
    std::uint32_t port = 0;
    std::uint32_t xid = 0;
    friend bool operator==(const DrcKey&, const DrcKey&) = default;
  };

  // Equality on the full key is exact, so hash quality affects probe length
  // only — never protocol behavior.
  struct DrcKeyHash {
    std::uint64_t operator()(const DrcKey& k) const {
      return MixHash64((static_cast<std::uint64_t>(k.host) << 32) | k.port) ^
             MixHash64(k.xid);
    }
  };

  /// Handlers for one program: dense by procedure number (procedures are
  /// small contiguous ints in every protocol we model).
  struct ProgHandlers {
    std::uint32_t prog = 0;
    std::vector<Handler> by_proc;
  };

  /// Cached stats handle for a (prog, proc): `label` verifies the cache,
  /// since labels arrive per-call via CallOptions.
  struct StatHandle {
    std::string label;
    StatsMap::Handle handle = 0;
  };

  Handler* FindHandler(std::uint32_t prog, std::uint32_t proc);
  StatsMap::Handle StatHandleFor(std::uint32_t prog, std::uint32_t proc,
                                 const std::string& label);

  void SendCall(net::Address dst, std::uint32_t xid, std::uint32_t prog,
                std::uint32_t proc, const Bytes& args, bool tracked,
                StatsMap::Handle stat_handle, std::uint64_t trace_id,
                std::uint64_t span_id, std::uint64_t parent_span_id);
  void SendReply(net::Address dst, std::uint32_t xid, AcceptStat stat,
                 const Bytes& body);
  sim::Task<void> RunHandler(const Handler& handler, CallContext ctx,
                             Body args, DrcKey key);
  void DrcInsert(const DrcKey& key);
  void DrcTrim();

  sim::Scheduler& sched_;
  net::Network& network_;
  net::Address address_;
  std::string name_;
  bool down_ = false;

  std::uint32_t next_xid_ = 1;
  FlatMap<std::uint32_t, PendingCall*> pending_;  // slots live on Call frames
  std::vector<ProgHandlers> handlers_;  // tiny: one entry per program

  FlatMap<DrcKey, DrcEntry, DrcKeyHash> drc_;
  std::deque<DrcKey> drc_order_;
  static constexpr std::size_t kDrcCapacity = 2048;

  StatsMap* stats_ = nullptr;
  FlatMap<std::uint64_t, StatHandle> stat_handles_;  // key: (prog << 32) | proc
  trace::Tracer tracer_;
};

/// Owns all RPC nodes in a simulation and demultiplexes incoming packets to
/// them by destination port.
class Domain {
 public:
  Domain(sim::Scheduler& sched, net::Network& network)
      : sched_(sched), network_(network) {}

  /// Creates a node bound to (host, port). Port must be unique per host.
  RpcNode& CreateNode(HostId host, std::uint32_t port, std::string name);

  RpcNode* Find(net::Address address);

  /// Attaches a tracer to every node, existing and future.
  void SetTracer(trace::Tracer tracer);

  sim::Scheduler& scheduler() { return sched_; }
  net::Network& network() { return network_; }

 private:
  static std::uint64_t AddressKey(net::Address a) {
    return (static_cast<std::uint64_t>(a.host) << 32) | a.port;
  }

  sim::Scheduler& sched_;
  net::Network& network_;
  FlatMap<std::uint64_t, std::unique_ptr<RpcNode>> nodes_;
  /// Per-host dispatch table: (port, node) pairs, scanned linearly. Hosts
  /// bind one or two ports, so the scan beats hashing on the per-packet path;
  /// an empty inner vector doubles as "mux not yet installed".
  std::vector<std::vector<std::pair<std::uint32_t, RpcNode*>>> ports_by_host_;
  trace::Tracer tracer_;
};

}  // namespace gvfs::rpc
