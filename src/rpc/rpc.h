// ONC-RPC-style request/reply layer over the simulated network.
//
// Every RpcNode is simultaneously client and server — the property GVFS
// proxies rely on for server-to-client CALLBACK RPCs (§4.3.2 of the paper).
// Features modeled after the real stack: xid matching, timeout +
// retransmission (UDP semantics), a bounded duplicate-request cache so
// retransmitted non-idempotent calls are not re-executed, and per-procedure
// wire statistics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/expected.h"
#include "common/types.h"
#include "net/network.h"
#include "rpc/stats.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "trace/trace.h"

namespace gvfs::rpc {

enum class RpcError {
  kTimedOut,      // no reply after all retransmissions
  kProcUnavail,   // no handler registered at the peer
  kGarbageArgs,   // peer failed to decode the arguments
  kSystemErr,     // peer handler failed internally
  kHostDown,      // local node is crashed; cannot send
};

const char* RpcErrorName(RpcError e);

/// Per-call knobs. `label` names the procedure in stats output.
///
/// NOTE: the constructors are user-declared (making this a non-aggregate) on
/// purpose: GCC 12 miscompiles by-value coroutine parameters of aggregate
/// type with non-trivial members (frame copy corruption). Any struct with
/// string/vector members that is passed by value into a coroutine in this
/// codebase must declare its ctors the same way (see tests/sim_test.cpp
/// regression note).
struct CallOptions {
  CallOptions() = default;
  CallOptions(const CallOptions&) = default;
  CallOptions(CallOptions&&) noexcept = default;
  CallOptions& operator=(const CallOptions&) = default;
  CallOptions& operator=(CallOptions&&) noexcept = default;

  std::string label;
  Duration timeout = Milliseconds(1100);  // NFS-over-UDP default retrans time
  int max_retries = 5;
  /// Causal parent: when valid, the new call becomes a child span in the
  /// parent's trace; otherwise the call starts a fresh trace (root span).
  trace::SpanRef parent{};
};

/// Context handed to server handlers.
struct CallContext {
  net::Address caller;
  std::uint32_t xid = 0;
  /// The call's span, decoded from the wire header. Handlers pass it as
  /// CallOptions::parent on nested RPCs to extend the causal tree.
  trace::SpanRef span{};
};

/// Handlers return the XDR-encoded reply body; protocol-level errors (e.g.
/// NFS3ERR_*) ride inside that body as in real NFS.
using Handler = std::function<sim::Task<Bytes>(CallContext, Bytes)>;

class RpcNode {
 public:
  RpcNode(sim::Scheduler& sched, net::Network& network, net::Address address,
          std::string name);

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  net::Address address() const { return address_; }
  const std::string& name() const { return name_; }

  void RegisterHandler(std::uint32_t prog, std::uint32_t proc, Handler handler);

  /// Issues a call and awaits the matching reply, retransmitting on timeout.
  sim::Task<Expected<Bytes, RpcError>> Call(net::Address dst, std::uint32_t prog,
                                            std::uint32_t proc, Bytes args,
                                            CallOptions opts);

  /// Attaches a per-procedure stats sink (counts outgoing calls). May be null.
  void SetStatsSink(StatsMap* sink) { stats_ = sink; }

  /// Attaches a tracer recording RPC lifecycle events (send, retransmit,
  /// reply, timeout, handler execution, duplicate-cache hits). Components
  /// layered on this node (the gvfs proxies) record through it as well.
  void SetTracer(trace::Tracer tracer) { tracer_ = tracer; }
  const trace::Tracer& tracer() const { return tracer_; }

  /// Crash simulation: a down node drops all incoming packets and refuses to
  /// send. Soft state (duplicate-request cache, pending calls) is lost.
  void SetDown(bool down);
  bool down() const { return down_; }

  /// Called by the host packet mux.
  void OnPacket(net::Packet packet);

 private:
  enum class AcceptStat : std::uint32_t {
    kSuccess = 0,
    kProcUnavail = 2,
    kGarbageArgs = 4,
    kSystemErr = 5,
  };

  struct Reply {
    AcceptStat stat;
    Bytes body;
  };

  // Duplicate-request cache entry. `reply` is empty while in progress.
  struct DrcEntry {
    bool completed = false;
    AcceptStat stat = AcceptStat::kSuccess;
    Bytes reply;
  };

  using DrcKey = std::tuple<HostId, std::uint32_t, std::uint32_t>;  // host, port, xid

  void SendCall(net::Address dst, std::uint32_t xid, std::uint32_t prog,
                std::uint32_t proc, const Bytes& args, const std::string& label,
                std::uint64_t trace_id, std::uint64_t span_id,
                std::uint64_t parent_span_id);
  void SendReply(net::Address dst, std::uint32_t xid, AcceptStat stat,
                 const Bytes& body);
  sim::Task<void> RunHandler(Handler handler, CallContext ctx, Bytes args,
                             DrcKey key);
  void DrcInsert(const DrcKey& key);
  void DrcTrim();

  sim::Scheduler& sched_;
  net::Network& network_;
  net::Address address_;
  std::string name_;
  bool down_ = false;

  std::uint32_t next_xid_ = 1;
  std::map<std::uint64_t, std::shared_ptr<sim::OneShot<Reply>>> pending_;
  std::map<std::uint64_t, Handler> handlers_;  // (prog << 32) | proc

  std::map<DrcKey, DrcEntry> drc_;
  std::deque<DrcKey> drc_order_;
  static constexpr std::size_t kDrcCapacity = 2048;

  StatsMap* stats_ = nullptr;
  trace::Tracer tracer_;
};

/// Owns all RPC nodes in a simulation and demultiplexes incoming packets to
/// them by destination port.
class Domain {
 public:
  Domain(sim::Scheduler& sched, net::Network& network)
      : sched_(sched), network_(network) {}

  /// Creates a node bound to (host, port). Port must be unique per host.
  RpcNode& CreateNode(HostId host, std::uint32_t port, std::string name);

  RpcNode* Find(net::Address address);

  /// Attaches a tracer to every node, existing and future.
  void SetTracer(trace::Tracer tracer);

  sim::Scheduler& scheduler() { return sched_; }
  net::Network& network() { return network_; }

 private:
  sim::Scheduler& sched_;
  net::Network& network_;
  std::map<net::Address, std::unique_ptr<RpcNode>> nodes_;
  std::map<HostId, bool> mux_installed_;
  trace::Tracer tracer_;
};

}  // namespace gvfs::rpc
