#include "rpc/rpc.h"

#include <cassert>

#include "common/logging.h"
#include "xdr/xdr.h"

namespace gvfs::rpc {
namespace {

// Wire overhead beyond the XDR header we actually encode: UDP/IP headers
// plus AUTH_SYS credential/verifier, approximating a real ONC RPC datagram.
constexpr std::size_t kDatagramOverhead = 28 + 72;

constexpr std::uint32_t kMsgCall = 0;
constexpr std::uint32_t kMsgReply = 1;

std::uint64_t ProgProcKey(std::uint32_t prog, std::uint32_t proc) {
  return (static_cast<std::uint64_t>(prog) << 32) | proc;
}

}  // namespace

const char* RpcErrorName(RpcError e) {
  switch (e) {
    case RpcError::kTimedOut:
      return "timed out";
    case RpcError::kProcUnavail:
      return "procedure unavailable";
    case RpcError::kGarbageArgs:
      return "garbage arguments";
    case RpcError::kSystemErr:
      return "system error";
    case RpcError::kHostDown:
      return "host down";
  }
  return "?";
}

RpcNode::RpcNode(sim::Scheduler& sched, net::Network& network, net::Address address,
                 std::string name)
    : sched_(sched), network_(network), address_(address), name_(std::move(name)) {}

void RpcNode::RegisterHandler(std::uint32_t prog, std::uint32_t proc,
                              Handler handler) {
  handlers_[ProgProcKey(prog, proc)] = std::move(handler);
}

void RpcNode::SetDown(bool down) {
  down_ = down;
  if (down) {
    // Crash: all soft state is lost. Pending callers will time out.
    drc_.clear();
    drc_order_.clear();
    pending_.clear();
  }
}

void RpcNode::SendCall(net::Address dst, std::uint32_t xid, std::uint32_t prog,
                       std::uint32_t proc, const Bytes& args,
                       const std::string& label, std::uint64_t trace_id,
                       std::uint64_t span_id, std::uint64_t parent_span_id) {
  xdr::Encoder enc;
  enc.PutU32(xid);
  enc.PutU32(kMsgCall);
  enc.PutU32(prog);
  enc.PutU32(proc);
  // Causal-span header (Dapper-style): lets the receiving handler extend
  // the caller's trace across the node boundary.
  enc.PutU64(trace_id);
  enc.PutU64(span_id);
  enc.PutU64(parent_span_id);
  enc.PutOpaque(args);

  net::Packet packet;
  packet.src = address_;
  packet.dst = dst;
  packet.payload = enc.Take();
  packet.wire_size = packet.payload.size() + kDatagramOverhead;

  if (stats_ != nullptr && dst.host != address_.host) {
    stats_->Count(label, packet.wire_size);
  }
  network_.Send(std::move(packet));
}

void RpcNode::SendReply(net::Address dst, std::uint32_t xid, AcceptStat stat,
                        const Bytes& body) {
  xdr::Encoder enc;
  enc.PutU32(xid);
  enc.PutU32(kMsgReply);
  enc.PutU32(static_cast<std::uint32_t>(stat));
  enc.PutOpaque(body);

  net::Packet packet;
  packet.src = address_;
  packet.dst = dst;
  packet.payload = enc.Take();
  packet.wire_size = packet.payload.size() + kDatagramOverhead;
  network_.Send(std::move(packet));
}

sim::Task<Expected<Bytes, RpcError>> RpcNode::Call(net::Address dst,
                                                   std::uint32_t prog,
                                                   std::uint32_t proc, Bytes args,
                                                   CallOptions opts) {
  if (down_) co_return Unexpected(RpcError::kHostDown);

  const std::uint32_t xid = next_xid_++;
  auto slot = std::make_shared<sim::OneShot<Reply>>(sched_);
  pending_[xid] = slot;

  // Span identity: (host, port, xid) is unique per call in a run, so it
  // doubles as the span id. A call without a parent roots a new trace.
  const std::uint64_t span_id = (static_cast<std::uint64_t>(address_.host) << 48) |
                                (static_cast<std::uint64_t>(address_.port) << 32) |
                                xid;
  const std::uint64_t trace_id =
      opts.parent.valid() ? opts.parent.trace_id : span_id;
  const std::uint64_t parent_span_id = opts.parent.span_id;

  // The gauge/latency instrumentation mirrors Count()'s WAN-only rule.
  const bool tracked = stats_ != nullptr && dst.host != address_.host;
  const SimTime started = sched_.Now();
  if (tracked) stats_->BeginCall();

  std::optional<Reply> reply;
  for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
    tracer_.Rpc(attempt == 0 ? trace::EventType::kRpcSend
                             : trace::EventType::kRpcRetransmit,
                address_.host, address_.port, dst.host, dst.port, xid, prog,
                proc, opts.label, trace_id, span_id, parent_span_id);
    SendCall(dst, xid, prog, proc, args, opts.label, trace_id, span_id,
             parent_span_id);
    reply = co_await slot->WaitUntil(sched_.Now() + opts.timeout);
    if (reply.has_value()) break;
    if (down_) break;  // crashed while waiting
    GVFS_DEBUG("%s: retransmit %s xid=%u (attempt %d)", name_.c_str(),
               opts.label.c_str(), xid, attempt + 1);
  }
  pending_.erase(xid);
  tracer_.Rpc(reply.has_value() ? trace::EventType::kRpcReply
                                : trace::EventType::kRpcTimeout,
              address_.host, address_.port, dst.host, dst.port, xid, prog,
              proc, opts.label, trace_id, span_id, parent_span_id);
  if (tracked) stats_->EndCall(opts.label, sched_.Now() - started);

  if (!reply.has_value()) co_return Unexpected(RpcError::kTimedOut);
  switch (reply->stat) {
    case AcceptStat::kSuccess:
      co_return std::move(reply->body);
    case AcceptStat::kProcUnavail:
      co_return Unexpected(RpcError::kProcUnavail);
    case AcceptStat::kGarbageArgs:
      co_return Unexpected(RpcError::kGarbageArgs);
    case AcceptStat::kSystemErr:
      co_return Unexpected(RpcError::kSystemErr);
  }
  co_return Unexpected(RpcError::kSystemErr);
}

void RpcNode::OnPacket(net::Packet packet) {
  if (down_) return;

  xdr::Decoder dec(packet.payload);
  auto xid = dec.GetU32();
  auto msg_type = dec.GetU32();
  if (!xid || !msg_type) return;  // malformed; drop

  if (*msg_type == kMsgReply) {
    auto stat = dec.GetU32();
    if (!stat) return;
    auto it = pending_.find(*xid);
    if (it == pending_.end()) return;  // late reply after timeout; drop
    auto body = dec.GetOpaque();
    if (!body) return;
    it->second->Set(Reply{static_cast<AcceptStat>(*stat), std::move(*body)});
    return;
  }

  // Incoming call.
  auto prog = dec.GetU32();
  auto proc = dec.GetU32();
  if (!prog || !proc) return;
  auto trace_id = dec.GetU64();
  auto span_id = dec.GetU64();
  auto parent_span_id = dec.GetU64();
  if (!trace_id || !span_id || !parent_span_id) return;

  const DrcKey key{packet.src.host, packet.src.port, *xid};
  auto drc_it = drc_.find(key);
  if (drc_it != drc_.end()) {
    if (drc_it->second.completed) {
      // Retransmitted request we already served: resend the cached reply
      // without re-executing the handler.
      tracer_.Rpc(trace::EventType::kRpcDrcHit, address_.host, address_.port,
                  packet.src.host, packet.src.port, *xid, *prog, *proc, "");
      SendReply(packet.src, *xid, drc_it->second.stat, drc_it->second.reply);
    }
    // In progress: drop the duplicate; the original execution will reply.
    return;
  }

  auto handler_it = handlers_.find(ProgProcKey(*prog, *proc));
  if (handler_it == handlers_.end()) {
    SendReply(packet.src, *xid, AcceptStat::kProcUnavail, {});
    return;
  }

  auto args = dec.GetOpaque();
  if (!args) {
    SendReply(packet.src, *xid, AcceptStat::kGarbageArgs, {});
    return;
  }
  DrcInsert(key);
  tracer_.Rpc(trace::EventType::kRpcExec, address_.host, address_.port,
              packet.src.host, packet.src.port, *xid, *prog, *proc, "",
              *trace_id, *span_id, *parent_span_id);
  // The handler executes inside the caller's span (shared-span model); any
  // RPCs it issues become children by passing ctx.span as their parent.
  CallContext ctx{packet.src, *xid, trace::SpanRef{*trace_id, *span_id}};
  sim::Spawn(RunHandler(handler_it->second, ctx, std::move(*args), key));
}

sim::Task<void> RpcNode::RunHandler(Handler handler, CallContext ctx, Bytes args,
                                    DrcKey key) {
  Bytes body = co_await handler(ctx, std::move(args));
  if (down_) co_return;  // crashed while serving; no reply
  // Closes the server-side execution interval opened by kRpcExec, so the
  // exporter can render the handler as a duration slice.
  tracer_.Rpc(trace::EventType::kRpcHandlerDone, address_.host, address_.port,
              ctx.caller.host, ctx.caller.port, ctx.xid, 0, 0, "",
              ctx.span.trace_id, ctx.span.span_id, 0);
  auto it = drc_.find(key);
  if (it != drc_.end()) {
    it->second.completed = true;
    it->second.stat = AcceptStat::kSuccess;
    it->second.reply = body;
  }
  SendReply(ctx.caller, ctx.xid, AcceptStat::kSuccess, body);
}

void RpcNode::DrcInsert(const DrcKey& key) {
  drc_[key] = DrcEntry{};
  drc_order_.push_back(key);
  DrcTrim();
}

void RpcNode::DrcTrim() {
  while (drc_order_.size() > kDrcCapacity) {
    drc_.erase(drc_order_.front());
    drc_order_.pop_front();
  }
}

RpcNode& Domain::CreateNode(HostId host, std::uint32_t port, std::string name) {
  net::Address address{host, port};
  assert(nodes_.find(address) == nodes_.end() && "port already bound");
  auto node = std::make_unique<RpcNode>(sched_, network_, address, std::move(name));
  RpcNode& ref = *node;
  ref.SetTracer(tracer_);
  nodes_[address] = std::move(node);

  if (!mux_installed_[host]) {
    mux_installed_[host] = true;
    network_.SetReceiver(host, [this](net::Packet packet) {
      RpcNode* target = Find(packet.dst);
      if (target != nullptr) target->OnPacket(std::move(packet));
    });
  }
  return ref;
}

RpcNode* Domain::Find(net::Address address) {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Domain::SetTracer(trace::Tracer tracer) {
  tracer_ = tracer;
  for (auto& [address, node] : nodes_) node->SetTracer(tracer);
}

}  // namespace gvfs::rpc
