#include "rpc/rpc.h"

#include <cassert>

#include "common/logging.h"
#include "xdr/xdr.h"

namespace gvfs::rpc {
namespace {

// Wire overhead beyond the XDR header we actually encode: UDP/IP headers
// plus AUTH_SYS credential/verifier, approximating a real ONC RPC datagram.
constexpr std::size_t kDatagramOverhead = 28 + 72;

constexpr std::uint32_t kMsgCall = 0;
constexpr std::uint32_t kMsgReply = 1;

std::uint64_t ProgProcKey(std::uint32_t prog, std::uint32_t proc) {
  return (static_cast<std::uint64_t>(prog) << 32) | proc;
}

}  // namespace

/// Awaits a reply in `pc` until `deadline`. Mirrors OneShot::WaitUntil, but
/// over frame-resident state: the timeout event captures a raw PendingCall
/// pointer, which is safe because reply delivery cancels the event (its
/// closure is destroyed immediately) and the Call frame outlives the wait.
struct RpcNode::ReplyAwaiter {
  PendingCall& pc;
  sim::Scheduler& sched;
  SimTime deadline;

  bool await_ready() const noexcept { return pc.reply.has_value(); }
  void await_suspend(std::coroutine_handle<> h) {
    pc.waiter = h;
    pc.timed_out = false;
    pc.timeout_event = sched.At(deadline, [p = &pc] {
      if (!p->waiter) return;
      p->timeout_event = {};
      p->timed_out = true;
      std::exchange(p->waiter, {}).resume();
    });
  }
  std::optional<Reply> await_resume() {
    if (pc.timed_out) {
      pc.timed_out = false;
      return std::nullopt;
    }
    return std::move(pc.reply);
  }
};

const char* RpcErrorName(RpcError e) {
  switch (e) {
    case RpcError::kTimedOut:
      return "timed out";
    case RpcError::kProcUnavail:
      return "procedure unavailable";
    case RpcError::kGarbageArgs:
      return "garbage arguments";
    case RpcError::kSystemErr:
      return "system error";
    case RpcError::kHostDown:
      return "host down";
  }
  return "?";
}

RpcNode::RpcNode(sim::Scheduler& sched, net::Network& network, net::Address address,
                 std::string name)
    : sched_(sched), network_(network), address_(address), name_(std::move(name)) {}

void RpcNode::RegisterHandler(std::uint32_t prog, std::uint32_t proc,
                              Handler handler) {
  for (ProgHandlers& ph : handlers_) {
    if (ph.prog == prog) {
      if (ph.by_proc.size() <= proc) ph.by_proc.resize(proc + 1);
      ph.by_proc[proc] = std::move(handler);
      return;
    }
  }
  ProgHandlers ph;
  ph.prog = prog;
  ph.by_proc.resize(proc + 1);
  ph.by_proc[proc] = std::move(handler);
  handlers_.push_back(std::move(ph));
}

Handler* RpcNode::FindHandler(std::uint32_t prog, std::uint32_t proc) {
  for (ProgHandlers& ph : handlers_) {
    if (ph.prog != prog) continue;
    if (proc >= ph.by_proc.size() || !ph.by_proc[proc]) return nullptr;
    return &ph.by_proc[proc];
  }
  return nullptr;
}

StatsMap::Handle RpcNode::StatHandleFor(std::uint32_t prog, std::uint32_t proc,
                                        const std::string& label) {
  StatHandle& cached = stat_handles_[ProgProcKey(prog, proc)];
  if (cached.label != label) {  // first use, or an unusual per-call relabel
    cached.handle = stats_->Intern(label);
    cached.label = label;
  }
  return cached.handle;
}

void RpcNode::SetDown(bool down) {
  down_ = down;
  if (down) {
    // Crash: all soft state is lost. Pending callers will time out.
    drc_.Clear();
    drc_order_.clear();
    pending_.Clear();
  }
}

void RpcNode::SendCall(net::Address dst, std::uint32_t xid, std::uint32_t prog,
                       std::uint32_t proc, const Bytes& args, bool tracked,
                       StatsMap::Handle stat_handle, std::uint64_t trace_id,
                       std::uint64_t span_id, std::uint64_t parent_span_id) {
  xdr::Encoder enc;
  // Fixed 40-byte call header, written through one reserved window: xid,
  // msg type, prog, proc, then the causal-span triple (Dapper-style; lets
  // the receiving handler extend the caller's trace across the node
  // boundary). Same wire layout as per-field Puts.
  std::uint8_t* h = enc.Reserve(40);
  xdr::Encoder::StoreBe32(h, xid);
  xdr::Encoder::StoreBe32(h + 4, kMsgCall);
  xdr::Encoder::StoreBe32(h + 8, prog);
  xdr::Encoder::StoreBe32(h + 12, proc);
  xdr::Encoder::StoreBe64(h + 16, trace_id);
  xdr::Encoder::StoreBe64(h + 24, span_id);
  xdr::Encoder::StoreBe64(h + 32, parent_span_id);
  enc.PutOpaque(args);

  net::Packet packet;
  packet.src = address_;
  packet.dst = dst;
  packet.payload = enc.Take();
  packet.wire_size = packet.payload.size() + kDatagramOverhead;

  if (tracked) stats_->Count(stat_handle, packet.wire_size);
  network_.Send(std::move(packet));
}

void RpcNode::SendReply(net::Address dst, std::uint32_t xid, AcceptStat stat,
                        const Bytes& body) {
  xdr::Encoder enc;
  // Fixed 12-byte reply header: xid, msg type, accept stat.
  std::uint8_t* h = enc.Reserve(12);
  xdr::Encoder::StoreBe32(h, xid);
  xdr::Encoder::StoreBe32(h + 4, kMsgReply);
  xdr::Encoder::StoreBe32(h + 8, static_cast<std::uint32_t>(stat));
  enc.PutOpaque(body);

  net::Packet packet;
  packet.src = address_;
  packet.dst = dst;
  packet.payload = enc.Take();
  packet.wire_size = packet.payload.size() + kDatagramOverhead;
  network_.Send(std::move(packet));
}

sim::Task<Expected<Body, RpcError>> RpcNode::Call(net::Address dst,
                                                  std::uint32_t prog,
                                                  std::uint32_t proc, Bytes args,
                                                  CallOptions opts) {
  if (down_) co_return Unexpected(RpcError::kHostDown);

  const std::uint32_t xid = next_xid_++;
  PendingCall pc;  // lives on this coroutine frame; no allocation
  pending_[xid] = &pc;

  // Span identity: (host, port, xid) is unique per call in a run, so it
  // doubles as the span id. A call without a parent roots a new trace.
  const std::uint64_t span_id = (static_cast<std::uint64_t>(address_.host) << 48) |
                                (static_cast<std::uint64_t>(address_.port) << 32) |
                                xid;
  const std::uint64_t trace_id =
      opts.parent.valid() ? opts.parent.trace_id : span_id;
  const std::uint64_t parent_span_id = opts.parent.span_id;

  // The gauge/latency instrumentation mirrors Count()'s WAN-only rule.
  const bool tracked = stats_ != nullptr && dst.host != address_.host;
  const StatsMap::Handle stat_handle =
      tracked ? StatHandleFor(prog, proc, opts.label) : 0;
  const SimTime started = sched_.Now();
  if (tracked) stats_->BeginCall();

  std::optional<Reply> reply;
  for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
    if (tracer_.enabled()) {
      tracer_.Rpc(attempt == 0 ? trace::EventType::kRpcSend
                               : trace::EventType::kRpcRetransmit,
                  address_.host, address_.port, dst.host, dst.port, xid, prog,
                  proc, opts.label, trace_id, span_id, parent_span_id);
    }
    SendCall(dst, xid, prog, proc, args, tracked, stat_handle, trace_id,
             span_id, parent_span_id);
    reply = co_await ReplyAwaiter{pc, sched_, sched_.Now() + opts.timeout};
    if (reply.has_value()) break;
    if (down_) break;  // crashed while waiting
    GVFS_DEBUG("%s: retransmit %s xid=%u (attempt %d)", name_.c_str(),
               opts.label.c_str(), xid, attempt + 1);
  }
  pending_.Erase(xid);
  // The args buffer usually came from an Encoder; recycle its capacity.
  xdr::detail::ArenaRelease(std::move(args));
  if (tracer_.enabled()) {
    tracer_.Rpc(reply.has_value() ? trace::EventType::kRpcReply
                                  : trace::EventType::kRpcTimeout,
                address_.host, address_.port, dst.host, dst.port, xid, prog,
                proc, opts.label, trace_id, span_id, parent_span_id);
  }
  if (tracked) stats_->EndCall(stat_handle, sched_.Now() - started);

  if (!reply.has_value()) co_return Unexpected(RpcError::kTimedOut);
  switch (reply->stat) {
    case AcceptStat::kSuccess:
      co_return std::move(reply->body);
    case AcceptStat::kProcUnavail:
      co_return Unexpected(RpcError::kProcUnavail);
    case AcceptStat::kGarbageArgs:
      co_return Unexpected(RpcError::kGarbageArgs);
    case AcceptStat::kSystemErr:
      co_return Unexpected(RpcError::kSystemErr);
  }
  co_return Unexpected(RpcError::kSystemErr);
}

void RpcNode::OnPacket(net::Packet packet) {
  if (down_) return;

  xdr::Decoder dec(packet.payload);
  // Headers are fixed-layout; read them through one bounds-checked window
  // per branch instead of per-field Expected unwrapping.
  const std::uint8_t* h = dec.GetRaw(8);
  if (h == nullptr) return;  // malformed; drop
  const std::uint32_t xid = xdr::Decoder::LoadBe32(h);
  const std::uint32_t msg_type = xdr::Decoder::LoadBe32(h + 4);

  if (msg_type == kMsgReply) {
    const std::uint8_t* rh = dec.GetRaw(4);
    if (rh == nullptr) return;
    const std::uint32_t stat = xdr::Decoder::LoadBe32(rh);
    auto* found = pending_.Find(xid);
    if (found == nullptr) return;  // late reply after timeout; drop
    auto body = dec.GetOpaque();
    if (!body) return;
    PendingCall& pc = **found;
    if (pc.reply.has_value()) return;  // duplicate reply; first wins
    // Zero-copy handoff: the reply body is a window into the datagram
    // buffer, which moves into the Body (and back to the arena when the
    // caller drops it).
    const std::size_t offset =
        static_cast<std::size_t>(body->ptr - packet.payload.data());
    pc.reply = Reply{static_cast<AcceptStat>(stat),
                     Body(std::move(packet.payload), offset, body->len)};
    if (pc.waiter) {
      auto waiter = std::exchange(pc.waiter, {});
      // Cancel-then-post mirrors OneShot::Set exactly, so the event sequence
      // (and therefore all virtual-time output) is unchanged.
      sched_.Cancel(std::exchange(pc.timeout_event, {}));
      sched_.At(sched_.Now(), [waiter] { waiter.resume(); });
    }
    return;
  }

  // Incoming call: fixed 32-byte remainder of the header (prog, proc, and
  // the causal-span triple).
  const std::uint8_t* ch = dec.GetRaw(32);
  if (ch == nullptr) return;
  const std::uint32_t prog = xdr::Decoder::LoadBe32(ch);
  const std::uint32_t proc = xdr::Decoder::LoadBe32(ch + 4);
  const std::uint64_t trace_id = xdr::Decoder::LoadBe64(ch + 8);
  const std::uint64_t span_id = xdr::Decoder::LoadBe64(ch + 16);
  const std::uint64_t parent_span_id = xdr::Decoder::LoadBe64(ch + 24);

  const DrcKey key{packet.src.host, packet.src.port, xid};
  if (const DrcEntry* hit = drc_.Find(key); hit != nullptr) {
    if (hit->completed) {
      // Retransmitted request we already served: resend the cached reply
      // without re-executing the handler.
      if (tracer_.enabled()) {
        tracer_.Rpc(trace::EventType::kRpcDrcHit, address_.host, address_.port,
                    packet.src.host, packet.src.port, xid, prog, proc, "");
      }
      SendReply(packet.src, xid, hit->stat, hit->reply);
    }
    // In progress: drop the duplicate; the original execution will reply.
    return;
  }

  Handler* handler = FindHandler(prog, proc);
  if (handler == nullptr) {
    SendReply(packet.src, xid, AcceptStat::kProcUnavail, {});
    return;
  }

  auto args = dec.GetOpaque();
  if (!args) {
    SendReply(packet.src, xid, AcceptStat::kGarbageArgs, {});
    return;
  }
  const std::size_t offset =
      static_cast<std::size_t>(args->ptr - packet.payload.data());
  Body body(std::move(packet.payload), offset, args->len);
  DrcInsert(key);
  if (tracer_.enabled()) {
    tracer_.Rpc(trace::EventType::kRpcExec, address_.host, address_.port,
                packet.src.host, packet.src.port, xid, prog, proc, "",
                trace_id, span_id, parent_span_id);
  }
  // The handler executes inside the caller's span (shared-span model); any
  // RPCs it issues become children by passing ctx.span as their parent.
  CallContext ctx{packet.src, xid, trace::SpanRef{trace_id, span_id}};
  sim::Spawn(RunHandler(*handler, ctx, std::move(body), key));
}

sim::Task<void> RpcNode::RunHandler(const Handler& handler, CallContext ctx,
                                    Body args, DrcKey key) {
  Bytes body = co_await handler(ctx, std::move(args));
  if (down_) co_return;  // crashed while serving; no reply
  // Closes the server-side execution interval opened by kRpcExec, so the
  // exporter can render the handler as a duration slice.
  if (tracer_.enabled()) {
    tracer_.Rpc(trace::EventType::kRpcHandlerDone, address_.host, address_.port,
                ctx.caller.host, ctx.caller.port, ctx.xid, 0, 0, "",
                ctx.span.trace_id, ctx.span.span_id, 0);
  }
  SendReply(ctx.caller, ctx.xid, AcceptStat::kSuccess, body);
  // The DRC takes the reply buffer by move (SendReply already copied it into
  // the outgoing packet), avoiding a per-call copy; buffers come from
  // per-handler Encoders and return to the arena when evicted (DrcTrim).
  if (DrcEntry* entry = drc_.Find(key); entry != nullptr) {
    entry->completed = true;
    entry->stat = AcceptStat::kSuccess;
    entry->reply = std::move(body);
  } else {
    xdr::detail::ArenaRelease(std::move(body));
  }
}

void RpcNode::DrcInsert(const DrcKey& key) {
  drc_[key] = DrcEntry{};
  drc_order_.push_back(key);
  DrcTrim();
}

void RpcNode::DrcTrim() {
  while (drc_order_.size() > kDrcCapacity) {
    DrcEntry evicted;
    if (drc_.Extract(drc_order_.front(), &evicted)) {
      xdr::detail::ArenaRelease(std::move(evicted.reply));
    }
    drc_order_.pop_front();
  }
}

RpcNode& Domain::CreateNode(HostId host, std::uint32_t port, std::string name) {
  net::Address address{host, port};
  assert(nodes_.Find(AddressKey(address)) == nullptr && "port already bound");
  auto node = std::make_unique<RpcNode>(sched_, network_, address, std::move(name));
  RpcNode& ref = *node;
  ref.SetTracer(tracer_);
  nodes_[AddressKey(address)] = std::move(node);

  if (ports_by_host_.size() <= host) ports_by_host_.resize(host + 1);
  if (ports_by_host_[host].empty()) {
    network_.SetReceiver(host, [this, host](net::Packet packet) {
      // Per-packet dispatch: linear scan of the host's (port, node) pairs —
      // one or two entries in practice, cheaper than hashing the address.
      for (const auto& [node_port, target] : ports_by_host_[host]) {
        if (node_port == packet.dst.port) {
          target->OnPacket(std::move(packet));
          return;
        }
      }
    });
  }
  ports_by_host_[host].emplace_back(port, &ref);
  return ref;
}

RpcNode* Domain::Find(net::Address address) {
  auto* node = nodes_.Find(AddressKey(address));
  return node == nullptr ? nullptr : node->get();
}

void Domain::SetTracer(trace::Tracer tracer) {
  tracer_ = tracer;
  // Effect is order-independent (every node gets the same tracer), so
  // hash-table visitation order cannot leak into output.
  nodes_.ForEach([&](std::uint64_t, std::unique_ptr<RpcNode>& node) {
    node->SetTracer(tracer);
  });
}

}  // namespace gvfs::rpc
