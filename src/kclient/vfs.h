// Abstract POSIX-ish file-system interface used by the workload generators.
// Implemented by the kernel NFS client emulation (native NFS and GVFS
// mounts) and by the AFS reference client, so every experiment runs the same
// workload code against any DFS under test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/types.h"
#include "nfs3/proto.h"
#include "sim/task.h"

namespace gvfs::kclient {

struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool exclusive = false;
  bool truncate = false;
};

using Fd = int;

template <typename T>
using VfsResult = Expected<T, nfs3::Status>;

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual sim::Task<VfsResult<Fd>> Open(std::string path, OpenFlags flags) = 0;
  virtual sim::Task<VfsResult<void>> Close(Fd fd) = 0;
  virtual sim::Task<VfsResult<Bytes>> Read(Fd fd, std::uint64_t offset,
                                           std::uint32_t count) = 0;
  virtual sim::Task<VfsResult<std::uint32_t>> Write(Fd fd, std::uint64_t offset,
                                                    const Bytes& data) = 0;
  virtual sim::Task<VfsResult<nfs3::Fattr>> Stat(std::string path) = 0;
  virtual sim::Task<VfsResult<bool>> Exists(std::string path) = 0;
  virtual sim::Task<VfsResult<void>> Unlink(std::string path) = 0;
  virtual sim::Task<VfsResult<void>> Mkdir(std::string path) = 0;
  virtual sim::Task<VfsResult<void>> Rmdir(std::string path) = 0;
  virtual sim::Task<VfsResult<void>> Link(std::string target_path,
                                          std::string new_path) = 0;
  virtual sim::Task<VfsResult<void>> Rename(std::string from, std::string to) = 0;
  virtual sim::Task<VfsResult<std::vector<std::string>>> ReadDir(
      const std::string& path) = 0;
};

}  // namespace gvfs::kclient
