// Kernel NFSv3 client emulation.
//
// Models the client-side machinery whose WAN cost the paper measures:
//  - attribute cache with a fixed revalidation period (`actimeo`, paper: 30 s)
//    or disabled entirely (`noac`),
//  - lookup (dnlc) cache whose entries are validated against the cached
//    directory mtime,
//  - a block page cache (32 KB blocks) invalidated when a file's server
//    mtime changes,
//  - close-to-open semantics: GETATTR revalidation on open, write-back of
//    dirty pages (WRITE + COMMIT) on close.
//
// The same class is used for native NFS (pointed at the remote server) and
// for GVFS (pointed at the local user-level proxy client).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/types.h"
#include "kclient/vfs.h"
#include "nfs3/client.h"
#include "nfs3/proto.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::kclient {

struct MountOptions {
  MountOptions() = default;
  MountOptions(const MountOptions&) = default;
  MountOptions(MountOptions&&) noexcept = default;
  MountOptions& operator=(const MountOptions&) = default;
  MountOptions& operator=(MountOptions&&) noexcept = default;

  /// Attribute cache validity period (actimeo). Ignored when noac is set.
  Duration attr_timeout = Seconds(30);
  /// Disable the attribute cache entirely ("-o noac").
  bool noac = false;
  /// Close-to-open consistency: revalidate attributes on open, flush on close.
  bool close_to_open = true;
  /// READ/WRITE transfer size.
  std::uint32_t io_size = 32 * 1024;
  /// Bounded client memory caches (the proxy's disk cache is much larger —
  /// the asymmetry the paper exploits).
  std::size_t max_attr_entries = 512;
  std::size_t max_dnlc_entries = 512;
  // The paper's clients are 256 MB VMs; the page cache gets a fraction.
  std::size_t max_cached_bytes = 160ull * 1024 * 1024;
  /// RPC knobs applied to every call. Defaults to hard-mount semantics
  /// (generous retransmission) as in the paper's setup.
  rpc::CallOptions rpc = HardMountRpc();

  static rpc::CallOptions HardMountRpc() {
    rpc::CallOptions opts;
    opts.max_retries = 100;
    return opts;
  }
};

/// Client-side cache counters, used by tests and the experiment harnesses.
struct ClientStats {
  std::uint64_t attr_hits = 0;
  std::uint64_t attr_misses = 0;
  std::uint64_t dnlc_hits = 0;
  std::uint64_t dnlc_misses = 0;
  std::uint64_t page_hits = 0;
  std::uint64_t page_misses = 0;
};

class KernelClient : public Vfs {
 public:
  KernelClient(sim::Scheduler& sched, rpc::RpcNode& node, net::Address server,
               nfs3::Fh root, MountOptions options = {});

  // --- POSIX-ish surface (paths are absolute within the mount, "/a/b") ---

  sim::Task<VfsResult<Fd>> Open(std::string path, OpenFlags flags) override;
  sim::Task<VfsResult<void>> Close(Fd fd) override;
  /// Reads up to `count` bytes at `offset`; short only at EOF.
  sim::Task<VfsResult<Bytes>> Read(Fd fd, std::uint64_t offset, std::uint32_t count) override;
  sim::Task<VfsResult<std::uint32_t>> Write(Fd fd, std::uint64_t offset,
                                            const Bytes& data) override;
  /// Flushes this file's dirty pages to the server (fsync).
  sim::Task<VfsResult<void>> Fsync(Fd fd);

  sim::Task<VfsResult<nfs3::Fattr>> Stat(std::string path) override;
  sim::Task<VfsResult<bool>> Exists(std::string path) override;
  sim::Task<VfsResult<void>> Unlink(std::string path) override;
  sim::Task<VfsResult<void>> Mkdir(std::string path) override;
  sim::Task<VfsResult<void>> Rmdir(std::string path) override;
  /// Hard link: new_path -> existing target.
  sim::Task<VfsResult<void>> Link(std::string target_path,
                                  std::string new_path) override;
  sim::Task<VfsResult<void>> Rename(std::string from, std::string to) override;
  sim::Task<VfsResult<std::vector<std::string>>> ReadDir(const std::string& path) override;

  // --- cache management / introspection ---

  /// Simulates `umount && mount` + dropped caches (cold start).
  void DropCaches();

  const ClientStats& stats() const { return stats_; }
  const MountOptions& options() const { return options_; }
  std::size_t CachedBytes() const { return cached_bytes_; }
  std::size_t OpenFileCount() const { return open_files_.size(); }

 private:
  struct AttrEntry {
    nfs3::Fattr attr;
    SimTime fetched_at = 0;
  };

  struct DnlcEntry {
    nfs3::Fh child;
    SimTime dir_mtime_seen = 0;
  };

  struct CachedBlock {
    Bytes data;
    bool dirty = false;
  };

  struct FileCache {
    SimTime mtime_seen = 0;
    std::uint64_t size_seen = 0;
    std::map<std::uint64_t, CachedBlock> blocks;  // block index -> block
  };

  struct OpenFile {
    nfs3::Fh fh;
    OpenFlags flags;
  };

  using DnlcKey = std::pair<nfs3::Fh, std::string>;

  // -- attribute cache --
  bool AttrFresh(const nfs3::Fh& fh) const;
  const nfs3::Fattr* CachedAttr(const nfs3::Fh& fh) const;
  /// Installs freshly fetched attributes; detects data-cache staleness.
  void StoreAttr(const nfs3::Fh& fh, const nfs3::Fattr& attr, bool own_write);
  void StoreAttr(const nfs3::Fh& fh, const nfs3::PostOpAttr& attr, bool own_write);
  void InvalidateAttr(const nfs3::Fh& fh);
  /// Returns fresh attributes, via cache or GETATTR RPC.
  sim::Task<VfsResult<nfs3::Fattr>> GetAttr(nfs3::Fh fh, bool force_fresh);

  // -- name cache --
  sim::Task<VfsResult<nfs3::Fh>> LookupChild(nfs3::Fh dir, std::string name);
  /// Resolves all components; on success the final Fh.
  sim::Task<VfsResult<nfs3::Fh>> ResolvePath(std::string path);
  /// Resolves the parent directory; returns (dir fh) and sets leaf name.
  sim::Task<VfsResult<nfs3::Fh>> ResolveParent(std::string path, std::string* leaf);
  void StoreDnlc(const nfs3::Fh& dir, const std::string& name, const nfs3::Fh& child);
  void DropDnlc(const nfs3::Fh& dir, const std::string& name);

  // -- page cache --
  void DropFileData(const nfs3::Fh& fh);
  void EvictIfNeeded();

  // -- write-back --
  sim::Task<VfsResult<void>> FlushFile(nfs3::Fh fh);

  static std::vector<std::string> SplitPath(const std::string& path);

  sim::Scheduler& sched_;
  nfs3::Nfs3Client client_;
  nfs3::Fh root_;
  MountOptions options_;

  std::map<nfs3::Fh, AttrEntry> attr_cache_;
  std::map<DnlcKey, DnlcEntry> dnlc_;
  std::map<nfs3::Fh, FileCache> file_cache_;
  std::size_t cached_bytes_ = 0;
  // LRU order of (fh, block) for eviction of clean blocks.
  std::list<std::pair<nfs3::Fh, std::uint64_t>> lru_;

  std::map<Fd, OpenFile> open_files_;
  Fd next_fd_ = 3;

  ClientStats stats_;
};

}  // namespace gvfs::kclient
