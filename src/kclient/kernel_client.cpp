#include "kclient/kernel_client.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace gvfs::kclient {

using nfs3::Fh;
using nfs3::Status;

namespace {

/// Upper-bound key for iterating all dnlc entries under one directory.
Fh NextFh(const Fh& fh) { return Fh{fh.fsid, fh.ino + 1}; }

}  // namespace

KernelClient::KernelClient(sim::Scheduler& sched, rpc::RpcNode& node,
                           net::Address server, nfs3::Fh root, MountOptions options)
    : sched_(sched), client_(node, server), root_(root), options_(std::move(options)) {}

// ---------------------------------------------------------------------------
// Attribute cache
// ---------------------------------------------------------------------------

bool KernelClient::AttrFresh(const Fh& fh) const {
  if (options_.noac) return false;
  auto it = attr_cache_.find(fh);
  if (it == attr_cache_.end()) return false;
  return sched_.Now() - it->second.fetched_at <= options_.attr_timeout;
}

const nfs3::Fattr* KernelClient::CachedAttr(const Fh& fh) const {
  auto it = attr_cache_.find(fh);
  return it == attr_cache_.end() ? nullptr : &it->second.attr;
}

void KernelClient::StoreAttr(const Fh& fh, const nfs3::Fattr& attr, bool own_write) {
  auto fc = file_cache_.find(fh);
  if (fc != file_cache_.end()) {
    if (!own_write && attr.mtime != fc->second.mtime_seen) {
      // Another client changed the file: cached data is stale. Clean blocks
      // are dropped; dirty blocks survive (the kernel client's usual weak
      // write-sharing semantics).
      auto& blocks = fc->second.blocks;
      for (auto it = blocks.begin(); it != blocks.end();) {
        if (!it->second.dirty) {
          cached_bytes_ -= it->second.data.size();
          it = blocks.erase(it);
        } else {
          ++it;
        }
      }
      fc->second.size_seen = attr.size;
    }
    fc->second.mtime_seen = attr.mtime;
    if (own_write) {
      fc->second.size_seen = std::max(fc->second.size_seen, attr.size);
    }
  }

  if (attr_cache_.size() >= options_.max_attr_entries &&
      attr_cache_.find(fh) == attr_cache_.end()) {
    attr_cache_.erase(attr_cache_.begin());
  }
  auto& entry = attr_cache_[fh];
  entry.attr = attr;
  entry.fetched_at = sched_.Now();
}

void KernelClient::StoreAttr(const Fh& fh, const nfs3::PostOpAttr& attr,
                             bool own_write) {
  if (attr.has_value()) StoreAttr(fh, *attr, own_write);
}

void KernelClient::InvalidateAttr(const Fh& fh) { attr_cache_.erase(fh); }

sim::Task<VfsResult<nfs3::Fattr>> KernelClient::GetAttr(Fh fh, bool force_fresh) {
  if (!force_fresh && AttrFresh(fh)) {
    ++stats_.attr_hits;
    co_return *CachedAttr(fh);
  }
  ++stats_.attr_misses;
  auto res = co_await client_.Call<nfs3::GetAttrRes>(
      nfs3::kGetAttr, nfs3::GetAttrArgs{fh}, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  if (res->status != Status::kOk) {
    InvalidateAttr(fh);
    DropFileData(fh);
    co_return Unexpected(res->status);
  }
  StoreAttr(fh, res->attr, /*own_write=*/false);
  co_return res->attr;
}

// ---------------------------------------------------------------------------
// Name (dnlc) cache
// ---------------------------------------------------------------------------

void KernelClient::StoreDnlc(const Fh& dir, const std::string& name,
                             const Fh& child) {
  const nfs3::Fattr* dir_attr = CachedAttr(dir);
  if (dir_attr == nullptr) return;  // cannot validate later; skip caching
  if (dnlc_.size() >= options_.max_dnlc_entries) dnlc_.erase(dnlc_.begin());
  dnlc_[{dir, name}] = DnlcEntry{child, dir_attr->mtime};
}

void KernelClient::DropDnlc(const Fh& dir, const std::string& name) {
  dnlc_.erase({dir, name});
}

sim::Task<VfsResult<Fh>> KernelClient::LookupChild(Fh dir, std::string name) {
  // dnlc entries are trusted only while the cached directory attributes are
  // fresh and the directory mtime matches what the entry saw.
  auto dir_attr = co_await GetAttr(dir, /*force_fresh=*/false);
  if (!dir_attr) co_return Unexpected(dir_attr.error());

  auto it = dnlc_.find({dir, name});
  if (it != dnlc_.end()) {
    if (it->second.dir_mtime_seen == dir_attr->mtime) {
      ++stats_.dnlc_hits;
      co_return it->second.child;
    }
    dnlc_.erase(it);
  }
  ++stats_.dnlc_misses;

  nfs3::LookupArgs args;
  args.dir = dir;
  args.name = name;
  auto res = co_await client_.Call<nfs3::LookupRes>(nfs3::kLookup, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(dir, res->dir_attr, /*own_write=*/false);
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  StoreAttr(res->object, res->obj_attr, /*own_write=*/false);
  StoreDnlc(dir, name, res->object);
  co_return res->object;
}

std::vector<std::string> KernelClient::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    parts.push_back(path.substr(pos, next - pos));
    pos = next;
  }
  return parts;
}

sim::Task<VfsResult<Fh>> KernelClient::ResolvePath(std::string path) {
  Fh current = root_;
  for (const auto& component : SplitPath(path)) {
    auto next = co_await LookupChild(current, component);
    if (!next) co_return Unexpected(next.error());
    current = *next;
  }
  co_return current;
}

sim::Task<VfsResult<Fh>> KernelClient::ResolveParent(std::string path,
                                                     std::string* leaf) {
  auto parts = SplitPath(path);
  if (parts.empty()) co_return Unexpected(Status::kInval);
  *leaf = parts.back();
  Fh current = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto next = co_await LookupChild(current, parts[i]);
    if (!next) co_return Unexpected(next.error());
    current = *next;
  }
  co_return current;
}

// ---------------------------------------------------------------------------
// Page cache
// ---------------------------------------------------------------------------

void KernelClient::DropFileData(const Fh& fh) {
  auto it = file_cache_.find(fh);
  if (it == file_cache_.end()) return;
  for (const auto& [index, block] : it->second.blocks) {
    cached_bytes_ -= block.data.size();
  }
  file_cache_.erase(it);
}

void KernelClient::EvictIfNeeded() {
  std::size_t scanned = 0;
  const std::size_t limit = lru_.size();
  while (cached_bytes_ > options_.max_cached_bytes && scanned < limit &&
         !lru_.empty()) {
    ++scanned;
    auto [fh, index] = lru_.front();
    lru_.pop_front();
    auto fc = file_cache_.find(fh);
    if (fc == file_cache_.end()) continue;
    auto block = fc->second.blocks.find(index);
    if (block == fc->second.blocks.end()) continue;
    if (block->second.dirty) {
      lru_.push_back({fh, index});  // cannot evict dirty data
      continue;
    }
    cached_bytes_ -= block->second.data.size();
    fc->second.blocks.erase(block);
  }
}

// ---------------------------------------------------------------------------
// Write-back
// ---------------------------------------------------------------------------

sim::Task<VfsResult<void>> KernelClient::FlushFile(Fh fh) {
  auto fc = file_cache_.find(fh);
  if (fc == file_cache_.end()) co_return Ok{};

  // Snapshot the dirty block indices: the WRITE awaits below park this
  // frame, and a concurrent Remove/truncate can DropFileData(fh) meanwhile,
  // erasing the entry (and every block) a live range-for iterator would
  // still point into.
  std::vector<std::uint64_t> dirty;
  for (const auto& [index, block] : fc->second.blocks) {
    if (block.dirty) dirty.push_back(index);
  }

  bool wrote = false;
  for (const std::uint64_t index : dirty) {
    fc = file_cache_.find(fh);
    if (fc == file_cache_.end()) co_return Ok{};  // dropped mid-flush
    auto blk = fc->second.blocks.find(index);
    if (blk == fc->second.blocks.end() || !blk->second.dirty) continue;
    nfs3::WriteArgs args;
    args.file = fh;
    args.offset = index * options_.io_size;
    args.stable = nfs3::StableHow::kUnstable;
    args.data = blk->second.data;
    auto res = co_await client_.Call<nfs3::WriteRes>(nfs3::kWrite, args, options_.rpc);
    if (!res) co_return Unexpected(Status::kIo);
    if (res->status != Status::kOk) co_return Unexpected(res->status);
    StoreAttr(fh, res->attr, /*own_write=*/true);
    fc = file_cache_.find(fh);
    if (fc != file_cache_.end()) {
      blk = fc->second.blocks.find(index);
      if (blk != fc->second.blocks.end()) blk->second.dirty = false;
    }
    wrote = true;
  }
  if (wrote) {
    auto commit = co_await client_.Call<nfs3::CommitRes>(
        nfs3::kCommit, nfs3::CommitArgs{fh, 0, 0}, options_.rpc);
    if (!commit) co_return Unexpected(Status::kIo);
    if (commit->status != Status::kOk) co_return Unexpected(commit->status);
    StoreAttr(fh, commit->attr, /*own_write=*/true);
  }
  co_return Ok{};
}

// ---------------------------------------------------------------------------
// POSIX-ish operations
// ---------------------------------------------------------------------------

sim::Task<VfsResult<Fd>> KernelClient::Open(std::string path, OpenFlags flags) {
  std::string leaf;
  auto dir = co_await ResolveParent(path, &leaf);
  if (!dir) co_return Unexpected(dir.error());

  Fh fh;
  bool created = false;
  if (flags.create) {
    nfs3::CreateArgs args;
    args.dir = *dir;
    args.name = leaf;
    args.exclusive = flags.exclusive;
    auto res = co_await client_.Call<nfs3::CreateRes>(nfs3::kCreate, args,
                                                      options_.rpc);
    if (!res) co_return Unexpected(Status::kIo);
    StoreAttr(*dir, res->dir_attr, /*own_write=*/true);
    if (res->dir_attr.has_value()) {
      // Our own mutation: existing dnlc entries under this dir stay valid.
      auto begin = dnlc_.lower_bound({*dir, ""});
      auto end = dnlc_.lower_bound({NextFh(*dir), ""});
      for (auto it = begin; it != end; ++it) {
        it->second.dir_mtime_seen = res->dir_attr->mtime;
      }
    }
    if (res->status != Status::kOk) co_return Unexpected(res->status);
    fh = res->object;
    StoreAttr(fh, res->obj_attr, /*own_write=*/false);
    StoreDnlc(*dir, leaf, fh);
    // The CREATE reply carried fresh post-op attributes, so the close-to-open
    // GETATTR below would be redundant whether or not the file pre-existed.
    created = true;
  } else {
    auto looked_up = co_await LookupChild(*dir, leaf);
    if (!looked_up) co_return Unexpected(looked_up.error());
    fh = *looked_up;
  }

  // Close-to-open: opening a file revalidates its attributes with the
  // server regardless of the attribute cache (the GETATTR storm the paper
  // measures in the Make benchmark).
  if (options_.close_to_open && !created) {
    auto attr = co_await GetAttr(fh, /*force_fresh=*/true);
    if (!attr) co_return Unexpected(attr.error());
  }

  if (flags.truncate) {
    nfs3::SetAttrArgs args;
    args.object = fh;
    args.size = 0;
    auto res = co_await client_.Call<nfs3::SetAttrRes>(nfs3::kSetAttr, args,
                                                       options_.rpc);
    if (!res) co_return Unexpected(Status::kIo);
    if (res->status != Status::kOk) co_return Unexpected(res->status);
    DropFileData(fh);
    StoreAttr(fh, res->attr, /*own_write=*/true);
  }

  const Fd fd = next_fd_++;
  open_files_[fd] = OpenFile{fh, flags};
  co_return fd;
}

sim::Task<VfsResult<void>> KernelClient::Close(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  const Fh fh = it->second.fh;
  const bool writable = it->second.flags.write;
  open_files_.erase(it);
  if (writable && options_.close_to_open) {
    auto flushed = co_await FlushFile(fh);
    if (!flushed) co_return Unexpected(flushed.error());
  }
  co_return Ok{};
}

sim::Task<VfsResult<Bytes>> KernelClient::Read(Fd fd, std::uint64_t offset,
                                               std::uint32_t count) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  const Fh fh = it->second.fh;

  // Validity of cached data is tied to (cached) attributes.
  auto attr = co_await GetAttr(fh, /*force_fresh=*/false);
  if (!attr) co_return Unexpected(attr.error());

  // Held as a pointer so it can be re-acquired after each await: a
  // concurrent Remove/truncate can DropFileData(fh) while this frame is
  // parked on a READ, erasing the map node the reference would alias.
  auto* fc = &file_cache_[fh];
  if (fc->blocks.empty() && fc->mtime_seen == 0) {
    fc->mtime_seen = attr->mtime;
    fc->size_seen = attr->size;
  }
  const std::uint64_t file_size = std::max(fc->size_seen, attr->size);
  if (offset >= file_size) co_return Bytes{};
  const std::uint64_t want_end =
      std::min<std::uint64_t>(offset + count, file_size);

  Bytes out;
  out.reserve(want_end - offset);
  const std::uint32_t bs = options_.io_size;
  for (std::uint64_t pos = offset; pos < want_end;) {
    const std::uint64_t index = pos / bs;
    const std::uint64_t block_start = index * bs;
    auto cached = fc->blocks.find(index);
    if (cached == fc->blocks.end()) {
      ++stats_.page_misses;
      auto res = co_await client_.Call<nfs3::ReadRes>(
          nfs3::kRead, nfs3::ReadArgs{fh, block_start, bs}, options_.rpc);
      if (!res) co_return Unexpected(Status::kIo);
      if (res->status != Status::kOk) co_return Unexpected(res->status);
      StoreAttr(fh, res->attr, /*own_write=*/false);
      fc = &file_cache_[fh];
      CachedBlock block;
      block.data = std::move(res->data);
      cached_bytes_ += block.data.size();
      lru_.push_back({fh, index});
      cached = fc->blocks.emplace(index, std::move(block)).first;
    } else {
      ++stats_.page_hits;
    }
    const Bytes& data = cached->second.data;
    const std::uint64_t in_block = pos - block_start;
    if (in_block >= data.size()) break;  // hole/EOF within block
    const std::uint64_t take =
        std::min<std::uint64_t>(data.size() - in_block, want_end - pos);
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(in_block),
               data.begin() + static_cast<std::ptrdiff_t>(in_block + take));
    pos += take;
  }
  // Evict only after assembly: evicting inside the loop can reclaim the
  // block just fetched (always true with max_cached_bytes == 0), leaving
  // `cached` dangling before the copy above.
  EvictIfNeeded();
  co_return out;
}

sim::Task<VfsResult<std::uint32_t>> KernelClient::Write(Fd fd, std::uint64_t offset,
                                                        const Bytes& data) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  if (!it->second.flags.write) co_return Unexpected(Status::kAccess);
  const Fh fh = it->second.fh;

  auto attr = co_await GetAttr(fh, /*force_fresh=*/false);
  if (!attr) co_return Unexpected(attr.error());

  // Pointer, not reference, so the read-modify-write await below can
  // re-acquire it: a concurrent Remove/truncate can DropFileData(fh) while
  // this frame is parked, erasing the map node the reference would alias.
  auto* fc = &file_cache_[fh];
  if (fc->blocks.empty() && fc->mtime_seen == 0) {
    fc->mtime_seen = attr->mtime;
    fc->size_seen = attr->size;
  }

  const std::uint32_t bs = options_.io_size;
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t index = pos / bs;
    const std::uint64_t block_start = index * bs;
    const std::uint64_t in_block = pos - block_start;
    const std::uint64_t take =
        std::min<std::uint64_t>(bs - in_block, data.size() - consumed);

    auto cached = fc->blocks.find(index);
    if (cached == fc->blocks.end()) {
      // Partial overwrite of existing server data requires read-modify-write.
      const bool needs_fetch =
          block_start < fc->size_seen && (in_block != 0 || take < bs) &&
          !(block_start + in_block >= fc->size_seen);
      CachedBlock block;
      if (needs_fetch) {
        ++stats_.page_misses;
        auto res = co_await client_.Call<nfs3::ReadRes>(
            nfs3::kRead, nfs3::ReadArgs{fh, block_start, bs}, options_.rpc);
        if (!res) co_return Unexpected(Status::kIo);
        if (res->status != Status::kOk) co_return Unexpected(res->status);
        block.data = std::move(res->data);
        fc = &file_cache_[fh];
      }
      cached_bytes_ += block.data.size();
      lru_.push_back({fh, index});
      cached = fc->blocks.emplace(index, std::move(block)).first;
    }

    Bytes& dst = cached->second.data;
    if (dst.size() < in_block + take) {
      cached_bytes_ += in_block + take - dst.size();
      dst.resize(in_block + take, 0);
    }
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(consumed),
              data.begin() + static_cast<std::ptrdiff_t>(consumed + take),
              dst.begin() + static_cast<std::ptrdiff_t>(in_block));
    cached->second.dirty = true;

    pos += take;
    consumed += take;
  }

  fc->size_seen = std::max(fc->size_seen, offset + data.size());
  // Keep the locally visible size in sync so Stat reflects our own writes.
  auto cached_attr = attr_cache_.find(fh);
  if (cached_attr != attr_cache_.end()) {
    cached_attr->second.attr.size =
        std::max<std::uint64_t>(cached_attr->second.attr.size, fc->size_seen);
  }
  EvictIfNeeded();
  co_return static_cast<std::uint32_t>(data.size());
}

sim::Task<VfsResult<void>> KernelClient::Fsync(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  co_return co_await FlushFile(it->second.fh);
}

sim::Task<VfsResult<nfs3::Fattr>> KernelClient::Stat(std::string path) {
  auto fh = co_await ResolvePath(path);
  if (!fh) co_return Unexpected(fh.error());
  co_return co_await GetAttr(*fh, /*force_fresh=*/false);
}

sim::Task<VfsResult<bool>> KernelClient::Exists(std::string path) {
  auto attr = co_await Stat(path);
  if (attr.has_value()) co_return true;
  if (attr.error() == Status::kNoEnt) co_return false;
  co_return Unexpected(attr.error());
}

sim::Task<VfsResult<void>> KernelClient::Unlink(std::string path) {
  std::string leaf;
  auto dir = co_await ResolveParent(path, &leaf);
  if (!dir) co_return Unexpected(dir.error());

  // If we know the victim's handle, invalidate its caches.
  auto known = dnlc_.find({*dir, leaf});
  if (known != dnlc_.end()) {
    InvalidateAttr(known->second.child);
    DropFileData(known->second.child);
  }

  nfs3::RemoveArgs args;
  args.dir = *dir;
  args.name = leaf;
  auto res = co_await client_.Call<nfs3::RemoveRes>(nfs3::kRemove, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(*dir, res->dir_attr, /*own_write=*/true);
  DropDnlc(*dir, leaf);
  if (res->dir_attr.has_value()) {
    auto begin = dnlc_.lower_bound({*dir, ""});
    auto end = dnlc_.lower_bound({NextFh(*dir), ""});
    for (auto e = begin; e != end; ++e) {
      e->second.dir_mtime_seen = res->dir_attr->mtime;
    }
  }
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  co_return Ok{};
}

sim::Task<VfsResult<void>> KernelClient::Mkdir(std::string path) {
  std::string leaf;
  auto dir = co_await ResolveParent(path, &leaf);
  if (!dir) co_return Unexpected(dir.error());
  nfs3::MkdirArgs args;
  args.dir = *dir;
  args.name = leaf;
  args.mode = 0755;
  auto res = co_await client_.Call<nfs3::MkdirRes>(nfs3::kMkdir, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(*dir, res->dir_attr, /*own_write=*/true);
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  StoreAttr(res->object, res->obj_attr, /*own_write=*/false);
  StoreDnlc(*dir, leaf, res->object);
  co_return Ok{};
}

sim::Task<VfsResult<void>> KernelClient::Rmdir(std::string path) {
  std::string leaf;
  auto dir = co_await ResolveParent(path, &leaf);
  if (!dir) co_return Unexpected(dir.error());
  nfs3::RmdirArgs args;
  args.dir = *dir;
  args.name = leaf;
  auto res = co_await client_.Call<nfs3::RmdirRes>(nfs3::kRmdir, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(*dir, res->dir_attr, /*own_write=*/true);
  DropDnlc(*dir, leaf);
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  co_return Ok{};
}

sim::Task<VfsResult<void>> KernelClient::Link(std::string target_path,
                                              std::string new_path) {
  auto target = co_await ResolvePath(target_path);
  if (!target) co_return Unexpected(target.error());
  std::string leaf;
  auto dir = co_await ResolveParent(new_path, &leaf);
  if (!dir) co_return Unexpected(dir.error());

  nfs3::LinkArgs args;
  args.file = *target;
  args.dir = *dir;
  args.name = leaf;
  auto res = co_await client_.Call<nfs3::LinkRes>(nfs3::kLink, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(*dir, res->dir_attr, /*own_write=*/true);
  StoreAttr(*target, res->file_attr, /*own_write=*/true);
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  StoreDnlc(*dir, leaf, *target);
  co_return Ok{};
}

sim::Task<VfsResult<void>> KernelClient::Rename(std::string from,
                                                std::string to) {
  std::string from_leaf, to_leaf;
  auto from_dir = co_await ResolveParent(from, &from_leaf);
  if (!from_dir) co_return Unexpected(from_dir.error());
  auto to_dir = co_await ResolveParent(to, &to_leaf);
  if (!to_dir) co_return Unexpected(to_dir.error());

  nfs3::RenameArgs args;
  args.from_dir = *from_dir;
  args.from_name = from_leaf;
  args.to_dir = *to_dir;
  args.to_name = to_leaf;
  auto res = co_await client_.Call<nfs3::RenameRes>(nfs3::kRename, args, options_.rpc);
  if (!res) co_return Unexpected(Status::kIo);
  StoreAttr(*from_dir, res->from_dir_attr, /*own_write=*/true);
  StoreAttr(*to_dir, res->to_dir_attr, /*own_write=*/true);
  auto moved = dnlc_.find({*from_dir, from_leaf});
  nfs3::Fh moved_fh;
  if (moved != dnlc_.end()) {
    moved_fh = moved->second.child;
    dnlc_.erase(moved);
  }
  DropDnlc(*to_dir, to_leaf);
  if (res->status != Status::kOk) co_return Unexpected(res->status);
  if (moved_fh.valid()) StoreDnlc(*to_dir, to_leaf, moved_fh);
  co_return Ok{};
}

sim::Task<VfsResult<std::vector<std::string>>> KernelClient::ReadDir(
    const std::string& path) {
  auto dir = co_await ResolvePath(path);
  if (!dir) co_return Unexpected(dir.error());

  std::vector<std::string> names;
  std::uint64_t cookie = 0;
  while (true) {
    nfs3::ReadDirArgs args;
    args.dir = *dir;
    args.cookie = cookie;
    args.max_entries = 256;
    auto res = co_await client_.Call<nfs3::ReadDirRes>(nfs3::kReadDir, args,
                                                       options_.rpc);
    if (!res) co_return Unexpected(Status::kIo);
    StoreAttr(*dir, res->dir_attr, /*own_write=*/false);
    if (res->status != Status::kOk) co_return Unexpected(res->status);
    for (auto& entry : res->entries) {
      cookie = entry.cookie;
      names.push_back(std::move(entry.name));
    }
    if (res->eof || res->entries.empty()) break;
  }
  co_return names;
}

void KernelClient::DropCaches() {
  attr_cache_.clear();
  dnlc_.clear();
  file_cache_.clear();
  lru_.clear();
  cached_bytes_ = 0;
}

}  // namespace gvfs::kclient
