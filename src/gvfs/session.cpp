#include "gvfs/session.h"

namespace gvfs::proxy {

const char* ModelName(ConsistencyModel model) {
  switch (model) {
    case ConsistencyModel::kTtl:
      return "ttl";
    case ConsistencyModel::kInvalidationPolling:
      return "invalidation-polling";
    case ConsistencyModel::kDelegationCallback:
      return "delegation-callback";
  }
  return "?";
}

}  // namespace gvfs::proxy
