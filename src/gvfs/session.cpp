#include "gvfs/session.h"

#include "common/flat_map.h"

namespace gvfs::proxy {

const char* ModelName(ConsistencyModel model) {
  switch (model) {
    case ConsistencyModel::kTtl:
      return "ttl";
    case ConsistencyModel::kInvalidationPolling:
      return "invalidation-polling";
    case ConsistencyModel::kDelegationCallback:
      return "delegation-callback";
  }
  return "?";
}

std::uint32_t ShardOf(const nfs3::Fh& fh, std::uint32_t shard_count) {
  if (shard_count < 2) return 0;
  return static_cast<std::uint32_t>(MixHash64(fh.fsid ^ MixHash64(fh.ino)) %
                                    shard_count);
}

}  // namespace gvfs::proxy
