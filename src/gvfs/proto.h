// GVFS protocol extensions riding alongside NFSv3 between the user-level
// proxy client and proxy server:
//
//  - GETINV (client->server): invalidation-polling consistency (§4.2). The
//    client reports its last-seen logical timestamp; the server returns the
//    file handles pending invalidation in the client's buffer, plus the
//    force-invalidate / poll-again flags.
//  - CALLBACK (server->client): delegation recall (§4.3). Read recalls
//    invalidate cached attributes; write recalls force write-back. Large
//    dirty sets return a block list (the §4.3.2 optimization), with one
//    contended block written back synchronously.
//  - RECOVERY (server->client): whole-cache callback used to rebuild server
//    state after a proxy-server restart (§4.3.4).
//  - Delegation grants are piggybacked on native NFS replies as a fixed-size
//    trailing suffix (the paper piggybacks on the reply message; the suffix
//    keeps plain-NFS decoding unchanged because decoders ignore trailing
//    bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "nfs3/proto.h"
#include "trace/checker.h"

namespace gvfs::proxy {

constexpr std::uint32_t kGvfsProgram = 400100;

enum GvfsProc : std::uint32_t {
  kGetInv = 1,
  kCallback = 2,
  kRecovery = 3,
  kNotifyInv = 4,
  kMigrate = 5,
};

const char* GvfsProcName(std::uint32_t proc);

// ---------------------------------------------------------------------------
// GETINV
// ---------------------------------------------------------------------------

struct GetInvArgs {
  /// 0 = null timestamp (bootstrap / client lost its state).
  std::uint64_t last_timestamp = 0;

  void Encode(xdr::Encoder& enc) const { enc.PutU64(last_timestamp); }
  static nfs3::DecodeResult<GetInvArgs> Decode(xdr::Decoder& dec);
};

struct GetInvRes {
  std::uint64_t new_timestamp = 0;
  bool force_invalidate = false;
  bool poll_again = false;
  std::vector<nfs3::Fh> handles;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<GetInvRes> Decode(xdr::Decoder& dec);
};

// ---------------------------------------------------------------------------
// NOTIFYINV (shard -> shard)
// ---------------------------------------------------------------------------

/// Sharded fleets only (src/fleet): a shard that completed a mutation
/// touching a handle it does not own tells the owning shard, which records
/// the invalidation in its per-client buffers. The writer's address rides
/// along so the owner can skip the writer's own buffer, exactly as it does
/// for locally observed mutations.
struct NotifyInvArgs {
  nfs3::Fh file;
  std::uint32_t writer_host = 0;
  std::uint32_t writer_port = 0;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<NotifyInvArgs> Decode(xdr::Decoder& dec);
};

struct NotifyInvRes {
  void Encode(xdr::Encoder&) const {}
  static nfs3::DecodeResult<NotifyInvRes> Decode(xdr::Decoder&) {
    return NotifyInvRes{};
  }
};

// ---------------------------------------------------------------------------
// MIGRATE (client -> owning shard)
// ---------------------------------------------------------------------------

/// Adaptive sessions only (src/policy): switches one file between
/// consistency modes at runtime. The server drains the caller's buffered
/// invalidations for the file (so none is lost crossing the transition),
/// recalls conflicting delegations, records the file's new mode, and — when
/// the target mode is a delegation — runs the normal grant decision so the
/// caller leaves the handshake already holding its delegation.
struct MigrateArgs {
  nfs3::Fh file;
  std::uint32_t from = 0;  // policy::FileMode the caller is leaving
  std::uint32_t to = 0;    // policy::FileMode the caller is entering

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<MigrateArgs> Decode(xdr::Decoder& dec);
};

struct MigrateRes {
  std::uint32_t status = 0;
  /// Buffered invalidation entries for the file drained from the caller's
  /// queue as part of the switch; > 0 tells the caller to invalidate its
  /// cached attributes before serving under the new mode.
  std::uint32_t drained = 0;
  /// DelegationType granted under the new mode (kNone when polling).
  std::uint32_t granted = 0;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<MigrateRes> Decode(xdr::Decoder& dec);
};

// ---------------------------------------------------------------------------
// CALLBACK
// ---------------------------------------------------------------------------

enum class CallbackType : std::uint32_t {
  kRecallRead = 1,
  kRecallWrite = 2,
};

struct CallbackArgs {
  nfs3::Fh file;
  CallbackType type = CallbackType::kRecallRead;
  /// For write recalls: the block (byte offset) another client is waiting
  /// on; it is written back first under the block-list optimization.
  std::uint64_t wanted_offset = 0;
  bool has_wanted_offset = false;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<CallbackArgs> Decode(xdr::Decoder& dec);
};

struct CallbackRes {
  /// Offsets of dirty blocks NOT yet written back (block-list optimization);
  /// empty when the client flushed everything before replying.
  std::vector<std::uint64_t> pending_offsets;
  /// The holder's authoritative file size (0 = unknown). With a block list
  /// outstanding the server extends the upstream file so readers see the
  /// correct size before all data lands.
  std::uint64_t file_size = 0;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<CallbackRes> Decode(xdr::Decoder& dec);
};

// ---------------------------------------------------------------------------
// RECOVERY callback (whole cache)
// ---------------------------------------------------------------------------

struct RecoveryArgs {
  void Encode(xdr::Encoder&) const {}
  static nfs3::DecodeResult<RecoveryArgs> Decode(xdr::Decoder&) {
    return RecoveryArgs{};
  }
};

struct RecoveryRes {
  /// Files for which this client holds locally modified (dirty) data; the
  /// server uses these to rebuild its open-file table.
  std::vector<nfs3::Fh> dirty_files;

  void Encode(xdr::Encoder& enc) const;
  static nfs3::DecodeResult<RecoveryRes> Decode(xdr::Decoder& dec);
};

// ---------------------------------------------------------------------------
// Delegation grant suffix (piggybacked on NFS replies)
// ---------------------------------------------------------------------------

enum class DelegationType : std::uint32_t { kNone = 0, kRead = 1, kWrite = 2 };

struct GrantSuffix {
  DelegationType delegation = DelegationType::kNone;

  static constexpr std::size_t kWireBytes = 8;  // magic + type

  /// Appends the suffix to an already-encoded NFS reply body.
  void AppendTo(Bytes& reply_body) const;

  /// Extracts (and strips) a suffix from a reply body, if present.
  static GrantSuffix ExtractFrom(Bytes& reply_body);
};

// ---------------------------------------------------------------------------
// Trace checking
// ---------------------------------------------------------------------------

/// Checker configuration for this protocol: the NFSv3 procedures whose
/// re-execution the duplicate-request cache must prevent (invariant 4).
trace::CheckerConfig NfsTraceCheckerConfig();

}  // namespace gvfs::proxy
