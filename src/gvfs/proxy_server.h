// GVFS proxy server (§4 of the paper).
//
// Sits in front of the kernel NFS server (loopback on the server host) and
// serves one GVFS session's proxy clients over the WAN. Responsibilities:
//
//  - Forward NFS requests upstream, observing every mutation.
//  - Invalidation polling (§4.2): per-client circular invalidation buffers of
//    logically timestamped handles, served via GETINV with bootstrap,
//    wrap-around (force-invalidate) and batching (poll-again) handling.
//  - Delegation/callback (§4.3): speculates opens from read/write traffic,
//    grants per-file read/write delegations (piggybacked on replies), recalls
//    them with server-to-client CALLBACK RPCs on conflicts, tracks write-back
//    progress under the §4.3.2 block-list optimization, and expires
//    speculated-closed sharers.
//  - Failure handling (§4.3.4): the client list persists across crashes
//    ("stored directly on disk"); recovery multicasts whole-cache callbacks,
//    rebuilds the open-file table from clients' dirty lists, and blocks
//    incoming requests during the (short) grace period.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/json_writer.h"
#include "gvfs/proto.h"
#include "gvfs/session.h"
#include "metrics/registry.h"
#include "metrics/staleness.h"
#include "nfs3/client.h"
#include "nfs3/proto.h"
#include "policy/policy.h"
#include "rpc/rpc.h"
#include "sim/concurrency.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "trace/trace.h"

namespace gvfs::proxy {

struct ProxyServerStats {
  std::uint64_t forwarded = 0;
  std::uint64_t callbacks_sent = 0;
  std::uint64_t getinv_served = 0;
  std::uint64_t force_invalidations = 0;
  std::uint64_t recalls_read = 0;
  std::uint64_t recalls_write = 0;
  std::uint64_t invalidations_recorded = 0;
  /// Invalidation-buffer wrap-arounds (oldest entry evicted; the affected
  /// client is forced to whole-cache invalidate on its next poll).
  std::uint64_t inv_wraps = 0;
  /// Sharded fleets: cross-shard invalidation notifications (NOTIFYINV)
  /// sent to owning shards / received from peer shards.
  std::uint64_t notifyinv_sent = 0;
  std::uint64_t notifyinv_received = 0;
  /// High-water mark of total buffered invalidation entries across all
  /// clients (the per-shard blow-up fig_scale measures).
  std::uint64_t inv_entries_peak = 0;
  /// Adaptive sessions: MIGRATE handshakes completed for files this shard
  /// owns, and buffered invalidations delivered inside their replies.
  std::uint64_t migrations_served = 0;
  std::uint64_t inv_drained = 0;
};

class ProxyServer {
 public:
  /// `node` is this proxy's RPC endpoint (handlers are registered on it);
  /// `upstream` is the kernel NFS server (same host, loopback).
  ProxyServer(sim::Scheduler& sched, rpc::RpcNode& node, net::Address upstream,
              SessionConfig config);

  const SessionConfig& config() const { return config_; }
  const ProxyServerStats& stats() const { return stats_; }

  /// Number of clients the session has seen (persistent list).
  std::size_t KnownClients() const { return persistent_clients_.size(); }

  /// Crash simulation: drops all soft state (invalidation buffers,
  /// timestamps, open-file table) and takes the node down. The persistent
  /// client list survives (it lives on "disk").
  void Crash();

  /// Restart: brings the node back up; for the delegation model, multicasts
  /// recovery callbacks and holds a grace period until all known clients
  /// answer (or time out).
  sim::Task<void> Recover();

  bool InGrace() const { return in_grace_; }

  /// Registers this proxy's live telemetry under `prefix` (counters above,
  /// invalidation-buffer occupancy, delegation hold-time and recall
  /// write-back latency histograms) and attaches the session staleness
  /// probe: every successful mutation stamps the touched files' new version
  /// with the RPC's receipt time. `probe` may be null.
  void AttachMetrics(metrics::Registry& registry, const std::string& prefix,
                     metrics::StalenessProbe* probe);

  /// Protocol-state snapshot for the flight recorder (obs/recorder.h):
  /// delegation grants, invalidation-buffer occupancy, per-file consistency
  /// modes and the shard map. Quiet files (no grants, no recalls, polling
  /// mode) are summarized as a count rather than serialized.
  JsonObject SnapshotState() const;

 private:
  struct InvEntry {
    std::uint64_t timestamp;
    nfs3::Fh fh;
  };

  /// Per-client invalidation buffer (circular queue, §4.2.1).
  struct InvClient {
    std::deque<InvEntry> buffer;
    std::set<nfs3::Fh> pending;  // coalescing: one entry per file
    std::uint64_t last_acked = 0;
    bool overflowed = false;
  };

  struct Sharer {
    SimTime last_access = 0;
    SimTime last_write = 0;  // 0 = never wrote
    DelegationType granted = DelegationType::kNone;
    SimTime granted_at = 0;  // when `granted` last left kNone (hold-time base)
  };

  struct FileState {
    std::map<net::Address, Sharer> sharers;
    /// Block offsets not yet written back by `writeback_owner` (§4.3.2).
    std::set<std::uint64_t> pending_writeback;
    net::Address writeback_owner{};
    /// Recalls in flight: the file is temporarily non-cacheable (§4.3.1).
    int recalling = 0;
    /// Adaptive sessions: consistency mode the last MIGRATE put the file in.
    /// DecideGrant hands out no delegation while a file sits in kPolling.
    policy::FileMode mode = policy::FileMode::kPolling;
  };

  /// What an incoming NFS request does, distilled for consistency handling.
  struct OpInfo {
    bool known = false;
    bool mutating = false;
    /// Handles read by this op (delegation-read targets).
    std::vector<nfs3::Fh> reads;
    /// Handles written by this op (recall + invalidation targets).
    std::vector<nfs3::Fh> writes;
    /// For READ/WRITE: byte offset touched (write-back monitor).
    std::optional<std::uint64_t> offset;
    /// For REMOVE/RMDIR/RENAME: (dir, name) pairs whose target should also
    /// be invalidated; resolved with an upstream LOOKUP.
    std::vector<std::pair<nfs3::Fh, std::string>> victims;
  };

  sim::Task<Bytes> HandleNfs(std::uint32_t proc, rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleGetInv(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleNotifyInv(rpc::CallContext ctx, rpc::Body args);
  /// Adaptive sessions: per-file mode switch (drain-before-switch handshake).
  sim::Task<Bytes> HandleMigrate(rpc::CallContext ctx, rpc::Body args);

  /// Removes every buffered invalidation entry for (`fh`, `client`) and
  /// returns how many were delivered this way (traced as kInvPoll — the
  /// MIGRATE reply is an invalidation delivery path).
  std::uint32_t DrainInvEntries(const nfs3::Fh& fh, net::Address client);

  static OpInfo Classify(std::uint32_t proc, ByteView args);

  /// Registers the caller in the session (persistent list).
  void RegisterClient(net::Address client);

  // -- invalidation polling --
  void RecordInvalidation(const nfs3::Fh& fh, net::Address writer);

  // -- sharded fleet (src/fleet) --
  /// True when this shard owns `fh` (always true unsharded).
  bool OwnsHandle(const nfs3::Fh& fh) const;
  /// Records a mutation of `fh`: locally when owned, else via a NOTIFYINV
  /// RPC to the owning shard so invalidations live only with the owner.
  sim::Task<void> PropagateInvalidation(nfs3::Fh fh, net::Address writer,
                                        trace::SpanRef parent);

  // -- delegation machinery --
  // `parent` chains the recall CALLBACKs into the span of the NFS request
  // that forced them (one causal tree from requester through server to the
  // recalled holder).
  sim::Task<void> RecallConflicts(nfs3::Fh fh, net::Address requester,
                                  bool write_op, std::optional<std::uint64_t> offset,
                                  trace::SpanRef parent = {});
  /// One recall callback to one conflicting sharer, plus the post-reply
  /// bookkeeping (grant revocation, §4.3.2 block-list absorption).
  sim::Task<void> RecallOne(nfs3::Fh fh, net::Address addr, DelegationType granted,
                            std::optional<std::uint64_t> offset,
                            trace::SpanRef parent = {});
  /// One state-recovery callback to one known client (§4.3.4).
  sim::Task<void> RecoverClient(net::Address client);
  /// Write-back monitor: a reader touching a block still pending write-back
  /// forces the owner to submit it promptly.
  sim::Task<void> EnsureBlockWrittenBack(nfs3::Fh fh, net::Address requester,
                                         std::uint64_t offset,
                                         trace::SpanRef parent = {});
  DelegationType DecideGrant(const nfs3::Fh& fh, net::Address requester,
                             bool write_op);
  void TouchSharer(const nfs3::Fh& fh, net::Address client, bool write_op,
                   DelegationType granted);
  void ExpireSharers(const nfs3::Fh& fh, FileState& state);
  sim::Task<CallbackRes> SendCallback(net::Address client, nfs3::Fh fh,
                                      CallbackType type,
                                      std::optional<std::uint64_t> wanted,
                                      trace::SpanRef parent = {});

  /// Records a delegation's hold time when it ends (recall or expiry).
  void RecordHoldTime(const Sharer& sharer);

  sim::Task<void> WaitGrace();

  sim::Scheduler& sched_;
  rpc::RpcNode& node_;
  nfs3::Nfs3Client upstream_;
  SessionConfig config_;

  // Soft state (lost on crash).
  std::map<net::Address, InvClient> inv_clients_;
  // Logical mutation clock. Starts at 1: timestamp 0 is reserved as the
  // null/bootstrap timestamp clients send when they have no state (§4.2.2).
  std::uint64_t inv_clock_ = 1;
  std::map<nfs3::Fh, FileState> files_;

  // Persistent state ("on disk"): survives Crash().
  std::set<net::Address> persistent_clients_;

  bool in_grace_ = false;
  sim::Condition grace_over_;

  ProxyServerStats stats_;
  /// Total buffered invalidation entries across all client buffers
  /// (incremented on append, decremented on serve/wrap/clear).
  std::size_t inv_entries_ = 0;
  /// Recall CALLBACKs currently in flight (recall queue depth gauge).
  int recalls_in_flight_ = 0;
  metrics::StalenessProbe* staleness_ = nullptr;
  metrics::Histogram* deleg_hold_hist_ = nullptr;   // µs
  metrics::Histogram* recall_wb_hist_ = nullptr;    // recall → reply, µs
};

}  // namespace gvfs::proxy
