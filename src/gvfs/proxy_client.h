// GVFS proxy client (§4 of the paper).
//
// Runs on each client host between the unmodified kernel NFS client
// (loopback) and the session's proxy server (WAN). Serves kernel requests
// from its disk cache whenever the session's consistency model says the
// cached state is valid:
//
//  - TTL model: attribute entries valid for a fixed period.
//  - Invalidation polling (§4.2): entries valid until a GETINV poll
//    invalidates them; a background poller with optional exponential
//    back-off keeps the window bounded.
//  - Delegation/callback (§4.3): entries valid while a per-file delegation
//    is held; delegations renew by letting a request bypass the cache before
//    they expire, and are revoked by server callbacks (read recalls
//    invalidate; write recalls force write-back, with the §4.3.2 block-list
//    optimization for large dirty sets).
//
// Write-back mode additionally absorbs WRITE/COMMIT into the disk cache and
// flushes lazily (periodic flusher, recalls, shutdown).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "common/json_writer.h"
#include "gvfs/disk_cache.h"
#include "gvfs/proto.h"
#include "gvfs/session.h"
#include "metrics/registry.h"
#include "metrics/staleness.h"
#include "nfs3/client.h"
#include "nfs3/proto.h"
#include "policy/policy.h"
#include "rpc/rpc.h"
#include "sim/concurrency.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "trace/trace.h"

namespace gvfs::proxy {

struct ProxyClientStats {
  std::uint64_t served_locally = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t polls = 0;
  std::uint64_t invalidations_applied = 0;
  std::uint64_t force_invalidations = 0;
  std::uint64_t callbacks_received = 0;
  std::uint64_t blocks_flushed = 0;
  /// Blocks brought in by sequential read-ahead (served the next fault).
  std::uint64_t blocks_prefetched = 0;
  /// Prefetch replies discarded (invalidated or changed mid-flight).
  std::uint64_t prefetches_discarded = 0;
  /// Adaptive sessions: MIGRATE handshakes completed by this client.
  std::uint64_t migrations = 0;
};

class ProxyClient {
 public:
  /// `node` is this proxy's endpoint: it serves the local kernel client's
  /// NFS calls and the server's CALLBACK RPCs, and issues upstream calls to
  /// `server` (the session's proxy server).
  ProxyClient(sim::Scheduler& sched, rpc::RpcNode& node, net::Address server,
              SessionConfig config);

  /// Starts background tasks (invalidation poller, write-back flusher).
  void Start();

  /// Flushes dirty data and stops background tasks (session teardown).
  sim::Task<void> Shutdown();

  /// Writes all dirty blocks upstream (e.g. before evaluating server state).
  sim::Task<void> FlushAll();

  /// Crash simulation: loses in-memory state (validity, delegations,
  /// timestamp); the disk cache's data and dirty flags survive.
  void Crash();

  /// Restart after a crash: rescans the disk cache, invalidates attributes,
  /// and writes back one block per dirty file to reacquire delegations and
  /// detect conflicts (§4.3.4). Conflicted files' dirty data is discarded.
  sim::Task<void> Recover();

  const SessionConfig& config() const { return config_; }
  const ProxyClientStats& stats() const { return stats_; }
  DiskCache& cache() { return cache_; }
  bool running() const { return running_; }

  /// Registers this proxy's live telemetry (pull probes over the counters
  /// above plus cache occupancy / write-back depth) under `prefix`, and
  /// attaches the per-session staleness probe consulted on every cached
  /// read-class serve. `probe` may be null (no staleness measurement).
  void AttachMetrics(metrics::Registry& registry, const std::string& prefix,
                     metrics::StalenessProbe* probe);

  /// Files whose cached dirty data was found conflicted during recovery.
  const std::vector<nfs3::Fh>& corrupted_files() const { return corrupted_; }

  /// Adaptive sessions only (null otherwise): the per-file policy engine
  /// driving runtime migrations between polling and delegation.
  policy::PolicyEngine* policy() { return policy_.get(); }

  /// Protocol-state snapshot for the flight recorder (obs/recorder.h): held
  /// delegations, poll-target timestamps, cache/write-back occupancy and
  /// the policy engine's per-file FSM states when adaptive.
  JsonObject SnapshotState() const;

  /// Switches `fh` between consistency modes with the owning shard:
  /// drains/flushes under the old mode, sends MIGRATE, applies any drained
  /// invalidations and the granted delegation. Returns false if the
  /// handshake did not complete (the old mode stays authoritative).
  sim::Task<bool> MigrateMode(nfs3::Fh fh, policy::FileMode from,
                              policy::FileMode to);

 private:
  struct Delegation {
    DelegationType type = DelegationType::kNone;
    SimTime refreshed_at = 0;
  };

  // -- kernel-facing NFS handlers --
  // All take the RPC CallContext so the kernel call's span becomes the
  // parent of every upstream RPC the handler issues (one causal tree from
  // kernel client through proxy to server).
  sim::Task<Bytes> HandleGetAttr(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleLookup(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleAccess(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRead(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleWrite(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleCommit(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleCreate(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleMkdir(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRemove(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRmdir(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRename(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleLink(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleSetAttr(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandlePassthrough(std::uint32_t proc, rpc::CallContext ctx,
                                     rpc::Body args);

  // -- server-facing callback handlers --
  sim::Task<Bytes> HandleCallback(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRecovery(rpc::CallContext ctx, rpc::Body args);

  /// Forwards a raw request upstream; strips and applies any delegation
  /// grant suffix for `granted_fh`. Returns the reply body (suffix removed),
  /// or nullopt on transport failure. `parent` chains the upstream call into
  /// the caller's trace (invalid => the call roots a new trace).
  sim::Task<std::optional<Bytes>> Upstream(std::uint32_t proc, Bytes args,
                                           std::optional<nfs3::Fh> granted_fh,
                                           std::string label,
                                           trace::SpanRef parent = {});

  /// Records a cached read-class serve into the session staleness probe.
  void RecordCachedRead(const nfs3::Fh& fh);

  /// Destination for an upstream call: the owning shard when the session is
  /// sharded and the call names a file handle, else the session server.
  net::Address UpstreamFor(const std::optional<nfs3::Fh>& fh) const;

  /// (Re)builds poll_targets_ from the session config.
  void InitPollTargets();

  /// True when the consistency model lets cached attributes answer locally.
  bool AttrServable(const nfs3::Fh& fh) const;
  /// Delegation model: do we hold a live (non-renewal-due) delegation?
  bool DelegationFresh(const nfs3::Fh& fh, bool need_write) const;
  void StoreGrant(const nfs3::Fh& fh, DelegationType type);
  void DropDelegation(const nfs3::Fh& fh);

  /// Applies post-op attributes from an upstream reply to the disk cache.
  void Absorb(const nfs3::Fh& fh, const nfs3::PostOpAttr& attr, bool own_write);

  /// Rebuilds the name cache of a changed directory with paginated READDIRs
  /// (one or two RPCs instead of one LOOKUP per name). Returns false if the
  /// directory state changed underneath us.
  sim::Task<bool> RefreshDirListing(nfs3::Fh dir, trace::SpanRef parent = {});

  // -- read-ahead --

  /// Launches background prefetches of the blocks after `index` (bounded by
  /// the configured window and the known file size).
  void MaybeReadAhead(const nfs3::Fh& fh, std::uint64_t index);
  sim::Task<void> Prefetch(nfs3::Fh fh, std::uint64_t index);

  // -- background tasks --
  sim::Task<void> PollLoop();
  sim::Task<void> PollOnce();
  sim::Task<void> FlushLoop();
  /// Adaptive sessions: closes one policy window per period and performs the
  /// migrations the engine proposes.
  sim::Task<void> PolicyLoop();

  // -- pipelined write-through (NFSv3 unstable-write contract) --

  /// Per-file state of asynchronously forwarded write-through WRITEs.
  struct AsyncWrites {
    explicit AsyncWrites(sim::Scheduler& sched) : in_flight(sched) {}
    sim::WaitGroup in_flight;
    /// Byte ranges currently in flight; an overlapping new write drains the
    /// window first (write-after-write order on the wire).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    /// Sticky failure flag, reported (and cleared) by the next COMMIT.
    bool failed = false;
  };

  AsyncWrites& AsyncWritesFor(const nfs3::Fh& fh);
  /// Forwards one unstable WRITE upstream inside the window.
  sim::Task<void> ForwardWriteAsync(nfs3::Fh fh, rpc::Body args, std::uint64_t start,
                                    std::uint64_t end);
  /// Joins every in-flight async WRITE of `fh` (no-op when none).
  sim::Task<void> DrainAsyncWrites(nfs3::Fh fh);

  /// Writes one dirty block upstream; returns false on failure. `parent`
  /// chains the WRITE into a recall's span when flushing under a callback.
  sim::Task<bool> FlushBlock(nfs3::Fh fh, std::uint64_t offset,
                             trace::SpanRef parent = {});
  /// Flushes every dirty block of `fh` through a window of up to
  /// `config_.wb_window` WRITEs in flight, then (optionally) one coalesced
  /// COMMIT. Concurrent flushes of the same file serialize on a per-file
  /// lock so per-block write-after-write order is preserved.
  sim::Task<void> FlushFile(nfs3::Fh fh, bool commit,
                            trace::SpanRef parent = {});
  /// Asynchronous remainder flush after a block-list callback reply.
  sim::Task<void> AsyncFlush(nfs3::Fh fh);
  /// §4.3.4 per-file recovery probe: GETATTR conflict check, then one-block
  /// write-back to reacquire the delegation.
  sim::Task<void> RecoverFile(nfs3::Fh fh);

  sim::Mutex& FlushLockFor(const nfs3::Fh& fh);

  sim::Scheduler& sched_;
  rpc::RpcNode& node_;
  nfs3::Nfs3Client upstream_;
  SessionConfig config_;
  DiskCache cache_;

  std::map<nfs3::Fh, Delegation> delegations_;
  /// Per-file flush serialization (never erased: a crashed flush task may
  /// still hold a reference; the map is bounded by the file population).
  std::map<nfs3::Fh, sim::Mutex> flush_locks_;
  /// Pipelined write-through tracking (never erased, same reason as above).
  std::map<nfs3::Fh, AsyncWrites> async_writes_;
  /// Window cap for async write-through forwarding, shared across files.
  sim::Semaphore wt_slots_{sched_,
                           config_.wb_window > 0 ? config_.wb_window : 1};
  /// Blocks with a prefetch READ in flight (suppresses duplicates); demand
  /// reads that miss on one of these join the prefetch via `prefetch_done_`
  /// instead of issuing their own upstream READ.
  std::set<std::pair<nfs3::Fh, std::uint64_t>> prefetch_inflight_;
  sim::Condition prefetch_done_{sched_};
  /// GETINV poll targets with per-target logical timestamps: the session
  /// server by default, every shard when the session is sharded, or the
  /// aggregation tier when SessionConfig::getinv_targets overrides.
  struct PollTarget {
    net::Address addr{};
    std::uint64_t timestamp = 0;
  };
  std::vector<PollTarget> poll_targets_;
  Duration poll_period_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // bumped on crash to cancel stale loops

  std::vector<nfs3::Fh> corrupted_;
  ProxyClientStats stats_;
  metrics::StalenessProbe* staleness_ = nullptr;
  /// Present only when config_.adaptive.
  std::unique_ptr<policy::PolicyEngine> policy_;
};

}  // namespace gvfs::proxy
