#include "gvfs/proto.h"

namespace gvfs::proxy {

#define GVFS_TRY(var, expr)                           \
  auto var##_result = (expr);                         \
  if (!var##_result) return Unexpected(var##_result.error()); \
  auto var = std::move(*var##_result)

namespace {
constexpr std::uint32_t kGrantMagic = 0x47565331;  // "GVS1"
}

const char* GvfsProcName(std::uint32_t proc) {
  switch (proc) {
    case kGetInv:
      return "GETINV";
    case kCallback:
      return "CALLBACK";
    case kRecovery:
      return "RECOVERY";
    case kNotifyInv:
      return "NOTIFYINV";
    case kMigrate:
      return "MIGRATE";
  }
  return "GVFS?";
}

nfs3::DecodeResult<GetInvArgs> GetInvArgs::Decode(xdr::Decoder& dec) {
  GVFS_TRY(ts, dec.GetU64());
  return GetInvArgs{ts};
}

void GetInvRes::Encode(xdr::Encoder& enc) const {
  enc.PutU64(new_timestamp);
  enc.PutBool(force_invalidate);
  enc.PutBool(poll_again);
  enc.PutU32(static_cast<std::uint32_t>(handles.size()));
  for (const auto& fh : handles) fh.Encode(enc);
}

nfs3::DecodeResult<GetInvRes> GetInvRes::Decode(xdr::Decoder& dec) {
  GetInvRes out;
  GVFS_TRY(ts, dec.GetU64());
  out.new_timestamp = ts;
  GVFS_TRY(force, dec.GetBool());
  out.force_invalidate = force;
  GVFS_TRY(again, dec.GetBool());
  out.poll_again = again;
  GVFS_TRY(count, dec.GetU32());
  out.handles.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GVFS_TRY(fh, nfs3::Fh::Decode(dec));
    out.handles.push_back(fh);
  }
  return out;
}

void NotifyInvArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU32(writer_host);
  enc.PutU32(writer_port);
}

nfs3::DecodeResult<NotifyInvArgs> NotifyInvArgs::Decode(xdr::Decoder& dec) {
  NotifyInvArgs out;
  GVFS_TRY(fh, nfs3::Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(host, dec.GetU32());
  out.writer_host = host;
  GVFS_TRY(port, dec.GetU32());
  out.writer_port = port;
  return out;
}

void MigrateArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU32(from);
  enc.PutU32(to);
}

nfs3::DecodeResult<MigrateArgs> MigrateArgs::Decode(xdr::Decoder& dec) {
  MigrateArgs out;
  GVFS_TRY(fh, nfs3::Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(from, dec.GetU32());
  out.from = from;
  GVFS_TRY(to, dec.GetU32());
  out.to = to;
  return out;
}

void MigrateRes::Encode(xdr::Encoder& enc) const {
  enc.PutU32(status);
  enc.PutU32(drained);
  enc.PutU32(granted);
}

nfs3::DecodeResult<MigrateRes> MigrateRes::Decode(xdr::Decoder& dec) {
  MigrateRes out;
  GVFS_TRY(status, dec.GetU32());
  out.status = status;
  GVFS_TRY(drained, dec.GetU32());
  out.drained = drained;
  GVFS_TRY(granted, dec.GetU32());
  out.granted = granted;
  return out;
}

void CallbackArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU32(static_cast<std::uint32_t>(type));
  enc.PutBool(has_wanted_offset);
  if (has_wanted_offset) enc.PutU64(wanted_offset);
}

nfs3::DecodeResult<CallbackArgs> CallbackArgs::Decode(xdr::Decoder& dec) {
  CallbackArgs out;
  GVFS_TRY(fh, nfs3::Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(type, dec.GetU32());
  out.type = static_cast<CallbackType>(type);
  GVFS_TRY(has_offset, dec.GetBool());
  out.has_wanted_offset = has_offset;
  if (has_offset) {
    GVFS_TRY(offset, dec.GetU64());
    out.wanted_offset = offset;
  }
  return out;
}

void CallbackRes::Encode(xdr::Encoder& enc) const {
  enc.PutU32(static_cast<std::uint32_t>(pending_offsets.size()));
  for (auto offset : pending_offsets) enc.PutU64(offset);
  enc.PutU64(file_size);
}

nfs3::DecodeResult<CallbackRes> CallbackRes::Decode(xdr::Decoder& dec) {
  CallbackRes out;
  GVFS_TRY(count, dec.GetU32());
  out.pending_offsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GVFS_TRY(offset, dec.GetU64());
    out.pending_offsets.push_back(offset);
  }
  GVFS_TRY(size, dec.GetU64());
  out.file_size = size;
  return out;
}

void RecoveryRes::Encode(xdr::Encoder& enc) const {
  enc.PutU32(static_cast<std::uint32_t>(dirty_files.size()));
  for (const auto& fh : dirty_files) fh.Encode(enc);
}

nfs3::DecodeResult<RecoveryRes> RecoveryRes::Decode(xdr::Decoder& dec) {
  RecoveryRes out;
  GVFS_TRY(count, dec.GetU32());
  out.dirty_files.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GVFS_TRY(fh, nfs3::Fh::Decode(dec));
    out.dirty_files.push_back(fh);
  }
  return out;
}

void GrantSuffix::AppendTo(Bytes& reply_body) const {
  xdr::Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(delegation));
  enc.PutU32(kGrantMagic);
  const Bytes& tail = enc.bytes();
  reply_body.insert(reply_body.end(), tail.begin(), tail.end());
}

GrantSuffix GrantSuffix::ExtractFrom(Bytes& reply_body) {
  GrantSuffix out;
  if (reply_body.size() < kWireBytes) return out;
  xdr::Decoder dec(reply_body.data() + reply_body.size() - kWireBytes, kWireBytes);
  auto type = dec.GetU32();
  auto magic = dec.GetU32();
  if (!type || !magic || *magic != kGrantMagic) return out;
  if (*type > static_cast<std::uint32_t>(DelegationType::kWrite)) return out;
  out.delegation = static_cast<DelegationType>(*type);
  reply_body.resize(reply_body.size() - kWireBytes);
  return out;
}

trace::CheckerConfig NfsTraceCheckerConfig() {
  trace::CheckerConfig config;
  // The non-idempotent NFSv3 procedures: re-executing any of these on a
  // retransmitted request changes the outcome (EEXIST on the second CREATE,
  // ENOENT on the second REMOVE, ...), which is exactly what the duplicate
  // request cache exists to prevent.
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kCreate);
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kMkdir);
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kRemove);
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kRmdir);
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kRename);
  config.AddNonIdempotent(nfs3::kProgram, nfs3::kLink);
  return config;
}

#undef GVFS_TRY

}  // namespace gvfs::proxy
