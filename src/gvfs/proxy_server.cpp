#include "gvfs/proxy_server.h"

#include <algorithm>

#include "common/logging.h"
#include "trace/trace.h"

namespace gvfs::proxy {

using nfs3::Fh;
using nfs3::Serialize;

ProxyServer::ProxyServer(sim::Scheduler& sched, rpc::RpcNode& node,
                         net::Address upstream, SessionConfig config)
    : sched_(sched),
      node_(node),
      upstream_(node, upstream),
      config_(std::move(config)),
      grace_over_(sched) {
  // NFS procedures pass through (with consistency handling around them).
  static constexpr std::uint32_t kProcs[] = {
      nfs3::kGetAttr, nfs3::kSetAttr, nfs3::kLookup, nfs3::kAccess,
      nfs3::kRead,    nfs3::kWrite,   nfs3::kCreate, nfs3::kMkdir,
      nfs3::kRemove,  nfs3::kRmdir,   nfs3::kRename, nfs3::kLink,
      nfs3::kReadDir, nfs3::kFsStat,  nfs3::kCommit,
  };
  for (std::uint32_t proc : kProcs) {
    node.RegisterHandler(nfs3::kProgram, proc,
                         [this, proc](rpc::CallContext ctx, rpc::Body args) {
                           return HandleNfs(proc, ctx, std::move(args));
                         });
  }
  node.RegisterHandler(kGvfsProgram, kGetInv,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleGetInv(ctx, std::move(args));
                       });
  node.RegisterHandler(kGvfsProgram, kNotifyInv,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleNotifyInv(ctx, std::move(args));
                       });
  node.RegisterHandler(kGvfsProgram, kMigrate,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleMigrate(ctx, std::move(args));
                       });
}

// ---------------------------------------------------------------------------
// Request classification
// ---------------------------------------------------------------------------

ProxyServer::OpInfo ProxyServer::Classify(std::uint32_t proc, ByteView args) {
  OpInfo info;
  info.known = true;
  switch (proc) {
    case nfs3::kGetAttr: {
      auto parsed = nfs3::Parse<nfs3::GetAttrArgs>(args);
      if (parsed) info.reads.push_back(parsed->object);
      break;
    }
    case nfs3::kAccess: {
      auto parsed = nfs3::Parse<nfs3::AccessArgs>(args);
      if (parsed) info.reads.push_back(parsed->object);
      break;
    }
    case nfs3::kLookup: {
      auto parsed = nfs3::Parse<nfs3::LookupArgs>(args);
      if (parsed) info.reads.push_back(parsed->dir);
      break;
    }
    case nfs3::kReadDir: {
      auto parsed = nfs3::Parse<nfs3::ReadDirArgs>(args);
      if (parsed) info.reads.push_back(parsed->dir);
      break;
    }
    case nfs3::kRead: {
      auto parsed = nfs3::Parse<nfs3::ReadArgs>(args);
      if (parsed) {
        info.reads.push_back(parsed->file);
        info.offset = parsed->offset;
      }
      break;
    }
    case nfs3::kFsStat:
      break;  // no per-file consistency impact
    case nfs3::kCommit: {
      auto parsed = nfs3::Parse<nfs3::CommitArgs>(args);
      if (parsed) info.reads.push_back(parsed->file);
      break;
    }
    case nfs3::kWrite: {
      auto parsed = nfs3::Parse<nfs3::WriteArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->file);
        info.offset = parsed->offset;
      }
      break;
    }
    case nfs3::kSetAttr: {
      auto parsed = nfs3::Parse<nfs3::SetAttrArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->object);
      }
      break;
    }
    case nfs3::kCreate:
    case nfs3::kMkdir: {
      auto parsed = nfs3::Parse<nfs3::CreateArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->dir);
      }
      break;
    }
    case nfs3::kRemove:
    case nfs3::kRmdir: {
      auto parsed = nfs3::Parse<nfs3::RemoveArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->dir);
        info.victims.push_back({parsed->dir, parsed->name});
      }
      break;
    }
    case nfs3::kRename: {
      auto parsed = nfs3::Parse<nfs3::RenameArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->from_dir);
        info.writes.push_back(parsed->to_dir);
        info.victims.push_back({parsed->from_dir, parsed->from_name});
        info.victims.push_back({parsed->to_dir, parsed->to_name});
      }
      break;
    }
    case nfs3::kLink: {
      auto parsed = nfs3::Parse<nfs3::LinkArgs>(args);
      if (parsed) {
        info.mutating = true;
        info.writes.push_back(parsed->dir);
        info.writes.push_back(parsed->file);
      }
      break;
    }
    default:
      info.known = false;
  }
  return info;
}

// ---------------------------------------------------------------------------
// Main NFS path
// ---------------------------------------------------------------------------

sim::Task<Bytes> ProxyServer::HandleNfs(std::uint32_t proc, rpc::CallContext ctx,
                                        rpc::Body args) {
  // The staleness probe stamps new versions with the request's receipt time:
  // it precedes the upstream mtime, so a client that already read the new
  // data never appears stale against its own refresh.
  const SimTime received = sched_.Now();
  co_await WaitGrace();
  RegisterClient(ctx.caller);

  OpInfo info = Classify(proc, args);
  // Fault injection for the trace checker's negative tests: skip the recall
  // step entirely so conflicting delegations can coexist.
  const bool skip_recalls = config_.unsafe_skip_recalls;

  // Resolve victims (e.g. the file a REMOVE will unlink) before the mutation
  // lands, so their holders can be recalled / invalidated too.
  std::vector<Fh> victim_fhs;
  for (const auto& [dir, name] : info.victims) {
    nfs3::LookupArgs lookup;
    lookup.dir = dir;
    lookup.name = name;
    rpc::CallOptions lopts;
    lopts.parent = ctx.span;
    auto res = co_await upstream_.Call<nfs3::LookupRes>(nfs3::kLookup, lookup,
                                                        std::move(lopts));
    if (res && res->status == nfs3::Status::kOk) victim_fhs.push_back(res->object);
  }

  // Adaptive sessions run polling as the base model with per-file
  // delegations layered on top, so the recall/grant machinery must be live
  // for them too; DecideGrant's per-file mode gate keeps grants scoped to
  // files the policy engine actually migrated.
  const bool deleg_active =
      config_.model == ConsistencyModel::kDelegationCallback || config_.adaptive;

  if (deleg_active && !skip_recalls) {
    // Recall conflicting delegations before the operation proceeds.
    for (const auto& fh : info.writes) {
      co_await RecallConflicts(fh, ctx.caller, /*write_op=*/true, info.offset,
                               ctx.span);
    }
    for (const auto& fh : victim_fhs) {
      co_await RecallConflicts(fh, ctx.caller, /*write_op=*/true, std::nullopt,
                               ctx.span);
    }
    for (const auto& fh : info.reads) {
      co_await RecallConflicts(fh, ctx.caller, /*write_op=*/false, std::nullopt,
                               ctx.span);
      if (info.offset.has_value()) {
        co_await EnsureBlockWrittenBack(fh, ctx.caller, *info.offset, ctx.span);
      }
    }
  }

  // Forward the raw request upstream (kernel NFS server over loopback).
  ++stats_.forwarded;
  rpc::CallOptions fwd_opts;
  fwd_opts.parent = ctx.span;
  auto reply = co_await node_.Call(upstream_.server(), nfs3::kProgram, proc, args.ToBytes(),
                                   std::move(fwd_opts));
  if (!reply) {
    // Upstream unreachable: surface as a server fault in NFS terms.
    nfs3::GetAttrRes fault;
    fault.status = nfs3::Status::kServerFault;
    co_return Serialize(fault);
  }
  Bytes body = reply->ToBytes();

  // A successful WRITE from the write-back owner retires pending blocks.
  if (proc == nfs3::kWrite && info.offset.has_value() && !info.writes.empty()) {
    auto it = files_.find(info.writes.front());
    if (it != files_.end() && it->second.writeback_owner == ctx.caller) {
      it->second.pending_writeback.erase(*info.offset);
      if (it->second.pending_writeback.empty()) {
        it->second.writeback_owner = net::Address{};
      }
    }
  }

  // Record invalidations for the polling model (only if the mutation
  // actually succeeded — the first u32 of every NFS reply is the status).
  if (info.mutating) {
    xdr::Decoder dec(body);
    auto status = dec.GetU32();
    if (status && *status == 0) {
      for (const auto& fh : info.writes) {
        co_await PropagateInvalidation(fh, ctx.caller, ctx.span);
        if (staleness_ != nullptr) {
          staleness_->StampVersion(fh.fsid, fh.ino, received, ctx.caller.host);
        }
      }
      for (const auto& fh : victim_fhs) {
        co_await PropagateInvalidation(fh, ctx.caller, ctx.span);
        if (staleness_ != nullptr) {
          staleness_->StampVersion(fh.fsid, fh.ino, received, ctx.caller.host);
        }
      }
    }
  }

  // Delegation decision, piggybacked on the reply (§4.3.1).
  if (deleg_active && info.known) {
    DelegationType grant = DelegationType::kNone;
    if (!info.writes.empty()) {
      grant = DecideGrant(info.writes.front(), ctx.caller, /*write_op=*/true);
      TouchSharer(info.writes.front(), ctx.caller, /*write_op=*/true, grant);
    } else if (!info.reads.empty()) {
      grant = DecideGrant(info.reads.front(), ctx.caller, /*write_op=*/false);
      TouchSharer(info.reads.front(), ctx.caller, /*write_op=*/false, grant);
    }
    GrantSuffix suffix;
    suffix.delegation = grant;
    suffix.AppendTo(body);
  }

  co_return body;
}

// ---------------------------------------------------------------------------
// Invalidation polling (§4.2)
// ---------------------------------------------------------------------------

void ProxyServer::RecordInvalidation(const Fh& fh, net::Address writer) {
  if (config_.model != ConsistencyModel::kInvalidationPolling) return;
  const auto& tr = node_.tracer();
  const HostId host = node_.address().host;
  ++inv_clock_;
  for (auto& [client, state] : inv_clients_) {
    if (client == writer) continue;  // the writer observed its own change
    if (!state.pending.insert(fh).second) continue;  // coalesced
    state.buffer.push_back(InvEntry{inv_clock_, fh});
    ++stats_.invalidations_recorded;
    ++inv_entries_;
    stats_.inv_entries_peak =
        std::max<std::uint64_t>(stats_.inv_entries_peak, inv_entries_);
    tr.Inv(trace::EventType::kInvAppend, host, fh.fsid, fh.ino, inv_clock_,
           static_cast<std::uint32_t>(state.buffer.size()), client.host);
    if (state.buffer.size() > config_.inv_buffer_capacity) {
      const InvEntry& oldest = state.buffer.front();
      tr.Inv(trace::EventType::kInvWrap, host, oldest.fh.fsid, oldest.fh.ino,
             oldest.timestamp,
             static_cast<std::uint32_t>(state.buffer.size()), client.host);
      ++stats_.inv_wraps;
      state.pending.erase(oldest.fh);
      state.buffer.pop_front();
      --inv_entries_;
      state.overflowed = true;  // wrap-around: this client must force-invalidate
    }
  }
}

bool ProxyServer::OwnsHandle(const Fh& fh) const {
  const auto shard_count =
      static_cast<std::uint32_t>(config_.shard_addrs.size());
  if (shard_count < 2) return true;
  return ShardOf(fh, shard_count) == config_.shard_index;
}

sim::Task<void> ProxyServer::PropagateInvalidation(Fh fh, net::Address writer,
                                                   trace::SpanRef parent) {
  if (OwnsHandle(fh)) {
    RecordInvalidation(fh, writer);
    co_return;
  }
  // Sharded fleet: invalidation state lives only with the owning shard.
  // Awaited before the NFS reply goes out, so the owner has recorded the
  // invalidation before the writer can tell anyone about its update.
  NotifyInvArgs notify;
  notify.file = fh;
  notify.writer_host = writer.host;
  notify.writer_port = writer.port;
  ++stats_.notifyinv_sent;
  rpc::CallOptions opts;
  opts.label = "NOTIFYINV";
  opts.parent = parent;
  const net::Address owner = config_.shard_addrs[ShardOf(
      fh, static_cast<std::uint32_t>(config_.shard_addrs.size()))];
  auto reply = co_await node_.Call(owner, kGvfsProgram, kNotifyInv,
                                   Serialize(notify), std::move(opts));
  if (!reply) {
    GVFS_WARN("shard %u: NOTIFYINV for %llu:%llu to shard host %u failed",
              node_.address().host, static_cast<unsigned long long>(fh.fsid),
              static_cast<unsigned long long>(fh.ino), owner.host);
  }
}

sim::Task<Bytes> ProxyServer::HandleNotifyInv(rpc::CallContext ctx,
                                              rpc::Body args) {
  ++stats_.notifyinv_received;
  auto parsed = nfs3::Parse<NotifyInvArgs>(args);
  if (parsed) {
    const net::Address writer{parsed->writer_host, parsed->writer_port};
    RecordInvalidation(parsed->file, writer);
    if (config_.model == ConsistencyModel::kDelegationCallback ||
        config_.adaptive) {
      co_await RecallConflicts(parsed->file, writer, /*write_op=*/true,
                               std::nullopt, ctx.span);
    }
  }
  co_return Serialize(NotifyInvRes{});
}

sim::Task<Bytes> ProxyServer::HandleGetInv(rpc::CallContext ctx, rpc::Body args) {
  ++stats_.getinv_served;
  RegisterClient(ctx.caller);
  const auto& tr = node_.tracer();
  const HostId host = node_.address().host;

  GetInvRes res;
  auto parsed = nfs3::Parse<GetInvArgs>(args);
  if (!parsed) {
    res.force_invalidate = true;
    res.new_timestamp = inv_clock_;
    co_return Serialize(res);
  }

  auto it = inv_clients_.find(ctx.caller);
  if (it == inv_clients_.end()) {
    // Case 1: first GETINV from this client (bootstrap, or first contact
    // after a server restart that lost all buffers).
    auto& state = inv_clients_[ctx.caller];
    state.last_acked = inv_clock_;
    res.new_timestamp = inv_clock_;
    res.force_invalidate = true;
    ++stats_.force_invalidations;
    tr.Inv(trace::EventType::kInvForce, host, 0, 0, inv_clock_, 0,
           ctx.caller.host);
    co_return Serialize(res);
  }

  InvClient& state = it->second;
  const std::uint64_t ts = parsed->last_timestamp;
  const bool stale_ts = ts == 0 || ts < state.last_acked || ts > inv_clock_;
  if (stale_ts || state.overflowed) {
    // Case 2: the client cannot be brought up to date incrementally (lost
    // timestamp, or its buffer wrapped around during a partition).
    inv_entries_ -= state.buffer.size();
    state.buffer.clear();
    state.pending.clear();
    state.overflowed = false;
    state.last_acked = inv_clock_;
    res.new_timestamp = inv_clock_;
    res.force_invalidate = true;
    ++stats_.force_invalidations;
    tr.Inv(trace::EventType::kInvForce, host, 0, 0, inv_clock_, 0,
           ctx.caller.host);
    co_return Serialize(res);
  }

  // Case 3: return (and clear) buffered invalidations, batched.
  const std::size_t batch =
      std::min<std::size_t>(state.buffer.size(), config_.getinv_batch);
  res.handles.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    InvEntry entry = state.buffer.front();
    state.buffer.pop_front();
    state.pending.erase(entry.fh);
    res.handles.push_back(entry.fh);
    state.last_acked = entry.timestamp;
  }
  inv_entries_ -= batch;
  if (state.buffer.empty()) {
    state.last_acked = inv_clock_;
  } else {
    res.poll_again = true;
  }
  res.new_timestamp = state.last_acked;
  tr.Inv(trace::EventType::kInvPoll, host, 0, 0, res.new_timestamp,
         static_cast<std::uint32_t>(res.handles.size()), ctx.caller.host);
  co_return Serialize(res);
}

// ---------------------------------------------------------------------------
// Adaptive policy migrations
// ---------------------------------------------------------------------------

std::uint32_t ProxyServer::DrainInvEntries(const Fh& fh, net::Address client) {
  auto it = inv_clients_.find(client);
  if (it == inv_clients_.end()) return 0;
  InvClient& state = it->second;
  std::uint32_t drained = 0;
  for (auto entry = state.buffer.begin(); entry != state.buffer.end();) {
    if (entry->fh == fh) {
      // The MIGRATE reply delivers this entry, exactly like a GETINV batch
      // would have: trace it as an applied per-handle invalidation so the
      // version-continuity invariant sees the buffer emptied.
      node_.tracer().Inv(trace::EventType::kInvPoll, node_.address().host,
                         fh.fsid, fh.ino, entry->timestamp, 1, client.host);
      entry = state.buffer.erase(entry);
      state.pending.erase(fh);
      --inv_entries_;
      ++drained;
    } else {
      ++entry;
    }
  }
  stats_.inv_drained += drained;
  return drained;
}

sim::Task<Bytes> ProxyServer::HandleMigrate(rpc::CallContext ctx, rpc::Body args) {
  co_await WaitGrace();
  RegisterClient(ctx.caller);
  MigrateRes res;
  auto parsed = nfs3::Parse<MigrateArgs>(args);
  if (!parsed) {
    res.status = 1;
    co_return Serialize(res);
  }
  const Fh fh = parsed->file;
  const auto to = static_cast<policy::FileMode>(parsed->to);
  ++stats_.migrations_served;

  // Entering write delegation conflicts with every existing holder; entering
  // read delegation or polling only with write holders.
  const bool write_op = to == policy::FileMode::kWriteDelegation;
  if (!config_.unsafe_skip_recalls) {
    co_await RecallConflicts(fh, ctx.caller, write_op, std::nullopt, ctx.span);
  }

  // The caller dropped its own delegation client-side before sending the
  // MIGRATE; retire the server-side record without a callback.
  auto fit = files_.find(fh);
  if (fit != files_.end()) {
    auto sharer = fit->second.sharers.find(ctx.caller);
    if (sharer != fit->second.sharers.end() &&
        sharer->second.granted != DelegationType::kNone) {
      RecordHoldTime(sharer->second);
      node_.tracer().Deleg(trace::EventType::kDelegRelease,
                           node_.address().host, fh.fsid, fh.ino,
                           static_cast<std::uint32_t>(sharer->second.granted),
                           ctx.caller.host, trace::kDelegFlagServerSide, 0);
      sharer->second.granted = DelegationType::kNone;
      sharer->second.granted_at = 0;
    }
  }

  // Drain-before-switch: every invalidation buffered for this caller+file is
  // delivered inside the MIGRATE reply, so no mutation recorded under the
  // old mode becomes invisible under the new one. unsafe_skip_drain is fault
  // injection for the trace checker's negative tests — NEVER enable it
  // outside tests.
  if (!config_.unsafe_skip_drain) {
    res.drained = DrainInvEntries(fh, ctx.caller);
    auto cit = inv_clients_.find(ctx.caller);
    if (cit != inv_clients_.end() && cit->second.overflowed) {
      // A wrapped buffer may already have dropped entries for this very
      // file; force the caller to treat its cached attributes as stale.
      res.drained = std::max<std::uint32_t>(res.drained, 1);
    }
  }

  files_[fh].mode = to;
  if (to != policy::FileMode::kPolling) {
    const DelegationType grant = DecideGrant(fh, ctx.caller, write_op);
    TouchSharer(fh, ctx.caller, write_op, grant);
    res.granted = static_cast<std::uint32_t>(grant);
  }
  node_.tracer().Policy(trace::EventType::kPolicyMigrate, node_.address().host,
                        fh.fsid, fh.ino, parsed->from, parsed->to,
                        trace::kPolicyFlagServerSide);
  co_return Serialize(res);
}

// ---------------------------------------------------------------------------
// Delegations (§4.3)
// ---------------------------------------------------------------------------

void ProxyServer::RecordHoldTime(const Sharer& sharer) {
  if (deleg_hold_hist_ == nullptr || sharer.granted_at == 0) return;
  const SimTime held = sched_.Now() - sharer.granted_at;
  deleg_hold_hist_->Record(
      static_cast<std::uint64_t>(held > 0 ? held / kMicrosecond : 0));
}

void ProxyServer::ExpireSharers(const Fh& fh, FileState& state) {
  const SimTime now = sched_.Now();
  for (auto it = state.sharers.begin(); it != state.sharers.end();) {
    if (now - it->second.last_access > config_.deleg_expiry) {
      // Speculated closed; no callback needed — the client-side renewal
      // period is shorter than the expiry, so a live client would have
      // refreshed it.
      if (it->second.granted != DelegationType::kNone) {
        node_.tracer().Deleg(
            trace::EventType::kDelegExpiry, node_.address().host, fh.fsid,
            fh.ino, static_cast<std::uint32_t>(it->second.granted),
            it->first.host, trace::kDelegFlagServerSide, 0);
        RecordHoldTime(it->second);
      }
      it = state.sharers.erase(it);
    } else {
      ++it;
    }
  }
}

sim::Task<CallbackRes> ProxyServer::SendCallback(net::Address client, Fh fh,
                                                 CallbackType type,
                                                 std::optional<std::uint64_t> wanted,
                                                 trace::SpanRef parent) {
  CallbackArgs args;
  args.file = fh;
  args.type = type;
  if (wanted.has_value()) {
    args.has_wanted_offset = true;
    args.wanted_offset = *wanted;
  }
  ++stats_.callbacks_sent;
  rpc::CallOptions opts;
  opts.label = "CALLBACK";
  opts.timeout = Seconds(2);
  opts.max_retries = 3;
  opts.parent = parent;
  auto reply = co_await node_.Call(client, kGvfsProgram, kCallback,
                                   Serialize(args), std::move(opts));
  if (!reply) co_return CallbackRes{};  // client unreachable; treat as revoked
  auto parsed = nfs3::Parse<CallbackRes>(*reply);
  co_return parsed.value_or(CallbackRes{});
}

sim::Task<void> ProxyServer::RecallConflicts(Fh fh, net::Address requester,
                                             bool write_op,
                                             std::optional<std::uint64_t> offset,
                                             trace::SpanRef parent) {
  auto it = files_.find(fh);
  if (it == files_.end()) co_return;
  ExpireSharers(fh, it->second);

  // Collect the conflicting holders first: the sharer map may be touched by
  // concurrent requests while we await callbacks.
  std::vector<std::pair<net::Address, DelegationType>> to_recall;
  for (const auto& [addr, sharer] : it->second.sharers) {
    if (addr == requester) continue;
    if (sharer.granted == DelegationType::kNone) continue;
    if (write_op || sharer.granted == DelegationType::kWrite) {
      to_recall.push_back({addr, sharer.granted});
    }
  }

  if (to_recall.empty()) co_return;

  ++it->second.recalling;
  if (to_recall.size() == 1) {
    co_await RecallOne(fh, to_recall.front().first, to_recall.front().second,
                       offset, parent);
  } else {
    // Multicast: every conflicting sharer is recalled concurrently and the
    // operation proceeds once all of them answered (or timed out), so the
    // wait costs one callback round trip instead of one per sharer.
    sim::WaitGroup in_flight(sched_);
    for (const auto& [addr, granted] : to_recall) {
      in_flight.Spawn(RecallOne(fh, addr, granted, offset, parent));
    }
    co_await in_flight.Wait();
  }
  auto again = files_.find(fh);
  if (again != files_.end()) --again->second.recalling;
}

sim::Task<void> ProxyServer::RecallOne(Fh fh, net::Address addr,
                                       DelegationType granted,
                                       std::optional<std::uint64_t> offset,
                                       trace::SpanRef parent) {
  const CallbackType type = granted == DelegationType::kWrite
                                ? CallbackType::kRecallWrite
                                : CallbackType::kRecallRead;
  if (type == CallbackType::kRecallWrite) {
    ++stats_.recalls_write;
  } else {
    ++stats_.recalls_read;
  }
  node_.tracer().Deleg(
      trace::EventType::kDelegRecall, node_.address().host, fh.fsid, fh.ino,
      static_cast<std::uint32_t>(granted), addr.host,
      trace::kDelegFlagServerSide |
          (offset.has_value() ? trace::kDelegFlagHasWanted : 0),
      offset.value_or(0));
  const SimTime recall_start = sched_.Now();
  ++recalls_in_flight_;
  CallbackRes res = co_await SendCallback(addr, fh, type, offset, parent);
  --recalls_in_flight_;
  if (recall_wb_hist_ != nullptr && type == CallbackType::kRecallWrite) {
    // Recall → reply covers the holder's synchronous write-back (§4.3.2).
    const SimTime took = sched_.Now() - recall_start;
    recall_wb_hist_->Record(
        static_cast<std::uint64_t>(took > 0 ? took / kMicrosecond : 0));
  }

  auto again = files_.find(fh);
  if (again == files_.end()) co_return;
  auto sharer = again->second.sharers.find(addr);
  if (sharer != again->second.sharers.end()) {
    RecordHoldTime(sharer->second);
    sharer->second.granted = DelegationType::kNone;
    sharer->second.granted_at = 0;
    node_.tracer().Deleg(trace::EventType::kDelegRelease, node_.address().host,
                         fh.fsid, fh.ino, static_cast<std::uint32_t>(granted),
                         addr.host, trace::kDelegFlagServerSide, 0);
  }
  if (!res.pending_offsets.empty()) {
    // Block-list optimization: the write delegation is considered revoked
    // now; the server monitors the remaining write-back (§4.3.2).
    again->second.pending_writeback.insert(res.pending_offsets.begin(),
                                           res.pending_offsets.end());
    again->second.writeback_owner = addr;
    if (res.file_size > 0) {
      // Extend the upstream file to the holder's authoritative size so
      // other clients see correct attributes while blocks trickle in.
      nfs3::SetAttrArgs extend;
      extend.object = fh;
      extend.size = res.file_size;
      // gvfs-lint: allow(discarded-expected): best-effort size hint; the authoritative bytes arrive via write-back and a failure here only delays attribute freshness
      (void)co_await upstream_.Call<nfs3::SetAttrRes>(nfs3::kSetAttr, extend);
    }
  }
}

sim::Task<void> ProxyServer::EnsureBlockWrittenBack(Fh fh, net::Address requester,
                                                    std::uint64_t offset,
                                                    trace::SpanRef parent) {
  auto it = files_.find(fh);
  if (it == files_.end()) co_return;
  const std::uint64_t block_offset = offset - offset % config_.block_size;
  if (it->second.pending_writeback.count(block_offset) == 0) co_return;
  if (it->second.writeback_owner == requester) co_return;

  // Requests to blocks not yet written back generate callbacks forcing the
  // owner to submit them promptly (§4.3.2).
  node_.tracer().Deleg(trace::EventType::kDelegRecall, node_.address().host,
                       fh.fsid, fh.ino,
                       static_cast<std::uint32_t>(DelegationType::kWrite),
                       it->second.writeback_owner.host,
                       trace::kDelegFlagServerSide | trace::kDelegFlagHasWanted,
                       block_offset);
  ++recalls_in_flight_;
  co_await SendCallback(it->second.writeback_owner, fh, CallbackType::kRecallWrite,
                        block_offset, parent);
  --recalls_in_flight_;
  // The owner's WRITE (observed in HandleNfs) retires the pending offset.
}

DelegationType ProxyServer::DecideGrant(const Fh& fh, net::Address requester,
                                        bool write_op) {
  auto& state = files_[fh];
  ExpireSharers(fh, state);
  // Fault injection for the trace checker's negative tests: grant blindly,
  // ignoring every conflict rule below.
  if (config_.unsafe_skip_recalls) {
    return write_op ? DelegationType::kWrite : DelegationType::kRead;
  }
  // Adaptive sessions: delegations exist only for files a MIGRATE moved out
  // of polling, and a read-delegated file never hands out write grants.
  if (config_.adaptive) {
    if (state.mode == policy::FileMode::kPolling) return DelegationType::kNone;
    if (state.mode == policy::FileMode::kReadDelegation && write_op) {
      return DelegationType::kNone;
    }
  }
  // Temporarily non-cacheable: a recall is in flight or a write-back is
  // still being monitored (§4.3.1 / §4.3.2).
  if (state.recalling > 0 || !state.pending_writeback.empty()) {
    return DelegationType::kNone;
  }

  bool other_sharers = false;
  bool other_write_holder = false;
  for (const auto& [addr, sharer] : state.sharers) {
    if (addr == requester) continue;
    other_sharers = true;
    if (sharer.granted == DelegationType::kWrite) other_write_holder = true;
  }

  if (write_op) {
    // Write delegation only when nobody else has the file open (§4.3.1).
    return other_sharers ? DelegationType::kNone : DelegationType::kWrite;
  }
  // Read delegations coexist; a conflicting write holder would have been
  // recalled before we got here, but stay safe if one remains.
  return other_write_holder ? DelegationType::kNone : DelegationType::kRead;
}

void ProxyServer::TouchSharer(const Fh& fh, net::Address client, bool write_op,
                              DelegationType granted) {
  auto& sharer = files_[fh].sharers[client];
  sharer.last_access = sched_.Now();
  if (write_op) sharer.last_write = sched_.Now();
  // A kNone decision (e.g. during a recall) leaves the recorded grant alone;
  // a read refresh never downgrades a recorded write delegation — mirroring
  // the client-side rule so both ends agree on who holds what.
  if (granted == DelegationType::kWrite ||
      (granted == DelegationType::kRead &&
       sharer.granted != DelegationType::kWrite)) {
    if (sharer.granted != granted) {
      node_.tracer().Deleg(trace::EventType::kDelegGrant, node_.address().host,
                           fh.fsid, fh.ino,
                           static_cast<std::uint32_t>(granted), client.host,
                           trace::kDelegFlagServerSide, 0);
    }
    if (sharer.granted == DelegationType::kNone) sharer.granted_at = sched_.Now();
    sharer.granted = granted;
  }
}

// ---------------------------------------------------------------------------
// Failure handling (§4.3.4)
// ---------------------------------------------------------------------------

sim::Task<void> ProxyServer::WaitGrace() {
  while (in_grace_) co_await grace_over_.Wait();
}

void ProxyServer::Crash() {
  node_.tracer().Node(trace::EventType::kNodeCrash, node_.address().host);
  node_.SetDown(true);
  inv_clients_.clear();
  inv_clock_ = 1;
  inv_entries_ = 0;
  files_.clear();
  // persistent_clients_ survives: it is stored on disk.
}

sim::Task<void> ProxyServer::Recover() {
  node_.SetDown(false);
  node_.tracer().Node(trace::EventType::kNodeRecover, node_.address().host);
  if (config_.model != ConsistencyModel::kDelegationCallback &&
      !config_.adaptive) {
    co_return;
  }

  in_grace_ = true;
  // A single multicast round: every known client gets a whole-cache
  // callback; write-delegation holders answer with their dirty-file lists.
  // All callbacks go out concurrently so the grace period lasts one slow
  // client's round trip, not the sum over the client list.
  if (persistent_clients_.size() == 1) {
    co_await RecoverClient(*persistent_clients_.begin());
  } else if (!persistent_clients_.empty()) {
    sim::WaitGroup in_flight(sched_);
    for (const auto& client : persistent_clients_) {
      in_flight.Spawn(RecoverClient(client));
    }
    co_await in_flight.Wait();
  }
  in_grace_ = false;
  grace_over_.NotifyAll();
}

sim::Task<void> ProxyServer::RecoverClient(net::Address client) {
  rpc::CallOptions opts;
  opts.label = "CALLBACK";
  opts.timeout = Seconds(2);
  opts.max_retries = 2;
  auto reply = co_await node_.Call(client, kGvfsProgram, kRecovery,
                                   Serialize(RecoveryArgs{}), std::move(opts));
  if (!reply) co_return;  // client itself crashed; it will reconcile later
  auto parsed = nfs3::Parse<RecoveryRes>(*reply);
  if (!parsed) co_return;
  for (const auto& fh : parsed->dirty_files) {
    // Rebuild the open-file table: the client still holds dirty data, so
    // it keeps a write delegation to finish its write-back.
    auto& sharer = files_[fh].sharers[client];
    sharer.last_access = sched_.Now();
    sharer.last_write = sched_.Now();
    if (sharer.granted == DelegationType::kNone) sharer.granted_at = sched_.Now();
    sharer.granted = DelegationType::kWrite;
    node_.tracer().Deleg(trace::EventType::kDelegGrant, node_.address().host,
                         fh.fsid, fh.ino,
                         static_cast<std::uint32_t>(DelegationType::kWrite),
                         client.host, trace::kDelegFlagServerSide, 0);
  }
}

void ProxyServer::RegisterClient(net::Address client) {
  persistent_clients_.insert(client);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void ProxyServer::AttachMetrics(metrics::Registry& registry,
                                const std::string& prefix,
                                metrics::StalenessProbe* probe) {
  staleness_ = probe;
  deleg_hold_hist_ = &registry.GetHistogram(prefix + "deleg_hold_time_us");
  recall_wb_hist_ = &registry.GetHistogram(prefix + "recall_writeback_us");
  registry.AddProbe(prefix + "inv_buffer_occupancy", [this] {
    std::size_t occupancy = 0;
    for (const auto& [client, state] : inv_clients_) {
      occupancy = std::max(occupancy, state.buffer.size());
    }
    return static_cast<double>(occupancy);
  });
  registry.AddProbe(prefix + "forwarded",
                    [this] { return static_cast<double>(stats_.forwarded); });
  registry.AddProbe(prefix + "getinv_served", [this] {
    return static_cast<double>(stats_.getinv_served);
  });
  registry.AddProbe(prefix + "callbacks_sent", [this] {
    return static_cast<double>(stats_.callbacks_sent);
  });
  registry.AddProbe(prefix + "force_invalidations", [this] {
    return static_cast<double>(stats_.force_invalidations);
  });
  registry.AddProbe(prefix + "inv_wraps",
                    [this] { return static_cast<double>(stats_.inv_wraps); });
  registry.AddProbe(prefix + "recalls_read", [this] {
    return static_cast<double>(stats_.recalls_read);
  });
  registry.AddProbe(prefix + "recalls_write", [this] {
    return static_cast<double>(stats_.recalls_write);
  });
  registry.AddProbe(prefix + "invalidations_recorded", [this] {
    return static_cast<double>(stats_.invalidations_recorded);
  });
  registry.AddProbe(prefix + "inv_buffer_entries", [this] {
    return static_cast<double>(inv_entries_);
  });
  registry.AddProbe(prefix + "inv_entries_peak", [this] {
    return static_cast<double>(stats_.inv_entries_peak);
  });
  registry.AddProbe(prefix + "inv_buffer_clients", [this] {
    return static_cast<double>(inv_clients_.size());
  });
  registry.AddProbe(prefix + "recall_queue_depth", [this] {
    return static_cast<double>(recalls_in_flight_);
  });
  registry.AddProbe(prefix + "notifyinv_sent", [this] {
    return static_cast<double>(stats_.notifyinv_sent);
  });
  registry.AddProbe(prefix + "notifyinv_received", [this] {
    return static_cast<double>(stats_.notifyinv_received);
  });
  registry.AddProbe(prefix + "migrations_served", [this] {
    return static_cast<double>(stats_.migrations_served);
  });
  registry.AddProbe(prefix + "inv_drained", [this] {
    return static_cast<double>(stats_.inv_drained);
  });
}

JsonObject ProxyServer::SnapshotState() const {
  JsonObject snap;
  snap.Add("role", "proxy_server");
  snap.Add("inv_clock", inv_clock_);
  snap.Add("inv_entries", static_cast<std::uint64_t>(inv_entries_));
  snap.Add("in_grace", in_grace_);
  snap.Add("recalls_in_flight", recalls_in_flight_);
  snap.Add("known_clients", static_cast<std::uint64_t>(
                                persistent_clients_.size()));

  // Shard map (empty for single-server sessions).
  if (!config_.shard_addrs.empty()) {
    JsonObject shards;
    shards.Add("shard_index",
               static_cast<std::uint64_t>(config_.shard_index));
    std::string addrs = "[";
    for (std::size_t i = 0; i < config_.shard_addrs.size(); ++i) {
      if (i > 0) addrs += ',';
      addrs += "{\"host\":" + std::to_string(config_.shard_addrs[i].host) +
               ",\"port\":" + std::to_string(config_.shard_addrs[i].port) +
               "}";
    }
    addrs += ']';
    shards.AddRaw("shard_addrs", addrs);
    snap.Add("shard_map", shards);
  }

  // Per-client invalidation buffers.
  std::vector<JsonObject> inv_clients;
  for (const auto& [addr, state] : inv_clients_) {
    JsonObject c;
    c.Add("host", static_cast<std::uint64_t>(addr.host));
    c.Add("port", static_cast<std::uint64_t>(addr.port));
    c.Add("buffered", static_cast<std::uint64_t>(state.buffer.size()));
    c.Add("pending", static_cast<std::uint64_t>(state.pending.size()));
    c.Add("last_acked", state.last_acked);
    c.Add("overflowed", state.overflowed);
    inv_clients.push_back(c);
  }
  snap.Add("inv_buffers", inv_clients);

  // Active files only: anything holding a delegation, mid-recall, pending
  // write-back, or migrated out of polling mode. Quiet files are counted.
  constexpr std::size_t kMaxFiles = 256;
  std::vector<JsonObject> files;
  std::size_t active = 0;
  for (const auto& [fh, state] : files_) {
    bool interesting = state.recalling != 0 ||
                       !state.pending_writeback.empty() ||
                       state.mode != policy::FileMode::kPolling;
    for (const auto& [addr, sharer] : state.sharers) {
      interesting = interesting || sharer.granted != DelegationType::kNone;
    }
    if (!interesting) continue;
    ++active;
    if (files.size() >= kMaxFiles) continue;
    JsonObject f;
    f.Add("fh", std::to_string(fh.fsid) + ":" + std::to_string(fh.ino));
    f.Add("mode", policy::FileModeName(state.mode));
    f.Add("recalling", state.recalling);
    f.Add("pending_writeback",
          static_cast<std::uint64_t>(state.pending_writeback.size()));
    std::vector<JsonObject> grants;
    for (const auto& [addr, sharer] : state.sharers) {
      if (sharer.granted == DelegationType::kNone) continue;
      JsonObject g;
      g.Add("host", static_cast<std::uint64_t>(addr.host));
      g.Add("type", sharer.granted == DelegationType::kWrite ? "write"
                                                             : "read");
      g.Add("granted_at_ns", static_cast<std::uint64_t>(sharer.granted_at));
      grants.push_back(g);
    }
    f.Add("grants", grants);
    files.push_back(f);
  }
  snap.Add("files_tracked", static_cast<std::uint64_t>(files_.size()));
  snap.Add("files_active", static_cast<std::uint64_t>(active));
  snap.Add("files_omitted",
           static_cast<std::uint64_t>(active - files.size()));
  snap.Add("files", files);
  return snap;
}

}  // namespace gvfs::proxy
