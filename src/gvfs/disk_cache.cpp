#include "gvfs/disk_cache.h"

#include <algorithm>

namespace gvfs::proxy {

const DiskCache::AttrEntry* DiskCache::ValidAttr(const nfs3::Fh& fh) const {
  auto it = attrs_.find(fh);
  if (it == attrs_.end() || !it->second.valid) return nullptr;
  return &it->second;
}

DiskCache::AttrEntry* DiskCache::AnyAttr(const nfs3::Fh& fh) {
  auto it = attrs_.find(fh);
  return it == attrs_.end() ? nullptr : &it->second;
}

void DiskCache::StoreAttr(const nfs3::Fh& fh, const nfs3::Fattr& attr, SimTime now) {
  auto& entry = attrs_[fh];
  entry.attr = attr;
  entry.valid = true;
  entry.fetched_at = now;
}

void DiskCache::InvalidateAttr(const nfs3::Fh& fh) {
  auto it = attrs_.find(fh);
  if (it != attrs_.end()) it->second.valid = false;
}

void DiskCache::InvalidateAllAttrs() {
  for (auto& [fh, entry] : attrs_) entry.valid = false;
}

void DiskCache::ObserveMtime(const nfs3::Fh& fh, SimTime mtime, std::uint64_t size,
                             bool own_write) {
  auto it = files_.find(fh);
  if (it == files_.end()) return;
  if (!own_write && mtime != it->second.mtime_seen) {
    auto& blocks = it->second.blocks;
    for (auto b = blocks.begin(); b != blocks.end();) {
      if (!b->second.dirty) {
        cached_bytes_ -= b->second.data.size();
        b = blocks.erase(b);
      } else {
        ++b;
      }
    }
    it->second.size_seen = size;
  }
  it->second.mtime_seen = mtime;
  if (own_write) it->second.size_seen = std::max(it->second.size_seen, size);
}

const nfs3::Fh* DiskCache::ValidLookup(const nfs3::Fh& dir,
                                       const std::string& name) const {
  const AttrEntry* dir_attr = ValidAttr(dir);
  if (dir_attr == nullptr) return nullptr;  // dir state unknown
  auto it = lookups_.find({dir, name});
  if (it == lookups_.end()) return nullptr;
  if (it->second.dir_mtime != dir_attr->attr.mtime) return nullptr;  // stale
  return &it->second.child;
}

void DiskCache::StoreLookup(const nfs3::Fh& dir, const std::string& name,
                            const nfs3::Fh& child) {
  auto attr = attrs_.find(dir);
  if (attr == attrs_.end() || !attr->second.valid) return;  // unvalidatable
  lookups_[{dir, name}] = LookupEntry{child, attr->second.attr.mtime};
}

void DiskCache::DropLookup(const nfs3::Fh& dir, const std::string& name) {
  lookups_.erase({dir, name});
}

bool DiskCache::HasLookupEntries(const nfs3::Fh& dir) const {
  auto it = lookups_.lower_bound({dir, ""});
  return it != lookups_.end() && it->first.first == dir;
}

void DiskCache::ClearLookups(const nfs3::Fh& dir) {
  auto begin = lookups_.lower_bound({dir, ""});
  auto end = begin;
  while (end != lookups_.end() && end->first.first == dir) ++end;
  lookups_.erase(begin, end);
}

DiskCache::FileEntry* DiskCache::FindFile(const nfs3::Fh& fh) {
  auto it = files_.find(fh);
  return it == files_.end() ? nullptr : &it->second;
}

const DiskCache::Block* DiskCache::FindBlock(const nfs3::Fh& fh,
                                             std::uint64_t index) const {
  auto it = files_.find(fh);
  if (it == files_.end()) return nullptr;
  auto b = it->second.blocks.find(index);
  return b == it->second.blocks.end() ? nullptr : &b->second;
}

void DiskCache::StoreBlock(const nfs3::Fh& fh, std::uint64_t index, Bytes data,
                           bool dirty) {
  auto& block = files_[fh].blocks[index];
  cached_bytes_ -= block.data.size();
  block.data = std::move(data);
  block.dirty = dirty;
  cached_bytes_ += block.data.size();
}

void DiskCache::WriteIntoBlock(const nfs3::Fh& fh, std::uint64_t index,
                               std::uint64_t in_block, const Bytes& data) {
  auto& block = files_[fh].blocks[index];
  if (block.data.size() < in_block + data.size()) {
    cached_bytes_ += in_block + data.size() - block.data.size();
    block.data.resize(in_block + data.size(), 0);
  }
  std::copy(data.begin(), data.end(),
            block.data.begin() + static_cast<std::ptrdiff_t>(in_block));
  block.dirty = true;
}

void DiskCache::DropFileData(const nfs3::Fh& fh) {
  auto it = files_.find(fh);
  if (it == files_.end()) return;
  for (const auto& [index, block] : it->second.blocks) {
    cached_bytes_ -= block.data.size();
  }
  files_.erase(it);
}

void DiskCache::MarkClean(const nfs3::Fh& fh, std::uint64_t index) {
  auto it = files_.find(fh);
  if (it == files_.end()) return;
  auto b = it->second.blocks.find(index);
  if (b != it->second.blocks.end()) b->second.dirty = false;
}

bool DiskCache::NoteReadAccess(const nfs3::Fh& fh, std::uint64_t index) {
  auto& entry = files_[fh];
  if (entry.last_read_index == index) return false;  // same-block re-read
  const bool sequential =
      entry.last_read_index != kNoReadYet && index == entry.last_read_index + 1;
  entry.last_read_index = index;
  return sequential;
}

std::vector<std::uint64_t> DiskCache::DirtyOffsets(const nfs3::Fh& fh) const {
  std::vector<std::uint64_t> out;
  auto it = files_.find(fh);
  if (it == files_.end()) return out;
  for (const auto& [index, block] : it->second.blocks) {
    if (block.dirty) out.push_back(index * block_size_);
  }
  return out;
}

std::size_t DiskCache::DirtyBlockCount(const nfs3::Fh& fh) const {
  auto it = files_.find(fh);
  if (it == files_.end()) return 0;
  std::size_t count = 0;
  for (const auto& [index, block] : it->second.blocks) {
    if (block.dirty) ++count;
  }
  return count;
}

std::size_t DiskCache::TotalDirtyBlocks() const {
  std::size_t count = 0;
  for (const auto& [fh, file] : files_) {
    for (const auto& [index, block] : file.blocks) {
      if (block.dirty) ++count;
    }
  }
  return count;
}

std::vector<nfs3::Fh> DiskCache::FilesWithDirtyData() const {
  std::vector<nfs3::Fh> out;
  for (const auto& [fh, file] : files_) {
    for (const auto& [index, block] : file.blocks) {
      if (block.dirty) {
        out.push_back(fh);
        break;
      }
    }
  }
  return out;
}

void DiskCache::Crash() {
  // Disk contents (blocks, dirty flags) survive; in-memory validity does not.
  for (auto& [fh, entry] : attrs_) entry.valid = false;
  lookups_.clear();
}

}  // namespace gvfs::proxy
