#include "gvfs/proxy_client.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/sync.h"
#include "trace/trace.h"

namespace gvfs::proxy {

using nfs3::Fh;
using nfs3::Serialize;
using nfs3::Status;

namespace {

/// Negative lookup entries are stored with an invalid (ino 0) handle.
const Fh kNegative{};

}  // namespace

ProxyClient::ProxyClient(sim::Scheduler& sched, rpc::RpcNode& node,
                         net::Address server, SessionConfig config)
    : sched_(sched),
      node_(node),
      upstream_(node, server),
      config_(std::move(config)),
      cache_(config_.block_size),
      poll_period_(config_.poll_period) {
  auto bind = [this, &node](nfs3::Proc proc,
                            sim::Task<Bytes> (ProxyClient::*method)(
                                rpc::CallContext, rpc::Body)) {
    node.RegisterHandler(nfs3::kProgram, proc,
                         [this, method](rpc::CallContext ctx, rpc::Body args) {
                           return (this->*method)(ctx, std::move(args));
                         });
  };
  bind(nfs3::kGetAttr, &ProxyClient::HandleGetAttr);
  bind(nfs3::kLookup, &ProxyClient::HandleLookup);
  bind(nfs3::kAccess, &ProxyClient::HandleAccess);
  bind(nfs3::kRead, &ProxyClient::HandleRead);
  bind(nfs3::kWrite, &ProxyClient::HandleWrite);
  bind(nfs3::kCommit, &ProxyClient::HandleCommit);
  bind(nfs3::kCreate, &ProxyClient::HandleCreate);
  bind(nfs3::kMkdir, &ProxyClient::HandleMkdir);
  bind(nfs3::kRemove, &ProxyClient::HandleRemove);
  bind(nfs3::kRmdir, &ProxyClient::HandleRmdir);
  bind(nfs3::kRename, &ProxyClient::HandleRename);
  bind(nfs3::kLink, &ProxyClient::HandleLink);
  bind(nfs3::kSetAttr, &ProxyClient::HandleSetAttr);
  node.RegisterHandler(nfs3::kProgram, nfs3::kReadDir,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandlePassthrough(nfs3::kReadDir, ctx,
                                                  std::move(args));
                       });
  node.RegisterHandler(nfs3::kProgram, nfs3::kFsStat,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandlePassthrough(nfs3::kFsStat, ctx,
                                                  std::move(args));
                       });
  node.RegisterHandler(kGvfsProgram, kCallback,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleCallback(ctx, std::move(args));
                       });
  node.RegisterHandler(kGvfsProgram, kRecovery,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleRecovery(ctx, std::move(args));
                       });
  if (config_.adaptive) {
    policy::PolicyConfig pc;
    pc.dwell = config_.policy_dwell;
    pc.promote_reads = config_.policy_promote_reads;
    pc.write_hot = config_.policy_write_hot;
    pc.storm_recalls = config_.policy_storm_recalls;
    pc.storm_freeze = config_.policy_storm_freeze;
    pc.write_delegation = config_.cache_mode == CacheMode::kWriteBack;
    policy_ = std::make_unique<policy::PolicyEngine>(pc);
  }
}

// ---------------------------------------------------------------------------
// Validity predicates
// ---------------------------------------------------------------------------

bool ProxyClient::DelegationFresh(const Fh& fh, bool need_write) const {
  auto it = delegations_.find(fh);
  if (it == delegations_.end()) return false;
  if (it->second.type == DelegationType::kNone) return false;
  if (need_write && it->second.type != DelegationType::kWrite) return false;
  // Serve locally only while renewal is not due; past the renewal period a
  // request bypasses the cache to refresh the delegation (§4.3.1).
  return sched_.Now() - it->second.refreshed_at < config_.deleg_renew;
}

bool ProxyClient::AttrServable(const Fh& fh) const {
  const DiskCache::AttrEntry* entry = cache_.ValidAttr(fh);
  if (entry == nullptr) return false;
  switch (config_.model) {
    case ConsistencyModel::kTtl:
      return sched_.Now() - entry->fetched_at <= config_.attr_ttl;
    case ConsistencyModel::kInvalidationPolling:
      return true;  // valid until a GETINV poll invalidates it
    case ConsistencyModel::kDelegationCallback:
      return DelegationFresh(fh, /*need_write=*/false);
  }
  return false;
}

void ProxyClient::StoreGrant(const Fh& fh, DelegationType type) {
  if (type == DelegationType::kNone) {
    delegations_.erase(fh);
    return;
  }
  auto& deleg = delegations_[fh];
  // A write delegation is never downgraded by a read grant refresh.
  if (!(deleg.type == DelegationType::kWrite && type == DelegationType::kRead)) {
    if (deleg.type != type) {
      node_.tracer().Deleg(trace::EventType::kDelegGrant, node_.address().host,
                           fh.fsid, fh.ino, static_cast<std::uint32_t>(type),
                           upstream_.server().host, 0, 0);
    }
    deleg.type = type;
  }
  deleg.refreshed_at = sched_.Now();
}

void ProxyClient::DropDelegation(const Fh& fh) { delegations_.erase(fh); }

void ProxyClient::Absorb(const Fh& fh, const nfs3::PostOpAttr& attr, bool own_write) {
  if (!attr.has_value()) return;
  cache_.ObserveMtime(fh, attr->mtime, attr->size, own_write);
  cache_.StoreAttr(fh, *attr, sched_.Now());
  // kCacheMiss marks "entry (re)validated from an upstream reply" — the
  // refresh edge the stale-read invariant pairs against invalidations.
  node_.tracer().Cache(trace::EventType::kCacheMiss, node_.address().host,
                       fh.fsid, fh.ino, trace::kNoOffset, "");
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void ProxyClient::RecordCachedRead(const Fh& fh) {
  if (staleness_ == nullptr) return;
  const DiskCache::AttrEntry* entry = cache_.ValidAttr(fh);
  if (entry == nullptr) return;
  staleness_->OnCachedRead(fh.fsid, fh.ino, node_.address().host,
                           entry->fetched_at, sched_.Now());
}

void ProxyClient::AttachMetrics(metrics::Registry& registry,
                                const std::string& prefix,
                                metrics::StalenessProbe* probe) {
  staleness_ = probe;
  registry.AddProbe(prefix + "cache_hit_ratio", [this] {
    const double total =
        static_cast<double>(stats_.served_locally + stats_.forwarded);
    return total > 0 ? static_cast<double>(stats_.served_locally) / total : 0.0;
  });
  registry.AddProbe(prefix + "served_locally", [this] {
    return static_cast<double>(stats_.served_locally);
  });
  registry.AddProbe(prefix + "forwarded", [this] {
    return static_cast<double>(stats_.forwarded);
  });
  registry.AddProbe(prefix + "cache_bytes", [this] {
    return static_cast<double>(cache_.CachedBytes());
  });
  registry.AddProbe(prefix + "cache_attrs", [this] {
    return static_cast<double>(cache_.AttrCount());
  });
  registry.AddProbe(prefix + "wb_queue_depth", [this] {
    return static_cast<double>(cache_.TotalDirtyBlocks());
  });
  registry.AddProbe(prefix + "polls",
                    [this] { return static_cast<double>(stats_.polls); });
  registry.AddProbe(prefix + "invalidations_applied", [this] {
    return static_cast<double>(stats_.invalidations_applied);
  });
  registry.AddProbe(prefix + "force_invalidations", [this] {
    return static_cast<double>(stats_.force_invalidations);
  });
  registry.AddProbe(prefix + "callbacks_received", [this] {
    return static_cast<double>(stats_.callbacks_received);
  });
  registry.AddProbe(prefix + "blocks_flushed", [this] {
    return static_cast<double>(stats_.blocks_flushed);
  });
  registry.AddProbe(prefix + "migrations", [this] {
    return static_cast<double>(stats_.migrations);
  });
  if (policy_ != nullptr) policy_->AttachMetrics(registry, prefix);
}

JsonObject ProxyClient::SnapshotState() const {
  JsonObject snap;
  snap.Add("role", "proxy_client");
  snap.Add("running", running_);
  snap.Add("poll_period_ns", static_cast<std::uint64_t>(poll_period_));
  snap.Add("cache_bytes", cache_.CachedBytes());
  snap.Add("cache_attrs", static_cast<std::uint64_t>(cache_.AttrCount()));
  snap.Add("dirty_blocks",
           static_cast<std::uint64_t>(cache_.TotalDirtyBlocks()));

  std::vector<JsonObject> targets;
  for (const PollTarget& t : poll_targets_) {
    JsonObject o;
    o.Add("host", static_cast<std::uint64_t>(t.addr.host));
    o.Add("port", static_cast<std::uint64_t>(t.addr.port));
    o.Add("timestamp", t.timestamp);
    targets.push_back(o);
  }
  snap.Add("poll_targets", targets);

  std::vector<JsonObject> delegations;
  for (const auto& [fh, d] : delegations_) {
    if (d.type == DelegationType::kNone) continue;
    JsonObject o;
    o.Add("fh", std::to_string(fh.fsid) + ":" + std::to_string(fh.ino));
    o.Add("type", d.type == DelegationType::kWrite ? "write" : "read");
    o.Add("refreshed_at_ns", static_cast<std::uint64_t>(d.refreshed_at));
    delegations.push_back(o);
  }
  snap.Add("delegations", delegations);

  if (policy_ != nullptr) snap.Add("policy", policy_->SnapshotState());
  return snap;
}

// ---------------------------------------------------------------------------
// Upstream forwarding
// ---------------------------------------------------------------------------

net::Address ProxyClient::UpstreamFor(const std::optional<Fh>& fh) const {
  const auto shard_count =
      static_cast<std::uint32_t>(config_.shard_addrs.size());
  if (shard_count < 2 || !fh.has_value()) return upstream_.server();
  return config_.shard_addrs[ShardOf(*fh, shard_count)];
}

sim::Task<std::optional<Bytes>> ProxyClient::Upstream(std::uint32_t proc, Bytes args,
                                                      std::optional<Fh> granted_fh,
                                                      std::string label,
                                                      trace::SpanRef parent) {
  ++stats_.forwarded;
  rpc::CallOptions opts;
  opts.label = std::move(label);
  opts.max_retries = 100;  // hard-mount semantics: requests are simply retried
  opts.parent = parent;
  auto reply = co_await node_.Call(UpstreamFor(granted_fh), nfs3::kProgram,
                                   proc, std::move(args), std::move(opts));
  if (!reply) co_return std::nullopt;
  Bytes body = reply->ToBytes();
  // Adaptive sessions speak the delegation wire format too: the server
  // piggybacks grant suffixes on every known NFS reply.
  if (config_.model == ConsistencyModel::kDelegationCallback ||
      config_.adaptive) {
    GrantSuffix suffix = GrantSuffix::ExtractFrom(body);
    if (granted_fh.has_value()) StoreGrant(*granted_fh, suffix.delegation);
  }
  co_return body;
}

namespace {

template <typename Res>
Bytes Fault() {
  Res res;
  res.status = Status::kIo;
  return Serialize(res);
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel-facing handlers
// ---------------------------------------------------------------------------

sim::Task<Bytes> ProxyClient::HandleGetAttr(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::GetAttrArgs>(args);
  if (!parsed) co_return Fault<nfs3::GetAttrRes>();
  const Fh fh = parsed->object;

  if (AttrServable(fh)) {
    ++stats_.served_locally;
    node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                         fh.fsid, fh.ino, trace::kNoOffset, "GETATTR");
    RecordCachedRead(fh);
    // Snapshot before the disk-access sleep: a concurrent callback may
    // invalidate the entry while we wait (the reply is already "in flight").
    nfs3::GetAttrRes res;
    res.attr = cache_.ValidAttr(fh)->attr;
    co_await sim::Sleep(sched_, config_.disk_access_time);
    co_return Serialize(res);
  }

  // A forwarded GETATTR must reflect every write already acknowledged to the
  // kernel (noac kernels size their appends from it): drain the pipeline.
  co_await DrainAsyncWrites(fh);

  auto body = co_await Upstream(nfs3::kGetAttr, args.ToBytes(), fh, "GETATTR",
                                ctx.span);
  if (!body) co_return Fault<nfs3::GetAttrRes>();
  auto res = nfs3::Parse<nfs3::GetAttrRes>(*body);
  if (res && res->status == Status::kOk) {
    Absorb(fh, res->attr, /*own_write=*/false);
  } else if (res) {
    cache_.InvalidateAttr(fh);
  }
  co_return std::move(*body);
}

sim::Task<bool> ProxyClient::RefreshDirListing(Fh dir, trace::SpanRef parent) {
  const DiskCache::AttrEntry* dir_attr = cache_.ValidAttr(dir);
  if (dir_attr == nullptr) co_return false;
  const SimTime expected_mtime = dir_attr->attr.mtime;

  // Collect the complete listing first; apply atomically afterwards.
  std::vector<std::pair<std::string, Fh>> listing;
  std::uint64_t cookie = 0;
  while (true) {
    nfs3::ReadDirArgs args;
    args.dir = dir;
    args.cookie = cookie;
    args.max_entries = 256;
    auto body = co_await Upstream(nfs3::kReadDir, Serialize(args), dir,
                                  "READDIR", parent);
    if (!body) co_return false;
    auto res = nfs3::Parse<nfs3::ReadDirRes>(*body);
    if (!res || res->status != Status::kOk) co_return false;
    Absorb(dir, res->dir_attr, /*own_write=*/false);
    for (auto& entry : res->entries) {
      cookie = entry.cookie;
      listing.push_back({std::move(entry.name), Fh{dir.fsid, entry.fileid}});
    }
    if (res->eof || res->entries.empty()) break;
  }

  // The directory may have changed while we paged: only commit if the
  // attributes we trust now match what we started from (or were refreshed by
  // the READDIR replies themselves).
  const DiskCache::AttrEntry* now_attr = cache_.ValidAttr(dir);
  if (now_attr == nullptr) co_return false;
  if (now_attr->attr.mtime != expected_mtime &&
      config_.model == ConsistencyModel::kInvalidationPolling) {
    // Polling model: a newer mtime simply means our refresh already carries
    // the latest state; proceed.
  }
  cache_.ClearLookups(dir);
  for (const auto& [name, child] : listing) {
    cache_.StoreLookup(dir, name, child);
  }
  co_await sim::Sleep(sched_, config_.disk_access_time);  // cache rebuild
  co_return true;
}

sim::Task<Bytes> ProxyClient::HandleLookup(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::LookupArgs>(args);
  if (!parsed) co_return Fault<nfs3::LookupRes>();
  const Fh dir = parsed->dir;
  const std::string name = parsed->name;

  // Local reply possible when the directory state is trusted and (for
  // positive entries) the child's attributes are also servable.
  if (AttrServable(dir)) {
    const Fh* child = cache_.ValidLookup(dir, name);
    if (child == nullptr && config_.readdir_refresh &&
        cache_.HasLookupEntries(dir)) {
      // The directory changed and its old name entries are stale: rebuild
      // them all with one paginated READDIR instead of per-name LOOKUPs.
      if (co_await RefreshDirListing(dir, ctx.span) && AttrServable(dir)) {
        child = cache_.ValidLookup(dir, name);
        if (child == nullptr) {
          // Complete listing seen: the name definitively does not exist.
          cache_.StoreLookup(dir, name, kNegative);
          child = cache_.ValidLookup(dir, name);
        }
      }
    }
    if (child != nullptr) {
      if (!child->valid()) {
        // Cached negative entry.
        ++stats_.served_locally;
        node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                             dir.fsid, dir.ino, trace::kNoOffset, "LOOKUP");
        RecordCachedRead(dir);
        nfs3::LookupRes res;
        res.status = Status::kNoEnt;
        res.dir_attr = cache_.ValidAttr(dir)->attr;
        co_await sim::Sleep(sched_, config_.disk_access_time);
        co_return Serialize(res);
      }
      if (AttrServable(*child)) {
        ++stats_.served_locally;
        node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                             dir.fsid, dir.ino, trace::kNoOffset, "LOOKUP");
        node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                             child->fsid, child->ino, trace::kNoOffset,
                             "LOOKUP");
        RecordCachedRead(*child);
        nfs3::LookupRes res;
        res.object = *child;
        res.obj_attr = cache_.ValidAttr(*child)->attr;
        res.dir_attr = cache_.ValidAttr(dir)->attr;
        co_await sim::Sleep(sched_, config_.disk_access_time);
        co_return Serialize(res);
      }
    }
  }

  auto body = co_await Upstream(nfs3::kLookup, args.ToBytes(), dir, "LOOKUP",
                                ctx.span);
  if (!body) co_return Fault<nfs3::LookupRes>();
  auto res = nfs3::Parse<nfs3::LookupRes>(*body);
  if (res) {
    Absorb(dir, res->dir_attr, /*own_write=*/false);
    if (res->status == Status::kOk) {
      Absorb(res->object, res->obj_attr, /*own_write=*/false);
      cache_.StoreLookup(dir, name, res->object);
    } else if (res->status == Status::kNoEnt) {
      cache_.StoreLookup(dir, name, kNegative);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleAccess(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::AccessArgs>(args);
  if (!parsed) co_return Fault<nfs3::AccessRes>();
  const Fh fh = parsed->object;
  if (AttrServable(fh)) {
    ++stats_.served_locally;
    node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                         fh.fsid, fh.ino, trace::kNoOffset, "ACCESS");
    RecordCachedRead(fh);
    nfs3::AccessRes res;
    res.attr = cache_.ValidAttr(fh)->attr;
    res.access = parsed->access;
    co_await sim::Sleep(sched_, config_.disk_access_time);
    co_return Serialize(res);
  }
  auto body = co_await Upstream(nfs3::kAccess, args.ToBytes(), fh, "ACCESS",
                                ctx.span);
  if (!body) co_return Fault<nfs3::AccessRes>();
  auto res = nfs3::Parse<nfs3::AccessRes>(*body);
  if (res && res->status == Status::kOk) Absorb(fh, res->attr, false);
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleRead(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::ReadArgs>(args);
  if (!parsed) co_return Fault<nfs3::ReadRes>();
  const Fh fh = parsed->file;
  if (policy_ != nullptr) policy_->OnRead({fh.fsid, fh.ino});
  const std::uint32_t bs = cache_.block_size();
  const std::uint64_t index = parsed->offset / bs;
  const bool sequential = cache_.NoteReadAccess(fh, index);

  // If a read-ahead READ for this very block is in flight, join it rather
  // than racing it upstream with a duplicate; the re-check below then serves
  // the prefetched block (or falls through if it was discarded).
  while (prefetch_inflight_.count({fh, index}) > 0) {
    co_await prefetch_done_.Wait();
  }

  if (AttrServable(fh)) {
    const DiskCache::Block* block = cache_.FindBlock(fh, index);
    if (block != nullptr) {
      // Keep the pipeline ahead of the reader: when a sequential scan is
      // being served from cache, start fetching the blocks past the window
      // edge before the reader faults on them.
      if (sequential) MaybeReadAhead(fh, index);
      const std::uint64_t file_size = cache_.ValidAttr(fh)->attr.size;
      const std::uint64_t block_start = index * bs;
      const std::uint64_t in_block = parsed->offset - block_start;
      nfs3::ReadRes res;
      res.attr = cache_.ValidAttr(fh)->attr;
      if (in_block < block->data.size()) {
        const std::uint64_t take = std::min<std::uint64_t>(
            block->data.size() - in_block, parsed->count);
        res.data.assign(
            block->data.begin() + static_cast<std::ptrdiff_t>(in_block),
            block->data.begin() + static_cast<std::ptrdiff_t>(in_block + take));
      }
      res.count = static_cast<std::uint32_t>(res.data.size());
      res.eof = parsed->offset + res.count >= file_size;
      ++stats_.served_locally;
      node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                           fh.fsid, fh.ino, block_start, "READ");
      RecordCachedRead(fh);
      co_await sim::Sleep(sched_, config_.disk_access_time);
      co_return Serialize(res);
    }
  }

  // Read-through must not overtake the async write-through pipeline: drain
  // any in-flight WRITEs to this file before asking the server for bytes.
  co_await DrainAsyncWrites(fh);

  auto body = co_await Upstream(nfs3::kRead, args.ToBytes(), fh, "READ",
                                ctx.span);
  if (!body) co_return Fault<nfs3::ReadRes>();
  auto res = nfs3::Parse<nfs3::ReadRes>(*body);
  if (res && res->status == Status::kOk) {
    // Initialize the file entry's server-state tracking before absorbing the
    // post-op attrs, so the first absorb is not treated as a remote change.
    if (res->attr.has_value()) {
      auto& fe = cache_.FileFor(fh);
      if (fe.blocks.empty() && fe.mtime_seen == 0) {
        fe.mtime_seen = res->attr->mtime;
        fe.size_seen = res->attr->size;
      }
    }
    Absorb(fh, res->attr, /*own_write=*/false);
    if (parsed->offset % bs == 0 && !res->data.empty()) {
      cache_.StoreBlock(fh, index, res->data, /*dirty=*/false);
      if (sequential) MaybeReadAhead(fh, index);
      co_await sim::Sleep(sched_, config_.disk_access_time);  // cache insert
    }
  }
  co_return std::move(*body);
}

// ---------------------------------------------------------------------------
// Sequential read-ahead
// ---------------------------------------------------------------------------

void ProxyClient::MaybeReadAhead(const Fh& fh, std::uint64_t index) {
  if (config_.read_ahead == 0) return;
  const std::uint32_t bs = cache_.block_size();
  // The known size bounds the window: never prefetch past EOF.
  DiskCache::AttrEntry* attr = cache_.AnyAttr(fh);
  if (attr == nullptr) return;
  const std::uint64_t size = attr->attr.size;
  for (std::uint32_t k = 1; k <= config_.read_ahead; ++k) {
    const std::uint64_t next = index + k;
    if (next * bs >= size) break;
    if (cache_.FindBlock(fh, next) != nullptr) continue;
    if (!prefetch_inflight_.insert({fh, next}).second) continue;
    sim::Spawn(Prefetch(fh, next));
  }
}

sim::Task<void> ProxyClient::Prefetch(Fh fh, std::uint64_t index) {
  const std::uint64_t epoch = epoch_;
  nfs3::ReadArgs args;
  args.file = fh;
  args.offset = index * cache_.block_size();
  args.count = cache_.block_size();
  auto body = co_await Upstream(nfs3::kRead, Serialize(args), fh, "READ");
  prefetch_inflight_.erase({fh, index});

  if (body && epoch == epoch_) {
    auto res = nfs3::Parse<nfs3::ReadRes>(*body);
    if (res && res->status == Status::kOk && !res->data.empty()) {
      // Deliberately no Absorb: a prefetched reply must never re-validate
      // attributes a concurrent invalidation just cleared — that would let
      // the next fault be served from a stale prefetched block. The block is
      // kept only if the file is still at the mtime this client last
      // trusted, and never clobbers dirty data.
      DiskCache::FileEntry* entry = cache_.FindFile(fh);
      const bool changed = entry == nullptr ||
                           (res->attr.has_value() && entry->mtime_seen != 0 &&
                            res->attr->mtime != entry->mtime_seen);
      const DiskCache::Block* existing = cache_.FindBlock(fh, index);
      if (changed) {
        ++stats_.prefetches_discarded;
      } else if (existing == nullptr || !existing->dirty) {
        cache_.StoreBlock(fh, index, std::move(res->data), /*dirty=*/false);
        ++stats_.blocks_prefetched;
      }
    }
  }
  // Wake demand reads parked on this block (whether or not it was kept).
  prefetch_done_.NotifyAll();
}

sim::Task<Bytes> ProxyClient::HandleWrite(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::WriteArgs>(args);
  if (!parsed) co_return Fault<nfs3::WriteRes>();
  const Fh fh = parsed->file;
  if (policy_ != nullptr) policy_->OnWrite({fh.fsid, fh.ino});
  const std::uint32_t bs = cache_.block_size();

  // Adaptive sessions absorb writes only under a live write delegation: the
  // base polling model alone gives no exclusivity promise for the file.
  const bool can_absorb =
      config_.cache_mode == CacheMode::kWriteBack &&
      cache_.ValidAttr(fh) != nullptr &&
      (config_.model != ConsistencyModel::kDelegationCallback ||
       DelegationFresh(fh, /*need_write=*/true)) &&
      (!config_.adaptive || DelegationFresh(fh, /*need_write=*/true));

  if (can_absorb) {
    // Write-back: absorb into the disk cache; the data is stable there.
    std::uint64_t pos = parsed->offset;
    std::size_t consumed = 0;
    while (consumed < parsed->data.size()) {
      const std::uint64_t index = pos / bs;
      const std::uint64_t in_block = pos - index * bs;
      const std::uint64_t take =
          std::min<std::uint64_t>(bs - in_block, parsed->data.size() - consumed);
      Bytes chunk(parsed->data.begin() + static_cast<std::ptrdiff_t>(consumed),
                  parsed->data.begin() + static_cast<std::ptrdiff_t>(consumed + take));
      cache_.WriteIntoBlock(fh, index, in_block, chunk);
      pos += take;
      consumed += take;
    }
    // Locally fabricated attributes: size grows, mtime advances.
    DiskCache::AttrEntry* entry = cache_.AnyAttr(fh);
    entry->attr.size =
        std::max<std::uint64_t>(entry->attr.size, parsed->offset + parsed->data.size());
    entry->attr.mtime = sched_.Now();
    entry->valid = true;

    ++stats_.served_locally;
    node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                         fh.fsid, fh.ino, parsed->offset, "WRITE");
    nfs3::WriteRes res;
    res.attr = entry->attr;
    res.count = static_cast<std::uint32_t>(parsed->data.size());
    res.committed = nfs3::StableHow::kFileSync;  // disk cache is stable storage
    co_await sim::Sleep(sched_, config_.disk_access_time);
    co_return Serialize(res);
  }

  // Pipelined write-through: an unstable WRITE may be acknowledged before it
  // reaches the server — NFSv3 defers durability to COMMIT — so the forward
  // happens asynchronously through the write window and the kernel's next
  // WRITE overlaps this one's WAN round trip. Gated on wb_window > 1 (the
  // default stays strictly serial) and on read-only cache mode: in
  // write-back mode a forwarded WRITE is the delegation-acquisition probe
  // and must stay synchronous so the following writes absorb locally.
  if (config_.wb_window > 1 && config_.cache_mode == CacheMode::kReadOnly &&
      parsed->stable == nfs3::StableHow::kUnstable &&
      cache_.AnyAttr(fh) != nullptr) {
    const std::uint64_t start = parsed->offset;
    const std::uint64_t end = parsed->offset + parsed->data.size();
    AsyncWrites& aw = AsyncWritesFor(fh);
    for (const auto& range : aw.ranges) {
      if (start < range.second && range.first < end) {
        // Overlapping in-flight write: drain first so upstream applies the
        // two writes in submission order.
        co_await DrainAsyncWrites(fh);
        break;
      }
    }
    // gvfs-lint: allow(lock-across-suspend): backpressure by design — the slot spans the detached WRITE and is released in ForwardWriteAsync when it lands
    co_await wt_slots_.Acquire();
    AsyncWrites& aw2 = AsyncWritesFor(fh);  // re-lookup: map may have grown
    aw2.ranges.emplace_back(start, end);
    if (parsed->offset % bs == 0) {
      cache_.StoreBlock(fh, parsed->offset / bs, parsed->data, /*dirty=*/false);
    }
    DiskCache::AttrEntry* entry = cache_.AnyAttr(fh);
    entry->attr.size = std::max<std::uint64_t>(entry->attr.size, end);
    entry->attr.mtime = sched_.Now();
    aw2.in_flight.Spawn(ForwardWriteAsync(fh, std::move(args), start, end));

    nfs3::WriteRes res;
    res.attr = entry->attr;
    res.count = static_cast<std::uint32_t>(parsed->data.size());
    res.committed = nfs3::StableHow::kUnstable;
    co_await sim::Sleep(sched_, config_.disk_access_time);
    co_return Serialize(res);
  }

  auto body = co_await Upstream(nfs3::kWrite, args.ToBytes(), fh, "WRITE",
                                ctx.span);
  if (!body) co_return Fault<nfs3::WriteRes>();
  auto res = nfs3::Parse<nfs3::WriteRes>(*body);
  if (res && res->status == Status::kOk) {
    if (res->attr.has_value()) {
      auto& fe = cache_.FileFor(fh);
      if (fe.blocks.empty() && fe.mtime_seen == 0) fe.mtime_seen = res->attr->mtime;
    }
    Absorb(fh, res->attr, /*own_write=*/true);
    if (parsed->offset % bs == 0) {
      cache_.StoreBlock(fh, parsed->offset / bs, parsed->data, /*dirty=*/false);
    }
  }
  co_return std::move(*body);
}

ProxyClient::AsyncWrites& ProxyClient::AsyncWritesFor(const Fh& fh) {
  return async_writes_.try_emplace(fh, sched_).first->second;
}

sim::Task<void> ProxyClient::ForwardWriteAsync(Fh fh, rpc::Body args,
                                               std::uint64_t start,
                                               std::uint64_t end) {
  const std::uint64_t epoch = epoch_;
  auto body = co_await Upstream(nfs3::kWrite, args.ToBytes(), fh, "WRITE");
  AsyncWrites& aw = AsyncWritesFor(fh);
  for (auto it = aw.ranges.begin(); it != aw.ranges.end(); ++it) {
    if (it->first == start && it->second == end) {
      aw.ranges.erase(it);
      break;
    }
  }
  wt_slots_.Release();
  if (epoch != epoch_) co_return;  // crashed while in flight
  auto res = body ? nfs3::Parse<nfs3::WriteRes>(*body)
                  : std::optional<nfs3::WriteRes>{};
  if (!body || !res || res->status != Status::kOk) {
    aw.failed = true;  // surfaced by the next COMMIT
    co_return;
  }
  if (res->attr.has_value()) {
    auto& fe = cache_.FileFor(fh);
    if (fe.blocks.empty() && fe.mtime_seen == 0) fe.mtime_seen = res->attr->mtime;
  }
  Absorb(fh, res->attr, /*own_write=*/true);
}

sim::Task<void> ProxyClient::DrainAsyncWrites(Fh fh) {
  auto it = async_writes_.find(fh);
  if (it == async_writes_.end()) co_return;
  while (it->second.in_flight.Outstanding() > 0) {
    // gvfs-lint: allow(iter-after-suspend): async_writes_ entries are only ever inserted, never erased; std::map iterators survive insertion
    co_await it->second.in_flight.Wait();
  }
}

sim::Task<Bytes> ProxyClient::HandleCommit(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::CommitArgs>(args);
  if (!parsed) co_return Fault<nfs3::CommitRes>();
  const Fh fh = parsed->file;

  // Settle the async write-through pipeline before promising durability.
  auto aw_it = async_writes_.find(fh);
  if (aw_it != async_writes_.end()) {
    co_await DrainAsyncWrites(fh);
    // gvfs-lint: allow(iter-after-suspend): async_writes_ entries are only ever inserted, never erased; std::map iterators survive insertion
    if (aw_it->second.failed) {
      aw_it->second.failed = false;
      co_return Fault<nfs3::CommitRes>();
    }
  }

  if (config_.cache_mode == CacheMode::kWriteBack &&
      cache_.DirtyBlockCount(fh) > 0) {
    // The disk cache is stable storage; the commit is satisfied locally and
    // the data reaches the server on the next flush (§4.3, write delegation
    // "can further delay writes").
    ++stats_.served_locally;
    node_.tracer().Cache(trace::EventType::kCacheHit, node_.address().host,
                         fh.fsid, fh.ino, trace::kNoOffset, "COMMIT");
    nfs3::CommitRes res;
    const DiskCache::AttrEntry* entry = cache_.ValidAttr(fh);
    if (entry != nullptr) res.attr = entry->attr;
    co_await sim::Sleep(sched_, config_.disk_access_time);
    co_return Serialize(res);
  }

  auto body = co_await Upstream(nfs3::kCommit, args.ToBytes(), fh, "COMMIT",
                                ctx.span);
  if (!body) co_return Fault<nfs3::CommitRes>();
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleCreate(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::CreateArgs>(args);
  if (!parsed) co_return Fault<nfs3::CreateRes>();
  const Fh dir = parsed->dir;
  auto body = co_await Upstream(nfs3::kCreate, args.ToBytes(), dir, "CREATE",
                                ctx.span);
  if (!body) co_return Fault<nfs3::CreateRes>();
  auto res = nfs3::Parse<nfs3::CreateRes>(*body);
  if (res) {
    Absorb(dir, res->dir_attr, /*own_write=*/true);
    if (res->status == Status::kOk) {
      Absorb(res->object, res->obj_attr, /*own_write=*/true);
      cache_.StoreLookup(dir, parsed->name, res->object);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleMkdir(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::MkdirArgs>(args);
  if (!parsed) co_return Fault<nfs3::MkdirRes>();
  const Fh dir = parsed->dir;
  auto body = co_await Upstream(nfs3::kMkdir, args.ToBytes(), dir, "MKDIR",
                                ctx.span);
  if (!body) co_return Fault<nfs3::MkdirRes>();
  auto res = nfs3::Parse<nfs3::MkdirRes>(*body);
  if (res) {
    Absorb(dir, res->dir_attr, /*own_write=*/true);
    if (res->status == Status::kOk) {
      Absorb(res->object, res->obj_attr, /*own_write=*/true);
      cache_.StoreLookup(dir, parsed->name, res->object);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleRemove(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::RemoveArgs>(args);
  if (!parsed) co_return Fault<nfs3::RemoveRes>();
  const Fh dir = parsed->dir;
  auto body = co_await Upstream(nfs3::kRemove, args.ToBytes(), dir, "REMOVE",
                                ctx.span);
  if (!body) co_return Fault<nfs3::RemoveRes>();
  auto res = nfs3::Parse<nfs3::RemoveRes>(*body);
  if (res) {
    Absorb(dir, res->dir_attr, /*own_write=*/true);
    if (res->status == Status::kOk) {
      const Fh* victim = cache_.ValidLookup(dir, parsed->name);
      if (victim != nullptr && victim->valid()) cache_.InvalidateAttr(*victim);
      cache_.StoreLookup(dir, parsed->name, kNegative);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleRmdir(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::RmdirArgs>(args);
  if (!parsed) co_return Fault<nfs3::RmdirRes>();
  const Fh dir = parsed->dir;
  auto body = co_await Upstream(nfs3::kRmdir, args.ToBytes(), dir, "RMDIR",
                                ctx.span);
  if (!body) co_return Fault<nfs3::RmdirRes>();
  auto res = nfs3::Parse<nfs3::RmdirRes>(*body);
  if (res) {
    Absorb(dir, res->dir_attr, /*own_write=*/true);
    if (res->status == Status::kOk) cache_.StoreLookup(dir, parsed->name, kNegative);
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleRename(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::RenameArgs>(args);
  if (!parsed) co_return Fault<nfs3::RenameRes>();
  auto body = co_await Upstream(nfs3::kRename, args.ToBytes(), parsed->from_dir,
                                "RENAME", ctx.span);
  if (!body) co_return Fault<nfs3::RenameRes>();
  auto res = nfs3::Parse<nfs3::RenameRes>(*body);
  if (res) {
    Absorb(parsed->from_dir, res->from_dir_attr, /*own_write=*/true);
    Absorb(parsed->to_dir, res->to_dir_attr, /*own_write=*/true);
    if (res->status == Status::kOk) {
      cache_.DropLookup(parsed->from_dir, parsed->from_name);
      cache_.DropLookup(parsed->to_dir, parsed->to_name);
      cache_.StoreLookup(parsed->from_dir, parsed->from_name, kNegative);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleLink(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::LinkArgs>(args);
  if (!parsed) co_return Fault<nfs3::LinkRes>();
  auto body = co_await Upstream(nfs3::kLink, args.ToBytes(), parsed->dir,
                                "LINK", ctx.span);
  if (!body) co_return Fault<nfs3::LinkRes>();
  auto res = nfs3::Parse<nfs3::LinkRes>(*body);
  if (res) {
    Absorb(parsed->dir, res->dir_attr, /*own_write=*/true);
    Absorb(parsed->file, res->file_attr, /*own_write=*/true);
    if (res->status == Status::kOk) {
      cache_.StoreLookup(parsed->dir, parsed->name, parsed->file);
    }
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandleSetAttr(rpc::CallContext ctx, rpc::Body args) {
  auto parsed = nfs3::Parse<nfs3::SetAttrArgs>(args);
  if (!parsed) co_return Fault<nfs3::SetAttrRes>();
  const Fh fh = parsed->object;
  auto body = co_await Upstream(nfs3::kSetAttr, args.ToBytes(), fh, "SETATTR",
                                ctx.span);
  if (!body) co_return Fault<nfs3::SetAttrRes>();
  auto res = nfs3::Parse<nfs3::SetAttrRes>(*body);
  if (res && res->status == Status::kOk) {
    if (parsed->size.has_value()) cache_.DropFileData(fh);
    Absorb(fh, res->attr, /*own_write=*/true);
  }
  co_return std::move(*body);
}

sim::Task<Bytes> ProxyClient::HandlePassthrough(std::uint32_t proc,
                                                rpc::CallContext ctx,
                                                rpc::Body args) {
  auto body = co_await Upstream(proc, args.ToBytes(), std::nullopt,
                                nfs3::ProcName(proc), ctx.span);
  if (!body) co_return Fault<nfs3::GetAttrRes>();
  co_return std::move(*body);
}

// ---------------------------------------------------------------------------
// Callbacks (server -> client)
// ---------------------------------------------------------------------------

sim::Task<Bytes> ProxyClient::HandleCallback(rpc::CallContext ctx, rpc::Body args) {
  ++stats_.callbacks_received;
  auto parsed = nfs3::Parse<CallbackArgs>(args);
  if (!parsed) co_return Serialize(CallbackRes{});
  const Fh fh = parsed->file;
  if (policy_ != nullptr) policy_->OnRecall({fh.fsid, fh.ino});
  DropDelegation(fh);
  {
    // Sample the wanted block's dirty bit now: this is the moment the §4.3.2
    // write-back obligation is incurred, and what the checker holds us to.
    std::uint32_t flags = 0;
    if (parsed->type == CallbackType::kRecallWrite && parsed->has_wanted_offset) {
      flags |= trace::kDelegFlagHasWanted;
      const std::uint64_t aligned =
          parsed->wanted_offset - parsed->wanted_offset % cache_.block_size();
      const DiskCache::Block* wanted =
          cache_.FindBlock(fh, aligned / cache_.block_size());
      if (wanted != nullptr && wanted->dirty) flags |= trace::kDelegFlagWantedDirty;
    }
    node_.tracer().Deleg(
        trace::EventType::kDelegRecall, node_.address().host, fh.fsid, fh.ino,
        static_cast<std::uint32_t>(parsed->type == CallbackType::kRecallWrite
                                       ? DelegationType::kWrite
                                       : DelegationType::kRead),
        ctx.caller.host, flags,
        parsed->has_wanted_offset
            ? parsed->wanted_offset - parsed->wanted_offset % cache_.block_size()
            : 0);
  }
  // The recall reply promises the server our updates are visible: async
  // write-through WRITEs to this file must land first.
  co_await DrainAsyncWrites(fh);

  CallbackRes res;
  if (parsed->type == CallbackType::kRecallWrite) {
    // The contended block goes back first (§4.3.2).
    if (parsed->has_wanted_offset) {
      const std::uint64_t aligned =
          parsed->wanted_offset - parsed->wanted_offset % cache_.block_size();
      co_await FlushBlock(fh, aligned, ctx.span);
    }
    auto dirty = cache_.DirtyOffsets(fh);
    if (config_.dirty_threshold_blocks > 0 &&
        dirty.size() > config_.dirty_threshold_blocks) {
      // Too much dirty data to hold the callback: return the block list and
      // flush the remainder asynchronously.
      res.pending_offsets = dirty;
      const DiskCache::AttrEntry* entry = cache_.AnyAttr(fh);
      if (entry != nullptr) res.file_size = entry->attr.size;
      sim::Spawn(AsyncFlush(fh));
    } else {
      co_await FlushFile(fh, /*commit=*/true, ctx.span);
    }
  }
  cache_.InvalidateAttr(fh);
  node_.tracer().Deleg(
      trace::EventType::kDelegRelease, node_.address().host, fh.fsid, fh.ino,
      static_cast<std::uint32_t>(parsed->type == CallbackType::kRecallWrite
                                     ? DelegationType::kWrite
                                     : DelegationType::kRead),
      ctx.caller.host, 0, 0);
  co_return Serialize(res);
}

sim::Task<Bytes> ProxyClient::HandleRecovery(rpc::CallContext ctx, rpc::Body) {
  ++stats_.callbacks_received;
  // Whole-cache callback after a server restart: every cached attribute
  // must be revalidated; write-delegation state is reported back so the
  // server can rebuild its table.
  cache_.InvalidateAllAttrs();
  delegations_.clear();
  node_.tracer().Inv(trace::EventType::kInvForce, node_.address().host, 0, 0,
                     /*timestamp=*/0, /*count=*/0, ctx.caller.host);
  RecoveryRes res;
  res.dirty_files = cache_.FilesWithDirtyData();
  co_return Serialize(res);
}

// ---------------------------------------------------------------------------
// Background tasks
// ---------------------------------------------------------------------------

void ProxyClient::InitPollTargets() {
  poll_targets_.clear();
  std::vector<net::Address> addrs = config_.getinv_targets;
  if (addrs.empty()) {
    if (config_.shard_addrs.size() >= 2) {
      // Sharded session: every shard owns a slice of the handle space, so an
      // up-to-date client polls all of them (the fan-in the aggregation tier
      // exists to absorb).
      addrs = config_.shard_addrs;
    } else {
      addrs.push_back(upstream_.server());
    }
  }
  poll_targets_.reserve(addrs.size());
  for (const auto& addr : addrs) poll_targets_.push_back(PollTarget{addr, 0});
}

void ProxyClient::Start() {
  if (running_) return;
  running_ = true;
  if (config_.model == ConsistencyModel::kInvalidationPolling) {
    InitPollTargets();
    sim::Spawn(PollLoop());
  }
  if (config_.cache_mode == CacheMode::kWriteBack && config_.wb_flush_period > 0) {
    sim::Spawn(FlushLoop());
  }
  if (policy_ != nullptr) {
    // The node's tracer may have been attached after construction
    // (EnableTracing): pick it up at start, when it is final.
    policy_->SetTracer(node_.tracer(), node_.address().host);
    sim::Spawn(PolicyLoop());
  }
}

sim::Task<void> ProxyClient::PollLoop() {
  const std::uint64_t epoch = epoch_;
  // Bootstrap immediately (§4.2.2): the first GETINV carries a null
  // timestamp and establishes this client's invalidation buffer before any
  // cached state accumulates.
  co_await PollOnce();
  while (running_ && epoch == epoch_) {
    co_await sim::Sleep(sched_, poll_period_);
    if (!running_ || epoch != epoch_) break;
    co_await PollOnce();
  }
}

sim::Task<void> ProxyClient::PollOnce() {
  bool got_news = false;
  bool unreachable = false;
  // gvfs-lint: allow(iter-after-suspend): poll_targets_ is built once in Start() (InitPollTargets) and never resized while the poller runs
  for (auto& target : poll_targets_) {
    while (true) {
      GetInvArgs args;
      args.last_timestamp = target.timestamp;
      rpc::CallOptions opts;
      opts.label = "GETINV";
      auto reply = co_await node_.Call(target.addr, kGvfsProgram, kGetInv,
                                       Serialize(args), std::move(opts));
      if (!reply) {  // target unreachable; retry next period
        unreachable = true;
        break;
      }
      auto res = nfs3::Parse<GetInvRes>(*reply);
      if (!res) {
        unreachable = true;
        break;
      }
      ++stats_.polls;
      target.timestamp = res->new_timestamp;
      if (res->force_invalidate) {
        node_.tracer().Inv(trace::EventType::kInvForce, node_.address().host,
                           0, 0, res->new_timestamp, 0, target.addr.host);
        cache_.InvalidateAllAttrs();
        ++stats_.force_invalidations;
        got_news = true;
      } else {
        for (const auto& fh : res->handles) {
          node_.tracer().Inv(trace::EventType::kInvPoll, node_.address().host,
                             fh.fsid, fh.ino, res->new_timestamp,
                             static_cast<std::uint32_t>(res->handles.size()),
                             target.addr.host);
          cache_.InvalidateAttr(fh);
          ++stats_.invalidations_applied;
          if (policy_ != nullptr) policy_->OnInvalidation({fh.fsid, fh.ino});
        }
        got_news |= !res->handles.empty();
      }
      if (!res->poll_again) break;
    }
  }
  // A transport/parse failure without news skips the back-off adjustment
  // (mirrors the single-target behavior: the next period retries as-is).
  if (unreachable && !got_news) co_return;

  // Exponential back-off while the file system is quiet (§4.2.1).
  if (config_.poll_max_period > config_.poll_period) {
    if (got_news) {
      poll_period_ = config_.poll_period;
    } else {
      poll_period_ = std::min<Duration>(poll_period_ * 2, config_.poll_max_period);
    }
  }
}

sim::Task<void> ProxyClient::FlushLoop() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sim::Sleep(sched_, config_.wb_flush_period);
    if (!running_ || epoch != epoch_) break;
    co_await FlushAll();
  }
}

// ---------------------------------------------------------------------------
// Adaptive policy (src/policy)
// ---------------------------------------------------------------------------

sim::Task<void> ProxyClient::PolicyLoop() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sim::Sleep(sched_, config_.policy_period);
    if (!running_ || epoch != epoch_) break;
    const auto migrations = policy_->Tick(sched_.Now());
    for (const auto& m : migrations) {
      if (!running_ || epoch != epoch_) co_return;
      const Fh fh{m.file.fsid, m.file.ino};
      if (co_await MigrateMode(fh, m.from, m.to)) {
        policy_->Commit(m.file, m.to, sched_.Now());
      }
    }
  }
}

sim::Task<bool> ProxyClient::MigrateMode(Fh fh, policy::FileMode from,
                                         policy::FileMode to) {
  if (from != policy::FileMode::kPolling) {
    // Leaving a delegation: everything acknowledged under it must be durable
    // upstream before the old mode's guarantees are surrendered.
    co_await DrainAsyncWrites(fh);
    co_await FlushFile(fh, /*commit=*/true);
    DropDelegation(fh);
  }
  MigrateArgs margs;
  margs.file = fh;
  margs.from = static_cast<std::uint32_t>(from);
  margs.to = static_cast<std::uint32_t>(to);
  rpc::CallOptions opts;
  opts.label = "MIGRATE";
  // UpstreamFor routes the handshake to the shard that owns the file's
  // invalidation buffer — the only place the drain is meaningful.
  auto reply = co_await node_.Call(UpstreamFor(fh), kGvfsProgram, kMigrate,
                                   Serialize(margs), std::move(opts));
  if (!reply) co_return false;
  auto res = nfs3::Parse<MigrateRes>(*reply);
  if (!res || res->status != 0) co_return false;
  if (res->drained > 0) {
    // Buffered invalidations delivered in the reply: apply them now, before
    // the new mode starts trusting cached state.
    cache_.InvalidateAttr(fh);
    stats_.invalidations_applied += res->drained;
  }
  if (res->granted != 0) {
    StoreGrant(fh, static_cast<DelegationType>(res->granted));
  } else if (to != policy::FileMode::kPolling) {
    // The server could not grant the delegation right now (conflict);
    // the migration still switched the file's mode, and the next forwarded
    // request will pick up a grant once the conflict clears.
    DropDelegation(fh);
  }
  ++stats_.migrations;
  node_.tracer().Policy(trace::EventType::kPolicyMigrate, node_.address().host,
                        fh.fsid, fh.ino, static_cast<std::uint32_t>(from),
                        static_cast<std::uint32_t>(to), 0);
  co_return true;
}

sim::Task<bool> ProxyClient::FlushBlock(Fh fh, std::uint64_t offset,
                                        trace::SpanRef parent) {
  const std::uint64_t epoch = epoch_;
  const std::uint64_t index = offset / cache_.block_size();
  const DiskCache::Block* block = cache_.FindBlock(fh, index);
  if (block == nullptr || !block->dirty) co_return true;

  nfs3::WriteArgs wargs;
  wargs.file = fh;
  wargs.offset = offset;
  wargs.stable = nfs3::StableHow::kUnstable;
  wargs.data = block->data;
  auto body =
      co_await Upstream(nfs3::kWrite, Serialize(wargs), fh, "WRITE", parent);
  // Epoch check after the RPC, not just at loop tops: a crash while this
  // WRITE was in flight must not mark the surviving dirty block clean (the
  // recovery re-scan relies on the dirty flags).
  if (epoch != epoch_) co_return false;
  if (!body) co_return false;
  auto res = nfs3::Parse<nfs3::WriteRes>(*body);
  if (!res || res->status != Status::kOk) co_return false;
  cache_.MarkClean(fh, index);
  node_.tracer().Cache(trace::EventType::kCacheWriteBack, node_.address().host,
                       fh.fsid, fh.ino, offset, "WRITE");
  Absorb(fh, res->attr, /*own_write=*/true);
  ++stats_.blocks_flushed;
  co_return true;
}

sim::Mutex& ProxyClient::FlushLockFor(const Fh& fh) {
  return flush_locks_.try_emplace(fh, sched_).first->second;
}

sim::Task<void> ProxyClient::FlushFile(Fh fh, bool commit,
                                       trace::SpanRef parent) {
  const std::uint64_t epoch = epoch_;
  // Serialize whole-file flushes: a second flusher (periodic loop, recall,
  // shutdown) waits until the current window fully drains, which both
  // preserves per-block write-after-write order and makes a recall arriving
  // mid-flush hold its reply until in-flight WRITEs land.
  sim::Mutex& lock = FlushLockFor(fh);
  co_await lock.Lock();
  if (epoch != epoch_) {
    // gvfs-lint: allow(use-after-suspend): FlushLockFor returns a node-stable map entry; the lock is held across awaits by design to serialize flushes
    lock.Unlock();
    co_return;
  }

  bool flushed_any = false;
  const std::size_t window = std::max<std::size_t>(1, config_.wb_window);
  const auto offsets = cache_.DirtyOffsets(fh);
  if (window == 1 || offsets.size() <= 1) {
    for (std::uint64_t offset : offsets) {
      if (epoch != epoch_) break;
      flushed_any |= co_await FlushBlock(fh, offset, parent);
    }
  } else {
    // Sliding window: up to `window` WRITEs in flight; each completion frees
    // a slot for the next dirty block. One COMMIT covers the whole batch
    // once the window drains.
    sim::Semaphore slots(sched_, window);
    sim::WaitGroup in_flight(sched_);
    auto any = std::make_shared<bool>(false);
    for (std::uint64_t offset : offsets) {
      co_await slots.Acquire();
      if (epoch != epoch_) {
        slots.Release();
        break;  // stop issuing; the joined window below still drains
      }
      in_flight.Spawn([](ProxyClient* self, Fh file, std::uint64_t off,
                         trace::SpanRef span, sim::Semaphore* sem,
                         std::shared_ptr<bool> flushed) -> sim::Task<void> {
        const bool ok = co_await self->FlushBlock(file, off, span);
        *flushed = *flushed || ok;
        // gvfs-lint: allow(use-after-suspend): sem points at the stack semaphore in FlushFile, which joins every spawned frame via in_flight.Wait() before it leaves scope
        sem->Release();
      }(this, fh, offset, parent, &slots, any));
    }
    co_await in_flight.Wait();
    flushed_any = *any;
  }

  if (epoch == epoch_ && flushed_any && commit) {
    nfs3::CommitArgs cargs;
    cargs.file = fh;
    auto body =
        co_await Upstream(nfs3::kCommit, Serialize(cargs), fh, "COMMIT", parent);
    (void)body;
  }
  lock.Unlock();
}

sim::Task<void> ProxyClient::AsyncFlush(Fh fh) { co_await FlushFile(fh, true); }

sim::Task<void> ProxyClient::FlushAll() {
  const auto files = cache_.FilesWithDirtyData();
  if (config_.wb_window <= 1 || files.size() <= 1) {
    for (const Fh& fh : files) {
      co_await FlushFile(fh, /*commit=*/true);
    }
    co_return;
  }
  // Distinct files flush concurrently, each with its own WRITE window.
  sim::WaitGroup in_flight(sched_);
  for (const Fh& fh : files) {
    in_flight.Spawn(FlushFile(fh, /*commit=*/true));
  }
  co_await in_flight.Wait();
}

sim::Task<void> ProxyClient::Shutdown() {
  // Settle the async write-through pipeline, then flush dirty data. FlushAll
  // joins every window it opens, so by the time it returns there are no
  // in-flight flush tasks left to cancel; the epoch bump then stops any
  // straggler loop (poller, periodic flusher) at its next resumption.
  // gvfs-lint: allow(iter-after-suspend): async_writes_ entries are only ever inserted, never erased; std::map iterators survive insertion
  for (auto& [fh, aw] : async_writes_) {
    while (aw.in_flight.Outstanding() > 0) co_await aw.in_flight.Wait();
  }
  co_await FlushAll();
  running_ = false;
  ++epoch_;
}

// ---------------------------------------------------------------------------
// Crash / recovery (§4.3.4)
// ---------------------------------------------------------------------------

void ProxyClient::Crash() {
  node_.tracer().Node(trace::EventType::kNodeCrash, node_.address().host);
  node_.SetDown(true);
  running_ = false;
  ++epoch_;
  cache_.Crash();      // disk survives; validity metadata does not
  delegations_.clear();
  // Poll timestamps are lost: the next GETINV per target bootstraps with a
  // null timestamp.
  for (auto& target : poll_targets_) target.timestamp = 0;
  poll_period_ = config_.poll_period;
}

sim::Task<void> ProxyClient::RecoverFile(Fh fh) {
  auto reply = co_await upstream_.Call<nfs3::GetAttrRes>(nfs3::kGetAttr,
                                                         nfs3::GetAttrArgs{fh});
  // Look the entry up only after the await: a concurrent frame can drop the
  // file while this one is parked on the GETATTR, leaving a pre-await
  // pointer dangling. Nothing above needs the entry.
  DiskCache::FileEntry* entry = cache_.FindFile(fh);
  const bool conflicted =
      !reply || reply->status != Status::kOk ||
      (entry != nullptr && reply->attr.mtime != entry->mtime_seen);
  if (conflicted) {
    // The cached dirty data is considered corrupted; the application will
    // see an error when it tries to use it.
    cache_.DropFileData(fh);
    cache_.InvalidateAttr(fh);
    corrupted_.push_back(fh);
    co_return;
  }
  auto dirty = cache_.DirtyOffsets(fh);
  if (!dirty.empty()) co_await FlushBlock(fh, dirty.front());
}

sim::Task<void> ProxyClient::Recover() {
  node_.SetDown(false);
  node_.tracer().Node(trace::EventType::kNodeRecover, node_.address().host);
  cache_.InvalidateAllAttrs();
  node_.tracer().Inv(trace::EventType::kInvForce, node_.address().host, 0, 0,
                     /*timestamp=*/0, /*count=*/0, upstream_.server().host);
  const std::uint64_t epoch = epoch_;

  // For files with cached dirty data, write back a single block each: this
  // reacquires the write delegation if nobody modified the file during the
  // crash, and detects conflicts otherwise (§4.3.4). The probes are
  // independent per file, so they fan out through the write-back window.
  const auto dirty_files = cache_.FilesWithDirtyData();
  const std::size_t window = std::max<std::size_t>(1, config_.wb_window);
  if (window == 1 || dirty_files.size() <= 1) {
    for (const Fh& fh : dirty_files) {
      if (epoch != epoch_) co_return;  // crashed again mid-recovery
      co_await RecoverFile(fh);
    }
  } else {
    sim::Semaphore slots(sched_, window);
    sim::WaitGroup in_flight(sched_);
    for (const Fh& fh : dirty_files) {
      co_await slots.Acquire();
      if (epoch != epoch_) {
        slots.Release();
        break;
      }
      in_flight.Spawn([](ProxyClient* self, Fh file,
                         sim::Semaphore* sem) -> sim::Task<void> {
        co_await self->RecoverFile(file);
        // gvfs-lint: allow(use-after-suspend): sem points at the stack semaphore in Recover, which joins every spawned frame via in_flight.Wait() before it leaves scope
        sem->Release();
      }(this, fh, &slots));
    }
    co_await in_flight.Wait();
  }
  if (epoch == epoch_) Start();
}

}  // namespace gvfs::proxy
