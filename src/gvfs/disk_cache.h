// Per-session client-side disk cache used by the GVFS proxy client: file
// attributes, name lookups, and data blocks (with dirty tracking for
// write-back caching).
//
// Unlike the kernel client's memory caches, validity is not time-based:
// entries stay valid until the session's consistency machinery invalidates
// them (GETINV results, delegation recalls, TTL in passthrough mode). The
// cache is "disk"-backed in the paper's design, so it is large and survives
// client crashes — Crash() here preserves data but marks everything invalid,
// exactly the recovery behaviour of §4.3.4.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "nfs3/proto.h"

namespace gvfs::proxy {

class DiskCache {
 public:
  struct AttrEntry {
    nfs3::Fattr attr;
    bool valid = false;
    SimTime fetched_at = 0;
  };

  struct Block {
    Bytes data;
    bool dirty = false;
  };

  struct FileEntry {
    SimTime mtime_seen = 0;
    std::uint64_t size_seen = 0;
    std::map<std::uint64_t, Block> blocks;  // block index -> block
    /// Last block index read through the proxy (read-ahead detection).
    std::uint64_t last_read_index = kNoReadYet;
  };

  static constexpr std::uint64_t kNoReadYet = ~std::uint64_t{0};

  explicit DiskCache(std::uint32_t block_size) : block_size_(block_size) {}

  std::uint32_t block_size() const { return block_size_; }

  // -- attributes --

  /// Returns the entry if present AND valid; nullptr otherwise.
  const AttrEntry* ValidAttr(const nfs3::Fh& fh) const;
  /// Returns the entry even if invalidated (recovery paths).
  AttrEntry* AnyAttr(const nfs3::Fh& fh);
  void StoreAttr(const nfs3::Fh& fh, const nfs3::Fattr& attr, SimTime now);
  /// Marks one file's attributes invalid (future reads revalidate).
  void InvalidateAttr(const nfs3::Fh& fh);
  /// Marks every cached attribute invalid (force-invalidate / recovery).
  void InvalidateAllAttrs();

  /// Applies a server-side mtime change: drops clean data if stale.
  void ObserveMtime(const nfs3::Fh& fh, SimTime mtime, std::uint64_t size,
                    bool own_write);

  // -- name lookups --

  /// Valid only while the directory's attr entry is valid AND its mtime
  /// still matches what the entry saw (like the kernel dnlc).
  const nfs3::Fh* ValidLookup(const nfs3::Fh& dir, const std::string& name) const;
  void StoreLookup(const nfs3::Fh& dir, const std::string& name, const nfs3::Fh& child);
  void DropLookup(const nfs3::Fh& dir, const std::string& name);
  /// True if any (possibly stale) name entries are recorded under `dir`.
  bool HasLookupEntries(const nfs3::Fh& dir) const;
  /// Drops every name entry under `dir` (before a READDIR-driven rebuild).
  void ClearLookups(const nfs3::Fh& dir);

  // -- data blocks --

  FileEntry* FindFile(const nfs3::Fh& fh);
  FileEntry& FileFor(const nfs3::Fh& fh) { return files_[fh]; }
  const Block* FindBlock(const nfs3::Fh& fh, std::uint64_t index) const;
  void StoreBlock(const nfs3::Fh& fh, std::uint64_t index, Bytes data, bool dirty);
  /// Merges `data` into the block at byte offset `in_block`, marking dirty.
  void WriteIntoBlock(const nfs3::Fh& fh, std::uint64_t index,
                      std::uint64_t in_block, const Bytes& data);
  void DropFileData(const nfs3::Fh& fh);
  /// Clears a block's dirty flag after successful write-back.
  void MarkClean(const nfs3::Fh& fh, std::uint64_t index);

  /// Records a block read at `index` and reports whether the access
  /// continues a sequential run (read-ahead trigger). Repeated reads of the
  /// same block neither extend nor break the run.
  bool NoteReadAccess(const nfs3::Fh& fh, std::uint64_t index);

  /// Byte offsets (block-aligned) of this file's dirty blocks, in order.
  std::vector<std::uint64_t> DirtyOffsets(const nfs3::Fh& fh) const;
  std::size_t DirtyBlockCount(const nfs3::Fh& fh) const;
  /// Dirty blocks across every cached file (write-back queue depth).
  std::size_t TotalDirtyBlocks() const;
  /// All files that currently hold at least one dirty block.
  std::vector<nfs3::Fh> FilesWithDirtyData() const;

  // -- lifecycle --

  /// Client crash: disk contents survive, but validity metadata is lost.
  /// All attributes become invalid; dirty flags are reconstructed by a scan
  /// (we keep them — the scan is what the paper describes).
  void Crash();

  std::size_t AttrCount() const { return attrs_.size(); }
  std::uint64_t CachedBytes() const { return cached_bytes_; }

 private:
  std::uint32_t block_size_;
  struct LookupEntry {
    nfs3::Fh child;
    SimTime dir_mtime = 0;  // entry valid only while the dir mtime matches
  };

  std::map<nfs3::Fh, AttrEntry> attrs_;
  std::map<std::pair<nfs3::Fh, std::string>, LookupEntry> lookups_;
  std::map<nfs3::Fh, FileEntry> files_;
  std::uint64_t cached_bytes_ = 0;
};

}  // namespace gvfs::proxy
