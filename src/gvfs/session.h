// Per-session configuration and middleware wiring for GVFS.
//
// A GVFS session (Figure 1 of the paper) is established by middleware: one
// proxy server co-located with the kernel NFS server, plus one proxy client
// per participating client host. Each session chooses its own consistency
// model and cache policy; multiple sessions share the physical hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/network.h"
#include "nfs3/proto.h"

namespace gvfs::proxy {

enum class ConsistencyModel {
  /// Passthrough with TTL-based attribute validity (native-NFS-like); the
  /// baseline GVFS caching mode without a consistency protocol overlay.
  kTtl,
  /// Invalidation polling via GETINV (§4.2) — relaxed consistency.
  kInvalidationPolling,
  /// Delegation + callback (§4.3) — strong consistency.
  kDelegationCallback,
};

const char* ModelName(ConsistencyModel model);

enum class CacheMode {
  /// Cache reads; forward writes synchronously (write-through).
  kReadOnly,
  /// Also absorb writes in the disk cache; flush lazily (write-back).
  kWriteBack,
};

struct SessionConfig {
  SessionConfig() = default;
  SessionConfig(const SessionConfig&) = default;
  SessionConfig(SessionConfig&&) noexcept = default;
  SessionConfig& operator=(const SessionConfig&) = default;
  SessionConfig& operator=(SessionConfig&&) noexcept = default;

  ConsistencyModel model = ConsistencyModel::kInvalidationPolling;
  CacheMode cache_mode = CacheMode::kReadOnly;

  /// kTtl model: attribute validity period.
  Duration attr_ttl = Seconds(30);

  /// Invalidation polling (§4.2): base polling period; when max > base the
  /// client backs off exponentially while polls return empty.
  Duration poll_period = Seconds(30);
  Duration poll_max_period = Seconds(30);
  /// Max handles per GETINV reply (bigger sets trigger poll-again).
  std::uint32_t getinv_batch = 512;
  /// Per-client invalidation buffer capacity (circular; overflow triggers
  /// force-invalidate).
  std::size_t inv_buffer_capacity = 8192;

  /// Delegation callback (§4.3): server-side speculated-close expiry and the
  /// client-side renewal period (renew < expiry keeps delegations alive even
  /// with skewed clocks).
  Duration deleg_expiry = Seconds(600);
  Duration deleg_renew = Seconds(480);
  /// Write recalls with more dirty blocks than this return a block list and
  /// flush asynchronously (§4.3.2 optimization). 0 disables the optimization.
  std::size_t dirty_threshold_blocks = 1024;

  /// Write-back mode: periodic background flush interval (0 = only flush on
  /// recall/shutdown).
  Duration wb_flush_period = Seconds(60);

  /// Write-back pipelining: max WRITE RPCs a flush keeps in flight per file
  /// (sliding window), with one coalesced COMMIT once the window drains.
  /// 1 preserves the fully serialized behaviour (one RPC per RTT); values
  /// > 1 also let FlushAll / Recover work distinct files concurrently.
  std::size_t wb_window = 1;

  /// Sequential read-ahead: number of blocks prefetched in parallel once the
  /// proxy detects a sequential block-fault pattern on a file. 0 disables
  /// read-ahead (every fault costs a full serialized round trip).
  std::uint32_t read_ahead = 0;

  /// Cache block size (matches NFS rsize/wsize).
  std::uint32_t block_size = 32 * 1024;

  /// When a directory changed (its name entries went stale) but its
  /// attributes are trusted again, rebuild the whole name cache with one
  /// paginated READDIR instead of forwarding per-name LOOKUPs. Saves the
  /// post-update LOOKUP storm in producer/consumer workloads (Figure 8).
  bool readdir_refresh = true;

  /// Access latency of the proxy's disk cache, charged per locally served
  /// request / absorbed write / inserted block. This is the user-level +
  /// disk overhead the paper measures in LAN (~4 % read-only, ~8 % with
  /// write-back); it is what the WAN savings must amortize.
  Duration disk_access_time = Microseconds(1000);

  /// Fault injection for the trace checker's negative tests: the proxy
  /// server grants delegations without recalling conflicting holders,
  /// deliberately breaking the §4.3 single-writer invariant so the checker
  /// has something to catch. NEVER enable outside tests.
  bool unsafe_skip_recalls = false;

  /// Adaptive consistency (src/policy): the session starts every file under
  /// invalidation polling (model must be kInvalidationPolling — polling
  /// stays on as the safety net) and a per-file policy engine migrates hot
  /// files into read/write delegations at runtime via MIGRATE handshakes.
  bool adaptive = false;

  /// Adaptive only: how often the policy engine re-classifies access
  /// patterns and issues migrations.
  Duration policy_period = Seconds(5);
  /// Adaptive only: minimum time a file stays in its mode after a migration
  /// before the engine may move it again (damps thrashing).
  Duration policy_dwell = Seconds(10);
  /// Adaptive only: reads observed inside one policy window before a
  /// read-shared file is promoted to a read delegation.
  std::uint32_t policy_promote_reads = 4;
  /// Adaptive only: writes observed inside one policy window before a
  /// single-writer file is promoted to a write delegation.
  std::uint32_t policy_write_hot = 3;
  /// Adaptive only: recall-storm breaker — when the fleet-wide recall count
  /// grows by at least this much across one policy window, promotions freeze
  /// (demotions still run) for policy_storm_freeze.
  std::uint32_t policy_storm_recalls = 8;
  Duration policy_storm_freeze = Seconds(30);

  /// Fault injection for TraceChecker invariant 6: the proxy server skips
  /// draining the caller's buffered invalidations during a MIGRATE, so a
  /// mutation buffered before the switch becomes invisible after it. NEVER
  /// enable outside tests.
  bool unsafe_skip_drain = false;

  /// Sharded fleet serving (src/fleet): addresses of every proxy-server
  /// shard in this session, indexed by ShardOf(fh, shard_addrs.size()).
  /// Empty or size 1 means the classic single-server session. When set on a
  /// proxy client, per-file NFS traffic routes to the owning shard; when set
  /// on a proxy server shard, mutations of foreign handles are forwarded to
  /// the owner via NOTIFYINV.
  std::vector<net::Address> shard_addrs;

  /// This proxy server's index into shard_addrs (ignored when unsharded).
  std::uint32_t shard_index = 0;

  /// GETINV polling targets for a proxy client. Empty means "poll the
  /// session server" (plus every other shard when sharded); set to a single
  /// aggregator address to route consistency polls through the aggregation
  /// tier instead.
  std::vector<net::Address> getinv_targets;
};

/// Partitions the file-handle space across `shard_count` shards. Pure
/// function of the handle (splitmix64-mixed fsid/ino), so every node in a
/// fleet computes the same owner without coordination. shard_count < 2
/// always maps to shard 0.
std::uint32_t ShardOf(const nfs3::Fh& fh, std::uint32_t shard_count);

}  // namespace gvfs::proxy
