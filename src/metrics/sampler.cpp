#include "metrics/sampler.h"

#include "sim/sync.h"

namespace gvfs::metrics {

void Sampler::Start() {
  if (running_) return;
  running_ = true;
  sim::Spawn(Loop());
}

sim::Task<void> Sampler::Loop() {
  while (running_) {
    SampleNow();
    co_await sim::Sleep(sched_, period_);
  }
}

void Sampler::SampleNow() {
  Sample s;
  s.time = sched_.Now();
  for (const auto& [name, c] : registry_.counters()) {
    s.values.emplace_back(name, static_cast<double>(c.value()));
  }
  for (const auto& [name, g] : registry_.gauges()) {
    s.values.emplace_back(name, g.value());
  }
  for (const auto& [name, fn] : registry_.probes()) {
    s.values.emplace_back(name, fn ? fn() : 0.0);
  }
  for (const auto& [name, h] : registry_.histograms()) {
    const LogHistogram& lh = h.hist();
    s.values.emplace_back(name + ".count", static_cast<double>(lh.count()));
    s.values.emplace_back(name + ".sum", static_cast<double>(lh.sum()));
    s.values.emplace_back(name + ".max", static_cast<double>(lh.max()));
    s.values.emplace_back(name + ".p50", static_cast<double>(lh.Percentile(50)));
    s.values.emplace_back(name + ".p95", static_cast<double>(lh.Percentile(95)));
    s.values.emplace_back(name + ".p99", static_cast<double>(lh.Percentile(99)));
  }
  series_.push_back(std::move(s));
}

}  // namespace gvfs::metrics
