// Named-instrument registry: counters, gauges, log-bucketed histograms, and
// pull-style probes (callbacks evaluated at sample time). Instruments are
// created on first use and live as long as the registry; Get* returns a
// stable reference (std::map storage — node-based, so references survive
// later insertions), which lets instrumented code hold the pointer instead
// of paying a map lookup per event.
//
// Iteration order over each instrument family is lexicographic (std::map),
// which makes every exporter's output deterministic for a given run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "metrics/histogram.h"

namespace gvfs::metrics {

class Counter {
 public:
  void Inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  void Record(std::uint64_t value) { hist_.Record(value); }
  const LogHistogram& hist() const { return hist_; }

 private:
  LogHistogram hist_;
};

class Registry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Gauge& GetGauge(const std::string& name) { return gauges_[name]; }
  Histogram& GetHistogram(const std::string& name) { return histograms_[name]; }

  /// Registers a pull-style metric: `fn` is evaluated whenever the registry
  /// is sampled or exported. Re-registering a name replaces the callback.
  void AddProbe(const std::string& name, std::function<double()> fn) {
    probes_[name] = std::move(fn);
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::function<double()>>& probes() const {
    return probes_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::function<double()>> probes_;
};

}  // namespace gvfs::metrics
