#include "metrics/export.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/json_writer.h"
#include "common/types.h"

namespace gvfs::metrics {
namespace {

std::string Sanitize(const std::string& name) {
  // Only the metric name proper is sanitized; a "{...}" label block (built
  // with Labeled(), whose values are already escaped) passes through
  // verbatim — sanitizing it would destroy the quotes the format requires.
  const std::size_t brace = name.find('{');
  std::string out = name.substr(0, brace);
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      c = '_';
    }
  }
  if (brace != std::string::npos) out += name.substr(brace);
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Labeled(const std::string& name, const std::string& key,
                    const std::string& value) {
  return name + "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

std::string PrometheusText(const Registry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + FormatDouble(g.value()) + "\n";
  }
  for (const auto& [name, fn] : registry.probes()) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + FormatDouble(fn ? fn() : 0.0) + "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string n = Sanitize(name);
    const LogHistogram& lh = h.hist();
    out += "# TYPE " + n + " summary\n";
    for (double pct : {50.0, 95.0, 99.0}) {
      out += n + "{quantile=\"" + FormatDouble(pct / 100.0) + "\"} " +
             std::to_string(lh.Percentile(pct)) + "\n";
    }
    out += n + "_sum " + std::to_string(lh.sum()) + "\n";
    out += n + "_count " + std::to_string(lh.count()) + "\n";
  }
  return out;
}

std::string TimeSeriesCsv(const TimeSeries& series) {
  std::set<std::string> columns;
  for (const Sample& s : series) {
    for (const auto& [name, _] : s.values) columns.insert(name);
  }
  std::string out = "time_s";
  for (const std::string& col : columns) {
    out += ',';
    out += col;
  }
  out += "\n";
  for (const Sample& s : series) {
    std::map<std::string, double> row(s.values.begin(), s.values.end());
    out += FormatDouble(ToSeconds(s.time));
    for (const std::string& col : columns) {
      auto it = row.find(col);
      out += ',';
      out += FormatDouble(it == row.end() ? 0.0 : it->second);
    }
    out += "\n";
  }
  return out;
}

std::string TimeSeriesJson(const TimeSeries& series) {
  std::vector<JsonObject> samples;
  samples.reserve(series.size());
  for (const Sample& s : series) {
    JsonObject values;
    for (const auto& [name, v] : s.values) values.Add(name, v);
    JsonObject sample;
    sample.Add("time_s", ToSeconds(s.time));
    sample.Add("values", values);
    samples.push_back(std::move(sample));
  }
  JsonObject doc;
  doc.Add("samples", samples);
  return doc.Dump() + "\n";
}

}  // namespace gvfs::metrics
