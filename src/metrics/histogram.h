// Log-bucketed histogram over unsigned values: power-of-two buckets, O(1)
// record, percentile read-out as the bucket's upper bound clamped to the
// recorded max (so the tail is never under-reported by more than a factor of
// two). This is the bucketing rpc::StatsMap has always used for RPC
// latencies, extracted so the metrics registry — and anything else that
// wants a cheap fixed-size distribution — shares one implementation.
//
// Values are raw unsigned integers; the caller picks the unit (the RPC layer
// and the staleness probe record microseconds).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace gvfs::metrics {

class LogHistogram {
 public:
  /// Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds value 0.
  /// 40 buckets cover ~2^39 units — with microsecond values, ~12 simulated
  /// days, beyond any plausible latency or staleness.
  static constexpr std::size_t kBuckets = 40;

  static std::size_t BucketFor(std::uint64_t value) {
    return std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
  }

  static std::uint64_t BucketUpperBound(std::size_t bucket) {
    if (bucket == 0) return 1;
    return std::uint64_t{1} << bucket;
  }

  void Record(std::uint64_t value) {
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
    ++hist_[BucketFor(value)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, kBuckets>& buckets() const { return hist_; }

  /// Upper bound of the bucket holding the pct-th percentile sample, in raw
  /// units and NOT clamped to the recorded max; 0 when empty. Kept separate
  /// from Percentile so callers tracking a finer-grained max (the RPC layer
  /// keeps nanoseconds) can clamp against their own.
  std::uint64_t PercentileBucketUpperBound(double pct) const {
    if (count_ == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(
        pct / 100.0 * static_cast<double>(count_) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < hist_.size(); ++b) {
      seen += hist_[b];
      if (seen >= std::max<std::uint64_t>(rank, 1)) return BucketUpperBound(b);
    }
    return max_;
  }

  /// Percentile estimate: bucket upper bound clamped to the recorded max.
  std::uint64_t Percentile(double pct) const {
    if (count_ == 0) return 0;
    return std::min(max_, PercentileBucketUpperBound(pct));
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    hist_.fill(0);
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> hist_{};
};

}  // namespace gvfs::metrics
