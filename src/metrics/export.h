// Exporters for the metrics registry and sampled time series:
//  - PrometheusText: point-in-time text exposition of a Registry.
//  - TimeSeriesCsv:  rectangular CSV (one row per sample, union of columns).
//  - TimeSeriesJson: the same series as a JSON document.
// All outputs iterate instruments in sorted order, so a deterministic run
// yields byte-identical files.
#pragma once

#include <string>

#include "metrics/registry.h"
#include "metrics/sampler.h"

namespace gvfs::metrics {

/// Prometheus-style text exposition: counters/gauges/probes one line each,
/// histograms as _count/_sum plus quantile-labeled lines. Instrument names
/// are sanitized to [a-zA-Z0-9_:] as the format requires.
std::string PrometheusText(const Registry& registry);

/// CSV with header `time_s,<col>,...` over the union of all columns ever
/// seen in the series; samples missing a column emit 0.
std::string TimeSeriesCsv(const TimeSeries& series);

/// JSON: {"samples":[{"time_s":...,"values":{col:val,...}},...]}.
std::string TimeSeriesJson(const TimeSeries& series);

}  // namespace gvfs::metrics
