// Exporters for the metrics registry and sampled time series:
//  - PrometheusText: point-in-time text exposition of a Registry.
//  - TimeSeriesCsv:  rectangular CSV (one row per sample, union of columns).
//  - TimeSeriesJson: the same series as a JSON document.
// All outputs iterate instruments in sorted order, so a deterministic run
// yields byte-identical files.
#pragma once

#include <string>

#include "metrics/registry.h"
#include "metrics/sampler.h"

namespace gvfs::metrics {

/// Prometheus-style text exposition: counters/gauges/probes one line each,
/// histograms as _count/_sum plus quantile-labeled lines. Instrument names
/// are sanitized to [a-zA-Z0-9_:] as the format requires; a `{...}` label
/// block built with Labeled() passes through verbatim (already escaped).
std::string PrometheusText(const Registry& registry);

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

/// Builds `name{key="value"}` with the value escaped, so an instrument
/// registered under this name exports as a correctly labeled series.
std::string Labeled(const std::string& name, const std::string& key,
                    const std::string& value);

/// CSV with header `time_s,<col>,...` over the union of all columns ever
/// seen in the series; samples missing a column emit 0.
std::string TimeSeriesCsv(const TimeSeries& series);

/// JSON: {"samples":[{"time_s":...,"values":{col:val,...}},...]}.
std::string TimeSeriesJson(const TimeSeries& series);

}  // namespace gvfs::metrics
