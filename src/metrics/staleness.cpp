#include "metrics/staleness.h"

namespace gvfs::metrics {

void StalenessProbe::StampVersion(std::uint64_t fsid, std::uint64_t ino,
                                  SimTime birth, std::uint32_t writer_host) {
  auto& history = stamps_[{fsid, ino}];
  // Receipt times arrive monotonically (single simulated server), so the
  // history stays sorted by construction; cap it to bound memory on
  // write-heavy runs — a reader can only be stale relative to recent writes.
  history.push_back(Stamp{birth, writer_host});
  constexpr std::size_t kMaxHistory = 1024;
  if (history.size() > kMaxHistory) {
    history.erase(history.begin(),
                  history.begin() + (history.size() - kMaxHistory));
  }
}

void StalenessProbe::OnCachedRead(std::uint64_t fsid, std::uint64_t ino,
                                  std::uint32_t reader_host,
                                  SimTime fetched_at, SimTime now) {
  if (!hist_) return;
  std::uint64_t staleness_us = 0;
  auto it = stamps_.find({fsid, ino});
  if (it != stamps_.end()) {
    for (const Stamp& s : it->second) {
      // Oldest missed foreign version: born after the reader's refresh,
      // written by someone else. History is sorted, so the first hit wins.
      if (s.birth > fetched_at && s.writer_host != reader_host) {
        const SimTime age = now - s.birth;
        staleness_us = age > 0 ? static_cast<std::uint64_t>(age) / kMicrosecond
                               : 0;
        break;
      }
    }
  }
  hist_->Record(staleness_us);
}

}  // namespace gvfs::metrics
