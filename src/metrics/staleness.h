// Staleness probe: measures how old a client's cached view of a file is,
// per read, in wall (sim) time.
//
// The proxy server stamps every successful mutation with the sim time the
// mutating RPC was *received* (StampVersion). Every client read served from
// cache reports when the cached entry was last fetched from the server
// (OnCachedRead); the probe finds the oldest stamped version the reader has
// *missed* — a version born after the reader's fetch, written by a different
// client — and records `now − birth` into the attached histogram. Reads of
// fresh data record 0, so the histogram is a true distribution over all
// cached reads, not just the stale ones.
//
// Comparing against the fetch time (not the cached mtime) makes the probe
// robust to mutations that do not advance the observable mtime (e.g. a
// CREATE that finds the file already present still re-stamps the directory):
// once the reader refreshes, every version born before the refresh counts as
// seen. Stamping with the receipt time keeps it conservative: a version the
// reader's refresh raced past is treated as seen, never double-counted.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/registry.h"

namespace gvfs::metrics {

class StalenessProbe {
 public:
  /// Histogram receiving per-read staleness in microseconds; may be null
  /// (probe still tracks versions, records nothing).
  void SetHistogram(Histogram* hist) { hist_ = hist; }

  /// Server side: a mutation of (fsid, ino) by `writer_host` succeeded; the
  /// new version was born at `birth` (RPC receipt time).
  void StampVersion(std::uint64_t fsid, std::uint64_t ino, SimTime birth,
                    std::uint32_t writer_host);

  /// Client side: a read of (fsid, ino) on `reader_host` was served from
  /// cache; the cached entry was last refreshed from the server at
  /// `fetched_at`. Records the age of the oldest missed foreign version
  /// (0 when the view is fresh).
  void OnCachedRead(std::uint64_t fsid, std::uint64_t ino,
                    std::uint32_t reader_host, SimTime fetched_at,
                    SimTime now);

 private:
  struct Stamp {
    SimTime birth;
    std::uint32_t writer_host;
  };

  Histogram* hist_ = nullptr;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Stamp>>
      stamps_;
};

}  // namespace gvfs::metrics
