// Sim-clock sampler: snapshots a Registry into an in-memory time series on a
// fixed period. The sampling loop is an ordinary simulated coroutine, so
// samples interleave deterministically with protocol activity and two
// identical seeded runs produce byte-identical series.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/registry.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::metrics {

/// One snapshot: every instrument flattened to (column, value) pairs.
/// Histograms expand to .count/.sum/.max/.p50/.p95/.p99 columns.
struct Sample {
  SimTime time = 0;
  std::vector<std::pair<std::string, double>> values;

  Sample() = default;
};

using TimeSeries = std::vector<Sample>;

class Sampler {
 public:
  Sampler(sim::Scheduler& sched, Registry& registry, Duration period)
      : sched_(sched), registry_(registry), period_(period) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Takes an immediate sample, then one every `period` until Stop().
  void Start();
  /// Stops the periodic loop (already-collected samples are kept). A final
  /// snapshot can still be taken explicitly with SampleNow().
  void Stop() { running_ = false; }

  /// Appends one snapshot of the registry at the current sim time.
  void SampleNow();

  const TimeSeries& series() const { return series_; }
  Duration period() const { return period_; }

 private:
  sim::Task<void> Loop();

  sim::Scheduler& sched_;
  Registry& registry_;
  Duration period_;
  bool running_ = false;
  TimeSeries series_;
};

}  // namespace gvfs::metrics
