// Fleet-scale sharded proxy serving (ROADMAP "O(1k-10k) clients" item).
//
// A fleet session replaces the single proxy server with N ProxyServer
// shards, all co-located with the kernel NFS server. Each shard owns a
// static slice of the file-handle space (proxy::ShardOf): delegation state,
// per-client invalidation buffers, and callback registrations for a handle
// live only on its owning shard, never shared or replicated. A shard that
// observes a mutation of a foreign handle (RENAME/LINK crossing slices)
// forwards it to the owner with a NOTIFYINV RPC.
//
// The ShardRouter is the fleet's partition map: a value type every node can
// copy, answering "which shard owns this handle" without coordination.
#pragma once

#include <cstdint>
#include <vector>

#include "gvfs/session.h"
#include "net/network.h"
#include "nfs3/proto.h"

namespace gvfs::fleet {

class ShardRouter {
 public:
  ShardRouter() = default;
  explicit ShardRouter(std::vector<net::Address> shards)
      : shards_(std::move(shards)) {}

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const std::vector<net::Address>& shards() const { return shards_; }

  /// Index of the shard owning `fh` (0 when the fleet has < 2 shards).
  std::uint32_t IndexOf(const nfs3::Fh& fh) const;

  /// Address of the shard owning `fh`.
  net::Address AddressOf(const nfs3::Fh& fh) const;

  /// Number of handles from [0, probe_count) fsid/ino probes landing on each
  /// shard — a balance diagnostic for tests and benches.
  std::vector<std::size_t> BalanceHistogram(std::uint64_t fsid,
                                            std::uint64_t probe_count) const;

 private:
  std::vector<net::Address> shards_;
};

}  // namespace gvfs::fleet
