// GETINV aggregation tier (§4.2 scaled out; cf. Fletch's hierarchical
// metadata caching and Syndicate's acquisition-gateway split).
//
// An InvAggregator fronts many proxy clients' invalidation polls: clients
// point SessionConfig::getinv_targets at the aggregator instead of polling
// every shard, and the aggregator folds the whole fleet's GETINV fan-in
// into ONE batched upstream poll per shard per period. Received handles are
// fanned back out into per-downstream-client buffers with the same
// coalescing / wrap-around semantics as the proxy server's own buffers, so
// a client cannot tell whether it is polling a server or the tier.
//
// Escalation is preserved end to end: an upstream force-invalidate (shard
// buffer wrapped while the aggregator was partitioned, shard restart) or a
// downstream buffer overflow breaks the incremental stream for the affected
// client(s), who are then served a whole-cache invalidation on their next
// poll — never a silently truncated handle list.
//
// Trace discipline (checked by TraceChecker invariant 5, kAggTier): per
// upstream handle the aggregator emits one kAggFanout per registered
// downstream client and then one kAggIngest; serving emits kAggDeliver per
// handle plus one kAggServe (kInvForce for whole-cache serves; kInvWrap
// marks a broken stream). The checker replays these to prove no
// invalidation is lost or duplicated crossing the tier.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gvfs/proto.h"
#include "gvfs/session.h"
#include "metrics/registry.h"
#include "net/network.h"
#include "nfs3/proto.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "trace/trace.h"

namespace gvfs::fleet {

/// NOTE: ctors are user-declared (non-aggregate) on purpose — the GCC 12
/// by-value coroutine parameter rule (see rpc::CallOptions).
struct InvAggregatorConfig {
  InvAggregatorConfig() = default;
  InvAggregatorConfig(const InvAggregatorConfig&) = default;
  InvAggregatorConfig(InvAggregatorConfig&&) noexcept = default;
  InvAggregatorConfig& operator=(const InvAggregatorConfig&) = default;
  InvAggregatorConfig& operator=(InvAggregatorConfig&&) noexcept = default;

  /// Upstream proxy-server shards this aggregator polls.
  std::vector<net::Address> shards;

  /// Upstream batching period: one GETINV (plus poll-again continuations)
  /// per shard per period, regardless of downstream client count.
  Duration poll_period = Seconds(30);

  /// Max handles per downstream GETINV reply (bigger sets poll again).
  std::uint32_t getinv_batch = 512;

  /// Per-downstream-client buffer capacity; overflow breaks the client's
  /// incremental stream and escalates to a whole-cache invalidation.
  std::size_t inv_buffer_capacity = 8192;

  /// Fault injection for the checker's negative tests: skip the fan-out to
  /// one registered client while still claiming a full ingest (a LOST
  /// invalidation the kAggTier invariant must catch). NEVER enable outside
  /// tests.
  bool unsafe_drop_fanout = false;

  /// Fault injection: fan the same handle out twice to one client (a
  /// DUPLICATED invalidation the kAggTier invariant must catch).
  bool unsafe_duplicate_fanout = false;
};

struct InvAggregatorStats {
  std::uint64_t upstream_polls = 0;    // GETINV RPCs issued to shards
  std::uint64_t upstream_forces = 0;   // shard-side force-invalidates seen
  std::uint64_t getinv_served = 0;     // downstream GETINV polls served
  std::uint64_t handles_ingested = 0;  // handles received from shards
  std::uint64_t handles_fanned_out = 0;
  std::uint64_t handles_delivered = 0;
  std::uint64_t force_invalidations = 0;  // whole-cache serves downstream
  std::uint64_t inv_wraps = 0;            // downstream buffer overflows
  /// High-water mark of total buffered entries across downstream clients.
  std::uint64_t inv_entries_peak = 0;
};

class InvAggregator {
 public:
  /// `node` is the aggregator's RPC endpoint; it serves GETINV downstream
  /// and polls the configured shards upstream.
  InvAggregator(sim::Scheduler& sched, rpc::RpcNode& node,
                InvAggregatorConfig config);

  /// Starts the upstream poll loop (bootstrap poll immediately, then one
  /// batched poll per shard per period).
  void Start();

  /// Stops the poll loop (session teardown).
  void Stop();

  const InvAggregatorConfig& config() const { return config_; }
  const InvAggregatorStats& stats() const { return stats_; }
  std::size_t DownstreamClients() const { return clients_.size(); }

  /// Registers live telemetry (buffer gauges + the counters above) under
  /// `prefix`.
  void AttachMetrics(metrics::Registry& registry, const std::string& prefix);

 private:
  struct Entry {
    std::uint64_t timestamp;
    nfs3::Fh fh;
  };

  /// Per-downstream-client buffer, mirroring ProxyServer::InvClient.
  struct Downstream {
    std::deque<Entry> buffer;
    std::set<nfs3::Fh> pending;  // coalescing: one entry per file
    std::uint64_t last_acked = 0;
    /// Incremental stream broken (local overflow or upstream force); the
    /// next poll is served a whole-cache invalidation.
    bool overflowed = false;
  };

  sim::Task<Bytes> HandleGetInv(rpc::CallContext ctx, rpc::Body args);

  sim::Task<void> PollLoop();
  sim::Task<void> PollShardOnce(std::size_t shard_index);

  /// Absorbs one upstream handle: fan out to every registered downstream
  /// client, then stamp the ingest marker.
  void Ingest(const nfs3::Fh& fh, HostId shard_host);
  /// Appends one handle to one downstream buffer (with coalescing and
  /// overflow handling). Returns true when an entry was appended.
  bool Fanout(const net::Address& client, Downstream& state,
              const nfs3::Fh& fh);
  /// Upstream force-invalidate: break every downstream client's stream.
  void EscalateForce(std::uint64_t upstream_timestamp);

  sim::Scheduler& sched_;
  rpc::RpcNode& node_;
  InvAggregatorConfig config_;

  std::map<net::Address, Downstream> clients_;
  /// The aggregator's own logical clock for downstream timestamps; starts
  /// at 1 (0 is the bootstrap null timestamp), like the server's.
  std::uint64_t agg_clock_ = 1;
  /// Last-seen upstream timestamp per shard (index-parallel to shards).
  std::vector<std::uint64_t> shard_timestamps_;
  std::size_t inv_entries_ = 0;  // total buffered entries, all clients

  bool running_ = false;
  std::uint64_t epoch_ = 0;

  InvAggregatorStats stats_;
};

}  // namespace gvfs::fleet
