#include "fleet/inv_aggregator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace gvfs::fleet {

using nfs3::Fh;
using nfs3::Serialize;

InvAggregator::InvAggregator(sim::Scheduler& sched, rpc::RpcNode& node,
                             InvAggregatorConfig config)
    : sched_(sched), node_(node), config_(std::move(config)) {
  shard_timestamps_.assign(config_.shards.size(), 0);
  node_.RegisterHandler(proxy::kGvfsProgram, proxy::kGetInv,
                        [this](rpc::CallContext ctx, rpc::Body args) {
                          return HandleGetInv(ctx, std::move(args));
                        });
}

void InvAggregator::Start() {
  if (running_) return;
  running_ = true;
  sim::Spawn(PollLoop());
}

void InvAggregator::Stop() {
  running_ = false;
  ++epoch_;
}

// ---------------------------------------------------------------------------
// Upstream: one batched GETINV per shard per period
// ---------------------------------------------------------------------------

sim::Task<void> InvAggregator::PollLoop() {
  const std::uint64_t epoch = epoch_;
  // Bootstrap immediately: the first GETINV per shard carries a null
  // timestamp and registers this aggregator as the shard's (single) polling
  // client before downstream state accumulates.
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    co_await PollShardOnce(i);
  }
  while (running_ && epoch == epoch_) {
    co_await sim::Sleep(sched_, config_.poll_period);
    if (!running_ || epoch != epoch_) break;
    for (std::size_t i = 0; i < config_.shards.size(); ++i) {
      co_await PollShardOnce(i);
      if (!running_ || epoch != epoch_) break;
    }
  }
}

sim::Task<void> InvAggregator::PollShardOnce(std::size_t shard_index) {
  while (true) {
    proxy::GetInvArgs args;
    args.last_timestamp = shard_timestamps_[shard_index];
    rpc::CallOptions opts;
    opts.label = "GETINV";
    auto reply =
        co_await node_.Call(config_.shards[shard_index], proxy::kGvfsProgram,
                            proxy::kGetInv, Serialize(args), std::move(opts));
    if (!reply) co_return;  // shard unreachable; retry next period
    auto res = nfs3::Parse<proxy::GetInvRes>(*reply);
    if (!res) co_return;
    ++stats_.upstream_polls;
    shard_timestamps_[shard_index] = res->new_timestamp;
    if (res->force_invalidate) {
      // The shard could not bring us up to date incrementally (bootstrap,
      // shard restart, or our buffer wrapped server-side). Anything it may
      // have dropped must reach every downstream client, so the escalation
      // is a whole-cache invalidation for all of them.
      ++stats_.upstream_forces;
      EscalateForce(res->new_timestamp);
    } else {
      stats_.handles_ingested += res->handles.size();
      for (const auto& fh : res->handles) {
        Ingest(fh, config_.shards[shard_index].host);
      }
    }
    if (!res->poll_again) co_return;
  }
}

void InvAggregator::Ingest(const Fh& fh, HostId shard_host) {
  // The aggregator re-stamps handles on its own clock: downstream timestamps
  // must be dense and monotone per THIS node, independent of how many
  // upstream shards' clocks interleave.
  ++agg_clock_;
  std::uint32_t fanned = 0;
  std::size_t idx = 0;
  const std::size_t last = clients_.size();
  for (auto& [client, state] : clients_) {
    ++idx;
    if (config_.unsafe_drop_fanout && idx == last) continue;  // seeded loss
    if (state.overflowed) continue;  // already due a whole-cache invalidation
    if (Fanout(client, state, fh)) ++fanned;
    if (config_.unsafe_duplicate_fanout && idx == 1 && !state.overflowed) {
      state.pending.erase(fh);  // defeat coalescing: seeded duplicate
      if (Fanout(client, state, fh)) ++fanned;
    }
  }
  // One ingest marker AFTER the fan-outs: the checker replays in order and
  // verifies every registered client was covered (fanned out, or due a
  // whole-cache invalidation) by the time the handle is absorbed.
  node_.tracer().Inv(trace::EventType::kAggIngest, node_.address().host,
                     fh.fsid, fh.ino, agg_clock_, fanned, shard_host);
}

bool InvAggregator::Fanout(const net::Address& client, Downstream& state,
                           const Fh& fh) {
  if (!state.pending.insert(fh).second) return false;  // coalesced
  state.buffer.push_back(Entry{agg_clock_, fh});
  ++inv_entries_;
  ++stats_.handles_fanned_out;
  stats_.inv_entries_peak =
      std::max<std::uint64_t>(stats_.inv_entries_peak, inv_entries_);
  const auto& tr = node_.tracer();
  const HostId host = node_.address().host;
  tr.Inv(trace::EventType::kAggFanout, host, fh.fsid, fh.ino, agg_clock_,
         static_cast<std::uint32_t>(state.buffer.size()), client.host);
  if (state.buffer.size() > config_.inv_buffer_capacity) {
    // Overflow breaks this client's incremental stream. Unlike the server
    // (which keeps a rolling window), the aggregator drops the whole buffer
    // at once: the client is due a whole-cache invalidation either way, and
    // holding doomed entries would only inflate tier memory under fan-out.
    tr.Inv(trace::EventType::kInvWrap, host, fh.fsid, fh.ino, agg_clock_,
           static_cast<std::uint32_t>(state.buffer.size()), client.host);
    ++stats_.inv_wraps;
    inv_entries_ -= state.buffer.size();
    state.buffer.clear();
    state.pending.clear();
    state.overflowed = true;
  }
  return true;
}

void InvAggregator::EscalateForce(std::uint64_t upstream_timestamp) {
  const auto& tr = node_.tracer();
  const HostId host = node_.address().host;
  for (auto& [client, state] : clients_) {
    if (state.overflowed) continue;  // stream already broken
    tr.Inv(trace::EventType::kInvWrap, host, 0, 0, upstream_timestamp,
           static_cast<std::uint32_t>(state.buffer.size()), client.host);
    inv_entries_ -= state.buffer.size();
    state.buffer.clear();
    state.pending.clear();
    state.overflowed = true;
  }
}

// ---------------------------------------------------------------------------
// Downstream: GETINV service, mirroring ProxyServer::HandleGetInv
// ---------------------------------------------------------------------------

sim::Task<Bytes> InvAggregator::HandleGetInv(rpc::CallContext ctx,
                                             rpc::Body args) {
  ++stats_.getinv_served;
  const auto& tr = node_.tracer();
  const HostId host = node_.address().host;

  proxy::GetInvRes res;
  auto parsed = nfs3::Parse<proxy::GetInvArgs>(args);
  if (!parsed) {
    res.force_invalidate = true;
    res.new_timestamp = agg_clock_;
    co_return Serialize(res);
  }

  auto it = clients_.find(ctx.caller);
  if (it == clients_.end()) {
    // Case 1: first GETINV from this client — register it; from here on
    // every ingested handle must be fanned out to it (the kAggTier
    // invariant holds the tier to exactly that).
    auto& state = clients_[ctx.caller];
    state.last_acked = agg_clock_;
    res.new_timestamp = agg_clock_;
    res.force_invalidate = true;
    ++stats_.force_invalidations;
    tr.Inv(trace::EventType::kInvForce, host, 0, 0, agg_clock_, 0,
           ctx.caller.host);
    co_return Serialize(res);
  }

  Downstream& state = it->second;
  const std::uint64_t ts = parsed->last_timestamp;
  const bool stale_ts = ts == 0 || ts < state.last_acked || ts > agg_clock_;
  if (stale_ts || state.overflowed) {
    // Case 2: incremental delivery impossible (client lost its timestamp,
    // its buffer here overflowed, or an upstream force was escalated).
    inv_entries_ -= state.buffer.size();
    state.buffer.clear();
    state.pending.clear();
    state.overflowed = false;
    state.last_acked = agg_clock_;
    res.new_timestamp = agg_clock_;
    res.force_invalidate = true;
    ++stats_.force_invalidations;
    tr.Inv(trace::EventType::kInvForce, host, 0, 0, agg_clock_, 0,
           ctx.caller.host);
    co_return Serialize(res);
  }

  // Case 3: drain buffered invalidations, batched.
  const std::size_t batch =
      std::min<std::size_t>(state.buffer.size(), config_.getinv_batch);
  res.handles.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    Entry entry = state.buffer.front();
    state.buffer.pop_front();
    state.pending.erase(entry.fh);
    res.handles.push_back(entry.fh);
    state.last_acked = entry.timestamp;
    tr.Inv(trace::EventType::kAggDeliver, host, entry.fh.fsid, entry.fh.ino,
           entry.timestamp, static_cast<std::uint32_t>(batch),
           ctx.caller.host);
  }
  inv_entries_ -= batch;
  stats_.handles_delivered += batch;
  if (state.buffer.empty()) {
    state.last_acked = agg_clock_;
  } else {
    res.poll_again = true;
  }
  res.new_timestamp = state.last_acked;
  tr.Inv(trace::EventType::kAggServe, host, 0, 0, res.new_timestamp,
         static_cast<std::uint32_t>(res.handles.size()), ctx.caller.host);
  co_return Serialize(res);
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

void InvAggregator::AttachMetrics(metrics::Registry& registry,
                                  const std::string& prefix) {
  registry.AddProbe(prefix + "inv_buffer_entries", [this] {
    return static_cast<double>(inv_entries_);
  });
  registry.AddProbe(prefix + "inv_entries_peak", [this] {
    return static_cast<double>(stats_.inv_entries_peak);
  });
  registry.AddProbe(prefix + "downstream_clients", [this] {
    return static_cast<double>(clients_.size());
  });
  registry.AddProbe(prefix + "upstream_polls", [this] {
    return static_cast<double>(stats_.upstream_polls);
  });
  registry.AddProbe(prefix + "upstream_forces", [this] {
    return static_cast<double>(stats_.upstream_forces);
  });
  registry.AddProbe(prefix + "getinv_served", [this] {
    return static_cast<double>(stats_.getinv_served);
  });
  registry.AddProbe(prefix + "handles_ingested", [this] {
    return static_cast<double>(stats_.handles_ingested);
  });
  registry.AddProbe(prefix + "handles_fanned_out", [this] {
    return static_cast<double>(stats_.handles_fanned_out);
  });
  registry.AddProbe(prefix + "handles_delivered", [this] {
    return static_cast<double>(stats_.handles_delivered);
  });
  registry.AddProbe(prefix + "force_invalidations", [this] {
    return static_cast<double>(stats_.force_invalidations);
  });
  registry.AddProbe(prefix + "inv_wraps", [this] {
    return static_cast<double>(stats_.inv_wraps);
  });
}

}  // namespace gvfs::fleet
