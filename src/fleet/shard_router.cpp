#include "fleet/shard_router.h"

namespace gvfs::fleet {

std::uint32_t ShardRouter::IndexOf(const nfs3::Fh& fh) const {
  return proxy::ShardOf(fh, shard_count());
}

net::Address ShardRouter::AddressOf(const nfs3::Fh& fh) const {
  return shards_.at(IndexOf(fh));
}

std::vector<std::size_t> ShardRouter::BalanceHistogram(
    std::uint64_t fsid, std::uint64_t probe_count) const {
  std::vector<std::size_t> counts(std::max<std::size_t>(1, shards_.size()), 0);
  for (std::uint64_t ino = 1; ino <= probe_count; ++ino) {
    nfs3::Fh fh;
    fh.fsid = fsid;
    fh.ino = ino;
    ++counts[IndexOf(fh)];
  }
  return counts;
}

}  // namespace gvfs::fleet
