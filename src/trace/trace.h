// Structured event tracing for simulation runs.
//
// Every interesting protocol action — RPC send/reply/retransmit/timeout,
// cache hit/miss/write-back, delegation grant/recall/release/expiry,
// invalidation-buffer append/poll/wrap/force-invalidate, node crash and
// recovery — is recorded as a fixed-size typed event (tagged-union payload)
// in a bounded per-run ring buffer, stamped with the simulation clock.
//
// The producer side is a nullable `Tracer` value handle threaded through
// net::Network, rpc::RpcNode and the gvfs proxy layers; when no buffer is
// attached every record call is a no-op (benches default to tracing off).
// Consumers replay the buffer: exporters (export.h) render Chrome
// trace-event JSON and a human-readable timeline; the TraceChecker
// (checker.h) asserts protocol invariants over the stream.
//
// This library is a leaf: it depends only on gvfs_common, so any layer
// (net, rpc, gvfs) can record events without include cycles. File handles
// are therefore carried as raw (fsid, ino) pairs rather than nfs3::Fh.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace gvfs::trace {

enum class EventType : std::uint8_t {
  // RPC layer (rpc::RpcNode).
  kRpcSend,        // first transmission of a call
  kRpcRetransmit,  // timeout-driven retransmission of the same xid
  kRpcReply,       // caller matched a reply to a pending call
  kRpcTimeout,     // caller gave up after all retransmissions
  kRpcExec,         // server began executing a handler (post-DRC)
  kRpcHandlerDone,  // server handler produced its reply body
  kRpcDrcHit,       // server resent a cached reply instead of re-executing
  // Network layer (net::Network).
  kNetDrop,  // packet dropped on a downed or missing link
  // Proxy disk cache (gvfs::proxy::ProxyClient).
  kCacheHit,        // request served from the local cache
  kCacheMiss,       // entry (re)validated from an upstream reply
  kCacheWriteBack,  // one dirty block written upstream
  // Delegations (§4.3). Server-side bookkeeping events carry
  // kDelegFlagServerSide; client-side recall/release events do not.
  kDelegGrant,    // delegation granted (server) / grant stored (client)
  kDelegRecall,   // recall issued (server) / CALLBACK received (client)
  kDelegRelease,  // delegation revoked (server) / CALLBACK replied (client)
  kDelegExpiry,   // server expired a speculatively-open sharer
  // Invalidation polling (§4.2).
  kInvAppend,  // server appended a handle to a client's buffer
  kInvPoll,    // GETINV served (server) / invalidation applied (client)
  kInvWrap,    // incremental stream broken (overflow / upstream force);
               // the affected client owes a whole-cache invalidation
  kInvForce,   // whole-cache invalidation (overflow, bootstrap, recovery)
  // GETINV aggregation tier (src/fleet). Per upstream handle the aggregator
  // emits one kAggFanout per registered downstream client FOLLOWED by one
  // kAggIngest, so a single-pass checker can prove no client was skipped.
  kAggFanout,   // aggregator appended a handle to one downstream buffer
  kAggIngest,   // aggregator absorbed one upstream handle (post-fanout)
  kAggDeliver,  // aggregator handed one buffered handle to a downstream poll
  kAggServe,    // aggregator served one downstream GETINV batch
  // Node lifecycle.
  kNodeCrash,
  kNodeRecover,
  // Adaptive consistency (src/policy). Decisions are client-side engine
  // events; migrations are recorded on both ends of the MIGRATE handshake
  // (server side carries kPolicyFlagServerSide).
  kPolicyDecide,   // engine classified a file and chose a target mode
  kPolicyMigrate,  // MIGRATE completed (client) / served (server)
  // Diagnosis layer (src/obs). An online anomaly detector crossed its
  // threshold; the payload names the detector kind (obs::AnomalyKind), the
  // observed value and the threshold it exceeded. File-scoped detectors
  // (migration flap) carry the offending handle; fleet-scoped ones leave
  // fsid/ino zero.
  kAnomaly,
};

const char* EventTypeName(EventType type);

// DelegPayload::flags bits.
constexpr std::uint32_t kDelegFlagServerSide = 1;   // recorded by the server
constexpr std::uint32_t kDelegFlagHasWanted = 2;    // wanted_offset is valid
constexpr std::uint32_t kDelegFlagWantedDirty = 4;  // wanted block was dirty

// PolicyPayload::flags bits.
constexpr std::uint32_t kPolicyFlagServerSide = 1;  // recorded by the server
constexpr std::uint32_t kPolicyFlagFrozen = 2;      // storm breaker active

/// Sentinel for cache events without a byte offset (attribute-level ops).
constexpr std::uint64_t kNoOffset = ~0ull;

/// Causal-span identity carried in RPC call headers (Dapper-style). A call's
/// span covers its full client-observed lifetime; the handler executes inside
/// the caller's span, and any RPCs the handler issues become child spans via
/// CallOptions::parent. trace_id names the whole tree (the root call's
/// span_id). Trivially copyable on purpose: it is passed by value into
/// coroutines.
struct SpanRef {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

struct RpcPayload {
  std::uint32_t peer_host = 0;  // other endpoint of the call
  std::uint32_t peer_port = 0;
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t proc = 0;
  std::uint16_t label = 0;  // interned procedure label
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

struct NetPayload {
  std::uint32_t dst_host = 0;
  std::uint32_t wire_size = 0;
};

struct CachePayload {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;
  std::uint64_t offset = kNoOffset;  // byte offset for block-level events
  std::uint16_t label = 0;           // interned procedure label ("" if n/a)
};

struct DelegPayload {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;
  std::uint64_t wanted_offset = 0;  // valid iff kDelegFlagHasWanted
  std::uint32_t deleg_type = 0;     // proxy::DelegationType as integer
  std::uint32_t peer_host = 0;      // grantee (server side) / server (client)
  std::uint32_t flags = 0;
};

struct InvPayload {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;
  std::uint64_t timestamp = 0;  // logical invalidation clock
  std::uint32_t count = 0;      // buffer depth / handles in batch
  std::uint32_t peer_host = 0;
};

struct PolicyPayload {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;
  std::uint32_t from = 0;  // policy::FileMode before the decision/migration
  std::uint32_t to = 0;    // policy::FileMode after
  std::uint32_t flags = 0;
};

struct AnomalyPayload {
  std::uint64_t fsid = 0;  // offending file for file-scoped detectors
  std::uint64_t ino = 0;
  std::uint32_t kind = 0;  // obs::AnomalyKind as integer
  std::uint32_t reserved = 0;
  double value = 0;      // observed measurement that fired the detector
  double threshold = 0;  // configured limit it crossed
};

struct Event {
  SimTime time = 0;
  EventType type = EventType::kRpcSend;
  HostId host = kInvalidHost;  // recording host
  std::uint32_t port = 0;      // recording node's port (0 when n/a)
  union Payload {
    RpcPayload rpc;
    NetPayload net;
    CachePayload cache;
    DelegPayload deleg;
    InvPayload inv;
    PolicyPayload policy;
    AnomalyPayload anomaly;
    Payload() : rpc() {}
  } u;
};

/// Bounded ring buffer of events plus the label intern table. When full, the
/// oldest events are overwritten and `dropped()` counts the overwrites, so a
/// consumer can tell whether it is looking at a complete run.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 20);

  void Push(const Event& event);

  /// Interns a label string, returning its stable id (0 is always "").
  std::uint16_t InternLabel(const std::string& label);
  const std::string& LabelName(std::uint16_t id) const;

  /// Events currently held, oldest first.
  std::size_t size() const { return ring_.size(); }
  const Event& at(std::size_t i) const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;

  std::vector<std::string> labels_;
  std::map<std::string, std::uint16_t> label_ids_;
};

/// Cheap copyable handle held by instrumented components. A default-
/// constructed Tracer is disabled and records nothing.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceBuffer* buffer, const SimTime* clock)
      : buffer_(buffer), clock_(clock) {}

  bool enabled() const { return buffer_ != nullptr; }
  TraceBuffer* buffer() const { return buffer_; }

  void Rpc(EventType type, HostId host, std::uint32_t port, HostId peer_host,
           std::uint32_t peer_port, std::uint32_t xid, std::uint32_t prog,
           std::uint32_t proc, const std::string& label,
           std::uint64_t trace_id = 0, std::uint64_t span_id = 0,
           std::uint64_t parent_span_id = 0) const;
  void NetDrop(HostId src, HostId dst, std::size_t wire_size) const;
  void Cache(EventType type, HostId host, std::uint64_t fsid, std::uint64_t ino,
             std::uint64_t offset, const std::string& label) const;
  void Deleg(EventType type, HostId host, std::uint64_t fsid, std::uint64_t ino,
             std::uint32_t deleg_type, HostId peer_host, std::uint32_t flags,
             std::uint64_t wanted_offset) const;
  void Inv(EventType type, HostId host, std::uint64_t fsid, std::uint64_t ino,
           std::uint64_t timestamp, std::uint32_t count, HostId peer_host) const;
  void Policy(EventType type, HostId host, std::uint64_t fsid,
              std::uint64_t ino, std::uint32_t from, std::uint32_t to,
              std::uint32_t flags) const;
  void Anomaly(HostId host, std::uint64_t fsid, std::uint64_t ino,
               std::uint32_t kind, double value, double threshold) const;
  void Node(EventType type, HostId host) const;

 private:
  Event Stamp(EventType type, HostId host, std::uint32_t port) const;

  TraceBuffer* buffer_ = nullptr;
  const SimTime* clock_ = nullptr;
};

}  // namespace gvfs::trace
