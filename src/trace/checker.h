// Trace-driven protocol invariant checker: replays a TraceBuffer and
// reports violations of the consistency-protocol guarantees the paper's
// claims rest on. Wired into the gvfs tests as an oracle, so every scenario
// checks the protocol's behavior over time, not just its end state.
//
// Invariants checked:
//
//  1. kConflictingDelegation — at no point do two clients concurrently hold
//     conflicting delegations (two writes, or a read beside a write) on the
//     same file, per the server's own grant/release/expiry events.
//  2. kStaleRead — after a covering invalidation (GETINV application, force
//     invalidate, or delegation recall) a client never serves a read-class
//     request (GETATTR/LOOKUP/ACCESS/READ) from its cache without an
//     intervening refresh from the server.
//  3. kRecallWriteBack — when a write recall names a wanted block that was
//     dirty at the holder, that block's write-back completes before the
//     holder replies to the CALLBACK (the §4.3.2 contract: the contended
//     block is durable upstream before the waiter proceeds).
//  4. kDrcReexec — a node never executes a non-idempotent procedure twice
//     for the same (caller, xid), i.e. the duplicate-request cache absorbed
//     every retransmission. Which (prog, proc) pairs are non-idempotent is
//     supplied by the caller (see proxy::NfsTraceCheckerConfig()), keeping
//     this library protocol-agnostic.
//  5. kAggTier — no invalidation is lost or duplicated crossing the GETINV
//     aggregation tier (src/fleet). The aggregator emits one kAggFanout per
//     registered downstream client BEFORE each kAggIngest, so the replay
//     demands: at ingest, every registered client has a pending fanout for
//     the handle (unless a kInvWrap put that client in force-pending state,
//     where a whole-cache invalidation supersedes per-handle delivery); a
//     second fanout of a pending handle (broken coalescing) and a delivery
//     of a handle never fanned out are both duplications.
//  6. kPolicyMigration — every adaptive-policy migration is version-
//     continuous: when a client completes a MIGRATE for a file (client-side
//     kPolicyMigrate), no invalidation for that file may still sit
//     undelivered in the client's server-side buffer (kInvAppend without a
//     matching kInvPoll application, server-side drain, aggregator ingest,
//     or superseding whole-cache invalidation). A buffered entry surviving
//     the switch is a mutation invisible under the new mode.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace gvfs::trace {

enum class InvariantKind {
  kConflictingDelegation,
  kStaleRead,
  kRecallWriteBack,
  kDrcReexec,
  kAggTier,
  kPolicyMigration,
};

const char* InvariantKindName(InvariantKind kind);

struct Violation {
  std::size_t event_index = 0;  // index into the checked buffer
  SimTime time = 0;
  InvariantKind kind = InvariantKind::kConflictingDelegation;
  std::string detail;
};

struct CheckerConfig {
  CheckerConfig() = default;
  CheckerConfig(const CheckerConfig&) = default;
  CheckerConfig(CheckerConfig&&) noexcept = default;
  CheckerConfig& operator=(const CheckerConfig&) = default;
  CheckerConfig& operator=(CheckerConfig&&) noexcept = default;

  /// (prog << 32) | proc pairs the DRC must never re-execute.
  std::set<std::uint64_t> non_idempotent;

  void AddNonIdempotent(std::uint32_t prog, std::uint32_t proc) {
    non_idempotent.insert((static_cast<std::uint64_t>(prog) << 32) | proc);
  }
};

class TraceChecker {
 public:
  explicit TraceChecker(CheckerConfig config = {});

  /// Replays the buffer and returns every violation found, in event order.
  std::vector<Violation> Check(const TraceBuffer& buffer);

  /// Caveats about the last Check() call — currently one entry when the
  /// buffer overflowed and the replay saw only a truncated suffix of the
  /// run (invariants may be vacuously satisfied). Also logged via GVFS_WARN.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  CheckerConfig config_;
  std::vector<std::string> warnings_;
};

/// Renders violations one per line (for test failure messages).
std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace gvfs::trace
