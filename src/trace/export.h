// Trace consumers that render a TraceBuffer for humans and tools:
//
//  - ChromeTraceWriter: Chrome trace-event JSON (the "JSON Array Format"),
//    loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each host
//    becomes a process track; each RPC endpoint (port) becomes a thread
//    track. RPC spans are derived from matching kRpcSend/kRpcReply pairs
//    (duration = first send to reply, retransmission count in args); all
//    other events render as instants.
//  - WriteTimeline: a flat human-readable dump, one line per event, for
//    quick grepping without a trace viewer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace gvfs::trace {

struct ChromeTraceOptions {
  ChromeTraceOptions() = default;
  ChromeTraceOptions(const ChromeTraceOptions&) = default;
  ChromeTraceOptions& operator=(const ChromeTraceOptions&) = default;

  /// Host display names indexed by HostId; missing entries render "host N".
  std::vector<std::string> host_names;
  /// Prefixed to process names — used to distinguish runs when several
  /// buffers are merged into one file (e.g. "gvfs1/" and "gvfs2/").
  std::string process_prefix;
  /// Added to every HostId to form the Chrome pid, keeping merged runs'
  /// tracks separate.
  std::uint32_t pid_offset = 0;
};

class ChromeTraceWriter {
 public:
  /// Renders `buffer` into the pending event list. May be called multiple
  /// times (with distinct pid_offsets) to merge runs into one file.
  void Add(const TraceBuffer& buffer, const ChromeTraceOptions& options);

  void Write(std::ostream& out) const;
  /// Returns false (and logs) when the file cannot be opened.
  bool WriteTo(const std::string& path) const;

  std::size_t event_count() const { return events_.size(); }

 private:
  std::vector<std::string> events_;  // serialized JSON objects
};

/// One line per event: "[seconds] host:port TYPE details".
void WriteTimeline(const TraceBuffer& buffer, std::ostream& out,
                   const std::vector<std::string>& host_names = {});

}  // namespace gvfs::trace
