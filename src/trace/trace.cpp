#include "trace/trace.h"

#include <cassert>

namespace gvfs::trace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRpcSend:
      return "RPC_SEND";
    case EventType::kRpcRetransmit:
      return "RPC_RETRANSMIT";
    case EventType::kRpcReply:
      return "RPC_REPLY";
    case EventType::kRpcTimeout:
      return "RPC_TIMEOUT";
    case EventType::kRpcExec:
      return "RPC_EXEC";
    case EventType::kRpcHandlerDone:
      return "RPC_HANDLER_DONE";
    case EventType::kRpcDrcHit:
      return "RPC_DRC_HIT";
    case EventType::kNetDrop:
      return "NET_DROP";
    case EventType::kCacheHit:
      return "CACHE_HIT";
    case EventType::kCacheMiss:
      return "CACHE_MISS";
    case EventType::kCacheWriteBack:
      return "CACHE_WRITEBACK";
    case EventType::kDelegGrant:
      return "DELEG_GRANT";
    case EventType::kDelegRecall:
      return "DELEG_RECALL";
    case EventType::kDelegRelease:
      return "DELEG_RELEASE";
    case EventType::kDelegExpiry:
      return "DELEG_EXPIRY";
    case EventType::kInvAppend:
      return "INV_APPEND";
    case EventType::kInvPoll:
      return "INV_POLL";
    case EventType::kInvWrap:
      return "INV_WRAP";
    case EventType::kInvForce:
      return "INV_FORCE";
    case EventType::kAggFanout:
      return "AGG_FANOUT";
    case EventType::kAggIngest:
      return "AGG_INGEST";
    case EventType::kAggDeliver:
      return "AGG_DELIVER";
    case EventType::kAggServe:
      return "AGG_SERVE";
    case EventType::kNodeCrash:
      return "NODE_CRASH";
    case EventType::kNodeRecover:
      return "NODE_RECOVER";
    case EventType::kPolicyDecide:
      return "POLICY_DECIDE";
    case EventType::kPolicyMigrate:
      return "POLICY_MIGRATE";
    case EventType::kAnomaly:
      return "ANOMALY";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  labels_.push_back("");  // id 0 is always the empty label
  label_ids_[""] = 0;
}

void TraceBuffer::Push(const Event& event) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

const Event& TraceBuffer::at(std::size_t i) const {
  assert(i < ring_.size());
  return ring_[(head_ + i) % ring_.size()];
}

std::uint16_t TraceBuffer::InternLabel(const std::string& label) {
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  // Saturate rather than grow without bound: ids are u16 and real runs use a
  // few dozen labels at most.
  if (labels_.size() >= 0xffff) return 0;
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.push_back(label);
  label_ids_[label] = id;
  return id;
}

const std::string& TraceBuffer::LabelName(std::uint16_t id) const {
  return id < labels_.size() ? labels_[id] : labels_[0];
}

void TraceBuffer::Clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

Event Tracer::Stamp(EventType type, HostId host, std::uint32_t port) const {
  Event ev;
  ev.time = clock_ != nullptr ? *clock_ : 0;
  ev.type = type;
  ev.host = host;
  ev.port = port;
  return ev;
}

void Tracer::Rpc(EventType type, HostId host, std::uint32_t port,
                 HostId peer_host, std::uint32_t peer_port, std::uint32_t xid,
                 std::uint32_t prog, std::uint32_t proc,
                 const std::string& label, std::uint64_t trace_id,
                 std::uint64_t span_id, std::uint64_t parent_span_id) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(type, host, port);
  ev.u.rpc = RpcPayload{peer_host, peer_port, xid, prog, proc,
                        buffer_->InternLabel(label), trace_id, span_id,
                        parent_span_id};
  buffer_->Push(ev);
}

void Tracer::NetDrop(HostId src, HostId dst, std::size_t wire_size) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(EventType::kNetDrop, src, 0);
  ev.u.net = NetPayload{dst, static_cast<std::uint32_t>(wire_size)};
  buffer_->Push(ev);
}

void Tracer::Cache(EventType type, HostId host, std::uint64_t fsid,
                   std::uint64_t ino, std::uint64_t offset,
                   const std::string& label) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(type, host, 0);
  ev.u.cache = CachePayload{fsid, ino, offset, buffer_->InternLabel(label)};
  buffer_->Push(ev);
}

void Tracer::Deleg(EventType type, HostId host, std::uint64_t fsid,
                   std::uint64_t ino, std::uint32_t deleg_type, HostId peer_host,
                   std::uint32_t flags, std::uint64_t wanted_offset) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(type, host, 0);
  ev.u.deleg =
      DelegPayload{fsid, ino, wanted_offset, deleg_type, peer_host, flags};
  buffer_->Push(ev);
}

void Tracer::Inv(EventType type, HostId host, std::uint64_t fsid,
                 std::uint64_t ino, std::uint64_t timestamp, std::uint32_t count,
                 HostId peer_host) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(type, host, 0);
  ev.u.inv = InvPayload{fsid, ino, timestamp, count, peer_host};
  buffer_->Push(ev);
}

void Tracer::Policy(EventType type, HostId host, std::uint64_t fsid,
                    std::uint64_t ino, std::uint32_t from, std::uint32_t to,
                    std::uint32_t flags) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(type, host, 0);
  ev.u.policy = PolicyPayload{fsid, ino, from, to, flags};
  buffer_->Push(ev);
}

void Tracer::Anomaly(HostId host, std::uint64_t fsid, std::uint64_t ino,
                     std::uint32_t kind, double value, double threshold) const {
  if (buffer_ == nullptr) return;
  Event ev = Stamp(EventType::kAnomaly, host, 0);
  ev.u.anomaly = AnomalyPayload{fsid, ino, kind, 0, value, threshold};
  buffer_->Push(ev);
}

void Tracer::Node(EventType type, HostId host) const {
  if (buffer_ == nullptr) return;
  buffer_->Push(Stamp(type, host, 0));
}

}  // namespace gvfs::trace
