#include "trace/checker.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <map>
#include <tuple>

#include "common/logging.h"

namespace gvfs::trace {
namespace {

using FileKey = std::pair<std::uint64_t, std::uint64_t>;          // fsid, ino
using HostFileKey = std::tuple<HostId, std::uint64_t, std::uint64_t>;

std::string FhString(std::uint64_t fsid, std::uint64_t ino) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64, fsid, ino);
  return buf;
}

constexpr std::uint32_t kTypeRead = 1;   // proxy::DelegationType::kRead
constexpr std::uint32_t kTypeWrite = 2;  // proxy::DelegationType::kWrite

/// Read-class cache hits that must not be served over a stale entry.
/// WRITE hits revalidate (an absorbed write refreshes the entry from the
/// client's own data); COMMIT hits are durability-only and neutral.
bool IsReadClassOp(const std::string& label) {
  return label == "GETATTR" || label == "LOOKUP" || label == "ACCESS" ||
         label == "READ";
}

}  // namespace

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kConflictingDelegation:
      return "conflicting-delegation";
    case InvariantKind::kStaleRead:
      return "stale-read";
    case InvariantKind::kRecallWriteBack:
      return "recall-writeback";
    case InvariantKind::kDrcReexec:
      return "drc-reexec";
    case InvariantKind::kAggTier:
      return "agg-tier";
    case InvariantKind::kPolicyMigration:
      return "policy-migration";
  }
  return "?";
}

TraceChecker::TraceChecker(CheckerConfig config) : config_(std::move(config)) {}

std::vector<Violation> TraceChecker::Check(const TraceBuffer& buffer) {
  std::vector<Violation> out;
  char msg[256];
  warnings_.clear();
  if (buffer.dropped() > 0) {
    std::snprintf(msg, sizeof(msg),
                  "trace buffer overflowed; %llu oldest events dropped — "
                  "invariants checked over a truncated run",
                  static_cast<unsigned long long>(buffer.dropped()));
    warnings_.emplace_back(msg);
    GVFS_WARN("checker: %s", msg);
  }
  auto report = [&](std::size_t idx, SimTime t, InvariantKind kind) {
    out.push_back(Violation{idx, t, kind, msg});
  };

  // Invariant 1: server-side delegation holder state per file.
  struct FileHolders {
    std::map<HostId, std::uint32_t> holders;  // client host -> type
    HostId granting_host = kInvalidHost;      // server that issued the grants
  };
  std::map<FileKey, FileHolders> deleg;

  // Invariant 2: per (client host, file) validity state, sequenced by event
  // index. A read-class hit while the latest covering invalidation is newer
  // than the latest refresh is a violation.
  struct CacheState {
    std::int64_t invalidated = -1;
    std::int64_t validated = -1;
  };
  std::map<HostFileKey, CacheState> cache;
  std::map<HostId, std::int64_t> force_inv;  // whole-cache invalidations

  // Invariant 3: outstanding wanted-block write-back obligations per
  // (holder host, file), created by a client-side write recall.
  struct RecallObligation {
    std::uint64_t wanted_offset = 0;
    bool written = false;
    std::size_t recall_index = 0;
  };
  std::map<HostFileKey, RecallObligation> obligations;

  // Invariant 4: executed non-idempotent requests, keyed by executing node
  // plus caller identity plus xid.
  using ExecKey = std::tuple<HostId, std::uint32_t, HostId, std::uint32_t,
                             std::uint32_t>;
  std::set<ExecKey> executed;

  // Invariant 5: aggregation-tier fan-out accounting. Hosts become
  // "aggregators" implicitly by emitting kAgg* events; a plain server's
  // kInvWrap/kInvForce events touch no state here because no clients are
  // ever registered under its host. A client registers under an aggregator
  // when it is first served (kAggServe / aggregator-side kInvForce), which
  // is exactly when the aggregator starts fanning out to it.
  using AggClientKey = std::pair<HostId, HostId>;  // aggregator, client
  using AggPendingKey =
      std::tuple<HostId, HostId, std::uint64_t, std::uint64_t>;  // +fsid, ino
  std::map<HostId, std::set<HostId>> agg_clients;
  std::set<AggPendingKey> agg_pending;   // fanned out, not yet delivered
  std::set<AggClientKey> agg_forced;     // whole-cache invalidation owed
  auto drop_agg_client = [&](HostId agg, HostId client) {
    agg_forced.erase({agg, client});
    auto it = agg_pending.lower_bound({agg, client, 0, 0});
    while (it != agg_pending.end() && std::get<0>(*it) == agg &&
           std::get<1>(*it) == client) {
      it = agg_pending.erase(it);
    }
  };

  // Invariant 6: buffered-but-undelivered invalidation entries per
  // (destination host, file), produced by server-side kInvAppend and
  // consumed when the destination applies the entry (client-side kInvPoll),
  // the server drains it during a MIGRATE (server-side kInvPoll naming the
  // destination as peer), an aggregator absorbs it (kAggIngest), or a
  // whole-cache invalidation supersedes the stream (kInvForce / kInvWrap /
  // crash). A client-side kPolicyMigrate with entries still pending is a
  // lost invalidation.
  std::map<HostFileKey, std::uint32_t> inv_pending;
  auto drop_inv_pending_for = [&](HostId host) {
    auto it = inv_pending.lower_bound({host, 0, 0});
    while (it != inv_pending.end() && std::get<0>(it->first) == host) {
      it = inv_pending.erase(it);
    }
  };
  auto clear_inv_pending = [&](HostId host, std::uint64_t fsid,
                               std::uint64_t ino) {
    inv_pending.erase({host, fsid, ino});
  };

  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Event& ev = buffer.at(i);
    const auto idx = static_cast<std::int64_t>(i);
    switch (ev.type) {
      case EventType::kDelegGrant: {
        const auto& d = ev.u.deleg;
        if ((d.flags & kDelegFlagServerSide) == 0) break;
        const FileKey file{d.fsid, d.ino};
        FileHolders& fh = deleg[file];
        fh.granting_host = ev.host;
        for (const auto& [other, type] : fh.holders) {
          if (other == d.peer_host) continue;
          const bool conflict =
              d.deleg_type == kTypeWrite
                  ? type != 0
                  : (d.deleg_type == kTypeRead && type == kTypeWrite);
          if (conflict) {
            std::snprintf(msg, sizeof(msg),
                          "file %s: %s delegation granted to host %u while "
                          "host %u still holds %s",
                          FhString(d.fsid, d.ino).c_str(),
                          d.deleg_type == kTypeWrite ? "write" : "read",
                          d.peer_host, other,
                          type == kTypeWrite ? "write" : "read");
            report(i, ev.time, InvariantKind::kConflictingDelegation);
          }
        }
        // Write grants are sticky until released/expired; a later read grant
        // to the same holder must not mask the outstanding write.
        std::uint32_t& held = fh.holders[d.peer_host];
        held = std::max(held, d.deleg_type);
        break;
      }
      case EventType::kDelegRelease:
      case EventType::kDelegExpiry: {
        const auto& d = ev.u.deleg;
        if ((d.flags & kDelegFlagServerSide) != 0) {
          deleg[{d.fsid, d.ino}].holders.erase(d.peer_host);
          break;
        }
        // Client-side release: the CALLBACK reply is about to go out; any
        // wanted dirty block must have been written back by now.
        auto it = obligations.find({ev.host, d.fsid, d.ino});
        if (it != obligations.end()) {
          if (!it->second.written) {
            std::snprintf(msg, sizeof(msg),
                          "host %u replied to write recall of file %s before "
                          "writing back wanted block at offset %" PRIu64,
                          ev.host, FhString(d.fsid, d.ino).c_str(),
                          it->second.wanted_offset);
            report(i, ev.time, InvariantKind::kRecallWriteBack);
          }
          obligations.erase(it);
        }
        break;
      }
      case EventType::kDelegRecall: {
        const auto& d = ev.u.deleg;
        if ((d.flags & kDelegFlagServerSide) != 0) break;
        // Client received a CALLBACK: the cached entry is no longer covered.
        cache[{ev.host, d.fsid, d.ino}].invalidated = idx;
        if ((d.flags & kDelegFlagHasWanted) != 0 &&
            (d.flags & kDelegFlagWantedDirty) != 0) {
          obligations[{ev.host, d.fsid, d.ino}] =
              RecallObligation{d.wanted_offset, false, i};
        }
        break;
      }
      case EventType::kInvAppend: {
        // Server appended an entry to the destination's buffer (peer = the
        // destination host): the invalidation is now owed to that host.
        const auto& v = ev.u.inv;
        if (v.peer_host != 0 && v.ino != 0) {
          ++inv_pending[{v.peer_host, v.fsid, v.ino}];
        }
        break;
      }
      case EventType::kInvPoll: {
        const auto& v = ev.u.inv;
        if (v.ino != 0) {
          cache[{ev.host, v.fsid, v.ino}].invalidated = idx;
          // Client-side application (host = destination) or server-side
          // MIGRATE drain (peer = destination) both settle the owed entry.
          clear_inv_pending(ev.host, v.fsid, v.ino);
          if (v.peer_host != 0) clear_inv_pending(v.peer_host, v.fsid, v.ino);
        }
        break;
      }
      case EventType::kInvForce: {
        force_inv[ev.host] = idx;
        drop_inv_pending_for(ev.host);
        // Server/aggregator side (peer = the client being force-served):
        // the whole-cache invalidation settles every outstanding per-handle
        // obligation toward that client and (re)registers it for fan-out.
        const auto& v = ev.u.inv;
        if (v.peer_host != 0) {
          drop_agg_client(ev.host, v.peer_host);
          agg_clients[ev.host].insert(v.peer_host);
          drop_inv_pending_for(v.peer_host);
        }
        break;
      }
      case EventType::kInvWrap: {
        // The incremental stream to `peer` broke (buffer overflow or an
        // upstream force escalating through the tier); per-handle delivery
        // is superseded by the force the client will be served next poll.
        const auto& v = ev.u.inv;
        if (v.peer_host != 0) {
          drop_agg_client(ev.host, v.peer_host);
          agg_forced.insert({ev.host, v.peer_host});
          drop_inv_pending_for(v.peer_host);
        }
        break;
      }
      case EventType::kAggFanout: {
        const auto& v = ev.u.inv;
        agg_clients[ev.host].insert(v.peer_host);
        if (!agg_pending.insert({ev.host, v.peer_host, v.fsid, v.ino})
                 .second) {
          std::snprintf(msg, sizeof(msg),
                        "aggregator %u fanned out file %s to host %u twice "
                        "without a delivery in between (coalescing broken; "
                        "duplicate invalidation)",
                        ev.host, FhString(v.fsid, v.ino).c_str(), v.peer_host);
          report(i, ev.time, InvariantKind::kAggTier);
        }
        break;
      }
      case EventType::kAggIngest: {
        const auto& v = ev.u.inv;
        // The aggregator absorbed its buffered copy of the upstream entry.
        clear_inv_pending(ev.host, v.fsid, v.ino);
        for (HostId client : agg_clients[ev.host]) {
          if (agg_forced.count({ev.host, client}) != 0) continue;
          if (agg_pending.count({ev.host, client, v.fsid, v.ino}) != 0) {
            continue;
          }
          std::snprintf(msg, sizeof(msg),
                        "aggregator %u ingested file %s without fanning it "
                        "out to registered host %u (invalidation lost "
                        "crossing the tier)",
                        ev.host, FhString(v.fsid, v.ino).c_str(), client);
          report(i, ev.time, InvariantKind::kAggTier);
        }
        break;
      }
      case EventType::kAggDeliver: {
        const auto& v = ev.u.inv;
        const AggPendingKey key{ev.host, v.peer_host, v.fsid, v.ino};
        if (agg_pending.erase(key) == 0) {
          std::snprintf(msg, sizeof(msg),
                        "aggregator %u delivered file %s to host %u without "
                        "a pending fan-out (duplicate or fabricated "
                        "invalidation)",
                        ev.host, FhString(v.fsid, v.ino).c_str(), v.peer_host);
          report(i, ev.time, InvariantKind::kAggTier);
        }
        break;
      }
      case EventType::kAggServe: {
        agg_clients[ev.host].insert(ev.u.inv.peer_host);
        break;
      }
      case EventType::kCacheMiss:
        cache[{ev.host, ev.u.cache.fsid, ev.u.cache.ino}].validated = idx;
        break;
      case EventType::kCacheWriteBack: {
        const auto& c = ev.u.cache;
        auto it = obligations.find({ev.host, c.fsid, c.ino});
        if (it != obligations.end() && c.offset == it->second.wanted_offset) {
          it->second.written = true;
        }
        break;
      }
      case EventType::kCacheHit: {
        const auto& c = ev.u.cache;
        const std::string& op = buffer.LabelName(c.label);
        CacheState& state = cache[{ev.host, c.fsid, c.ino}];
        if (op == "WRITE") {
          // An absorbed write refreshes the entry with the client's own data.
          state.validated = idx;
          break;
        }
        if (!IsReadClassOp(op)) break;
        std::int64_t invalidated = state.invalidated;
        auto fit = force_inv.find(ev.host);
        if (fit != force_inv.end()) {
          invalidated = std::max(invalidated, fit->second);
        }
        if (invalidated > state.validated) {
          std::snprintf(msg, sizeof(msg),
                        "host %u served %s for file %s from cache after a "
                        "covering invalidation without a refresh",
                        ev.host, op.c_str(), FhString(c.fsid, c.ino).c_str());
          report(i, ev.time, InvariantKind::kStaleRead);
        }
        break;
      }
      case EventType::kRpcExec: {
        const auto& r = ev.u.rpc;
        const std::uint64_t pp =
            (static_cast<std::uint64_t>(r.prog) << 32) | r.proc;
        if (config_.non_idempotent.count(pp) == 0) break;
        const ExecKey key{ev.host, ev.port, r.peer_host, r.peer_port, r.xid};
        if (!executed.insert(key).second) {
          std::snprintf(msg, sizeof(msg),
                        "node %u:%u re-executed non-idempotent %s (prog %u "
                        "proc %u) for caller %u:%u xid=%u",
                        ev.host, ev.port,
                        buffer.LabelName(r.label).c_str(), r.prog, r.proc,
                        r.peer_host, r.peer_port, r.xid);
          report(i, ev.time, InvariantKind::kDrcReexec);
        }
        break;
      }
      case EventType::kNodeCrash: {
        // A crashed server forgets its grants (clients are told during
        // recovery); a crashed client loses its cache validity, its recall
        // obligations, and its duplicate-request cache.
        for (auto& [file, fh] : deleg) {
          if (fh.granting_host == ev.host) fh.holders.clear();
        }
        force_inv[ev.host] = idx;
        for (auto it = obligations.begin(); it != obligations.end();) {
          it = std::get<0>(it->first) == ev.host ? obligations.erase(it)
                                                 : std::next(it);
        }
        for (auto it = executed.begin(); it != executed.end();) {
          it = std::get<0>(*it) == ev.host ? executed.erase(it)
                                           : std::next(it);
        }
        // A crashed aggregator forgets its downstream registrations; its
        // clients re-bootstrap (force) when it comes back.
        if (auto ait = agg_clients.find(ev.host); ait != agg_clients.end()) {
          for (HostId client : ait->second) drop_agg_client(ev.host, client);
          agg_clients.erase(ait);
        }
        // A crashed host's owed invalidations die with its buffers; the
        // recovery force re-bootstraps the stream.
        drop_inv_pending_for(ev.host);
        break;
      }
      case EventType::kPolicyMigrate: {
        const auto& p = ev.u.policy;
        if ((p.flags & kPolicyFlagServerSide) != 0) break;
        auto it = inv_pending.find({ev.host, p.fsid, p.ino});
        if (it != inv_pending.end() && it->second > 0) {
          std::snprintf(msg, sizeof(msg),
                        "host %u migrated file %s (mode %u -> %u) with %u "
                        "buffered invalidation(s) undelivered — the switch "
                        "lost a mutation (drain-before-switch violated)",
                        ev.host, FhString(p.fsid, p.ino).c_str(), p.from, p.to,
                        it->second);
          report(i, ev.time, InvariantKind::kPolicyMigration);
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  char head[96];
  for (const auto& v : violations) {
    std::snprintf(head, sizeof(head), "[%.6fs #%zu %s] ", ToSeconds(v.time),
                  v.event_index, InvariantKindName(v.kind));
    out += head;
    out += v.detail;
    out += '\n';
  }
  return out;
}

}  // namespace gvfs::trace
