#include "trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "common/logging.h"

namespace gvfs::trace {
namespace {

std::string HostLabel(const std::vector<std::string>& names, HostId host) {
  if (host < names.size() && !names[host].empty()) return names[host];
  char buf[32];
  std::snprintf(buf, sizeof(buf), "host %u", host);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome ts fields are microseconds.
double ToMicros(SimTime t) { return static_cast<double>(t) / 1000.0; }

std::string FhString(std::uint64_t fsid, std::uint64_t ino) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64, fsid, ino);
  return buf;
}

/// Args JSON ({"k":v,...}) describing an event's payload for instant events.
std::string PayloadArgs(const TraceBuffer& buf, const Event& ev) {
  char out[256];
  switch (ev.type) {
    case EventType::kNetDrop:
      std::snprintf(out, sizeof(out), "{\"dst_host\":%u,\"wire_size\":%u}",
                    ev.u.net.dst_host, ev.u.net.wire_size);
      return out;
    case EventType::kCacheHit:
    case EventType::kCacheMiss:
    case EventType::kCacheWriteBack: {
      const auto& c = ev.u.cache;
      if (c.offset == kNoOffset) {
        std::snprintf(out, sizeof(out), "{\"fh\":\"%s\",\"op\":\"%s\"}",
                      FhString(c.fsid, c.ino).c_str(),
                      JsonEscape(buf.LabelName(c.label)).c_str());
      } else {
        std::snprintf(out, sizeof(out),
                      "{\"fh\":\"%s\",\"op\":\"%s\",\"offset\":%" PRIu64 "}",
                      FhString(c.fsid, c.ino).c_str(),
                      JsonEscape(buf.LabelName(c.label)).c_str(), c.offset);
      }
      return out;
    }
    case EventType::kDelegGrant:
    case EventType::kDelegRecall:
    case EventType::kDelegRelease:
    case EventType::kDelegExpiry: {
      const auto& d = ev.u.deleg;
      std::snprintf(out, sizeof(out),
                    "{\"fh\":\"%s\",\"type\":%u,\"peer_host\":%u,\"flags\":%u,"
                    "\"wanted_offset\":%" PRIu64 "}",
                    FhString(d.fsid, d.ino).c_str(), d.deleg_type, d.peer_host,
                    d.flags,
                    (d.flags & kDelegFlagHasWanted) != 0 ? d.wanted_offset : 0);
      return out;
    }
    case EventType::kInvAppend:
    case EventType::kInvPoll:
    case EventType::kInvWrap:
    case EventType::kInvForce:
    case EventType::kAggFanout:
    case EventType::kAggIngest:
    case EventType::kAggDeliver:
    case EventType::kAggServe: {
      const auto& i = ev.u.inv;
      std::snprintf(out, sizeof(out),
                    "{\"fh\":\"%s\",\"timestamp\":%" PRIu64
                    ",\"count\":%u,\"peer_host\":%u}",
                    FhString(i.fsid, i.ino).c_str(), i.timestamp, i.count,
                    i.peer_host);
      return out;
    }
    case EventType::kPolicyDecide:
    case EventType::kPolicyMigrate: {
      const auto& p = ev.u.policy;
      std::snprintf(out, sizeof(out),
                    "{\"fh\":\"%s\",\"from\":%u,\"to\":%u,\"flags\":%u}",
                    FhString(p.fsid, p.ino).c_str(), p.from, p.to, p.flags);
      return out;
    }
    case EventType::kAnomaly: {
      const auto& a = ev.u.anomaly;
      std::snprintf(out, sizeof(out),
                    "{\"fh\":\"%s\",\"kind\":%u,\"value\":%.6g,"
                    "\"threshold\":%.6g}",
                    FhString(a.fsid, a.ino).c_str(), a.kind, a.value,
                    a.threshold);
      return out;
    }
    default:
      return "{}";
  }
}

}  // namespace

void ChromeTraceWriter::Add(const TraceBuffer& buffer,
                            const ChromeTraceOptions& options) {
  char line[640];

  // Track which (pid, tid) pairs appear so we can emit name metadata.
  std::set<HostId> hosts_seen;

  // Open RPC spans keyed by (host, port, xid).
  struct OpenSpan {
    SimTime start = 0;
    std::uint32_t retransmits = 0;
    Event send;  // the kRpcSend event (payload reused for the span)
  };
  std::map<std::tuple<HostId, std::uint32_t, std::uint32_t>, OpenSpan> open;

  // Open server handler executions (kRpcExec .. kRpcHandlerDone), keyed by
  // (server host, server port, caller host, caller port, xid).
  struct OpenExec {
    SimTime start = 0;
    Event exec;  // the kRpcExec event
  };
  std::map<std::tuple<HostId, std::uint32_t, HostId, std::uint32_t,
                      std::uint32_t>,
           OpenExec>
      execs;

  // Procedure labels by caller identity, so server-side slices (whose
  // events carry no label) can be named after the call they serve.
  std::map<std::tuple<HostId, std::uint32_t, std::uint32_t>, std::string>
      call_labels;

  auto pid_of = [&](HostId host) { return options.pid_offset + host; };

  // Flow-event binding id: the span id, salted with the pid offset so calls
  // from separately-merged buffers never share an arrow.
  auto flow_id = [&](std::uint64_t span_id) {
    return span_id ^ (static_cast<std::uint64_t>(options.pid_offset) << 52);
  };

  auto span_name = [&](const RpcPayload& rpc) {
    std::string name = buffer.LabelName(rpc.label);
    if (name.empty()) {
      char tmp[48];
      std::snprintf(tmp, sizeof(tmp), "proc %u/%u", rpc.prog, rpc.proc);
      name = tmp;
    }
    return name;
  };

  auto emit_span = [&](const OpenSpan& span, SimTime end, bool timed_out) {
    const auto& rpc = span.send.u.rpc;
    std::string name = span_name(rpc);
    // Flow start: binds to this client-side slice (same pid/tid/ts), with
    // the matching finish bound to the server handler slice — Perfetto
    // renders the cross-process arrow.
    if (rpc.span_id != 0) {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"rpc_flow\",\"ph\":\"s\","
                    "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                    JsonEscape(name).c_str(), flow_id(rpc.span_id),
                    ToMicros(span.start), pid_of(span.send.host),
                    span.send.port);
      events_.push_back(line);
    }
    if (timed_out) name += " (timeout)";
    std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"rpc\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"xid\":%u,"
        "\"prog\":%u,\"proc\":%u,\"peer_host\":%u,\"retransmits\":%u,"
        "\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
        ",\"parent_span_id\":%" PRIu64 "}}",
        JsonEscape(name).c_str(), ToMicros(span.start),
        ToMicros(end - span.start), pid_of(span.send.host), span.send.port,
        rpc.xid, rpc.prog, rpc.proc, rpc.peer_host, span.retransmits,
        rpc.trace_id, rpc.span_id, rpc.parent_span_id);
    events_.push_back(line);
  };

  auto emit_exec = [&](const OpenExec& exec, SimTime end) {
    const auto& rpc = exec.exec.u.rpc;
    // Name the handler after the caller's procedure label when the matching
    // send is in the buffer; otherwise fall back to prog/proc.
    std::string name;
    auto lbl = call_labels.find({rpc.peer_host, rpc.peer_port, rpc.xid});
    if (lbl != call_labels.end() && !lbl->second.empty()) {
      name = lbl->second;
    } else {
      char tmp[48];
      std::snprintf(tmp, sizeof(tmp), "proc %u/%u", rpc.prog, rpc.proc);
      name = tmp;
    }
    std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"rpc_handler\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"xid\":%u,"
        "\"caller_host\":%u,\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
        ",\"parent_span_id\":%" PRIu64 "}}",
        JsonEscape(name).c_str(), ToMicros(exec.start),
        ToMicros(end - exec.start), pid_of(exec.exec.host), exec.exec.port,
        rpc.xid, rpc.peer_host, rpc.trace_id, rpc.span_id,
        rpc.parent_span_id);
    events_.push_back(line);
    // Flow finish (bp:"e" = bind to enclosing slice): lands on the handler
    // slice just emitted.
    if (rpc.span_id != 0) {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"%s\",\"cat\":\"rpc_flow\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"id\":%" PRIu64
                    ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                    JsonEscape(name).c_str(), flow_id(rpc.span_id),
                    ToMicros(exec.start), pid_of(exec.exec.host),
                    exec.exec.port);
      events_.push_back(line);
    }
  };

  // A truncated ring means every derived view below describes a partial
  // run: say so loudly in the log and inside the trace itself.
  if (buffer.dropped() > 0) {
    GVFS_WARN("trace: ring buffer overflowed; %llu oldest events were "
              "dropped — exported trace covers a truncated run",
              static_cast<unsigned long long>(buffer.dropped()));
    const SimTime first = buffer.size() > 0 ? buffer.at(0).time : 0;
    const HostId first_host = buffer.size() > 0 ? buffer.at(0).host : 0;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"TRACE_TRUNCATED\",\"cat\":\"warning\","
                  "\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":%u,\"tid\":0,"
                  "\"args\":{\"dropped_events\":%" PRIu64 "}}",
                  ToMicros(first), pid_of(first_host), buffer.dropped());
    events_.push_back(line);
    hosts_seen.insert(first_host);
  }

  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Event& ev = buffer.at(i);
    hosts_seen.insert(ev.host);
    switch (ev.type) {
      case EventType::kRpcSend: {
        OpenSpan span;
        span.start = ev.time;
        span.send = ev;
        open[{ev.host, ev.port, ev.u.rpc.xid}] = span;
        call_labels[{ev.host, ev.port, ev.u.rpc.xid}] =
            buffer.LabelName(ev.u.rpc.label);
        continue;
      }
      case EventType::kRpcRetransmit: {
        auto it = open.find({ev.host, ev.port, ev.u.rpc.xid});
        if (it != open.end()) ++it->second.retransmits;
        continue;
      }
      case EventType::kRpcReply:
      case EventType::kRpcTimeout: {
        auto it = open.find({ev.host, ev.port, ev.u.rpc.xid});
        if (it == open.end()) continue;
        emit_span(it->second, ev.time, ev.type == EventType::kRpcTimeout);
        open.erase(it);
        continue;
      }
      case EventType::kRpcExec: {
        OpenExec exec;
        exec.start = ev.time;
        exec.exec = ev;
        execs[{ev.host, ev.port, ev.u.rpc.peer_host, ev.u.rpc.peer_port,
               ev.u.rpc.xid}] = exec;
        continue;
      }
      case EventType::kRpcHandlerDone: {
        auto it = execs.find({ev.host, ev.port, ev.u.rpc.peer_host,
                              ev.u.rpc.peer_port, ev.u.rpc.xid});
        if (it == execs.end()) continue;
        emit_exec(it->second, ev.time);
        execs.erase(it);
        continue;
      }
      default:
        break;
    }
    // Everything else: a thread-scoped instant event.
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":%s}",
                  EventTypeName(ev.type), ToMicros(ev.time), pid_of(ev.host),
                  ev.port, PayloadArgs(buffer, ev).c_str());
    events_.push_back(line);
  }

  // Calls still in flight when the trace ended: render them as zero-length
  // spans so the send is not silently lost. Same for handlers still running.
  for (const auto& [key, span] : open) {
    emit_span(span, span.start, false);
  }
  for (const auto& [key, exec] : execs) {
    emit_exec(exec, exec.start);
  }

  for (HostId host : hosts_seen) {
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s%s\"}}",
                  pid_of(host), JsonEscape(options.process_prefix).c_str(),
                  JsonEscape(HostLabel(options.host_names, host)).c_str());
    events_.push_back(line);
  }
}

void ChromeTraceWriter::Write(std::ostream& out) const {
  out << "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out << events_[i];
    if (i + 1 < events_.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
}

bool ChromeTraceWriter::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    GVFS_WARN("trace: cannot open %s for writing", path.c_str());
    return false;
  }
  Write(out);
  return out.good();
}

void WriteTimeline(const TraceBuffer& buffer, std::ostream& out,
                   const std::vector<std::string>& host_names) {
  char line[384];
  if (buffer.dropped() > 0) {
    std::snprintf(line, sizeof(line),
                  "WARNING: trace buffer overflowed; %" PRIu64
                  " oldest events dropped — timeline below is truncated\n",
                  buffer.dropped());
    out << line;
    GVFS_WARN("trace: ring buffer overflowed; %llu oldest events were "
              "dropped — timeline covers a truncated run",
              static_cast<unsigned long long>(buffer.dropped()));
  }
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Event& ev = buffer.at(i);
    std::snprintf(line, sizeof(line), "[%12.6f] %-8s %-15s",
                  ToSeconds(ev.time), HostLabel(host_names, ev.host).c_str(),
                  EventTypeName(ev.type));
    out << line;
    switch (ev.type) {
      case EventType::kRpcSend:
      case EventType::kRpcRetransmit:
      case EventType::kRpcReply:
      case EventType::kRpcTimeout:
      case EventType::kRpcExec:
      case EventType::kRpcHandlerDone:
      case EventType::kRpcDrcHit: {
        const auto& r = ev.u.rpc;
        std::snprintf(line, sizeof(line), " %s xid=%u peer=%s:%u",
                      buffer.LabelName(r.label).c_str(), r.xid,
                      HostLabel(host_names, r.peer_host).c_str(), r.peer_port);
        out << line;
        break;
      }
      case EventType::kNetDrop:
        std::snprintf(line, sizeof(line), " -> %s (%u bytes)",
                      HostLabel(host_names, ev.u.net.dst_host).c_str(),
                      ev.u.net.wire_size);
        out << line;
        break;
      case EventType::kCacheHit:
      case EventType::kCacheMiss:
      case EventType::kCacheWriteBack: {
        const auto& c = ev.u.cache;
        std::snprintf(line, sizeof(line), " fh=%s %s",
                      FhString(c.fsid, c.ino).c_str(),
                      buffer.LabelName(c.label).c_str());
        out << line;
        if (c.offset != kNoOffset) {
          std::snprintf(line, sizeof(line), " offset=%" PRIu64, c.offset);
          out << line;
        }
        break;
      }
      case EventType::kDelegGrant:
      case EventType::kDelegRecall:
      case EventType::kDelegRelease:
      case EventType::kDelegExpiry: {
        const auto& d = ev.u.deleg;
        std::snprintf(line, sizeof(line), " fh=%s type=%u peer=%s%s",
                      FhString(d.fsid, d.ino).c_str(), d.deleg_type,
                      HostLabel(host_names, d.peer_host).c_str(),
                      (d.flags & kDelegFlagServerSide) != 0 ? " (server)" : "");
        out << line;
        if ((d.flags & kDelegFlagHasWanted) != 0) {
          std::snprintf(line, sizeof(line), " wanted=%" PRIu64 "%s",
                        d.wanted_offset,
                        (d.flags & kDelegFlagWantedDirty) != 0 ? " dirty" : "");
          out << line;
        }
        break;
      }
      case EventType::kInvAppend:
      case EventType::kInvPoll:
      case EventType::kInvWrap:
      case EventType::kInvForce:
      case EventType::kAggFanout:
      case EventType::kAggIngest:
      case EventType::kAggDeliver:
      case EventType::kAggServe: {
        const auto& v = ev.u.inv;
        std::snprintf(line, sizeof(line),
                      " fh=%s ts=%" PRIu64 " count=%u peer=%s",
                      FhString(v.fsid, v.ino).c_str(), v.timestamp, v.count,
                      HostLabel(host_names, v.peer_host).c_str());
        out << line;
        break;
      }
      case EventType::kPolicyDecide:
      case EventType::kPolicyMigrate: {
        const auto& p = ev.u.policy;
        std::snprintf(line, sizeof(line), " fh=%s from=%u to=%u%s%s",
                      FhString(p.fsid, p.ino).c_str(), p.from, p.to,
                      (p.flags & kPolicyFlagServerSide) != 0 ? " (server)" : "",
                      (p.flags & kPolicyFlagFrozen) != 0 ? " frozen" : "");
        out << line;
        break;
      }
      case EventType::kAnomaly: {
        const auto& a = ev.u.anomaly;
        std::snprintf(line, sizeof(line),
                      " fh=%s kind=%u value=%.6g threshold=%.6g",
                      FhString(a.fsid, a.ino).c_str(), a.kind, a.value,
                      a.threshold);
        out << line;
        break;
      }
      case EventType::kNodeCrash:
      case EventType::kNodeRecover:
        break;
    }
    out << '\n';
  }
}

}  // namespace gvfs::trace
