// XDR (RFC 4506) subset used by the simulated ONC-RPC/NFS stack.
//
// All RPC argument/result structs serialize through these encoders; the
// resulting byte counts feed the network simulator's bandwidth model, so
// message sizes on the simulated wire match what a real XDR stack would send.
//
// Both halves are built for the per-message hot path:
//   - Encoder borrows its buffer from a process-wide arena (detail::Arena)
//     and writes with bulk memcpy instead of per-byte push_back. Take()
//     transfers the buffer to the caller (it becomes the packet payload);
//     whoever ends up owning it returns it with detail::ArenaRelease so the
//     capacity is recycled into the next message.
//   - Decoder is zero-copy: GetOpaque/GetFixedOpaque/GetString return views
//     (View / StrView) into the message buffer rather than fresh allocations.
//     Callers that outlive the buffer take ownership explicitly via .Copy().
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/expected.h"
#include "common/types.h"

namespace gvfs::xdr {

namespace detail {

/// Process-wide recycling pool for encode buffers. The simulator is
/// single-threaded, and every message buffer follows the same lifecycle
/// (Encoder -> packet payload -> decoded body -> dropped), so a small LIFO
/// stack of retired vectors keeps their capacity hot across messages.
inline std::vector<Bytes>& ArenaPool() {
  static std::vector<Bytes> pool;
  return pool;
}

inline Bytes ArenaAcquire() {
  std::vector<Bytes>& pool = ArenaPool();
  if (pool.empty()) return Bytes();
  Bytes buf = std::move(pool.back());
  pool.pop_back();
  // Deliberately NOT cleared: the Encoder tracks its own write cursor, and
  // keeping the old size avoids re-zeroing bytes the next message will
  // overwrite anyway.
  return buf;
}

inline void ArenaRelease(Bytes&& buf) {
  constexpr std::size_t kMaxPooled = 256;
  std::vector<Bytes>& pool = ArenaPool();
  if (buf.capacity() == 0 || pool.size() >= kMaxPooled) return;
  pool.push_back(std::move(buf));
}

}  // namespace detail

/// A borrowed window over decoded opaque bytes. Valid only while the decoded
/// message buffer lives; call Copy() to take ownership.
struct View {
  const std::uint8_t* ptr = nullptr;
  std::size_t len = 0;

  std::size_t size() const { return len; }
  bool empty() const { return len == 0; }
  const std::uint8_t* data() const { return ptr; }
  const std::uint8_t* begin() const { return ptr; }
  const std::uint8_t* end() const { return ptr + len; }
  std::uint8_t operator[](std::size_t i) const { return ptr[i]; }

  ByteView span() const { return ByteView(ptr, len); }
  operator ByteView() const { return span(); }  // NOLINT: view adaptor

  /// Explicit ownership escape hatch: materializes the bytes.
  Bytes Copy() const { return Bytes(ptr, ptr + len); }
};

/// A borrowed window over a decoded string. Copy() materializes it.
struct StrView {
  std::string_view sv;

  std::size_t size() const { return sv.size(); }
  bool empty() const { return sv.empty(); }
  operator std::string_view() const { return sv; }  // NOLINT: view adaptor

  /// Explicit ownership escape hatch: materializes the string.
  std::string Copy() const { return std::string(sv); }
};

inline bool operator==(const StrView& a, std::string_view b) { return a.sv == b; }
inline bool operator==(std::string_view a, const StrView& b) { return a == b.sv; }

/// Appends XDR-encoded primitives to an arena-recycled byte buffer.
///
/// The buffer is kept sized to its full capacity while encoding; a write
/// cursor (pos_) tracks the logical message length. This turns each Put into
/// a bounds check plus a store — one vector resize per capacity doubling
/// instead of one per field — and the buffer is trimmed back to pos_ only
/// when it escapes through bytes()/Take().
class Encoder {
 public:
  Encoder() : buf_(detail::ArenaAcquire()) {
    // A recycled buffer keeps the size of the message it last carried; Grow
    // only pays (one) value-initializing resize for bytes beyond that
    // high-water mark, so steady-state messages never memset at all.
    if (buf_.capacity() == 0) buf_.resize(kInitialCapacity);
  }
  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;
  ~Encoder() { detail::ArenaRelease(std::move(buf_)); }

  void PutU32(std::uint32_t v) {
    std::uint8_t* p = Grow(4);
    const std::uint32_t be = HostToBe32(v);
    std::memcpy(p, &be, 4);
  }

  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }

  void PutU64(std::uint64_t v) {
    std::uint8_t* p = Grow(8);
    const std::uint64_t be = HostToBe64(v);
    std::memcpy(p, &be, 8);
  }

  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  void PutBool(bool v) { PutU32(v ? 1 : 0); }

  /// Variable-length opaque: length prefix + data + pad to 4-byte boundary.
  void PutOpaque(const std::uint8_t* data, std::size_t len) {
    PutU32(static_cast<std::uint32_t>(len));
    PutFixedOpaque(data, len);
  }

  void PutOpaque(const Bytes& data) { PutOpaque(data.data(), data.size()); }
  void PutOpaque(ByteView data) { PutOpaque(data.data(), data.size()); }

  /// Fixed-length opaque: data + pad, no length prefix.
  void PutFixedOpaque(const std::uint8_t* data, std::size_t len) {
    const std::size_t padded = (len + 3) & ~std::size_t{3};
    std::uint8_t* p = Grow(padded);
    std::memcpy(p, data, len);
    std::memset(p + len, 0, padded - len);
  }

  void PutString(std::string_view s) {
    PutOpaque(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  /// Opens an n-byte raw write window that the caller must fill completely
  /// (e.g. with StoreBe32/StoreBe64). Fixed-layout writers — RPC headers,
  /// attribute blocks — fuse one capacity check over the whole window where
  /// per-field Puts would each check and bump the cursor. The pointer is
  /// valid until the next mutating call.
  std::uint8_t* Reserve(std::size_t n) { return Grow(n); }

  static void StoreBe32(std::uint8_t* p, std::uint32_t v) {
    const std::uint32_t be = HostToBe32(v);
    std::memcpy(p, &be, 4);
  }

  static void StoreBe64(std::uint8_t* p, std::uint64_t v) {
    const std::uint64_t be = HostToBe64(v);
    std::memcpy(p, &be, 8);
  }

  const Bytes& bytes() { return Trim(); }

  /// Transfers the buffer out (it becomes, e.g., a packet payload). The
  /// eventual owner should hand it back via detail::ArenaRelease.
  Bytes Take() {
    Trim();
    pos_ = 0;
    return std::move(buf_);
  }

  std::size_t size() const { return pos_; }

  /// Drops accumulated bytes but keeps the capacity, for encoder reuse.
  void Reset() { pos_ = 0; }

 private:
  static constexpr std::size_t kInitialCapacity = 256;

  static std::uint32_t HostToBe32(std::uint32_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap32(v);
#endif
  }

  static std::uint64_t HostToBe64(std::uint64_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap64(v);
#endif
  }

  std::uint8_t* Grow(std::size_t n) {
    if (pos_ + n > buf_.size()) {
      buf_.resize(std::max(pos_ + n, buf_.size() * 2));
    }
    std::uint8_t* p = buf_.data() + pos_;
    pos_ += n;
    return p;
  }

  /// Shrinks the buffer to the logical message length (no reallocation).
  Bytes& Trim() {
    buf_.resize(pos_);
    return buf_;
  }

  Bytes buf_;
  std::size_t pos_ = 0;
};

enum class DecodeError { kTruncated, kBadValue };

/// Reads XDR-encoded primitives from a byte buffer. Never reads out of
/// bounds; a short buffer yields DecodeError::kTruncated. Opaque and string
/// reads return views into the buffer: the buffer must outlive them.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit Decoder(ByteView buf) : data_(buf.data()), size_(buf.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  Expected<std::uint32_t, DecodeError> GetU32() {
    if (size_ - pos_ < 4) return Unexpected(DecodeError::kTruncated);
    std::uint32_t be;
    std::memcpy(&be, data_ + pos_, 4);
    pos_ += 4;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return be;
#else
    return __builtin_bswap32(be);
#endif
  }

  Expected<std::int32_t, DecodeError> GetI32() {
    auto v = GetU32();
    if (!v) return Unexpected(v.error());
    return static_cast<std::int32_t>(*v);
  }

  Expected<std::uint64_t, DecodeError> GetU64() {
    if (size_ - pos_ < 8) return Unexpected(DecodeError::kTruncated);
    std::uint64_t be;
    std::memcpy(&be, data_ + pos_, 8);
    pos_ += 8;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return be;
#else
    return __builtin_bswap64(be);
#endif
  }

  Expected<std::int64_t, DecodeError> GetI64() {
    auto v = GetU64();
    if (!v) return Unexpected(v.error());
    return static_cast<std::int64_t>(*v);
  }

  Expected<bool, DecodeError> GetBool() {
    auto v = GetU32();
    if (!v) return Unexpected(v.error());
    if (*v > 1) return Unexpected(DecodeError::kBadValue);
    return *v == 1;
  }

  Expected<View, DecodeError> GetOpaque() {
    auto len = GetU32();
    if (!len) return Unexpected(len.error());
    return GetFixedOpaque(*len);
  }

  Expected<View, DecodeError> GetFixedOpaque(std::size_t len) {
    const std::size_t padded = (len + 3) & ~std::size_t{3};
    if (size_ - pos_ < padded || padded < len) {
      return Unexpected(DecodeError::kTruncated);
    }
    View out{data_ + pos_, len};
    pos_ += padded;
    return out;
  }

  Expected<StrView, DecodeError> GetString() {
    auto raw = GetOpaque();
    if (!raw) return Unexpected(raw.error());
    return StrView{
        std::string_view(reinterpret_cast<const char*>(raw->ptr), raw->len)};
  }

  /// Raw read window: returns a pointer to the next n bytes and advances, or
  /// nullptr if the buffer is short. The fixed-layout mirror of
  /// Encoder::Reserve — one bounds check covers every field read through
  /// LoadBe32/LoadBe64.
  const std::uint8_t* GetRaw(std::size_t n) {
    if (size_ - pos_ < n) return nullptr;
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  static std::uint32_t LoadBe32(const std::uint8_t* p) {
    std::uint32_t be;
    std::memcpy(&be, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return be;
#else
    return __builtin_bswap32(be);
#endif
  }

  static std::uint64_t LoadBe64(const std::uint8_t* p) {
    std::uint64_t be;
    std::memcpy(&be, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return be;
#else
    return __builtin_bswap64(be);
#endif
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace gvfs::xdr
