// XDR (RFC 4506) subset used by the simulated ONC-RPC/NFS stack.
//
// All RPC argument/result structs serialize through these encoders; the
// resulting byte counts feed the network simulator's bandwidth model, so
// message sizes on the simulated wire match what a real XDR stack would send.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/types.h"

namespace gvfs::xdr {

/// Appends XDR-encoded primitives to a byte buffer.
class Encoder {
 public:
  void PutU32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }

  void PutU64(std::uint64_t v) {
    PutU32(static_cast<std::uint32_t>(v >> 32));
    PutU32(static_cast<std::uint32_t>(v));
  }

  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  void PutBool(bool v) { PutU32(v ? 1 : 0); }

  /// Variable-length opaque: length prefix + data + pad to 4-byte boundary.
  void PutOpaque(const std::uint8_t* data, std::size_t len) {
    PutU32(static_cast<std::uint32_t>(len));
    buf_.insert(buf_.end(), data, data + len);
    Pad(len);
  }

  void PutOpaque(const Bytes& data) { PutOpaque(data.data(), data.size()); }

  /// Fixed-length opaque: data + pad, no length prefix.
  void PutFixedOpaque(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
    Pad(len);
  }

  void PutString(const std::string& s) {
    PutOpaque(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void Pad(std::size_t len) {
    while (len % 4 != 0) {
      buf_.push_back(0);
      ++len;
    }
  }

  Bytes buf_;
};

enum class DecodeError { kTruncated, kBadValue };

/// Reads XDR-encoded primitives from a byte buffer. Never reads out of
/// bounds; a short buffer yields DecodeError::kTruncated.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  Expected<std::uint32_t, DecodeError> GetU32() {
    if (size_ - pos_ < 4) return Unexpected(DecodeError::kTruncated);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Expected<std::int32_t, DecodeError> GetI32() {
    auto v = GetU32();
    if (!v) return Unexpected(v.error());
    return static_cast<std::int32_t>(*v);
  }

  Expected<std::uint64_t, DecodeError> GetU64() {
    auto hi = GetU32();
    if (!hi) return Unexpected(hi.error());
    auto lo = GetU32();
    if (!lo) return Unexpected(lo.error());
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }

  Expected<std::int64_t, DecodeError> GetI64() {
    auto v = GetU64();
    if (!v) return Unexpected(v.error());
    return static_cast<std::int64_t>(*v);
  }

  Expected<bool, DecodeError> GetBool() {
    auto v = GetU32();
    if (!v) return Unexpected(v.error());
    if (*v > 1) return Unexpected(DecodeError::kBadValue);
    return *v == 1;
  }

  Expected<Bytes, DecodeError> GetOpaque() {
    auto len = GetU32();
    if (!len) return Unexpected(len.error());
    return GetFixedOpaque(*len);
  }

  Expected<Bytes, DecodeError> GetFixedOpaque(std::size_t len) {
    const std::size_t padded = (len + 3) & ~std::size_t{3};
    if (size_ - pos_ < padded) return Unexpected(DecodeError::kTruncated);
    Bytes out(data_ + pos_, data_ + pos_ + len);
    pos_ += padded;
    return out;
  }

  Expected<std::string, DecodeError> GetString() {
    auto raw = GetOpaque();
    if (!raw) return Unexpected(raw.error());
    return std::string(raw->begin(), raw->end());
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace gvfs::xdr
