// Synchronization primitives for simulated processes: sleeps, one-shot
// futures with timeouts (RPC reply slots), broadcast conditions (grace
// periods, completion barriers), and a FIFO mutex.
//
// All resumptions are funneled through the Scheduler rather than resumed
// inline, which keeps notification order FIFO-deterministic and avoids
// reentrancy into the notifier's frame.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::sim {

/// co_await Sleep(sched, d) — suspends the current process for d simulated
/// time.
class Sleep {
 public:
  Sleep(Scheduler& sched, Duration d) : sched_(sched), duration_(d) {}
  bool await_ready() const noexcept { return duration_ <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    sched_.After(duration_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Scheduler& sched_;
  Duration duration_;
};

/// A single-use future. One producer calls Set(); one consumer awaits Wait()
/// or WaitUntil(deadline). Scheduled timeout events hold the shared state, so
/// the OneShot object itself may be destroyed before a stale timeout fires.
template <typename T>
class OneShot {
 public:
  /// Empty handle: assignable placeholder (e.g. a map slot). Using an empty
  /// OneShot is undefined; assign a real one first.
  OneShot() = default;

  explicit OneShot(Scheduler& sched)
      : state_(std::make_shared<State>(State{&sched, {}, {}, 0, false, {}})) {}

  /// Delivers the value. Resumes the waiter (via the scheduler) if present.
  void Set(T value) {
    State& s = *state_;
    if (s.value.has_value()) return;  // first value wins
    s.value = std::move(value);
    if (s.waiter) {
      auto h = std::exchange(s.waiter, {});
      ++s.generation;  // invalidate a timeout already past cancellation
      // Pull the pending timeout out of the queue entirely: its closure (and
      // the shared State it pins) is destroyed now rather than at deadline.
      s.sched->Cancel(std::exchange(s.timeout_event, {}));
      s.sched->At(s.sched->Now(), [h] { h.resume(); });
    }
  }

  bool HasValue() const { return state_->value.has_value(); }

  /// Awaitable: waits (forever) for the value.
  auto Wait() { return WaitUntil(-1); }

  /// Awaitable: waits until `deadline` (absolute sim time; -1 = no deadline).
  /// Resumes with std::optional<T>: nullopt on timeout.
  auto WaitUntil(SimTime deadline) {
    struct Awaiter {
      std::shared_ptr<State> s;
      SimTime deadline;
      bool await_ready() const noexcept { return s->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!s->waiter && "OneShot supports a single waiter");
        s->waiter = h;
        s->timed_out = false;
        if (deadline >= 0) {
          const std::uint64_t gen = ++s->generation;
          std::shared_ptr<State> sp = s;
          s->timeout_event = s->sched->At(deadline, [sp, gen] {
            if (sp->generation != gen || !sp->waiter) return;
            sp->timeout_event = {};
            sp->timed_out = true;
            auto waiter = std::exchange(sp->waiter, {});
            waiter.resume();
          });
        }
      }
      std::optional<T> await_resume() {
        if (s->timed_out) {
          s->timed_out = false;
          return std::nullopt;
        }
        assert(s->value.has_value());
        return std::move(s->value);
      }
    };
    return Awaiter{state_, deadline};
  }

 private:
  struct State {
    Scheduler* sched;
    std::optional<T> value;
    std::coroutine_handle<> waiter;
    std::uint64_t generation;
    bool timed_out;
    EventId timeout_event;
  };

  std::shared_ptr<State> state_;
};

/// Broadcast condition: NotifyAll resumes every process currently waiting.
/// There is no predicate; callers loop (`while (!pred) co_await cond.Wait()`).
class Condition {
 public:
  explicit Condition(Scheduler& sched) : sched_(sched) {}

  auto Wait() {
    struct Awaiter {
      Condition* cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void NotifyAll() {
    std::vector<std::coroutine_handle<>> to_wake;
    to_wake.swap(waiters_);
    for (auto h : to_wake) {
      sched_.At(sched_.Now(), [h] { h.resume(); });
    }
  }

  std::size_t WaiterCount() const { return waiters_.size(); }

 private:
  Scheduler& sched_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// FIFO mutex for simulated processes.
class Mutex {
 public:
  explicit Mutex(Scheduler& sched) : sched_(sched) {}

  auto Lock() {
    struct Awaiter {
      Mutex* m;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (!m->locked_) {
          m->locked_ = true;
          return false;  // acquired without suspending
        }
        m->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    // Lock ownership transfers directly to the next waiter.
    sched_.At(sched_.Now(), [h] { h.resume(); });
  }

  bool locked() const { return locked_; }

 private:
  Scheduler& sched_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Runs every task concurrently (as detached processes) and completes when
/// all have finished.
inline Task<void> WhenAll(Scheduler& sched, std::vector<Task<void>> tasks) {
  auto remaining = std::make_shared<int>(static_cast<int>(tasks.size()));
  auto done = std::make_shared<Condition>(sched);
  for (auto& t : tasks) {
    Spawn([](Task<void> task, std::shared_ptr<int> rem,
             std::shared_ptr<Condition> cond) -> Task<void> {
      co_await std::move(task);
      if (--*rem == 0) cond->NotifyAll();
    }(std::move(t), remaining, done));
  }
  while (*remaining > 0) co_await done->Wait();
}

}  // namespace gvfs::sim
