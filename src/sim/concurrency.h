// Structured-concurrency toolkit for simulated processes: a counting
// Semaphore (sliding RPC windows) and a WaitGroup (join-all for detached
// tasks). Together they express the "N requests in flight, join at the end"
// pattern the GVFS proxies use to pipeline multi-RPC paths (windowed
// write-back, read-ahead, callback multicast) without giving up the FIFO
// determinism of the scheduler: all resumptions are funneled through it,
// exactly like the primitives in sync.h.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::sim {

/// Counting semaphore with FIFO hand-off. `co_await sem.Acquire()` takes a
/// permit (suspending while none are free); `Release()` returns it, waking
/// the longest-waiting acquirer first.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, std::size_t permits)
      : sched_(sched), permits_(permits) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (sem->permits_ > 0) {
          --sem->permits_;
          return false;  // acquired without suspending
        }
        sem->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Release() {
    if (waiters_.empty()) {
      ++permits_;
      return;
    }
    // The permit transfers directly to the next waiter.
    auto h = waiters_.front();
    waiters_.pop_front();
    sched_.At(sched_.Now(), [h] { h.resume(); });
  }

  std::size_t available() const { return permits_; }
  std::size_t WaiterCount() const { return waiters_.size(); }

 private:
  Scheduler& sched_;
  std::size_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Join-all barrier for detached tasks. Spawn() launches a task and tracks
/// it; `co_await wg.Wait()` suspends until every tracked task has finished
/// (and completes immediately when none are outstanding). The WaitGroup must
/// outlive its spawned tasks — awaiting Wait() before destruction guarantees
/// that.
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& sched) : sched_(sched) {}

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;
  ~WaitGroup() { assert(outstanding_ == 0 && "WaitGroup destroyed with live tasks"); }

  void Add(int n = 1) { outstanding_ += n; }

  void Done() {
    assert(outstanding_ > 0);
    if (--outstanding_ == 0 && !waiters_.empty()) {
      std::vector<std::coroutine_handle<>> to_wake;
      to_wake.swap(waiters_);
      for (auto h : to_wake) {
        sched_.At(sched_.Now(), [h] { h.resume(); });
      }
    }
  }

  /// Launches `task` as a detached process counted by this group.
  void Spawn(Task<void> task) {
    Add();
    sim::Spawn([](Task<void> inner, WaitGroup* wg) -> Task<void> {
      co_await std::move(inner);
      // gvfs-lint: allow(use-after-suspend): the WaitGroup outlives its spawned tasks by contract — Wait() joins them all before the owner may destroy it
      wg->Done();
    }(std::move(task), this));
  }

  auto Wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const noexcept { return wg->outstanding_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  int Outstanding() const { return outstanding_; }

 private:
  Scheduler& sched_;
  int outstanding_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace gvfs::sim
