// Discrete-event scheduler: the single-threaded virtual-time core of the
// simulator. Every simulated activity (application processes, RPC transfers,
// cache-consistency pollers, delegation callbacks) is driven by events queued
// here. Ties at the same timestamp run in FIFO order, so runs are fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace gvfs::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Stable pointer to the clock, for components (e.g. MemFs timestamps)
  /// that need to read the current time without holding the scheduler.
  const SimTime* NowPtr() const { return &now_; }

  /// Schedules fn to run at absolute simulated time t (>= Now()).
  void At(SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedules fn to run after duration d.
  void After(Duration d, std::function<void()> fn) { At(now_ + d, std::move(fn)); }

  /// Runs events until the queue drains or max_events is hit.
  /// Returns the number of events processed.
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t processed = 0;
    while (!queue_.empty() && processed < max_events) {
      Step();
      ++processed;
    }
    return processed;
  }

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) Step();
    if (now_ < t) now_ = t;
  }

  bool Idle() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void Step() {
    // Moving out of the priority queue's top is safe: we pop immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace gvfs::sim
