// Discrete-event scheduler: the single-threaded virtual-time core of the
// simulator. Every simulated activity (application processes, RPC transfers,
// cache-consistency pollers, delegation callbacks) is driven by events queued
// here. Ties at the same timestamp run in FIFO order, so runs are fully
// deterministic: execution order is the total order (time, seq), where seq is
// the post sequence number.
//
// Hot-path structure (this is the innermost loop of every benchmark):
//   - a 4-ary implicit min-heap of 24-byte (time, seq, slot) nodes — shallower
//     than a binary heap and far cheaper to sift than a std::priority_queue of
//     closures, since callbacks never move during sifting;
//   - a slab of EventFn slots with a freelist, so callback storage is
//     recycled rather than allocated per event (EventFn itself keeps captures
//     inline; see callback.h);
//   - a FIFO ready queue for events posted at the current timestamp (the
//     overwhelmingly common "resume this coroutine now" case from OneShot,
//     Condition, and Mutex), which bypasses heap sifting entirely. Ordering
//     against same-timestamp heap events is preserved by comparing (time, seq)
//     across both structures before every pop.
//
// Events can be cancelled (Cancel(EventId)): the callback is destroyed
// immediately and the queue node becomes a tombstone that is skipped — and
// does not advance the clock — when it surfaces. This lets OneShot timeouts
// vanish on completion instead of lingering as no-op events.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/callback.h"

namespace gvfs::sim {

/// Handle to a scheduled event. Default-constructed ids are null; a handle
/// becomes stale (Cancel returns false) once its event has run or been
/// cancelled.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class Scheduler;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Stable pointer to the clock, for components (e.g. MemFs timestamps)
  /// that need to read the current time without holding the scheduler.
  const SimTime* NowPtr() const { return &now_; }

  /// Schedules fn to run at absolute simulated time t (>= Now()).
  /// Returns a handle usable with Cancel().
  template <typename F>
  EventId At(SimTime t, F&& fn) {
    return Post(t < now_ ? now_ : t, std::forward<F>(fn));
  }

  /// Schedules fn to run after duration d.
  template <typename F>
  EventId After(Duration d, F&& fn) {
    return At(now_ + d, std::forward<F>(fn));
  }

  /// Cancels a pending event: its callback is destroyed now and it will
  /// never run. Returns false if the handle is null, stale, or already ran.
  bool Cancel(EventId id) {
    if (!id.valid() || id.slot_ >= slot_count_) return false;
    Slot& slot = SlotAt(id.slot_);
    if (slot.gen != id.gen_ || !slot.armed) return false;
    slot.armed = false;
    slot.fn.Reset();
    --live_;
    return true;
  }

  /// Runs events until the queue drains or max_events is hit.
  /// Returns the number of events processed (cancelled events don't count).
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t processed = 0;
    while (processed < max_events && Step()) ++processed;
    return processed;
  }

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void RunUntil(SimTime t) {
    SimTime next;
    while (PeekTime(&next) && next <= t) Step();
    if (now_ < t) now_ = t;
  }

  bool Idle() const { return live_ == 0; }
  std::size_t PendingEvents() const { return live_; }

 private:
  /// Queue node: 24 bytes, trivially copyable. `slot` indexes the slab.
  struct Node {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };

  static bool Before(const Node& a, const Node& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  template <typename F>
  EventId Post(SimTime t, F&& fn) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = slot_count_;
      if ((idx >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      ++slot_count_;
    }
    Slot& slot = SlotAt(idx);
    slot.fn = std::forward<F>(fn);  // constructed in place in the slot
    slot.armed = true;
    const std::uint64_t seq = next_seq_++;
    // Events posted for "now" keep FIFO order by construction, so they skip
    // heap sifting; the pop path merges the two structures by (time, seq).
    if (t <= now_) {
      ready_.Push(Node{now_, seq, idx});
    } else {
      HeapPush(Node{t, seq, idx});
    }
    ++live_;
    return EventId(idx, slot.gen);
  }

  /// Pops the globally next node (ready vs. heap merged by (time, seq)).
  /// Pre: at least one node is queued.
  Node PopNode() {
    if (!ready_.Empty() &&
        (heap_.empty() || !Before(heap_.front(), ready_.Front()))) {
      Node n = ready_.Front();
      ready_.Pop();
      return n;
    }
    Node n = heap_.front();
    HeapPop();
    return n;
  }

  void FreeSlot(std::uint32_t idx) {
    Slot& slot = SlotAt(idx);
    if (++slot.gen == 0) slot.gen = 1;  // 0 is the null-handle generation
    free_.push_back(idx);
  }

  /// Runs the next live event; skips tombstones. False when nothing is left.
  bool Step() {
    while (!ready_.Empty() || !heap_.empty()) {
      Node node = PopNode();
      Slot& slot = SlotAt(node.slot);
      if (!slot.armed) {  // cancelled: free the tombstone, leave the clock
        FreeSlot(node.slot);
        continue;
      }
      slot.armed = false;
      --live_;
      now_ = node.time;
      // Chunked slot storage is address-stable, so the callback runs in
      // place (no relocate). The slot is released only afterwards: a Post
      // from inside the callback can never reuse the executing storage.
      slot.fn();
      slot.fn.Reset();
      FreeSlot(node.slot);
      return true;
    }
    return false;
  }

  /// Time of the next live event, purging leading tombstones. False if none.
  bool PeekTime(SimTime* t) {
    while (!ready_.Empty() || !heap_.empty()) {
      const Node* next;
      if (!ready_.Empty() &&
          (heap_.empty() || !Before(heap_.front(), ready_.Front()))) {
        next = &ready_.Front();
      } else {
        next = &heap_.front();
      }
      if (SlotAt(next->slot).armed) {
        *t = next->time;
        return true;
      }
      Node node = PopNode();
      FreeSlot(node.slot);
    }
    return false;
  }

  // 4-ary implicit heap over (time, seq), hole-sifted to halve the copies.
  void HeapPush(Node n) {
    heap_.push_back(n);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!Before(n, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = n;
  }

  void HeapPop() {
    const Node last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  /// FIFO of queue nodes as a power-of-2 ring buffer. The ready queue sees a
  /// push and a pop per same-timestamp event (the most frequent scheduler
  /// operation after heap sifting), and a flat ring does each in a handful of
  /// instructions — no std::deque block map to chase.
  class NodeRing {
   public:
    bool Empty() const { return head_ == tail_; }
    const Node& Front() const { return ring_[head_ & mask_]; }
    void Pop() { ++head_; }

    void Push(const Node& n) {
      if (tail_ - head_ == ring_.size()) Grow();
      ring_[tail_ & mask_] = n;
      ++tail_;
    }

   private:
    void Grow() {
      const std::size_t cap = ring_.empty() ? 16 : ring_.size() * 2;
      std::vector<Node> next(cap);
      std::size_t n = 0;
      for (std::size_t i = head_; i != tail_; ++i, ++n) {
        next[n] = ring_[i & mask_];
      }
      ring_ = std::move(next);
      mask_ = cap - 1;
      head_ = 0;
      tail_ = n;
    }

    std::vector<Node> ring_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;  // monotonically increasing; masked on access
    std::size_t tail_ = 0;
  };

  // Slot slab: fixed-size chunks, so slot addresses never move. Growth never
  // relocates existing EventFns, and Step can run callbacks in place.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& SlotAt(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::vector<Node> heap_;
  NodeRing ready_;  // events due at now_, in seq (FIFO) order
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_;
};

}  // namespace gvfs::sim
