// Lazy coroutine Task<T> used for every simulated process.
//
// Tasks are started by co_awaiting them (symmetric transfer) or by
// sim::Spawn() for detached top-level processes. Completion resumes the
// awaiting coroutine directly; timing is introduced only by explicit
// awaitables (Scheduler-driven sleeps, network transfers, sync primitives),
// so pure computation takes zero simulated time.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace gvfs::sim {

template <typename T>
class Task;

namespace detail {

/// Size-bucketed freelist for coroutine frames. Every simulated RPC spawns
/// and destroys a handful of frames, and the working-set of frame sizes is a
/// few dozen distinct values, so recycling them removes one malloc/free pair
/// per frame from the hot path. Single-threaded by design, like the rest of
/// the simulator. Frames above the pooled range fall through to operator new.
struct FrameArena {
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxPooled = 2048;
  static constexpr std::size_t kBuckets = kMaxPooled / kGranule;

  static std::vector<void*>* Pools() {
    static std::vector<void*> pools[kBuckets];
    return pools;
  }

  static void* Alloc(std::size_t n) {
    const std::size_t bucket = (n + kGranule - 1) / kGranule;
    if (bucket == 0 || bucket > kBuckets) return ::operator new(n);
    std::vector<void*>& pool = Pools()[bucket - 1];
    if (!pool.empty()) {
      void* p = pool.back();
      pool.pop_back();
      return p;
    }
    return ::operator new(bucket * kGranule);
  }

  static void Free(void* p, std::size_t n) {
    const std::size_t bucket = (n + kGranule - 1) / kGranule;
    if (bucket == 0 || bucket > kBuckets) {
      ::operator delete(p);
      return;
    }
    Pools()[bucket - 1].push_back(p);
  }
};

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  /// Set by Spawn: the frame owns itself and self-destroys at completion
  /// (no Task object is left to destroy it).
  bool detached = false;

  // Route coroutine-frame storage through the freelist. The compiler calls
  // these on the promise type when allocating/freeing the whole frame.
  static void* operator new(std::size_t n) { return FrameArena::Alloc(n); }
  static void operator delete(void* p, std::size_t n) {
    FrameArena::Free(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.detached) {
        // Detached processes may not leak exceptions (same contract the old
        // RunDetached wrapper enforced by rethrowing into a noexcept frame).
        if (p.exception) std::terminate();
        h.destroy();
        return std::noop_coroutine();
      }
      auto cont = p.continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; the Task owns the
/// coroutine frame and destroys it when the Task is destroyed.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // start the task
    }
    T await_resume() {
      auto& p = handle.promise();
      // gvfs-lint: allow(throw-in-protocol): the one sanctioned rethrow — propagates a child task's stored exception across the coroutine boundary instead of losing it
      if (p.exception) std::rethrow_exception(p.exception);
      assert(p.value.has_value());
      return std::move(*p.value);
    }
  };

  Awaiter operator co_await() && {
    assert(handle_);
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;
    }
    void await_resume() {
      if (handle.promise().exception) {
        // gvfs-lint: allow(throw-in-protocol): same sanctioned rethrow as Task<T>, for the void specialization
        std::rethrow_exception(handle.promise().exception);
      }
    }
  };

  Awaiter operator co_await() && {
    assert(handle_);
    return Awaiter{handle_};
  }

  /// Transfers frame ownership out of the Task (used by Spawn).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Starts a task as a detached top-level simulated process. The task begins
/// executing immediately (until its first suspension point). The frame owns
/// itself from here on and self-destroys at completion — no wrapper
/// coroutine, no extra allocation.
inline void Spawn(Task<void> task) {
  auto h = task.Release();
  assert(h);
  h.promise().detached = true;
  h.resume();
}

}  // namespace gvfs::sim
