// Lazy coroutine Task<T> used for every simulated process.
//
// Tasks are started by co_awaiting them (symmetric transfer) or by
// sim::Spawn() for detached top-level processes. Completion resumes the
// awaiting coroutine directly; timing is introduced only by explicit
// awaitables (Scheduler-driven sleeps, network transfers, sync primitives),
// so pure computation takes zero simulated time.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace gvfs::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; the Task owns the
/// coroutine frame and destroys it when the Task is destroyed.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // start the task
    }
    T await_resume() {
      auto& p = handle.promise();
      // gvfs-lint: allow(throw-in-protocol): the one sanctioned rethrow — propagates a child task's stored exception across the coroutine boundary instead of losing it
      if (p.exception) std::rethrow_exception(p.exception);
      assert(p.value.has_value());
      return std::move(*p.value);
    }
  };

  Awaiter operator co_await() && {
    assert(handle_);
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;
    }
    void await_resume() {
      if (handle.promise().exception) {
        // gvfs-lint: allow(throw-in-protocol): same sanctioned rethrow as Task<T>, for the void specialization
        std::rethrow_exception(handle.promise().exception);
      }
    }
  };

  Awaiter operator co_await() && {
    assert(handle_);
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// Self-destroying eager coroutine used to launch detached tasks.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

inline DetachedTask RunDetached(Task<void> task) { co_await std::move(task); }

}  // namespace detail

/// Starts a task as a detached top-level simulated process. The task begins
/// executing immediately (until its first suspension point).
inline void Spawn(Task<void> task) { detail::RunDetached(std::move(task)); }

}  // namespace gvfs::sim
