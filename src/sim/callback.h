// EventFn: the scheduler's callback type. A move-only callable with inline
// storage sized for every capture set the simulator's hot paths create —
// coroutine-handle resumptions, OneShot timeout closures, and whole-Packet
// delivery closures all fit — so posting an event performs no heap
// allocation. Larger callables fall back to the heap transparently.
//
// This replaces std::function in the event queue: std::function's inline
// buffer (16 bytes in libstdc++) spills every capture beyond a single
// pointer, which put two mallocs on the path of every simulated packet.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gvfs::sim {

class EventFn {
 public:
  /// Sized so a packet-delivery closure ([this, Packet]) stays inline.
  static constexpr std::size_t kInlineSize = 64;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    if constexpr (kInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      Reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, o.storage_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  /// Direct assignment from a callable: constructs in place, skipping the
  /// temporary-EventFn + relocate round trip (one indirect call + up to 64
  /// bytes of copying per scheduled event on the hot path).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn& operator=(F&& f) {
    Reset();
    if constexpr (kInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  /// Destroys the held callable (used by Scheduler::Cancel to release
  /// captured resources immediately, long before the tombstone is popped).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool kInline = sizeof(D) <= kInlineSize &&
                                  alignof(D) <= alignof(std::max_align_t) &&
                                  std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* InlineAt(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*InlineAt<D>(p))(); },
      [](void* dst, void* src) {
        D* s = InlineAt<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { InlineAt<D>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**InlineAt<D*>(p))(); },
      // The stored D* is trivially destructible; relocation just copies it.
      [](void* dst, void* src) { ::new (dst) D*(*InlineAt<D*>(src)); },
      [](void* p) { delete *InlineAt<D*>(p); },
  };

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace gvfs::sim
