#include "afs/afs.h"

#include <algorithm>

#include "xdr/xdr.h"

namespace gvfs::afs {

using kclient::Fd;
using kclient::OpenFlags;
using kclient::VfsResult;
using nfs3::Status;

namespace {

constexpr rpc::CallOptions AfsRpc() {
  rpc::CallOptions opts;
  opts.max_retries = 20;
  return opts;
}

Bytes EncodePath(const std::string& path) {
  xdr::Encoder enc;
  enc.PutString(path);
  return enc.Take();
}

Bytes EncodePathData(const std::string& path, const Bytes& data) {
  xdr::Encoder enc;
  enc.PutString(path);
  enc.PutOpaque(data);
  return enc.Take();
}

Bytes EncodeTwoPaths(const std::string& a, const std::string& b) {
  xdr::Encoder enc;
  enc.PutString(a);
  enc.PutString(b);
  return enc.Take();
}

Bytes StatusReply(Status status) {
  xdr::Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(status));
  return enc.Take();
}

Bytes StatusAttrReply(Status status, const nfs3::Fattr& attr) {
  xdr::Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(status));
  attr.Encode(enc);
  return enc.Take();
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

AfsServer::AfsServer(sim::Scheduler& sched, memfs::MemFs& fs, rpc::RpcNode& node)
    : sched_(sched), fs_(fs), node_(node) {
  auto bind = [this, &node](AfsProc proc,
                            sim::Task<Bytes> (AfsServer::*method)(rpc::CallContext,
                                                                  rpc::Body)) {
    node.RegisterHandler(kAfsProgram, proc,
                         [this, method](rpc::CallContext ctx, rpc::Body args) {
                           return (this->*method)(ctx, std::move(args));
                         });
  };
  bind(kFetchStatus, &AfsServer::HandleFetchStatus);
  bind(kFetchData, &AfsServer::HandleFetchData);
  bind(kStoreData, &AfsServer::HandleStoreData);
  bind(kCreateFile, &AfsServer::HandleCreate);
  bind(kRemoveFile, &AfsServer::HandleRemove);
  bind(kHardLink, &AfsServer::HandleLink);
  bind(kMakeDir, &AfsServer::HandleMkdir);
  bind(kRemoveDir, &AfsServer::HandleRmdir);
  bind(kListDir, &AfsServer::HandleListDir);
}

Expected<std::pair<memfs::InodeId, std::string>, Status> AfsServer::Parent(
    const std::string& path) const {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return Unexpected(Status::kInval);
  const std::string dir_path = path.substr(0, slash);
  const std::string leaf = path.substr(slash + 1);
  if (leaf.empty()) return Unexpected(Status::kInval);
  auto dir = dir_path.empty() ? memfs::FsResult<memfs::InodeId>(fs_.root())
                              : fs_.ResolvePath(dir_path);
  if (!dir) return Unexpected(nfs3::FromFsError(dir.error()));
  return std::pair{*dir, leaf};
}

void AfsServer::AddPromise(const std::string& path, net::Address client) {
  promises_[path].insert(client);
}

sim::Task<void> AfsServer::BreakPromises(std::string path, net::Address mutator) {
  auto it = promises_.find(path);
  if (it == promises_.end()) co_return;
  std::vector<net::Address> holders(it->second.begin(), it->second.end());
  it->second.clear();
  for (const auto& holder : holders) {
    if (holder == mutator) continue;
    ++stats_.callback_breaks;
    rpc::CallOptions opts;
    opts.label = "CBBREAK";
    opts.timeout = Seconds(2);
    opts.max_retries = 2;
    (void)co_await node_.Call(holder, kAfsProgram, kCallbackBreak,
                              EncodePath(path), std::move(opts));
  }
}

sim::Task<Bytes> AfsServer::HandleFetchStatus(rpc::CallContext ctx, rpc::Body args) {
  ++stats_.fetches;
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  AddPromise(p, ctx.caller);  // promise covers negative results too
  auto ino = fs_.ResolvePath(p);
  if (!ino) co_return StatusReply(nfs3::FromFsError(ino.error()));
  auto attr = fs_.GetAttr(*ino);
  if (!attr) co_return StatusReply(nfs3::FromFsError(attr.error()));
  co_return StatusAttrReply(Status::kOk, nfs3::ToFattr(*attr));
}

sim::Task<Bytes> AfsServer::HandleFetchData(rpc::CallContext ctx, rpc::Body args) {
  ++stats_.fetches;
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  AddPromise(p, ctx.caller);
  auto ino = fs_.ResolvePath(p);
  if (!ino) co_return StatusReply(nfs3::FromFsError(ino.error()));
  auto attr = fs_.GetAttr(*ino);
  if (!attr) co_return StatusReply(nfs3::FromFsError(attr.error()));
  auto data = fs_.Read(*ino, 0, static_cast<std::uint32_t>(attr->size));
  if (!data) co_return StatusReply(nfs3::FromFsError(data.error()));
  xdr::Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(Status::kOk));
  nfs3::ToFattr(*attr).Encode(enc);
  enc.PutOpaque(data->data);
  co_return enc.Take();
}

sim::Task<Bytes> AfsServer::HandleStoreData(rpc::CallContext ctx, rpc::Body args) {
  ++stats_.stores;
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  auto data = path ? dec.GetOpaque()
                   : Expected<xdr::View, xdr::DecodeError>(
                         Unexpected(xdr::DecodeError::kTruncated));
  if (!path || !data) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  auto ino = fs_.ResolvePath(p);
  if (!ino) co_return StatusReply(nfs3::FromFsError(ino.error()));
  co_await BreakPromises(p, ctx.caller);
  memfs::SetAttrRequest trunc;
  trunc.size = 0;
  (void)fs_.SetAttr(*ino, trunc);
  auto written = fs_.Write(*ino, 0, data->Copy());
  if (!written) co_return StatusReply(nfs3::FromFsError(written.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleCreate(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  auto parent = Parent(p);
  if (!parent) co_return StatusReply(parent.error());
  co_await BreakPromises(p, ctx.caller);
  co_await BreakPromises(p.substr(0, p.find_last_of('/')), ctx.caller);
  auto created = fs_.Create(parent->first, parent->second, 0644);
  if (!created) co_return StatusReply(nfs3::FromFsError(created.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleRemove(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  auto parent = Parent(p);
  if (!parent) co_return StatusReply(parent.error());
  co_await BreakPromises(p, ctx.caller);
  co_await BreakPromises(p.substr(0, p.find_last_of('/')), ctx.caller);
  auto removed = fs_.Remove(parent->first, parent->second);
  if (!removed) co_return StatusReply(nfs3::FromFsError(removed.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleLink(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto target = dec.GetString();
  auto newpath = target ? dec.GetString()
                        : Expected<xdr::StrView, xdr::DecodeError>(
                              Unexpected(xdr::DecodeError::kTruncated));
  if (!target || !newpath) co_return StatusReply(Status::kInval);
  const std::string np = newpath->Copy();
  auto target_ino = fs_.ResolvePath(target->Copy());
  if (!target_ino) co_return StatusReply(nfs3::FromFsError(target_ino.error()));
  auto parent = Parent(np);
  if (!parent) co_return StatusReply(parent.error());
  co_await BreakPromises(np, ctx.caller);
  co_await BreakPromises(np.substr(0, np.find_last_of('/')), ctx.caller);
  auto linked = fs_.Link(*target_ino, parent->first, parent->second);
  if (!linked) co_return StatusReply(nfs3::FromFsError(linked.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleMkdir(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  auto parent = Parent(p);
  if (!parent) co_return StatusReply(parent.error());
  co_await BreakPromises(p, ctx.caller);
  auto made = fs_.Mkdir(parent->first, parent->second, 0755);
  if (!made) co_return StatusReply(nfs3::FromFsError(made.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleRmdir(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  auto parent = Parent(p);
  if (!parent) co_return StatusReply(parent.error());
  co_await BreakPromises(p, ctx.caller);
  auto removed = fs_.Rmdir(parent->first, parent->second);
  if (!removed) co_return StatusReply(nfs3::FromFsError(removed.error()));
  co_return StatusReply(Status::kOk);
}

sim::Task<Bytes> AfsServer::HandleListDir(rpc::CallContext ctx, rpc::Body args) {
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (!path) co_return StatusReply(Status::kInval);
  const std::string p = path->Copy();
  AddPromise(p, ctx.caller);
  auto ino = p.empty() || p == "/" ? memfs::FsResult<memfs::InodeId>(fs_.root())
                                   : fs_.ResolvePath(p);
  if (!ino) co_return StatusReply(nfs3::FromFsError(ino.error()));
  auto entries = fs_.ReadDir(*ino, 0, 100000);
  if (!entries) co_return StatusReply(nfs3::FromFsError(entries.error()));
  xdr::Encoder enc;
  enc.PutU32(static_cast<std::uint32_t>(Status::kOk));
  enc.PutU32(static_cast<std::uint32_t>(entries->size()));
  for (const auto& entry : *entries) enc.PutString(entry.name);
  co_return enc.Take();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

AfsClient::AfsClient(sim::Scheduler& sched, rpc::RpcNode& node, net::Address server)
    : sched_(sched), node_(node), server_(server) {
  node.RegisterHandler(kAfsProgram, kCallbackBreak,
                       [this](rpc::CallContext ctx, rpc::Body args) {
                         return HandleCallbackBreak(ctx, std::move(args));
                       });
}

sim::Task<Bytes> AfsClient::HandleCallbackBreak(rpc::CallContext, rpc::Body args) {
  ++breaks_received_;
  xdr::Decoder dec(args);
  auto path = dec.GetString();
  if (path) {
    const std::string p = path->Copy();
    status_cache_.erase(p);
    auto file = file_cache_.find(p);
    if (file != file_cache_.end()) file->second.valid = false;
  }
  co_return Bytes{};
}

sim::Task<VfsResult<AfsClient::CachedStatus>> AfsClient::FetchStatus(
    std::string path) {
  auto cached = status_cache_.find(path);
  if (cached != status_cache_.end()) {
    ++status_hits_;
    co_return cached->second;
  }
  rpc::CallOptions opts = AfsRpc();
  opts.label = "FETCHSTATUS";
  auto reply = co_await node_.Call(server_, kAfsProgram, kFetchStatus,
                                   EncodePath(path), std::move(opts));
  if (!reply) co_return Unexpected(Status::kIo);
  xdr::Decoder dec(*reply);
  auto status = dec.GetU32();
  if (!status) co_return Unexpected(Status::kIo);
  CachedStatus result;
  if (static_cast<Status>(*status) == Status::kOk) {
    auto attr = nfs3::Fattr::Decode(dec);
    if (!attr) co_return Unexpected(Status::kIo);
    result.exists = true;
    result.attr = *attr;
  } else if (static_cast<Status>(*status) != Status::kNoEnt) {
    co_return Unexpected(static_cast<Status>(*status));
  }
  status_cache_[path] = result;  // positive or negative, promise-backed
  co_return result;
}

sim::Task<VfsResult<Fd>> AfsClient::Open(std::string path, OpenFlags flags) {
  auto status = co_await FetchStatus(path);
  if (!status) co_return Unexpected(status.error());

  if (!status->exists) {
    if (!flags.create) co_return Unexpected(Status::kNoEnt);
    rpc::CallOptions opts = AfsRpc();
    opts.label = "CREATE";
    auto reply = co_await node_.Call(server_, kAfsProgram, kCreateFile,
                                     EncodePath(path), std::move(opts));
    if (!reply) co_return Unexpected(Status::kIo);
    xdr::Decoder dec(*reply);
    auto result = dec.GetU32();
    if (!result) co_return Unexpected(Status::kIo);
    if (static_cast<Status>(*result) != Status::kOk) {
      co_return Unexpected(static_cast<Status>(*result));
    }
    status_cache_.erase(path);
    file_cache_[path] = CachedFile{{}, true};
  } else if (flags.exclusive && flags.create) {
    co_return Unexpected(Status::kExist);
  } else {
    // Whole-file fetch on open (unless the cached copy is still promised).
    auto cached = file_cache_.find(path);
    if (cached == file_cache_.end() || !cached->second.valid) {
      rpc::CallOptions opts = AfsRpc();
      opts.label = "FETCHDATA";
      auto reply = co_await node_.Call(server_, kAfsProgram, kFetchData,
                                       EncodePath(path), std::move(opts));
      if (!reply) co_return Unexpected(Status::kIo);
      xdr::Decoder dec(*reply);
      auto result = dec.GetU32();
      if (!result) co_return Unexpected(Status::kIo);
      if (static_cast<Status>(*result) != Status::kOk) {
        co_return Unexpected(static_cast<Status>(*result));
      }
      auto attr = nfs3::Fattr::Decode(dec);
      auto data = dec.GetOpaque();
      if (!attr || !data) co_return Unexpected(Status::kIo);
      file_cache_[path] = CachedFile{data->Copy(), true};
    }
  }

  if (flags.truncate) {
    file_cache_[path].data.clear();
  }
  const Fd fd = next_fd_++;
  open_files_[fd] = OpenFile{path, flags.write, flags.truncate};
  co_return fd;
}

sim::Task<VfsResult<void>> AfsClient::Close(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  OpenFile file = it->second;
  open_files_.erase(it);
  if (file.dirty) {
    // Store-on-close: ship the whole file back.
    rpc::CallOptions opts = AfsRpc();
    opts.label = "STOREDATA";
    auto reply = co_await node_.Call(
        server_, kAfsProgram, kStoreData,
        EncodePathData(file.path, file_cache_[file.path].data), std::move(opts));
    if (!reply) co_return Unexpected(Status::kIo);
    status_cache_.erase(file.path);  // size/mtime changed
  }
  co_return Ok{};
}

sim::Task<VfsResult<Bytes>> AfsClient::Read(Fd fd, std::uint64_t offset,
                                            std::uint32_t count) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  const Bytes& data = file_cache_[it->second.path].data;
  if (offset >= data.size()) co_return Bytes{};
  const std::uint64_t end = std::min<std::uint64_t>(offset + count, data.size());
  co_return Bytes(data.begin() + static_cast<std::ptrdiff_t>(offset),
                  data.begin() + static_cast<std::ptrdiff_t>(end));
}

sim::Task<VfsResult<std::uint32_t>> AfsClient::Write(Fd fd, std::uint64_t offset,
                                                     const Bytes& data) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) co_return Unexpected(Status::kInval);
  if (!it->second.writable) co_return Unexpected(Status::kAccess);
  Bytes& dst = file_cache_[it->second.path].data;
  if (dst.size() < offset + data.size()) dst.resize(offset + data.size(), 0);
  std::copy(data.begin(), data.end(),
            dst.begin() + static_cast<std::ptrdiff_t>(offset));
  it->second.dirty = true;
  co_return static_cast<std::uint32_t>(data.size());
}

sim::Task<VfsResult<nfs3::Fattr>> AfsClient::Stat(std::string path) {
  auto status = co_await FetchStatus(std::move(path));
  if (!status) co_return Unexpected(status.error());
  if (!status->exists) co_return Unexpected(Status::kNoEnt);
  co_return status->attr;
}

sim::Task<VfsResult<bool>> AfsClient::Exists(std::string path) {
  auto status = co_await FetchStatus(std::move(path));
  if (!status) co_return Unexpected(status.error());
  co_return status->exists;
}

namespace {

/// Shared helper for the path-only mutation RPCs.
sim::Task<VfsResult<void>> PathOp(rpc::RpcNode* node, net::Address server,
                                  AfsProc proc, Bytes args, const char* label) {
  rpc::CallOptions opts = AfsRpc();
  opts.label = label;
  auto reply = co_await node->Call(server, kAfsProgram, proc, std::move(args), std::move(opts));
  if (!reply) co_return Unexpected(Status::kIo);
  xdr::Decoder dec(*reply);
  auto status = dec.GetU32();
  if (!status) co_return Unexpected(Status::kIo);
  if (static_cast<Status>(*status) != Status::kOk) {
    co_return Unexpected(static_cast<Status>(*status));
  }
  co_return Ok{};
}

}  // namespace

sim::Task<VfsResult<void>> AfsClient::Unlink(std::string path) {
  status_cache_.erase(path);
  file_cache_.erase(path);
  co_return co_await PathOp(&node_, server_, kRemoveFile, EncodePath(path), "REMOVE");
}

sim::Task<VfsResult<void>> AfsClient::Mkdir(std::string path) {
  co_return co_await PathOp(&node_, server_, kMakeDir, EncodePath(path), "MKDIR");
}

sim::Task<VfsResult<void>> AfsClient::Rmdir(std::string path) {
  status_cache_.erase(path);
  co_return co_await PathOp(&node_, server_, kRemoveDir, EncodePath(path), "RMDIR");
}

sim::Task<VfsResult<void>> AfsClient::Link(std::string target_path,
                                           std::string new_path) {
  status_cache_.erase(new_path);
  co_return co_await PathOp(&node_, server_, kHardLink,
                            EncodeTwoPaths(target_path, new_path), "LINK");
}

sim::Task<VfsResult<void>> AfsClient::Rename(std::string, std::string) {
  co_return Unexpected(Status::kNotSupp);
}

sim::Task<VfsResult<std::vector<std::string>>> AfsClient::ReadDir(
    const std::string& path) {
  rpc::CallOptions opts = AfsRpc();
  opts.label = "LISTDIR";
  auto reply =
      co_await node_.Call(server_, kAfsProgram, kListDir, EncodePath(path), std::move(opts));
  if (!reply) co_return Unexpected(Status::kIo);
  xdr::Decoder dec(*reply);
  auto status = dec.GetU32();
  if (!status) co_return Unexpected(Status::kIo);
  if (static_cast<Status>(*status) != Status::kOk) {
    co_return Unexpected(static_cast<Status>(*status));
  }
  auto count = dec.GetU32();
  if (!count) co_return Unexpected(Status::kIo);
  std::vector<std::string> names;
  names.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto name = dec.GetString();
    if (!name) co_return Unexpected(Status::kIo);
    names.push_back(name->Copy());
  }
  co_return names;
}

}  // namespace gvfs::afs
