// AFS-style distributed file system (reference point for the paper's lock
// benchmark, §5.1.2, where OpenAFS 1.2.11 is the traditional
// strong-consistency DFS).
//
// Modeled behaviours:
//  - Whole-file caching: open fetches the entire file; close stores it back
//    if modified (store-on-close semantics).
//  - Callback promises: the server remembers which clients cache each path's
//    status/data and breaks the promise (server-to-client RPC) whenever
//    another client mutates it, so cached entries are valid until broken.
//
// Names (paths) identify objects on the wire — a simplification over AFS
// FIDs that preserves the consistency behaviour the benchmark measures.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "kclient/vfs.h"
#include "memfs/memfs.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::afs {

constexpr std::uint32_t kAfsProgram = 500100;

enum AfsProc : std::uint32_t {
  kFetchStatus = 1,   // path -> attrs (registers a callback promise)
  kFetchData = 2,     // path -> whole file contents (+ promise)
  kStoreData = 3,     // path + contents (breaks other promises)
  kCreateFile = 4,
  kRemoveFile = 5,
  kHardLink = 6,
  kMakeDir = 7,
  kRemoveDir = 8,
  kListDir = 9,
  kCallbackBreak = 20,  // server -> client: path's promise is void
};

struct AfsServerStats {
  std::uint64_t fetches = 0;
  std::uint64_t stores = 0;
  std::uint64_t callback_breaks = 0;
};

/// The AFS file server: memfs-backed, path-addressed, with per-path callback
/// promises.
class AfsServer {
 public:
  AfsServer(sim::Scheduler& sched, memfs::MemFs& fs, rpc::RpcNode& node);

  const AfsServerStats& stats() const { return stats_; }

 private:
  sim::Task<Bytes> HandleFetchStatus(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleFetchData(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleStoreData(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleCreate(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRemove(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleLink(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleMkdir(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleRmdir(rpc::CallContext ctx, rpc::Body args);
  sim::Task<Bytes> HandleListDir(rpc::CallContext ctx, rpc::Body args);

  void AddPromise(const std::string& path, net::Address client);
  /// Breaks every other client's promise on `path` (awaited: AFS breaks
  /// callbacks before completing the mutation).
  sim::Task<void> BreakPromises(std::string path, net::Address mutator);

  /// Resolves a path's parent directory + leaf.
  Expected<std::pair<memfs::InodeId, std::string>, nfs3::Status> Parent(
      const std::string& path) const;

  sim::Scheduler& sched_;
  memfs::MemFs& fs_;
  rpc::RpcNode& node_;
  std::map<std::string, std::set<net::Address>> promises_;
  AfsServerStats stats_;
};

/// The AFS cache-manager client: whole-file cache + status cache, both valid
/// until the server breaks the callback promise.
class AfsClient : public kclient::Vfs {
 public:
  AfsClient(sim::Scheduler& sched, rpc::RpcNode& node, net::Address server);

  sim::Task<kclient::VfsResult<kclient::Fd>> Open(std::string path,
                                                  kclient::OpenFlags flags) override;
  sim::Task<kclient::VfsResult<void>> Close(kclient::Fd fd) override;
  sim::Task<kclient::VfsResult<Bytes>> Read(kclient::Fd fd, std::uint64_t offset,
                                            std::uint32_t count) override;
  sim::Task<kclient::VfsResult<std::uint32_t>> Write(kclient::Fd fd,
                                                     std::uint64_t offset,
                                                     const Bytes& data) override;
  sim::Task<kclient::VfsResult<nfs3::Fattr>> Stat(std::string path) override;
  sim::Task<kclient::VfsResult<bool>> Exists(std::string path) override;
  sim::Task<kclient::VfsResult<void>> Unlink(std::string path) override;
  sim::Task<kclient::VfsResult<void>> Mkdir(std::string path) override;
  sim::Task<kclient::VfsResult<void>> Rmdir(std::string path) override;
  sim::Task<kclient::VfsResult<void>> Link(std::string target_path,
                                           std::string new_path) override;
  sim::Task<kclient::VfsResult<void>> Rename(std::string from, std::string to) override;
  sim::Task<kclient::VfsResult<std::vector<std::string>>> ReadDir(
      const std::string& path) override;

  std::uint64_t status_cache_hits() const { return status_hits_; }
  std::uint64_t callback_breaks_received() const { return breaks_received_; }

 private:
  struct CachedStatus {
    bool exists = false;
    nfs3::Fattr attr;
  };

  struct CachedFile {
    Bytes data;
    bool valid = false;
  };

  struct OpenFile {
    std::string path;
    bool writable = false;
    bool dirty = false;
  };

  sim::Task<Bytes> HandleCallbackBreak(rpc::CallContext ctx, rpc::Body args);
  /// Status via cache or FETCHSTATUS RPC. nullopt = transport failure.
  sim::Task<kclient::VfsResult<CachedStatus>> FetchStatus(std::string path);

  sim::Scheduler& sched_;
  rpc::RpcNode& node_;
  net::Address server_;

  std::map<std::string, CachedStatus> status_cache_;  // valid until broken
  std::map<std::string, CachedFile> file_cache_;
  std::map<kclient::Fd, OpenFile> open_files_;
  kclient::Fd next_fd_ = 3;

  std::uint64_t status_hits_ = 0;
  std::uint64_t breaks_received_ = 0;
};

}  // namespace gvfs::afs
