// Deterministic random number generation (splitmix64 + xoshiro256**).
// All workload generators take an explicit seed so every experiment run is
// exactly reproducible.
#pragma once

#include <cstdint>

namespace gvfs {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace gvfs
