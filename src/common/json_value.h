// Minimal recursive-descent JSON reader for the diagnosis tooling: flight
// recorder dumps (.gvfsdump), exported Chrome traces and metrics time series
// are all JSON documents that gvfs-doctor has to read back. The writer side
// lives in json_writer.h; this is the matching consumer.
//
// Design notes:
//  - Values are an ordered tree (std::map for objects) so iteration order is
//    deterministic, matching the repo-wide ban on unordered containers.
//  - Numbers keep their raw token text alongside the parsed double, so
//    64-bit integers written by JsonObject::Add(uint64) round-trip exactly
//    (a double only carries 53 bits of mantissa).
//  - This is offline tooling, not protocol code: parse errors surface as a
//    (position, message) pair on the parser, not Expected<>.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gvfs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Scalar accessors; return the fallback when the kind does not match.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  /// Exact unsigned 64-bit read from the raw number token (strtoull); falls
  /// back to a double cast for scientific notation, then to `fallback`.
  std::uint64_t AsU64(std::uint64_t fallback = 0) const;
  std::int64_t AsI64(std::int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string when not a string

  /// Object/array accessors. Get/operator[] return a shared null sentinel for
  /// missing keys / wrong kinds, so lookups chain without null checks:
  /// doc["trace"]["events"][0]["type"].AsString().
  const JsonValue& Get(const std::string& key) const;
  const JsonValue& operator[](const std::string& key) const { return Get(key); }
  const JsonValue& At(std::size_t i) const;
  const JsonValue& operator[](std::size_t i) const { return At(i); }
  bool Has(const std::string& key) const;
  std::size_t size() const;  // elements (array) or members (object)

  const std::map<std::string, JsonValue>& object() const { return object_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::string& raw_number() const { return scalar_; }

  static const JsonValue& Null();

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string scalar_;  // string value or raw number token
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

class JsonParser {
 public:
  /// Parses a complete document. On failure returns a null value and records
  /// error()/error_offset(); trailing garbage after the root value is an
  /// error too.
  JsonValue Parse(const std::string& text);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::size_t error_offset() const { return error_offset_; }

 private:
  bool ParseValue(JsonValue& out);
  bool ParseString(std::string& out);
  bool ParseNumber(JsonValue& out);
  void SkipSpace();
  bool Expect(char c);
  void Fail(const std::string& message);

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
  std::size_t error_offset_ = 0;
};

/// Reads and parses a whole file. Returns a null value (and sets *error when
/// given) if the file is unreadable or malformed.
JsonValue ReadJsonFile(const std::string& path, std::string* error = nullptr);

}  // namespace gvfs
