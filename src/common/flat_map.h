// FlatMap: open-addressed hash map for integer-keyed hot-path lookups
// (pending RPC calls by xid, network links by host pair, DRC entries).
//
// Replaces std::map on the per-packet paths: a lookup is one hash, one or two
// probes in a contiguous array — no pointer chasing, no rebalancing, no
// per-node allocation. Iteration order is insertion-history dependent, NOT
// sorted, so this container is only for lookups whose order never escapes
// into simulator output; anything that feeds a report or an exporter must
// stay on ordered containers (see gvfs-lint's unordered-container rule —
// this file is the sanctioned implementation, keyed by deterministic
// simulation state only).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace gvfs {

/// Finalizer from splitmix64: mixes all key bits into the table index so
/// sequential ids (xids, host pairs) spread instead of clustering.
constexpr std::uint64_t MixHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename K>
struct FlatHash {
  std::uint64_t operator()(K k) const {
    return MixHash64(static_cast<std::uint64_t>(k));
  }
};

/// Open-addressed map with linear probing and backward-shift deletion.
/// K must be an integer-like key; V needs move construction only.
///
/// Deletion compacts the probe cluster in place instead of leaving a
/// tombstone, so churn-heavy maps (the duplicate-request cache does one
/// insert + one erase per RPC, forever) keep their working-set table size
/// and never rehash at steady state — and every probe chain stays as short
/// as the live load factor allows.
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr.
  V* Find(K key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.full) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask_;
    }
  }

  const V* Find(K key) const { return const_cast<FlatMap*>(this)->Find(key); }

  /// Inserts a default-constructed value if absent; returns the mapped value.
  V& operator[](K key) {
    MaybeGrow();
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.full) {
        s.key = key;
        s.value = V{};
        s.full = true;
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
      i = (i + 1) & mask_;
    }
  }

  /// Removes the key if present. Returns true if something was erased.
  bool Erase(K key) {
    std::size_t i;
    if (!Locate(key, &i)) return false;
    ShiftErase(i);
    return true;
  }

  /// Removes the key, moving its value into *out first. One probe chain
  /// walk total, where Find-then-Erase would walk it twice.
  bool Extract(K key, V* out) {
    std::size_t i;
    if (!Locate(key, &i)) return false;
    *out = std::move(slots_[i].value);
    ShiftErase(i);
    return true;
  }

  void Clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Visits every live entry. Order is hash-table order: do not let it reach
  /// simulator output.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.full) fn(s.key, s.value);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.full) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    K key{};
    V value{};
    bool full = false;
  };

  /// Probe for the key; on hit, stores its slot index. False on miss.
  bool Locate(K key, std::size_t* out) {
    if (slots_.empty()) return false;
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.full) return false;
      if (s.key == key) {
        *out = i;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Backward-shift deletion: entries in the probe cluster after the hole
  /// are moved back if (and only if) the hole lies on their probe path,
  /// restoring the linear-probing invariant without a tombstone.
  void ShiftErase(std::size_t hole) {
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) & mask_;
      Slot& cand = slots_[j];
      if (!cand.full) break;  // end of cluster: nothing else can move
      const std::size_t home = Hash{}(cand.key) & mask_;
      // cand may fill the hole iff its home position does not lie in the
      // cyclic range (hole, j] — otherwise moving it would break its chain.
      const bool reachable = hole <= j ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
      if (reachable) {
        slots_[hole].key = cand.key;
        slots_[hole].value = std::move(cand.value);
        hole = j;
      }
    }
    Slot& last = slots_[hole];
    last.value = V{};  // release held resources now
    last.full = false;
    --size_;
  }

  void MaybeGrow() {
    // Grow when live entries pass 7/8 occupancy. No tombstones exist, so
    // this is the true load factor and growth happens only when the map
    // genuinely fills.
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_cap);  // not assign(): Slot must stay move-only-friendly
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (!s.full) continue;
      std::size_t i = Hash{}(s.key) & mask_;
      while (slots_[i].full) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      slots_[i].full = true;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // live entries
};

}  // namespace gvfs
