#include "common/json_value.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace gvfs {

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double JsonValue::AsDouble(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

std::uint64_t JsonValue::AsU64(std::uint64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  // Integer tokens (no '.', 'e', '-') parse exactly; anything else goes
  // through the double.
  if (scalar_.find_first_of(".eE-") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(scalar_.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') return v;
  }
  if (number_ < 0) return fallback;
  return static_cast<std::uint64_t>(number_);
}

std::int64_t JsonValue::AsI64(std::int64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  if (scalar_.find_first_of(".eE") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    const std::int64_t v = std::strtoll(scalar_.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') return v;
  }
  return static_cast<std::int64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? scalar_ : kEmpty;
}

const JsonValue& JsonValue::Null() {
  static const JsonValue null;
  return null;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return Null();
  auto it = object_.find(key);
  return it != object_.end() ? it->second : Null();
}

const JsonValue& JsonValue::At(std::size_t i) const {
  if (kind_ != Kind::kArray || i >= array_.size()) return Null();
  return array_[i];
}

bool JsonValue::Has(const std::string& key) const {
  return kind_ == Kind::kObject && object_.find(key) != object_.end();
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

JsonValue JsonParser::Parse(const std::string& text) {
  data_ = text.data();
  size_ = text.size();
  pos_ = 0;
  depth_ = 0;
  error_.clear();
  error_offset_ = 0;

  JsonValue root;
  if (!ParseValue(root)) return JsonValue();
  SkipSpace();
  if (pos_ != size_) {
    Fail("trailing characters after JSON value");
    return JsonValue();
  }
  return root;
}

void JsonParser::SkipSpace() {
  while (pos_ < size_) {
    const char c = data_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

bool JsonParser::Expect(char c) {
  SkipSpace();
  if (pos_ < size_ && data_[pos_] == c) {
    ++pos_;
    return true;
  }
  Fail(std::string("expected '") + c + "'");
  return false;
}

void JsonParser::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
    error_offset_ = pos_;
  }
}

bool JsonParser::ParseString(std::string& out) {
  if (!Expect('"')) return false;
  out.clear();
  while (pos_ < size_) {
    const char c = data_[pos_++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= size_) break;
    const char esc = data_[pos_++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > size_) {
          Fail("truncated \\u escape");
          return false;
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = data_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else {
            Fail("bad hex digit in \\u escape");
            return false;
          }
        }
        // UTF-8 encode the BMP code point (the writer only emits \u00xx for
        // control characters, but accept the full range).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xc0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
          out += static_cast<char>(0xe0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
          out += static_cast<char>(0x80 | (code & 0x3f));
        }
        break;
      }
      default:
        Fail("unknown escape sequence");
        return false;
    }
  }
  Fail("unterminated string");
  return false;
}

bool JsonParser::ParseNumber(JsonValue& out) {
  const std::size_t start = pos_;
  if (pos_ < size_ && data_[pos_] == '-') ++pos_;
  while (pos_ < size_ && data_[pos_] >= '0' && data_[pos_] <= '9') ++pos_;
  if (pos_ < size_ && data_[pos_] == '.') {
    ++pos_;
    while (pos_ < size_ && data_[pos_] >= '0' && data_[pos_] <= '9') ++pos_;
  }
  if (pos_ < size_ && (data_[pos_] == 'e' || data_[pos_] == 'E')) {
    ++pos_;
    if (pos_ < size_ && (data_[pos_] == '+' || data_[pos_] == '-')) ++pos_;
    while (pos_ < size_ && data_[pos_] >= '0' && data_[pos_] <= '9') ++pos_;
  }
  if (pos_ == start) {
    Fail("expected a number");
    return false;
  }
  out.kind_ = JsonValue::Kind::kNumber;
  out.scalar_.assign(data_ + start, pos_ - start);
  out.number_ = std::strtod(out.scalar_.c_str(), nullptr);
  return true;
}

bool JsonParser::ParseValue(JsonValue& out) {
  SkipSpace();
  if (pos_ >= size_) {
    Fail("unexpected end of input");
    return false;
  }
  if (++depth_ > kMaxDepth) {
    Fail("nesting too deep");
    return false;
  }
  bool ok = false;
  const char c = data_[pos_];
  if (c == '{') {
    ++pos_;
    out.kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < size_ && data_[pos_] == '}') {
      ++pos_;
      ok = true;
    } else {
      while (true) {
        std::string key;
        if (!ParseString(key)) break;
        if (!Expect(':')) break;
        JsonValue member;
        if (!ParseValue(member)) break;
        out.object_[key] = std::move(member);
        SkipSpace();
        if (pos_ < size_ && data_[pos_] == ',') {
          ++pos_;
          continue;
        }
        ok = Expect('}');
        break;
      }
    }
  } else if (c == '[') {
    ++pos_;
    out.kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < size_ && data_[pos_] == ']') {
      ++pos_;
      ok = true;
    } else {
      while (true) {
        JsonValue element;
        if (!ParseValue(element)) break;
        out.array_.push_back(std::move(element));
        SkipSpace();
        if (pos_ < size_ && data_[pos_] == ',') {
          ++pos_;
          continue;
        }
        ok = Expect(']');
        break;
      }
    }
  } else if (c == '"') {
    out.kind_ = JsonValue::Kind::kString;
    ok = ParseString(out.scalar_);
  } else if (c == 't') {
    if (size_ - pos_ >= 4 && std::memcmp(data_ + pos_, "true", 4) == 0) {
      pos_ += 4;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = true;
      ok = true;
    } else {
      Fail("bad literal");
    }
  } else if (c == 'f') {
    if (size_ - pos_ >= 5 && std::memcmp(data_ + pos_, "false", 5) == 0) {
      pos_ += 5;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = false;
      ok = true;
    } else {
      Fail("bad literal");
    }
  } else if (c == 'n') {
    if (size_ - pos_ >= 4 && std::memcmp(data_ + pos_, "null", 4) == 0) {
      pos_ += 4;
      out.kind_ = JsonValue::Kind::kNull;
      ok = true;
    } else {
      Fail("bad literal");
    }
  } else {
    ok = ParseNumber(out);
  }
  --depth_;
  return ok;
}

JsonValue ReadJsonFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return JsonValue();
  }
  std::ostringstream text;
  text << in.rdbuf();
  JsonParser parser;
  JsonValue doc = parser.Parse(text.str());
  if (!parser.ok() && error != nullptr) {
    *error = path + ": " + parser.error() + " at offset " +
             std::to_string(parser.error_offset());
  }
  return doc;
}

}  // namespace gvfs
