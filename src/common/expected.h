// A minimal expected<T, E> (C++23 std::expected is unavailable under C++20).
// Protocol code returns errors as values; exceptions never cross coroutine
// frames in the RPC / filesystem paths.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace gvfs {

template <typename E>
class Unexpected {
 public:
  explicit constexpr Unexpected(E e) : error_(std::move(e)) {}
  constexpr const E& error() const& { return error_; }
  constexpr E&& error() && { return std::move(error_); }

 private:
  E error_;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Expected<T, E>: either a value of type T or an error of type E.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  constexpr Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  constexpr Expected(Unexpected<E> u)
      : data_(std::in_place_index<1>, std::move(u).error()) {}

  constexpr bool has_value() const { return data_.index() == 0; }
  constexpr explicit operator bool() const { return has_value(); }

  constexpr T& value() & {
    assert(has_value());
    return std::get<0>(data_);
  }
  constexpr const T& value() const& {
    assert(has_value());
    return std::get<0>(data_);
  }
  constexpr T&& value() && {
    assert(has_value());
    return std::move(std::get<0>(data_));
  }

  constexpr T& operator*() & { return value(); }
  constexpr const T& operator*() const& { return value(); }
  constexpr T&& operator*() && { return std::move(*this).value(); }
  constexpr T* operator->() { return &value(); }
  constexpr const T* operator->() const { return &value(); }

  constexpr const E& error() const& {
    assert(!has_value());
    return std::get<1>(data_);
  }
  constexpr E&& error() && {
    assert(!has_value());
    return std::move(std::get<1>(data_));
  }

  constexpr T value_or(T fallback) const& {
    return has_value() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

/// Marker for Expected<void, E>.
struct Ok {};

template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  constexpr Expected() : ok_(true) {}
  constexpr Expected(Ok) : ok_(true) {}
  constexpr Expected(Unexpected<E> u) : ok_(false), error_(std::move(u).error()) {}

  constexpr bool has_value() const { return ok_; }
  constexpr explicit operator bool() const { return ok_; }
  constexpr const E& error() const& {
    assert(!ok_);
    return error_;
  }

 private:
  bool ok_;
  E error_{};
};

}  // namespace gvfs
