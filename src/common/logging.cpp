#include "common/logging.h"

namespace gvfs::log {
namespace {

Level g_level = Level::kOff;
const SimTime* g_clock = nullptr;

const char* LevelName(Level level) {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Level GetLevel() { return g_level; }
void SetLevel(Level level) { g_level = level; }
void SetClock(const SimTime* now) { g_clock = now; }

void Emit(Level level, const std::string& message) {
  if (level < g_level) return;
  if (g_clock != nullptr) {
    std::fprintf(stderr, "[%10.4fs] %s %s\n", ToSeconds(*g_clock),
                 LevelName(level), message.c_str());
  } else {
    std::fprintf(stderr, "%s %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace gvfs::log
