// Fundamental value types shared by every module: simulated time, byte
// buffers, and identifiers for simulated hosts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gvfs {

/// Simulated time since simulation start, in nanoseconds.
/// All protocol timestamps, cache expirations, and runtimes are expressed in
/// this virtual clock; the discrete-event scheduler advances it.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr Duration Nanoseconds(std::int64_t n) { return n; }
constexpr Duration Microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration Milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(std::int64_t n) { return n * kSecond; }
constexpr Duration SecondsF(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Converts a simulated duration to fractional seconds (for reporting).
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Raw message payload bytes.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only window over message bytes. Decoders hand these out
/// instead of copies; the owner of the underlying buffer must outlive them.
using ByteView = std::span<const std::uint8_t>;

/// Identifies a simulated host (machine) in the network topology.
using HostId = std::uint32_t;

constexpr HostId kInvalidHost = ~0u;

/// Human-readable label, e.g. for hosts and RPC procedures in stats output.
using Label = std::string;

}  // namespace gvfs
