// Minimal build-a-string JSON emitter shared by the bench harnesses
// (BENCH_*.json artifacts) and the metrics exporters (time-series files).
// Extracted from bench/bench_util.h so library code below the bench layer
// can emit JSON without duplicating the quoting/formatting rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gvfs {

/// Escapes and double-quotes `s` as a JSON string literal.
std::string JsonQuote(const std::string& s);

/// Build-a-string JSON object; values nest by passing another JsonObject (or
/// a vector of them) as the value. Key order is insertion order.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, std::uint64_t value);
  JsonObject& Add(const std::string& key, int value);
  JsonObject& Add(const std::string& key, bool value);
  JsonObject& Add(const std::string& key, const char* value);
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const JsonObject& value);
  JsonObject& Add(const std::string& key, const std::vector<JsonObject>& value);
  /// Inserts `rendered` verbatim (caller guarantees it is valid JSON).
  JsonObject& AddRaw(const std::string& key, const std::string& rendered);

  std::string Dump() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Writes `content` to `path`; complains on stderr (and returns false) when
/// the file cannot be created.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace gvfs
