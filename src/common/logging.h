// Lightweight leveled logging. Off by default; enable per-run via
// gvfs::log::SetLevel for debugging protocol traces.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.h"

namespace gvfs::log {

enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

Level GetLevel();
void SetLevel(Level level);

/// Sets the clock used to timestamp log lines (simulation time). May be null.
void SetClock(const SimTime* now);

void Emit(Level level, const std::string& message);

template <typename... Args>
void Logf(Level level, const char* fmt, Args... args) {
  if (level < GetLevel()) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  Emit(level, buf);
}

}  // namespace gvfs::log

#define GVFS_TRACE(...) ::gvfs::log::Logf(::gvfs::log::Level::kTrace, __VA_ARGS__)
#define GVFS_DEBUG(...) ::gvfs::log::Logf(::gvfs::log::Level::kDebug, __VA_ARGS__)
#define GVFS_INFO(...) ::gvfs::log::Logf(::gvfs::log::Level::kInfo, __VA_ARGS__)
#define GVFS_WARN(...) ::gvfs::log::Logf(::gvfs::log::Level::kWarn, __VA_ARGS__)
