#include "common/json_writer.h"

#include <cstdio>
#include <fstream>

namespace gvfs {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonObject& JsonObject::Add(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return AddRaw(key, buf);
}

JsonObject& JsonObject::Add(const std::string& key, std::uint64_t value) {
  return AddRaw(key, std::to_string(value));
}

JsonObject& JsonObject::Add(const std::string& key, int value) {
  return AddRaw(key, std::to_string(value));
}

JsonObject& JsonObject::Add(const std::string& key, bool value) {
  return AddRaw(key, value ? "true" : "false");
}

JsonObject& JsonObject::Add(const std::string& key, const char* value) {
  return AddRaw(key, JsonQuote(value));
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  return AddRaw(key, JsonQuote(value));
}

JsonObject& JsonObject::Add(const std::string& key, const JsonObject& value) {
  return AddRaw(key, value.Dump());
}

JsonObject& JsonObject::Add(const std::string& key,
                            const std::vector<JsonObject>& value) {
  std::string arr = "[";
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (i > 0) arr += ",";
    arr += value[i].Dump();
  }
  arr += "]";
  return AddRaw(key, arr);
}

JsonObject& JsonObject::AddRaw(const std::string& key,
                               const std::string& rendered) {
  if (!body_.empty()) body_ += ",";
  body_ += JsonQuote(key) + ":" + rendered;
  return *this;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace gvfs
