#include "memfs/memfs.h"

#include <algorithm>
#include <cassert>

namespace gvfs::memfs {

const char* FsErrorName(FsError e) {
  switch (e) {
    case FsError::kNoEnt:
      return "ENOENT";
    case FsError::kExist:
      return "EEXIST";
    case FsError::kNotDir:
      return "ENOTDIR";
    case FsError::kIsDir:
      return "EISDIR";
    case FsError::kNotEmpty:
      return "ENOTEMPTY";
    case FsError::kStale:
      return "ESTALE";
    case FsError::kInval:
      return "EINVAL";
  }
  return "?";
}

MemFs::MemFs(const SimTime* clock) : clock_(clock) {
  root_ = NewInode(FileType::kDirectory, 0755);
  Find(root_)->attr.nlink = 2;
}

MemFs::Inode* MemFs::Find(InodeId id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : it->second.get();
}

const MemFs::Inode* MemFs::Find(InodeId id) const {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : it->second.get();
}

FsResult<MemFs::Inode*> MemFs::FindDir(InodeId id) {
  Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  if (node->attr.type != FileType::kDirectory) return Unexpected(FsError::kNotDir);
  return node;
}

FsResult<const MemFs::Inode*> MemFs::FindDir(InodeId id) const {
  const Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  if (node->attr.type != FileType::kDirectory) return Unexpected(FsError::kNotDir);
  return node;
}

InodeId MemFs::NewInode(FileType type, std::uint32_t mode) {
  const InodeId id = next_id_++;
  auto inode = std::make_unique<Inode>();
  inode->attr.type = type;
  inode->attr.mode = mode;
  inode->attr.fileid = id;
  inode->attr.nlink = type == FileType::kDirectory ? 2 : 1;
  inode->attr.atime = inode->attr.mtime = inode->attr.ctime = Now();
  inodes_[id] = std::move(inode);
  return id;
}

void MemFs::TouchDir(Inode& dir) {
  dir.attr.mtime = dir.attr.ctime = Now();
}

void MemFs::Unref(InodeId id) {
  Inode* node = Find(id);
  assert(node != nullptr && node->attr.nlink > 0);
  --node->attr.nlink;
  node->attr.ctime = Now();
  if (node->attr.nlink == 0) {
    total_bytes_ -= node->data.size();
    inodes_.erase(id);
  }
}

FsResult<InodeAttr> MemFs::GetAttr(InodeId id) const {
  const Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  return node->attr;
}

FsResult<InodeAttr> MemFs::SetAttr(InodeId id, const SetAttrRequest& req) {
  Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  if (req.size.has_value()) {
    if (node->attr.type == FileType::kDirectory) return Unexpected(FsError::kIsDir);
    total_bytes_ -= node->data.size();
    node->data.resize(*req.size, 0);
    total_bytes_ += node->data.size();
    node->attr.size = *req.size;
    node->attr.mtime = Now();
  }
  if (req.mode.has_value()) node->attr.mode = *req.mode;
  if (req.mtime.has_value()) node->attr.mtime = *req.mtime;
  node->attr.ctime = Now();
  return node->attr;
}

FsResult<InodeId> MemFs::Lookup(InodeId dir, const std::string& name) const {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  auto it = (*d)->entries.find(name);
  if (it == (*d)->entries.end()) return Unexpected(FsError::kNoEnt);
  return it->second;
}

FsResult<InodeId> MemFs::Create(InodeId dir, const std::string& name,
                                std::uint32_t mode) {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  if (name.empty() || name == "." || name == "..") return Unexpected(FsError::kInval);
  if ((*d)->entries.count(name) != 0) return Unexpected(FsError::kExist);
  const InodeId id = NewInode(FileType::kRegular, mode);
  (*d)->entries[name] = id;
  TouchDir(**d);
  return id;
}

FsResult<InodeId> MemFs::Mkdir(InodeId dir, const std::string& name,
                               std::uint32_t mode) {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  if (name.empty() || name == "." || name == "..") return Unexpected(FsError::kInval);
  if ((*d)->entries.count(name) != 0) return Unexpected(FsError::kExist);
  const InodeId id = NewInode(FileType::kDirectory, mode);
  (*d)->entries[name] = id;
  ++(*d)->attr.nlink;  // child's ".."
  TouchDir(**d);
  return id;
}

FsResult<void> MemFs::Remove(InodeId dir, const std::string& name) {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  auto it = (*d)->entries.find(name);
  if (it == (*d)->entries.end()) return Unexpected(FsError::kNoEnt);
  Inode* target = Find(it->second);
  assert(target != nullptr);
  if (target->attr.type == FileType::kDirectory) return Unexpected(FsError::kIsDir);
  const InodeId id = it->second;
  (*d)->entries.erase(it);
  TouchDir(**d);
  Unref(id);
  return Ok{};
}

FsResult<void> MemFs::Rmdir(InodeId dir, const std::string& name) {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  auto it = (*d)->entries.find(name);
  if (it == (*d)->entries.end()) return Unexpected(FsError::kNoEnt);
  Inode* target = Find(it->second);
  assert(target != nullptr);
  if (target->attr.type != FileType::kDirectory) return Unexpected(FsError::kNotDir);
  if (!target->entries.empty()) return Unexpected(FsError::kNotEmpty);
  const InodeId id = it->second;
  (*d)->entries.erase(it);
  --(*d)->attr.nlink;
  TouchDir(**d);
  // Directories hold nlink 2 (self + "."); drop both references.
  target->attr.nlink = 0;
  inodes_.erase(id);
  return Ok{};
}

FsResult<void> MemFs::Rename(InodeId from_dir, const std::string& from_name,
                             InodeId to_dir, const std::string& to_name) {
  auto from = FindDir(from_dir);
  if (!from) return Unexpected(from.error());
  auto to = FindDir(to_dir);
  if (!to) return Unexpected(to.error());
  auto it = (*from)->entries.find(from_name);
  if (it == (*from)->entries.end()) return Unexpected(FsError::kNoEnt);
  const InodeId moving = it->second;

  auto existing = (*to)->entries.find(to_name);
  if (existing != (*to)->entries.end()) {
    if (existing->second == moving) return Ok{};  // same file; no-op
    Inode* target = Find(existing->second);
    if (target->attr.type == FileType::kDirectory) {
      if (!target->entries.empty()) return Unexpected(FsError::kNotEmpty);
      --(*to)->attr.nlink;
      inodes_.erase(existing->second);
    } else {
      const InodeId replaced = existing->second;
      (*to)->entries.erase(existing);
      Unref(replaced);
    }
  }

  (*from)->entries.erase(from_name);
  (*to)->entries[to_name] = moving;
  Inode* moved = Find(moving);
  if (moved->attr.type == FileType::kDirectory && from_dir != to_dir) {
    --(*from)->attr.nlink;
    ++(*to)->attr.nlink;
  }
  TouchDir(**from);
  if (from_dir != to_dir) TouchDir(**to);
  moved->attr.ctime = Now();
  return Ok{};
}

FsResult<void> MemFs::Link(InodeId file, InodeId dir, const std::string& name) {
  Inode* target = Find(file);
  if (target == nullptr) return Unexpected(FsError::kStale);
  if (target->attr.type == FileType::kDirectory) return Unexpected(FsError::kIsDir);
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  if ((*d)->entries.count(name) != 0) return Unexpected(FsError::kExist);
  (*d)->entries[name] = file;
  ++target->attr.nlink;
  target->attr.ctime = Now();
  TouchDir(**d);
  return Ok{};
}

FsResult<ReadResult> MemFs::Read(InodeId id, std::uint64_t offset,
                                 std::uint32_t count) const {
  const Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  if (node->attr.type == FileType::kDirectory) return Unexpected(FsError::kIsDir);
  ReadResult result;
  if (offset >= node->data.size()) {
    result.eof = true;
    return result;
  }
  const std::uint64_t end = std::min<std::uint64_t>(offset + count, node->data.size());
  result.data.assign(node->data.begin() + static_cast<std::ptrdiff_t>(offset),
                     node->data.begin() + static_cast<std::ptrdiff_t>(end));
  result.eof = end == node->data.size();
  return result;
}

FsResult<std::uint64_t> MemFs::Write(InodeId id, std::uint64_t offset,
                                     const Bytes& data) {
  Inode* node = Find(id);
  if (node == nullptr) return Unexpected(FsError::kStale);
  if (node->attr.type == FileType::kDirectory) return Unexpected(FsError::kIsDir);
  const std::uint64_t end = offset + data.size();
  if (end > node->data.size()) {
    total_bytes_ += end - node->data.size();
    node->data.resize(end, 0);
  }
  std::copy(data.begin(), data.end(),
            node->data.begin() + static_cast<std::ptrdiff_t>(offset));
  node->attr.size = node->data.size();
  node->attr.mtime = node->attr.ctime = Now();
  return node->attr.size;
}

FsResult<std::vector<DirEntry>> MemFs::ReadDir(InodeId dir, std::uint64_t cookie,
                                               std::uint32_t max_entries) const {
  auto d = FindDir(dir);
  if (!d) return Unexpected(d.error());
  std::vector<DirEntry> out;
  std::uint64_t index = 0;
  for (const auto& [name, inode] : (*d)->entries) {
    ++index;  // cookies are 1-based positions in sorted order
    if (index <= cookie) continue;
    out.push_back(DirEntry{name, inode, index});
    if (out.size() >= max_entries) break;
  }
  return out;
}

FsResult<InodeId> MemFs::ResolvePath(const std::string& path) const {
  InodeId current = root_;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    const std::size_t next = path.find('/', pos);
    const std::string component =
        path.substr(pos, next == std::string::npos ? std::string::npos : next - pos);
    auto looked_up = Lookup(current, component);
    if (!looked_up) return Unexpected(looked_up.error());
    current = *looked_up;
    if (next == std::string::npos) break;
    pos = next;
  }
  return current;
}

}  // namespace gvfs::memfs
