// In-memory inode filesystem: the storage backend exported by the simulated
// NFS server (stands in for the paper's server-side ext3 export).
//
// Supports regular files, directories, and hard links with POSIX-ish
// semantics: link counts, mtime/ctime maintenance, monotonically increasing
// inode numbers (never reused, so a stale NFS handle reliably maps to
// ESTALE), and deterministic readdir ordering.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/types.h"

namespace gvfs::memfs {

using InodeId = std::uint64_t;

enum class FsError {
  kNoEnt,     // no such file or directory
  kExist,     // name already exists
  kNotDir,    // path component is not a directory
  kIsDir,     // operation not valid on a directory
  kNotEmpty,  // directory not empty
  kStale,     // inode id no longer exists
  kInval,     // invalid argument
};

const char* FsErrorName(FsError e);

enum class FileType { kRegular, kDirectory };

struct InodeAttr {
  FileType type = FileType::kRegular;
  std::uint32_t mode = 0644;
  std::uint32_t nlink = 1;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  InodeId fileid = 0;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
};

struct DirEntry {
  std::string name;
  InodeId inode = 0;
  std::uint64_t cookie = 0;  // opaque resume position for the *next* call
};

struct ReadResult {
  Bytes data;
  bool eof = false;
};

/// Requested attribute changes; unset fields are left alone.
struct SetAttrRequest {
  std::optional<std::uint32_t> mode;
  std::optional<std::uint64_t> size;  // truncate/extend
  std::optional<SimTime> mtime;
};

template <typename T>
using FsResult = Expected<T, FsError>;

class MemFs {
 public:
  /// `clock` supplies timestamps for ctime/mtime/atime; it must outlive the
  /// filesystem (pass the simulation clock).
  explicit MemFs(const SimTime* clock);

  InodeId root() const { return root_; }

  FsResult<InodeAttr> GetAttr(InodeId id) const;
  FsResult<InodeAttr> SetAttr(InodeId id, const SetAttrRequest& req);

  FsResult<InodeId> Lookup(InodeId dir, const std::string& name) const;

  FsResult<InodeId> Create(InodeId dir, const std::string& name, std::uint32_t mode);
  FsResult<InodeId> Mkdir(InodeId dir, const std::string& name, std::uint32_t mode);

  /// Unlinks a regular file name (decrements link count; frees at zero).
  FsResult<void> Remove(InodeId dir, const std::string& name);
  /// Removes an empty directory.
  FsResult<void> Rmdir(InodeId dir, const std::string& name);

  FsResult<void> Rename(InodeId from_dir, const std::string& from_name,
                        InodeId to_dir, const std::string& to_name);

  /// Hard link: adds `name` in `dir` referring to existing regular file.
  FsResult<void> Link(InodeId file, InodeId dir, const std::string& name);

  FsResult<ReadResult> Read(InodeId id, std::uint64_t offset, std::uint32_t count) const;

  /// Returns the file size after the write.
  FsResult<std::uint64_t> Write(InodeId id, std::uint64_t offset, const Bytes& data);

  /// Lists entries starting after `cookie` (0 = from the beginning), at most
  /// max_entries. Deterministic (name-sorted) order.
  FsResult<std::vector<DirEntry>> ReadDir(InodeId dir, std::uint64_t cookie,
                                          std::uint32_t max_entries) const;

  /// Convenience for tests/workload setup: resolves an absolute slash path.
  FsResult<InodeId> ResolvePath(const std::string& path) const;

  /// Total bytes of file content stored (for FSSTAT).
  std::uint64_t TotalBytes() const { return total_bytes_; }
  std::uint64_t InodeCount() const { return inodes_.size(); }

 private:
  struct Inode {
    InodeAttr attr;
    Bytes data;                              // regular files
    std::map<std::string, InodeId> entries;  // directories
  };

  SimTime Now() const { return *clock_; }

  Inode* Find(InodeId id);
  const Inode* Find(InodeId id) const;
  FsResult<Inode*> FindDir(InodeId id);
  FsResult<const Inode*> FindDir(InodeId id) const;

  InodeId NewInode(FileType type, std::uint32_t mode);
  void TouchDir(Inode& dir);
  void Unref(InodeId id);

  const SimTime* clock_;
  std::map<InodeId, std::unique_ptr<Inode>> inodes_;
  InodeId next_id_ = 1;
  InodeId root_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gvfs::memfs
