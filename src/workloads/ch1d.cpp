#include "workloads/ch1d.h"

#include <string>

#include "sim/sync.h"

namespace gvfs::workloads {

using kclient::KernelClient;
using kclient::OpenFlags;

namespace {

std::string InputPath(int index) { return "/data/in" + std::to_string(index); }

}  // namespace

sim::Task<Ch1dReport> RunCh1d(sim::Scheduler& sched, KernelClient& producer,
                              KernelClient& consumer, Ch1dConfig config) {
  Ch1dReport report;
  auto mkdir = co_await producer.Mkdir("/data");
  if (!mkdir) report.ok = false;

  int total_files = 0;
  for (int run = 1; run <= config.runs; ++run) {
    // Producer: 30 more observation files.
    for (int f = 0; f < config.files_per_run; ++f) {
      auto fd = co_await producer.Open(
          InputPath(total_files + f),
          OpenFlags{.read = true, .write = true, .create = true});
      if (!fd) {
        report.ok = false;
        continue;
      }
      (void)co_await producer.Write(*fd, 0, Bytes(config.file_bytes, 'd'));
      (void)co_await producer.Close(*fd);
    }
    total_files += config.files_per_run;

    // Consumer: process the entire dataset accumulated so far.
    const SimTime start = sched.Now();
    auto listing = co_await consumer.ReadDir("/data");
    if (!listing || static_cast<int>(listing->size()) != total_files) {
      report.ok = false;
    }
    for (int f = 0; f < total_files; ++f) {
      auto fd = co_await consumer.Open(InputPath(f), OpenFlags{});
      if (!fd) {
        report.ok = false;
        continue;
      }
      (void)co_await consumer.Read(*fd, 0, config.file_bytes);
      (void)co_await consumer.Close(*fd);
      co_await sim::Sleep(sched, config.compute_per_file);
    }
    co_await sim::Sleep(sched, config.compute_base);
    report.run_seconds.push_back(ToSeconds(sched.Now() - start));
  }
  co_return report;
}

}  // namespace gvfs::workloads
