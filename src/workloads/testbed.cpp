#include "workloads/testbed.h"

namespace gvfs::workloads {

namespace {
constexpr std::uint32_t kNfsdPort = 2049;
}

sim::Task<void> GvfsSession::Shutdown() {
  for (auto* proxy : proxies) co_await proxy->Shutdown();
}

sim::Task<void> FleetSession::Shutdown() {
  for (auto* proxy : proxies) co_await proxy->Shutdown();
  if (aggregator != nullptr) aggregator->Stop();
}

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      network_(sched_),
      domain_(sched_, network_),
      fs_(sched_.NowPtr()),
      server_host_(network_.AddHost("server")) {
  nfsd_node_ = &domain_.CreateNode(server_host_, kNfsdPort, "nfsd");
  nfsd_ = std::make_unique<nfs3::Nfs3Server>(sched_, fs_, *nfsd_node_);
}

metrics::Registry& Testbed::EnableMetrics(Duration period) {
  if (metrics_registry_ == nullptr) {
    metrics_registry_ = std::make_unique<metrics::Registry>();
    metrics_sampler_ = std::make_unique<metrics::Sampler>(
        sched_, *metrics_registry_, period);
    metrics_sampler_->Start();
  }
  return *metrics_registry_;
}

obs::Watchdog& Testbed::EnableDiagnosis(obs::ObsConfig config) {
  if (watchdog_ == nullptr) {
    metrics::Registry& registry = EnableMetrics();
    watchdog_ = std::make_unique<obs::Watchdog>(sched_, config);
    watchdog_->WatchRegistry(&registry);
    watchdog_->AttachMetrics(registry);
    if (trace_buffer_ != nullptr) {
      watchdog_->WatchTrace(trace_buffer_.get());
      watchdog_->SetTracer(
          trace::Tracer(trace_buffer_.get(), sched_.NowPtr()), server_host_);
    }
    watchdog_->Start();

    recorder_ = std::make_unique<obs::FlightRecorder>();
    recorder_->SetRegistry(&registry);
    recorder_->SetClock(sched_.NowPtr());
    recorder_->SetWatchdog(watchdog_.get());
    if (trace_buffer_ != nullptr) recorder_->SetTrace(trace_buffer_.get());
  }
  return *watchdog_;
}

void Testbed::DumpOnAnomaly(const std::string& path) {
  EnableDiagnosis();
  dump_path_ = path;
  watchdog_->SetOnAnomaly([this](const obs::Anomaly& anomaly) {
    if (dump_written_ || dump_path_.empty()) return;
    dump_written_ = true;
    recorder_->Dump(dump_path_, std::string("anomaly: ") +
                                    obs::AnomalyKindName(anomaly.kind) +
                                    " — " + anomaly.detail);
  });
}

trace::TraceBuffer& Testbed::EnableTracing(std::size_t capacity) {
  if (trace_buffer_ == nullptr) {
    trace_buffer_ = std::make_unique<trace::TraceBuffer>(capacity);
  }
  const trace::Tracer tracer(trace_buffer_.get(), sched_.NowPtr());
  network_.SetTracer(tracer);
  domain_.SetTracer(tracer);  // applies to existing and future nodes
  return *trace_buffer_;
}

int Testbed::AddWanClient() {
  const int index = ClientCount();
  std::string client_name = "c";
  client_name += std::to_string(index);
  HostId host = network_.AddHost(client_name);
  network_.Connect(host, server_host_, config_.wan);
  client_hosts_.push_back(host);
  return index;
}

int Testbed::AddLanClient() {
  const int index = ClientCount();
  HostId host = network_.AddHost("lan" + std::to_string(index));
  network_.Connect(host, server_host_, config_.lan);
  client_hosts_.push_back(host);
  return index;
}

kclient::KernelClient& Testbed::NativeMount(int index,
                                            kclient::MountOptions options) {
  HostId host = client_hosts_.at(index);
  rpc::RpcNode& node =
      domain_.CreateNode(host, next_port_++, "kclient@" + network_.HostName(host));
  stats_.push_back(std::make_unique<rpc::StatsMap>());
  node.SetStatsSink(stats_.back().get());

  mounts_.push_back(std::make_unique<kclient::KernelClient>(
      sched_, node, nfsd_node_->address(), nfsd_->RootFh(), std::move(options)));
  mount_stats_[mounts_.back().get()] = stats_.back().get();
  return *mounts_.back();
}

GvfsSession& Testbed::CreateSession(const proxy::SessionConfig& config,
                                    const std::vector<int>& clients,
                                    kclient::MountOptions kernel_options) {
  sessions_.push_back(GvfsSession{});
  GvfsSession& session = sessions_.back();

  stats_.push_back(std::make_unique<rpc::StatsMap>());
  rpc::StatsMap* stats = stats_.back().get();
  session.stats = stats;

  // Proxy server beside the kernel NFS server (loopback upstream).
  const std::uint32_t session_port = next_port_++;
  rpc::RpcNode& server_node =
      domain_.CreateNode(server_host_, session_port, "proxy-server");
  server_node.SetStatsSink(stats);  // counts CALLBACK / recovery traffic
  proxy_servers_.push_back(std::make_unique<proxy::ProxyServer>(
      sched_, server_node, nfsd_node_->address(), config));
  session.server = proxy_servers_.back().get();

  // Observatory wiring: per-session staleness probe (server stamps versions,
  // proxy clients report cached reads into one shared histogram) plus each
  // proxy's telemetry under a session-scoped prefix.
  metrics::StalenessProbe* probe = nullptr;
  std::string session_tag = "s";
  session_tag += std::to_string(sessions_.size() - 1);
  if (metrics_registry_ != nullptr) {
    staleness_probes_.emplace_back();
    probe = &staleness_probes_.back();
    probe->SetHistogram(
        &metrics_registry_->GetHistogram(session_tag + ".staleness_us"));
    session.server->AttachMetrics(*metrics_registry_, session_tag + ".", probe);
    metrics_registry_->AddProbe(session_tag + ".rpc_in_flight", [stats] {
      return static_cast<double>(stats->InFlight());
    });
  }

  if (watchdog_ != nullptr) {
    // Staleness SLO: polling-path sessions carry the paper's proven
    // poll_period + 2*RTT bound (adaptive sessions start in polling mode).
    if (config.model == proxy::ConsistencyModel::kInvalidationPolling ||
        config.adaptive) {
      watchdog_->AddStalenessSlo(
          session_tag + ".staleness_us",
          config.poll_period + 4 * config_.wan.one_way_latency);
    }
    proxy::ProxyServer* server = session.server;
    recorder_->AddStateProvider(session_tag + ".server", [server] {
      return server->SnapshotState().Dump();
    });
  }

  for (int index : clients) {
    HostId host = client_hosts_.at(index);
    // Proxy client: serves the local kernel client, calls the proxy server
    // across the WAN (counted), and answers callbacks.
    rpc::RpcNode& proxy_node = domain_.CreateNode(
        host, session_port, "proxy-client@" + network_.HostName(host));
    proxy_node.SetStatsSink(stats);
    proxy_clients_.push_back(std::make_unique<proxy::ProxyClient>(
        sched_, proxy_node, server_node.address(), config));
    proxy::ProxyClient* proxy = proxy_clients_.back().get();
    if (metrics_registry_ != nullptr) {
      proxy->AttachMetrics(
          *metrics_registry_,
          session_tag + ".c" + std::to_string(host) + ".", probe);
    }
    if (watchdog_ != nullptr) {
      recorder_->AddStateProvider(
          session_tag + ".c" + std::to_string(host),
          [proxy] { return proxy->SnapshotState().Dump(); });
    }
    proxy->Start();
    session.proxies.push_back(proxy);

    // Unmodified kernel client, mounted against the local proxy (loopback).
    rpc::RpcNode& kernel_node = domain_.CreateNode(
        host, next_port_++, "kclient@" + network_.HostName(host));
    mounts_.push_back(std::make_unique<kclient::KernelClient>(
        sched_, kernel_node, proxy_node.address(), nfsd_->RootFh(),
        kernel_options));
    session.mounts.push_back(mounts_.back().get());
    mount_stats_[mounts_.back().get()] = stats;
  }
  return session;
}

FleetSession& Testbed::CreateFleetSession(const FleetConfig& config,
                                          const std::vector<int>& clients,
                                          std::size_t active_mounts,
                                          kclient::MountOptions kernel_options) {
  fleet_sessions_.push_back(FleetSession{});
  FleetSession& session = fleet_sessions_.back();

  stats_.push_back(std::make_unique<rpc::StatsMap>());
  rpc::StatsMap* stats = stats_.back().get();
  session.stats = stats;

  std::string tag = "f";
  tag += std::to_string(fleet_sessions_.size() - 1);

  // Reserve the shard ports up front: every shard (and every client) needs
  // the full ShardOf-indexed address vector before any node is created.
  const std::uint32_t shard_count = std::max<std::uint32_t>(1, config.shards);
  std::vector<net::Address> shard_addrs;
  shard_addrs.reserve(shard_count);
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    shard_addrs.push_back(net::Address{server_host_, next_port_++});
  }
  const std::uint32_t agg_port = next_port_++;
  const std::uint32_t client_port = next_port_++;
  session.router = fleet::ShardRouter(shard_addrs);

  metrics::StalenessProbe* probe = nullptr;
  if (metrics_registry_ != nullptr) {
    staleness_probes_.emplace_back();
    probe = &staleness_probes_.back();
    probe->SetHistogram(&metrics_registry_->GetHistogram(tag + ".staleness_us"));
    metrics_registry_->AddProbe(tag + ".rpc_in_flight", [stats] {
      return static_cast<double>(stats->InFlight());
    });
  }

  if (watchdog_ != nullptr) {
    if (config.session.model == proxy::ConsistencyModel::kInvalidationPolling ||
        config.session.adaptive) {
      watchdog_->AddStalenessSlo(
          tag + ".staleness_us",
          config.session.poll_period + 4 * config_.wan.one_way_latency);
    }
    if (shard_count >= 2) {
      std::vector<std::string> occupancy;
      occupancy.reserve(shard_count);
      for (std::uint32_t k = 0; k < shard_count; ++k) {
        occupancy.push_back(tag + ".s" + std::to_string(k) +
                            ".inv_buffer_entries");
      }
      watchdog_->WatchShardGroup(tag, occupancy);
    }
  }

  // Shards, all beside the kernel NFS server (loopback upstream). Each owns
  // the ShardOf slice at its index; foreign-handle mutations are forwarded
  // with NOTIFYINV.
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    rpc::RpcNode& shard_node = domain_.CreateNode(
        server_host_, shard_addrs[k].port, "proxy-shard" + std::to_string(k));
    shard_node.SetStatsSink(stats);
    proxy::SessionConfig shard_config = config.session;
    shard_config.shard_addrs = shard_addrs;
    shard_config.shard_index = k;
    proxy_servers_.push_back(std::make_unique<proxy::ProxyServer>(
        sched_, shard_node, nfsd_node_->address(), shard_config));
    session.shards.push_back(proxy_servers_.back().get());
    if (metrics_registry_ != nullptr) {
      session.shards.back()->AttachMetrics(
          *metrics_registry_, tag + ".s" + std::to_string(k) + ".", probe);
    }
    if (watchdog_ != nullptr) {
      proxy::ProxyServer* shard = session.shards.back();
      recorder_->AddStateProvider(tag + ".s" + std::to_string(k), [shard] {
        return shard->SnapshotState().Dump();
      });
    }
  }

  // Aggregation tier: its own host, LAN-adjacent to the server so its
  // upstream polls are cheap, reached by clients over the WAN.
  net::Address agg_addr{};
  if (config.aggregate) {
    const HostId agg_host = network_.AddHost(tag + "-agg");
    network_.Connect(agg_host, server_host_, config_.lan);
    rpc::RpcNode& agg_node =
        domain_.CreateNode(agg_host, agg_port, "inv-agg");
    agg_node.SetStatsSink(stats);
    agg_addr = agg_node.address();
    fleet::InvAggregatorConfig agg_config = config.aggregator;
    agg_config.shards = shard_addrs;
    aggregators_.push_back(std::make_unique<fleet::InvAggregator>(
        sched_, agg_node, std::move(agg_config)));
    session.aggregator = aggregators_.back().get();
    if (metrics_registry_ != nullptr) {
      session.aggregator->AttachMetrics(*metrics_registry_, tag + ".agg.");
    }
    session.aggregator->Start();
  }

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const HostId host = client_hosts_.at(clients[i]);
    if (config.aggregate) {
      // Clients reach the aggregator over the same WAN they'd use for the
      // server; the tier's win is server-side fan-in, not client latency.
      network_.Connect(host, agg_addr.host, config_.wan);
    }
    rpc::RpcNode& proxy_node = domain_.CreateNode(
        host, client_port, "proxy-client@" + network_.HostName(host));
    proxy_node.SetStatsSink(stats);
    proxy::SessionConfig client_config = config.session;
    client_config.shard_addrs = shard_addrs;
    if (config.aggregate) client_config.getinv_targets = {agg_addr};
    proxy_clients_.push_back(std::make_unique<proxy::ProxyClient>(
        sched_, proxy_node, shard_addrs[0], client_config));
    proxy::ProxyClient* proxy = proxy_clients_.back().get();
    if (metrics_registry_ != nullptr) {
      proxy->AttachMetrics(*metrics_registry_,
                           tag + ".c" + std::to_string(host) + ".", probe);
    }
    // Providers only for active mounts: a 4096-member poll-only fleet would
    // otherwise dominate every dump with idle client snapshots.
    if (watchdog_ != nullptr && i < active_mounts) {
      recorder_->AddStateProvider(tag + ".c" + std::to_string(host),
                                  [proxy] { return proxy->SnapshotState().Dump(); });
    }
    proxy->Start();
    session.proxies.push_back(proxy);

    if (i < active_mounts) {
      rpc::RpcNode& kernel_node = domain_.CreateNode(
          host, next_port_++, "kclient@" + network_.HostName(host));
      mounts_.push_back(std::make_unique<kclient::KernelClient>(
          sched_, kernel_node, proxy_node.address(), nfsd_->RootFh(),
          kernel_options));
      session.mounts.push_back(mounts_.back().get());
      mount_stats_[mounts_.back().get()] = stats;
    }
  }
  return session;
}

afs::AfsClient& Testbed::AfsMount(int index) {
  if (!afs_server_) {
    rpc::RpcNode& node = domain_.CreateNode(server_host_, 7000, "afsd");
    afs_server_ = std::make_unique<afs::AfsServer>(sched_, fs_, node);
  }
  HostId host = client_hosts_.at(index);
  rpc::RpcNode& node =
      domain_.CreateNode(host, next_port_++, "afs@" + network_.HostName(host));
  afs_clients_.push_back(std::make_unique<afs::AfsClient>(
      sched_, node, net::Address{server_host_, 7000}));
  return *afs_clients_.back();
}

rpc::StatsMap& Testbed::StatsOf(const kclient::KernelClient& mount) {
  return *mount_stats_.at(&mount);
}

}  // namespace gvfs::workloads
