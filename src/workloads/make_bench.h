// "Make" microbenchmark (paper §5.1.1, Figure 4): an Andrew-benchmark-style
// build of a Tcl/Tk-sized source tree — 357 C sources, 103 headers, 168
// objects. The workload generator replays the file-system operation stream a
// make produces: a dependency-check pass stat'ing every file, then per
// object: read sources and cross-referenced headers, compile (virtual CPU
// time), write the object file; finally link everything.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "kclient/kernel_client.h"
#include "memfs/memfs.h"
#include "sim/task.h"

namespace gvfs::workloads {

struct MakeConfig {
  MakeConfig() = default;
  MakeConfig(const MakeConfig&) = default;
  MakeConfig& operator=(const MakeConfig&) = default;

  int sources = 357;
  int headers = 103;
  int objects = 168;
  /// Headers cross-referenced while compiling one object.
  int headers_per_object = 12;
  std::uint32_t source_bytes = 12 * 1024;
  std::uint32_t header_bytes = 4 * 1024;
  std::uint32_t object_bytes = 16 * 1024;
  /// Virtual CPU time per object compiled and for the final link.
  Duration compile_cpu = Milliseconds(900);
  Duration link_cpu = Seconds(5);
  std::uint64_t seed = 42;
};

struct MakeReport {
  SimTime started_at = 0;
  SimTime finished_at = 0;
  bool ok = true;
  double RuntimeSeconds() const { return ToSeconds(finished_at - started_at); }
};

/// Creates the source tree (/src/*.c, /include/*.h, /Makefile) in the
/// exported filesystem.
void PopulateMakeTree(memfs::MemFs& fs, const MakeConfig& config);

/// Runs the build through `mount`, charging compile CPU on `sched`.
sim::Task<MakeReport> RunMake(sim::Scheduler& sched, kclient::KernelClient& mount,
                              MakeConfig config);

}  // namespace gvfs::workloads
