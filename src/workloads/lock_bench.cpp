#include "workloads/lock_bench.h"

#include <string>

#include "sim/sync.h"

namespace gvfs::workloads {

using kclient::OpenFlags;
using kclient::Vfs;
using nfs3::Status;

namespace {

struct SharedState {
  LockBenchReport report;
  int clients_done = 0;
};

sim::Task<void> Competitor(sim::Scheduler* sched, Vfs* mount, int id,
                           LockBenchConfig config, SharedState* shared) {
  // Private scratch directory: temp files do not churn the shared dir.
  const std::string scratch = "/scratch_" + std::to_string(id);
  (void)co_await mount->Mkdir(scratch);
  const std::string temp_path = scratch + "/tmp";
  int acquired = 0;
  while (acquired < config.acquisitions_per_client) {
    // The job script consults its (read-only) config/status files each
    // round; these are never modified during the benchmark.
    for (int f = 0; f < config.shared_files; ++f) {
      (void)co_await mount->Stat("/shared_" + std::to_string(f));
    }
    // Gate on the (possibly stale) cached view of the lock file.
    auto exists = co_await mount->Exists("/lockfile");
    if (exists.has_value() && *exists) {
      ++shared->report.failed_attempts;
      co_await sim::Sleep(*sched, config.retry_pause);
      continue;
    }

    // Attempt: create a private temp file, hard-link it to the lock name.
    auto fd = co_await mount->Open(
        temp_path, OpenFlags{.read = true, .write = true, .create = true});
    if (fd) (void)co_await mount->Close(*fd);
    auto linked = co_await mount->Link(temp_path, "/lockfile");
    (void)co_await mount->Unlink(temp_path);

    if (!linked) {
      // Lost the race (EEXIST) or transient failure: retry after a pause.
      ++shared->report.failed_attempts;
      co_await sim::Sleep(*sched, config.retry_pause);
      continue;
    }

    // Lock held.
    auto& order = shared->report.acquisition_order;
    if (!order.empty() && order.back() == id) ++shared->report.self_handoffs;
    order.push_back(id);
    ++acquired;

    co_await sim::Sleep(*sched, config.hold_time);
    (void)co_await mount->Unlink("/lockfile");
    co_await sim::Sleep(*sched, config.post_release_pause);
  }
  ++shared->clients_done;
}

}  // namespace

int LockBenchReport::MaxConsecutiveByOneClient() const {
  int best = 0;
  int run = 0;
  int prev = -1;
  for (int id : acquisition_order) {
    run = (id == prev) ? run + 1 : 1;
    prev = id;
    best = std::max(best, run);
  }
  return best;
}

sim::Task<LockBenchReport> RunLockBench(sim::Scheduler& sched,
                                        std::vector<kclient::Vfs*> mounts,
                                        LockBenchConfig config) {
  auto shared = std::make_unique<SharedState>();
  // Create the shared read-only files through the first mount.
  for (int f = 0; f < config.shared_files; ++f) {
    kclient::OpenFlags flags{.read = true, .write = true, .create = true};
    auto fd = co_await mounts.at(0)->Open("/shared_" + std::to_string(f), flags);
    if (fd) (void)co_await mounts.at(0)->Close(*fd);
  }
  std::vector<sim::Task<void>> tasks;
  tasks.reserve(mounts.size());
  for (std::size_t i = 0; i < mounts.size(); ++i) {
    tasks.push_back(
        Competitor(&sched, mounts[i], static_cast<int>(i), config, shared.get()));
  }
  co_await sim::WhenAll(sched, std::move(tasks));
  shared->report.finished_at = sched.Now();
  co_return shared->report;
}

}  // namespace gvfs::workloads
