// CH1D coastal-ocean-modeling benchmark (paper §5.2.2, Figure 8): a
// producer/consumer pipeline. The data-producing program (on-site
// observation client) runs 15 times, each run adding 30 input files; after
// each producer run the data-processing program (off-site compute client)
// processes the whole accumulated dataset. The paper shares the data via
// native NFS or a GVFS session with delegation/callback consistency.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "kclient/kernel_client.h"
#include "sim/task.h"

namespace gvfs::workloads {

struct Ch1dConfig {
  Ch1dConfig() = default;
  Ch1dConfig(const Ch1dConfig&) = default;
  Ch1dConfig& operator=(const Ch1dConfig&) = default;

  int runs = 15;
  int files_per_run = 30;
  std::uint32_t file_bytes = 64 * 1024;
  /// Virtual CPU the consumer spends per run (model fitting etc.) plus a
  /// small per-file analysis cost.
  Duration compute_base = Seconds(6);
  Duration compute_per_file = Milliseconds(5);
};

struct Ch1dReport {
  /// Consumer runtime per run, in seconds.
  std::vector<double> run_seconds;
  bool ok = true;
};

/// Runs the pipeline: producer writes through `producer`, consumer processes
/// through `consumer`. Both mounts must see the same exported tree.
sim::Task<Ch1dReport> RunCh1d(sim::Scheduler& sched,
                              kclient::KernelClient& producer,
                              kclient::KernelClient& consumer, Ch1dConfig config);

}  // namespace gvfs::workloads
