// File-based lock benchmark (paper §5.1.2, Figure 6): N distributed clients
// compete for a lock implemented with the classic create-temp + hard-link
// idiom. A holder pauses 10 s then unlinks the lock; losers pause 1 s and
// retry; each client must acquire the lock 10 times.
//
// The consistency/performance tradeoff shows up through the existence check
// that gates each attempt: with relaxed consistency a released lock stays
// visible in stale caches, so the previous owner (which saw its own unlink)
// tends to reacquire — unfairness and idle gaps the paper measures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "kclient/vfs.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::workloads {

struct LockBenchConfig {
  LockBenchConfig() = default;
  LockBenchConfig(const LockBenchConfig&) = default;
  LockBenchConfig& operator=(const LockBenchConfig&) = default;

  int acquisitions_per_client = 10;
  Duration hold_time = Seconds(10);
  Duration retry_pause = Seconds(1);
  Duration post_release_pause = Seconds(1);
  /// Read-only files (job script, config, status) each attempt loop checks
  /// besides the lock itself. Per-file revalidation makes NFS poll each of
  /// them; GVFS covers them all with one invalidation buffer / delegation.
  int shared_files = 4;
};

struct LockBenchReport {
  SimTime finished_at = 0;
  /// Sequence of client ids in acquisition order (fairness analysis).
  std::vector<int> acquisition_order;
  /// Times the lock went straight back to its previous owner.
  int self_handoffs = 0;
  std::uint64_t failed_attempts = 0;

  double RuntimeSeconds() const { return ToSeconds(finished_at); }
  /// Fairness: max consecutive acquisitions by one client.
  int MaxConsecutiveByOneClient() const;
};

/// Runs the competition across the given mounts (one per client). Returns
/// once every client has acquired the lock `acquisitions_per_client` times.
sim::Task<LockBenchReport> RunLockBench(sim::Scheduler& sched,
                                        std::vector<kclient::Vfs*> mounts,
                                        LockBenchConfig config);

}  // namespace gvfs::workloads
