#include "workloads/make_bench.h"

#include "sim/sync.h"

namespace gvfs::workloads {

using kclient::KernelClient;
using kclient::OpenFlags;

namespace {

std::string SourcePath(int i) { return "/src/s" + std::to_string(i) + ".c"; }
std::string HeaderPath(int i) { return "/include/h" + std::to_string(i) + ".h"; }
std::string ObjectPath(int i) { return "/obj/o" + std::to_string(i) + ".o"; }

}  // namespace

void PopulateMakeTree(memfs::MemFs& fs, const MakeConfig& config) {
  auto src = fs.Mkdir(fs.root(), "src", 0755);
  auto include = fs.Mkdir(fs.root(), "include", 0755);
  auto obj = fs.Mkdir(fs.root(), "obj", 0755);
  (void)obj;
  auto makefile = fs.Create(fs.root(), "Makefile", 0644);
  (void)fs.Write(*makefile, 0, Bytes(8 * 1024, 'M'));

  for (int i = 0; i < config.sources; ++i) {
    auto ino = fs.Create(*src, "s" + std::to_string(i) + ".c", 0644);
    (void)fs.Write(*ino, 0, Bytes(config.source_bytes, 'c'));
  }
  for (int i = 0; i < config.headers; ++i) {
    auto ino = fs.Create(*include, "h" + std::to_string(i) + ".h", 0644);
    (void)fs.Write(*ino, 0, Bytes(config.header_bytes, 'h'));
  }
}

sim::Task<MakeReport> RunMake(sim::Scheduler& sched, kclient::KernelClient& mount,
                              MakeConfig config) {
  MakeReport report;
  report.started_at = sched.Now();
  Rng rng(config.seed);

  // Phase 1 — dependency scan: make stats the Makefile, every source, every
  // header, and probes for every (not yet existing) object.
  (void)co_await mount.Stat("/Makefile");
  for (int i = 0; i < config.sources; ++i) {
    auto attr = co_await mount.Stat(SourcePath(i));
    if (!attr) report.ok = false;
  }
  for (int i = 0; i < config.headers; ++i) {
    auto attr = co_await mount.Stat(HeaderPath(i));
    if (!attr) report.ok = false;
  }
  for (int i = 0; i < config.objects; ++i) {
    (void)co_await mount.Exists(ObjectPath(i));
  }

  // Phase 2 — compile each object: read its sources and the headers they
  // cross-reference, then emit the object file.
  const int sources_per_object =
      (config.sources + config.objects - 1) / config.objects;
  int next_source = 0;
  for (int obj = 0; obj < config.objects; ++obj) {
    // make re-checks the dependencies of this target just before building.
    for (int s = 0; s < sources_per_object && next_source + s < config.sources;
         ++s) {
      (void)co_await mount.Stat(SourcePath(next_source + s));
    }

    for (int s = 0; s < sources_per_object && next_source < config.sources; ++s) {
      const std::string path = SourcePath(next_source++);
      auto fd = co_await mount.Open(path, OpenFlags{});
      if (!fd) {
        report.ok = false;
        continue;
      }
      (void)co_await mount.Read(*fd, 0, config.source_bytes);
      (void)co_await mount.Close(*fd);

      // Cross-reference headers (deterministic pseudo-random subset).
      for (int h = 0; h < config.headers_per_object; ++h) {
        const int header = static_cast<int>(rng.Below(config.headers));
        auto hfd = co_await mount.Open(HeaderPath(header), OpenFlags{});
        if (!hfd) {
          report.ok = false;
          continue;
        }
        (void)co_await mount.Read(*hfd, 0, config.header_bytes);
        (void)co_await mount.Close(*hfd);
      }
    }

    co_await sim::Sleep(sched, config.compile_cpu);

    auto ofd = co_await mount.Open(
        ObjectPath(obj), OpenFlags{.read = true, .write = true, .create = true});
    if (!ofd) {
      report.ok = false;
      continue;
    }
    (void)co_await mount.Write(*ofd, 0, Bytes(config.object_bytes, 'o'));
    (void)co_await mount.Close(*ofd);
  }

  // Phase 3 — link: read every object back and write the final binary.
  for (int obj = 0; obj < config.objects; ++obj) {
    auto fd = co_await mount.Open(ObjectPath(obj), OpenFlags{});
    if (!fd) {
      report.ok = false;
      continue;
    }
    (void)co_await mount.Read(*fd, 0, config.object_bytes);
    (void)co_await mount.Close(*fd);
  }
  co_await sim::Sleep(sched, config.link_cpu);
  auto binary = co_await mount.Open(
      "/obj/tclsh", OpenFlags{.read = true, .write = true, .create = true});
  if (binary) {
    (void)co_await mount.Write(
        *binary, 0,
        Bytes(static_cast<std::size_t>(config.objects) * config.object_bytes / 4, 'x'));
    (void)co_await mount.Close(*binary);
  }

  report.finished_at = sched.Now();
  co_return report;
}

}  // namespace gvfs::workloads
