// NanoMOS software-repository benchmark (paper §5.2.1, Figure 7): six WAN
// clients run a compute-intensive simulator in parallel for eight
// iterations, read-sharing the application software (MATLAB ≈ 14 K
// files/directories, MPITB = 540 files) from a repository. Between the 4th
// and 5th iteration a LAN administrator updates either the whole MATLAB
// package (case a) or only MPITB (case b).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "kclient/kernel_client.h"
#include "memfs/memfs.h"
#include "sim/task.h"

namespace gvfs::workloads {

struct NanomosConfig {
  NanomosConfig() = default;
  NanomosConfig(const NanomosConfig&) = default;
  NanomosConfig& operator=(const NanomosConfig&) = default;

  /// Repository shape. MATLAB: `matlab_dirs` directories of
  /// `matlab_files_per_dir` files each (~14 K total); MPITB: 540 files.
  int matlab_dirs = 96;
  int matlab_files_per_dir = 140;  // 96*140 = 13440 + dirs ~= 14K entries
  int mpitb_files = 540;
  std::uint32_t matlab_file_bytes = 2 * 1024;
  std::uint32_t mpitb_file_bytes = 8 * 1024;

  /// Per-iteration working set of one client: all MPITB files plus a slice
  /// of MATLAB (toolboxes the simulator loads) — ~1.4K files, matching the
  /// paper's ~2.7K consistency checks per client per warm run.
  int matlab_working_dirs = 6;
  std::uint32_t working_read_bytes = 8 * 1024;  // bytes read per touched file

  int iterations = 8;
  int update_after_iteration = 4;  // update lands between run 4 and 5
  /// Virtual CPU per iteration (NanoMOS is compute-intensive).
  Duration compute_per_iteration = Seconds(35);
  /// Gap between consecutive iterations (job-scheduler turnaround). Long
  /// enough for an invalidation-polling window to elapse; excluded from the
  /// reported per-iteration runtimes.
  Duration inter_iteration_gap = Seconds(40);
  std::uint64_t seed = 11;
};

enum class UpdateKind { kNone, kMatlab, kMpitb };

struct NanomosReport {
  /// Per-iteration runtime, averaged over the clients, in seconds.
  std::vector<double> iteration_seconds;
  bool ok = true;
};

/// Builds the repository tree (/matlab/d*/f*, /matlab/mpitb/f*).
void PopulateRepository(memfs::MemFs& fs, const NanomosConfig& config);

/// Runs the full experiment: `mounts` are the six compute clients;
/// `admin` performs the update (LAN mount, may be part of the session);
/// `kind` selects which package is updated.
sim::Task<NanomosReport> RunNanomos(sim::Scheduler& sched,
                                    std::vector<kclient::KernelClient*> mounts,
                                    kclient::KernelClient* admin, UpdateKind kind,
                                    NanomosConfig config);

}  // namespace gvfs::workloads
