#include "workloads/postmark.h"

#include <algorithm>
#include <string>

namespace gvfs::workloads {

using kclient::KernelClient;
using kclient::OpenFlags;

namespace {

struct PoolFile {
  std::string path;
  std::uint64_t size = 0;
  bool exists = false;
};

std::string PathFor(int subdir, int index) {
  return "/p" + std::to_string(subdir) + "/f" + std::to_string(index);
}

}  // namespace

sim::Task<PostmarkReport> RunPostmark(sim::Scheduler& sched,
                                      kclient::KernelClient& mount,
                                      PostmarkConfig config) {
  PostmarkReport report;
  report.started_at = sched.Now();
  Rng rng(config.seed);

  auto size_for = [&rng, &config]() {
    return static_cast<std::uint64_t>(
        rng.Range(config.min_size, config.max_size));
  };

  // Subdirectories.
  for (int d = 0; d < config.subdirectories; ++d) {
    auto r = co_await mount.Mkdir("/p" + std::to_string(d));
    if (!r) report.ok = false;
  }

  // Initial pool.
  std::vector<PoolFile> pool(static_cast<std::size_t>(config.files));
  int next_file_id = 0;
  auto create_file = [&](PoolFile& file) -> sim::Task<void> {
    file.path = PathFor(static_cast<int>(rng.Below(config.subdirectories)),
                        next_file_id++);
    file.size = size_for();
    auto fd = co_await mount.Open(
        file.path, OpenFlags{.read = true, .write = true, .create = true});
    if (!fd) {
      report.ok = false;
      co_return;
    }
    Bytes block(config.block_size, 0x50);
    for (std::uint64_t off = 0; off < file.size; off += config.block_size) {
      const std::uint64_t len = std::min<std::uint64_t>(
          config.block_size,
          file.size - off);  // gvfs-lint: allow(use-after-suspend): create_file is always co_awaited by its caller, whose frame keeps the PoolFile argument alive
      block.resize(len, 0x50);
      (void)co_await mount.Write(*fd, off, block);
      block.resize(config.block_size, 0x50);
    }
    (void)co_await mount.Close(*fd);
    file.exists = true;
  };

  for (auto& file : pool) co_await create_file(file);

  // Transactions.
  report.transactions_started_at = sched.Now();
  for (int t = 0; t < config.transactions; ++t) {
    const bool rw = static_cast<int>(rng.Below(10)) < config.rw_bias;
    PoolFile& file = pool[rng.Below(pool.size())];
    if (rw) {
      if (!file.exists) {
        co_await create_file(file);
        ++report.creates;
        continue;
      }
      const bool read = static_cast<int>(rng.Below(10)) < config.read_bias;
      if (read) {
        // gvfs-lint: allow(use-after-suspend): pool is sized once before the transaction loop and never grows, so the PoolFile reference stays valid
        auto fd = co_await mount.Open(file.path, OpenFlags{});
        if (!fd) {
          report.ok = false;
          continue;
        }
        for (std::uint64_t off = 0; off < file.size; off += config.block_size) {
          (void)co_await mount.Read(*fd, off, config.block_size);
        }
        (void)co_await mount.Close(*fd);
        ++report.reads;
      } else {
        auto fd = co_await mount.Open(file.path,
                                      OpenFlags{.read = true, .write = true});
        if (!fd) {
          report.ok = false;
          continue;
        }
        Bytes block(config.block_size, 0x41);
        (void)co_await mount.Write(*fd, file.size, block);
        file.size += config.block_size;
        (void)co_await mount.Close(*fd);
        ++report.appends;
      }
    } else {
      if (file.exists) {
        auto r = co_await mount.Unlink(file.path);
        if (!r) report.ok = false;
        file.exists = false;
        ++report.deletes;
      } else {
        co_await create_file(file);
        ++report.creates;
      }
    }
  }

  report.transactions_finished_at = sched.Now();

  // Teardown: delete remaining files.
  for (auto& file : pool) {
    if (file.exists) {
      (void)co_await mount.Unlink(file.path);
      file.exists = false;
    }
  }

  report.finished_at = sched.Now();
  co_return report;
}

}  // namespace gvfs::workloads
