// Experiment testbed: builds the paper's topology (§5) — one file server
// host and N client hosts joined by emulated WAN links (default 40 ms RTT,
// 4 Mbps, as in the paper's NIST Net setup) — and wires up either native NFS
// mounts or middleware-established GVFS sessions over it.
//
// This is the "middleware" role from Figure 1: sessions are created on
// demand, each with its own proxy server + per-host proxy clients +
// unmodified kernel-client mounts, and independent consistency config.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "afs/afs.h"
#include "fleet/inv_aggregator.h"
#include "fleet/shard_router.h"
#include "gvfs/proxy_client.h"
#include "gvfs/proxy_server.h"
#include "gvfs/session.h"
#include "kclient/kernel_client.h"
#include "memfs/memfs.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "metrics/staleness.h"
#include "net/network.h"
#include "nfs3/server.h"
#include "obs/anomaly.h"
#include "obs/recorder.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace gvfs::workloads {

struct TestbedConfig {
  TestbedConfig() = default;
  TestbedConfig(const TestbedConfig&) = default;
  TestbedConfig& operator=(const TestbedConfig&) = default;

  /// Paper WAN: 40 ms RTT, 4 Mbps.
  net::LinkConfig wan{Milliseconds(20), 4'000'000};
  /// Paper LAN: 100 Mbps; sub-millisecond RTT.
  net::LinkConfig lan{Microseconds(250), 100'000'000};
};

/// One middleware-established GVFS session (Figure 1).
struct GvfsSession {
  proxy::ProxyServer* server = nullptr;
  std::vector<proxy::ProxyClient*> proxies;
  std::vector<kclient::KernelClient*> mounts;
  /// WAN RPCs for this session (proxy-client upstream calls + server
  /// callbacks), by procedure.
  rpc::StatsMap* stats = nullptr;

  kclient::KernelClient& mount(std::size_t i) { return *mounts.at(i); }
  proxy::ProxyClient& proxy(std::size_t i) { return *proxies.at(i); }

  /// Flushes all proxy caches and stops background tasks.
  sim::Task<void> Shutdown();
};

/// Topology of a fleet-scale session (src/fleet): N proxy-server shards
/// beside the kernel NFS server, optionally fronted by a GETINV aggregation
/// tier.
struct FleetConfig {
  FleetConfig() = default;
  FleetConfig(const FleetConfig&) = default;
  FleetConfig(FleetConfig&&) noexcept = default;
  FleetConfig& operator=(const FleetConfig&) = default;
  FleetConfig& operator=(FleetConfig&&) noexcept = default;

  /// Number of proxy-server shards (1 = the classic single-server session).
  std::uint32_t shards = 1;

  /// When true, clients poll an InvAggregator (LAN-adjacent to the server)
  /// instead of polling every shard directly.
  bool aggregate = false;

  /// Aggregator tuning; `shards` is filled in by the testbed.
  fleet::InvAggregatorConfig aggregator;

  /// Per-shard session config; shard_addrs / shard_index / getinv_targets
  /// are filled in by the testbed.
  proxy::SessionConfig session;
};

/// One fleet-scale GVFS session: sharded servers, optional aggregation tier,
/// a proxy client per participating host, kernel mounts on the active ones.
struct FleetSession {
  std::vector<proxy::ProxyServer*> shards;
  fleet::InvAggregator* aggregator = nullptr;  // null in direct mode
  std::vector<proxy::ProxyClient*> proxies;
  /// Kernel mounts, one per ACTIVE client (the first `active_mounts` of the
  /// client list); passive clients run only the proxy's poll loop.
  std::vector<kclient::KernelClient*> mounts;
  /// Session RPCs (client upstream calls, GETINV fan-in, NOTIFYINV,
  /// aggregator upstream polls), by procedure.
  rpc::StatsMap* stats = nullptr;
  fleet::ShardRouter router;

  kclient::KernelClient& mount(std::size_t i) { return *mounts.at(i); }
  proxy::ProxyClient& proxy(std::size_t i) { return *proxies.at(i); }
  proxy::ProxyServer& shard(std::size_t i) { return *shards.at(i); }

  /// Flushes all proxy caches and stops background tasks (incl. the tier).
  sim::Task<void> Shutdown();
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  sim::Scheduler& sched() { return sched_; }
  net::Network& network() { return network_; }
  memfs::MemFs& fs() { return fs_; }
  nfs3::Nfs3Server& nfsd() { return *nfsd_; }
  HostId server_host() const { return server_host_; }

  /// Adds a client host connected to the server over the WAN (or LAN) link.
  int AddWanClient();
  int AddLanClient();
  int ClientCount() const { return static_cast<int>(client_hosts_.size()); }
  HostId client_host(int index) const { return client_hosts_.at(index); }

  /// A native kernel-NFS mount on client `index` (the paper's NFS baseline).
  /// Its WAN RPCs are counted in StatsOf(mount).
  kclient::KernelClient& NativeMount(int index, kclient::MountOptions options = {});

  /// Establishes a GVFS session across the given clients: a proxy server
  /// beside the kernel NFS server, a proxy client per host, and a kernel
  /// mount per host pointed at its local proxy. Background consistency tasks
  /// are started.
  GvfsSession& CreateSession(const proxy::SessionConfig& config,
                             const std::vector<int>& clients,
                             kclient::MountOptions kernel_options = {});

  /// Establishes a fleet-scale session (src/fleet): `config.shards` proxy
  /// servers beside the kernel NFS server, each owning a slice of the handle
  /// space, plus — when `config.aggregate` — an InvAggregator on its own
  /// LAN-adjacent host absorbing the clients' GETINV polls. Every listed
  /// client gets a polling proxy; only the first `active_mounts` get kernel
  /// mounts (the rest model poll-only fleet members, which is what the
  /// fig_scale sweep scales to thousands of).
  FleetSession& CreateFleetSession(
      const FleetConfig& config, const std::vector<int>& clients,
      std::size_t active_mounts = static_cast<std::size_t>(-1),
      kclient::MountOptions kernel_options = {});

  /// An AFS client on client `index`, talking to a shared AFS server over
  /// the same exported tree (the Figure 6 reference DFS). The AFS server is
  /// created lazily on first use.
  afs::AfsClient& AfsMount(int index);

  /// WAN RPC counters of a native mount created with NativeMount.
  rpc::StatsMap& StatsOf(const kclient::KernelClient& mount);

  /// Runs the simulation until the event queue drains.
  void Run() { sched_.Run(); }

  /// Attaches a trace buffer to every layer (network, all RPC nodes, present
  /// and future): subsequent protocol actions are recorded as structured
  /// events. Call before driving the workload; idempotent.
  trace::TraceBuffer& EnableTracing(std::size_t capacity = 1 << 20);

  /// The attached buffer, or nullptr when tracing was never enabled.
  trace::TraceBuffer* trace_buffer() { return trace_buffer_.get(); }

  /// Turns on the consistency observatory: a metrics registry plus a
  /// sim-clock sampler snapshotting it every `period`. Sessions created
  /// after this call register their proxies' telemetry (prefixed
  /// `s<N>.`/`s<N>.c<host>.`) and a per-session staleness probe whose
  /// histogram is `s<N>.staleness_us`. Call before CreateSession; idempotent
  /// (the period of the first call wins).
  metrics::Registry& EnableMetrics(Duration period = Seconds(1));

  /// The registry/sampler, or nullptr when metrics were never enabled.
  metrics::Registry* metrics_registry() { return metrics_registry_.get(); }
  metrics::Sampler* metrics_sampler() { return metrics_sampler_.get(); }

  /// Turns on the diagnosis layer (src/obs): an online anomaly watchdog
  /// polling the observatory every `config.watch_period`, plus a flight
  /// recorder that can snapshot the whole run into a .gvfsdump. Implies
  /// EnableMetrics; call EnableTracing first for trace-fed detectors
  /// (migration flap) and ring capture in dumps. Sessions created after this
  /// call register their staleness SLOs, shard-imbalance groups and
  /// protocol-state providers. Strictly opt-in: runs that never call this
  /// are byte-identical to pre-diagnosis builds. Idempotent (first config
  /// wins).
  obs::Watchdog& EnableDiagnosis(obs::ObsConfig config = {});

  /// Arms dump-on-anomaly: the first detector firing writes a flight-
  /// recorder snapshot to `path` (once per run). Implies EnableDiagnosis.
  void DumpOnAnomaly(const std::string& path);

  /// The diagnosis components, or nullptr when never enabled.
  obs::Watchdog* watchdog() { return watchdog_.get(); }
  obs::FlightRecorder* recorder() { return recorder_.get(); }

 private:
  TestbedConfig config_;
  sim::Scheduler sched_;
  net::Network network_;
  rpc::Domain domain_;
  memfs::MemFs fs_;
  HostId server_host_;
  rpc::RpcNode* nfsd_node_;
  std::unique_ptr<nfs3::Nfs3Server> nfsd_;

  std::vector<HostId> client_hosts_;
  std::uint32_t next_port_ = 10000;

  // Stable storage for created components.
  std::deque<std::unique_ptr<kclient::KernelClient>> mounts_;
  std::unique_ptr<afs::AfsServer> afs_server_;
  std::deque<std::unique_ptr<afs::AfsClient>> afs_clients_;
  std::deque<std::unique_ptr<proxy::ProxyClient>> proxy_clients_;
  std::deque<std::unique_ptr<proxy::ProxyServer>> proxy_servers_;
  std::deque<std::unique_ptr<fleet::InvAggregator>> aggregators_;
  std::deque<FleetSession> fleet_sessions_;
  std::deque<std::unique_ptr<rpc::StatsMap>> stats_;
  std::deque<GvfsSession> sessions_;
  std::map<const kclient::KernelClient*, rpc::StatsMap*> mount_stats_;
  std::unique_ptr<trace::TraceBuffer> trace_buffer_;
  std::unique_ptr<metrics::Registry> metrics_registry_;
  std::unique_ptr<metrics::Sampler> metrics_sampler_;
  /// Per-session staleness probes (stable addresses; indexed by session).
  std::deque<metrics::StalenessProbe> staleness_probes_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::string dump_path_;
  bool dump_written_ = false;
};

}  // namespace gvfs::workloads
