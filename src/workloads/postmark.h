// PostMark file-system benchmark (paper §5.1.1, Figure 5), with the paper's
// parameters as defaults: 600 files of 32–640 KB across 100 subdirectories,
// 600 transactions with read/append bias 9 and create/delete bias 5, 32 KB
// block size.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "kclient/kernel_client.h"
#include "sim/task.h"

namespace gvfs::workloads {

struct PostmarkConfig {
  PostmarkConfig() = default;
  PostmarkConfig(const PostmarkConfig&) = default;
  PostmarkConfig& operator=(const PostmarkConfig&) = default;

  int files = 600;
  int transactions = 600;
  std::uint32_t min_size = 32 * 1024;
  std::uint32_t max_size = 640 * 1024;
  int subdirectories = 100;
  std::uint32_t block_size = 32 * 1024;
  /// Out of 10 non-create transactions, how many are reads (rest append).
  int read_bias = 9;
  /// Out of 10 transactions, how many are read/append (rest create/delete).
  int rw_bias = 5;
  std::uint64_t seed = 7;
};

struct PostmarkReport {
  SimTime started_at = 0;
  SimTime transactions_started_at = 0;
  SimTime transactions_finished_at = 0;
  SimTime finished_at = 0;
  int reads = 0;
  int appends = 0;
  int creates = 0;
  int deletes = 0;
  bool ok = true;
  double RuntimeSeconds() const { return ToSeconds(finished_at - started_at); }
  /// The transactions phase alone (pool creation/deletion excluded).
  double TransactionSeconds() const {
    return ToSeconds(transactions_finished_at - transactions_started_at);
  }
};

/// Runs the full benchmark (create pool, transactions, delete pool) through
/// `mount`. All I/O goes through the mount — the file pool is created over
/// the wire, as PostMark does.
sim::Task<PostmarkReport> RunPostmark(sim::Scheduler& sched,
                                      kclient::KernelClient& mount,
                                      PostmarkConfig config);

}  // namespace gvfs::workloads
