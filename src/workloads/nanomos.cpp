#include "workloads/nanomos.h"

#include <string>

#include "sim/sync.h"

namespace gvfs::workloads {

using kclient::KernelClient;
using kclient::OpenFlags;

namespace {

std::string MatlabDir(int d) { return "/matlab/d" + std::to_string(d); }
std::string MatlabFile(int d, int f) {
  return MatlabDir(d) + "/f" + std::to_string(f) + ".m";
}
std::string MpitbFile(int f) { return "/matlab/mpitb/f" + std::to_string(f) + ".m"; }

struct IterationClock {
  SimTime max_finish = 0;
  int remaining = 0;
};

/// One client's single iteration: touch the working set (stat + read), then
/// compute.
sim::Task<void> RunIteration(sim::Scheduler* sched, KernelClient* mount,
                             NanomosConfig config, IterationClock* clock) {
  // MPITB toolbox files.
  for (int f = 0; f < config.mpitb_files; ++f) {
    const std::string path = MpitbFile(f);
    auto fd = co_await mount->Open(path, OpenFlags{});
    if (fd) {
      (void)co_await mount->Read(
          *fd, 0, std::min(config.working_read_bytes, config.mpitb_file_bytes));
      (void)co_await mount->Close(*fd);
    }
  }
  // MATLAB core slice.
  for (int d = 0; d < config.matlab_working_dirs; ++d) {
    for (int f = 0; f < config.matlab_files_per_dir; ++f) {
      const std::string path = MatlabFile(d, f);
      auto fd = co_await mount->Open(path, OpenFlags{});
      if (fd) {
        (void)co_await mount->Read(
            *fd, 0, std::min(config.working_read_bytes, config.matlab_file_bytes));
        (void)co_await mount->Close(*fd);
      }
    }
  }
  co_await sim::Sleep(*sched, config.compute_per_iteration);
  clock->max_finish = std::max(clock->max_finish, sched->Now());
  --clock->remaining;
}

/// The administrator's update: rewrite every file of a package in place.
sim::Task<void> RunUpdate(KernelClient* admin, UpdateKind kind,
                          NanomosConfig config) {
  auto touch = [](KernelClient* mount, const std::string& path,
                  std::uint32_t bytes) -> sim::Task<void> {
    auto fd = co_await mount->Open(path, OpenFlags{.read = true, .write = true});
    if (!fd) co_return;
    // gvfs-lint: allow(use-after-suspend): the touch lambda is always co_awaited by its caller, whose frame keeps the arguments alive
    (void)co_await mount->Write(*fd, 0, Bytes(bytes, 'u'));
    (void)co_await mount->Close(*fd);
  };

  if (kind == UpdateKind::kMpitb) {
    for (int f = 0; f < config.mpitb_files; ++f) {
      co_await touch(admin, MpitbFile(f), config.mpitb_file_bytes);
    }
  } else if (kind == UpdateKind::kMatlab) {
    for (int d = 0; d < config.matlab_dirs; ++d) {
      for (int f = 0; f < config.matlab_files_per_dir; ++f) {
        co_await touch(admin, MatlabFile(d, f), config.matlab_file_bytes);
      }
    }
    for (int f = 0; f < config.mpitb_files; ++f) {
      co_await touch(admin, MpitbFile(f), config.mpitb_file_bytes);
    }
  }
}

}  // namespace

void PopulateRepository(memfs::MemFs& fs, const NanomosConfig& config) {
  auto matlab = fs.Mkdir(fs.root(), "matlab", 0755);
  for (int d = 0; d < config.matlab_dirs; ++d) {
    auto dir = fs.Mkdir(*matlab, "d" + std::to_string(d), 0755);
    for (int f = 0; f < config.matlab_files_per_dir; ++f) {
      auto ino = fs.Create(*dir, "f" + std::to_string(f) + ".m", 0644);
      (void)fs.Write(*ino, 0, Bytes(config.matlab_file_bytes, 'm'));
    }
  }
  auto mpitb = fs.Mkdir(*matlab, "mpitb", 0755);
  for (int f = 0; f < config.mpitb_files; ++f) {
    auto ino = fs.Create(*mpitb, "f" + std::to_string(f) + ".m", 0644);
    (void)fs.Write(*ino, 0, Bytes(config.mpitb_file_bytes, 'm'));
  }
}

sim::Task<NanomosReport> RunNanomos(sim::Scheduler& sched,
                                    std::vector<kclient::KernelClient*> mounts,
                                    kclient::KernelClient* admin, UpdateKind kind,
                                    NanomosConfig config) {
  NanomosReport report;
  for (int iteration = 1; iteration <= config.iterations; ++iteration) {
    if (kind != UpdateKind::kNone && iteration == config.update_after_iteration + 1) {
      // The administrator pushes the update while the system is idle; a full
      // turnaround gap follows before the next run (so a polling window can
      // elapse — with native NFS this changes nothing).
      co_await RunUpdate(admin, kind, config);
      co_await sim::Sleep(sched, config.inter_iteration_gap);
    }

    const SimTime start = sched.Now();
    IterationClock clock;
    clock.remaining = static_cast<int>(mounts.size());
    std::vector<sim::Task<void>> tasks;
    tasks.reserve(mounts.size());
    for (auto* mount : mounts) {
      tasks.push_back(RunIteration(&sched, mount, config, &clock));
    }
    co_await sim::WhenAll(sched, std::move(tasks));
    report.iteration_seconds.push_back(ToSeconds(clock.max_finish - start));
    if (iteration < config.iterations) {
      co_await sim::Sleep(sched, config.inter_iteration_gap);
    }
  }
  co_return report;
}

}  // namespace gvfs::workloads
