#include "nfs3/proto.h"

namespace gvfs::nfs3 {

// Decode helper: extract or propagate the decode error.
#define GVFS_TRY(var, expr)                           \
  auto var##_result = (expr);                         \
  if (!var##_result) return Unexpected(var##_result.error()); \
  auto var = std::move(*var##_result)

const char* ProcName(std::uint32_t proc) {
  switch (proc) {
    case kNull:
      return "NULL";
    case kGetAttr:
      return "GETATTR";
    case kSetAttr:
      return "SETATTR";
    case kLookup:
      return "LOOKUP";
    case kAccess:
      return "ACCESS";
    case kRead:
      return "READ";
    case kWrite:
      return "WRITE";
    case kCreate:
      return "CREATE";
    case kMkdir:
      return "MKDIR";
    case kRemove:
      return "REMOVE";
    case kRmdir:
      return "RMDIR";
    case kRename:
      return "RENAME";
    case kLink:
      return "LINK";
    case kReadDir:
      return "READDIR";
    case kFsStat:
      return "FSSTAT";
    case kCommit:
      return "COMMIT";
  }
  return "UNKNOWN";
}

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "NFS3_OK";
    case Status::kPerm:
      return "NFS3ERR_PERM";
    case Status::kNoEnt:
      return "NFS3ERR_NOENT";
    case Status::kIo:
      return "NFS3ERR_IO";
    case Status::kAccess:
      return "NFS3ERR_ACCES";
    case Status::kExist:
      return "NFS3ERR_EXIST";
    case Status::kNotDir:
      return "NFS3ERR_NOTDIR";
    case Status::kIsDir:
      return "NFS3ERR_ISDIR";
    case Status::kInval:
      return "NFS3ERR_INVAL";
    case Status::kNotEmpty:
      return "NFS3ERR_NOTEMPTY";
    case Status::kStale:
      return "NFS3ERR_STALE";
    case Status::kBadHandle:
      return "NFS3ERR_BADHANDLE";
    case Status::kNotSupp:
      return "NFS3ERR_NOTSUPP";
    case Status::kServerFault:
      return "NFS3ERR_SERVERFAULT";
  }
  return "?";
}

Status FromFsError(memfs::FsError e) {
  switch (e) {
    case memfs::FsError::kNoEnt:
      return Status::kNoEnt;
    case memfs::FsError::kExist:
      return Status::kExist;
    case memfs::FsError::kNotDir:
      return Status::kNotDir;
    case memfs::FsError::kIsDir:
      return Status::kIsDir;
    case memfs::FsError::kNotEmpty:
      return Status::kNotEmpty;
    case memfs::FsError::kStale:
      return Status::kStale;
    case memfs::FsError::kInval:
      return Status::kInval;
  }
  return Status::kServerFault;
}

DecodeResult<Fh> Fh::Decode(xdr::Decoder& dec) {
  GVFS_TRY(fsid, dec.GetU64());
  GVFS_TRY(ino, dec.GetU64());
  return Fh{fsid, ino};
}

// Fattr rides in nearly every reply, so its fixed 60-byte layout is encoded
// and decoded through one reserved window — a single capacity/bounds check
// for all ten fields. Wire format is identical to per-field Puts/Gets.
void Fattr::Encode(xdr::Encoder& enc) const {
  std::uint8_t* p = enc.Reserve(60);
  xdr::Encoder::StoreBe32(p, static_cast<std::uint32_t>(type));
  xdr::Encoder::StoreBe32(p + 4, mode);
  xdr::Encoder::StoreBe32(p + 8, nlink);
  xdr::Encoder::StoreBe32(p + 12, uid);
  xdr::Encoder::StoreBe32(p + 16, gid);
  xdr::Encoder::StoreBe64(p + 20, size);
  xdr::Encoder::StoreBe64(p + 28, fileid);
  xdr::Encoder::StoreBe64(p + 36, static_cast<std::uint64_t>(atime));
  xdr::Encoder::StoreBe64(p + 44, static_cast<std::uint64_t>(mtime));
  xdr::Encoder::StoreBe64(p + 52, static_cast<std::uint64_t>(ctime));
}

DecodeResult<Fattr> Fattr::Decode(xdr::Decoder& dec) {
  const std::uint8_t* p = dec.GetRaw(60);
  if (p == nullptr) return Unexpected(xdr::DecodeError::kTruncated);
  Fattr out;
  out.type = static_cast<FType>(xdr::Decoder::LoadBe32(p));
  out.mode = xdr::Decoder::LoadBe32(p + 4);
  out.nlink = xdr::Decoder::LoadBe32(p + 8);
  out.uid = xdr::Decoder::LoadBe32(p + 12);
  out.gid = xdr::Decoder::LoadBe32(p + 16);
  out.size = xdr::Decoder::LoadBe64(p + 20);
  out.fileid = xdr::Decoder::LoadBe64(p + 28);
  out.atime = static_cast<SimTime>(xdr::Decoder::LoadBe64(p + 36));
  out.mtime = static_cast<SimTime>(xdr::Decoder::LoadBe64(p + 44));
  out.ctime = static_cast<SimTime>(xdr::Decoder::LoadBe64(p + 52));
  return out;
}

Fattr ToFattr(const memfs::InodeAttr& attr) {
  Fattr out;
  out.type = attr.type == memfs::FileType::kDirectory ? FType::kDir : FType::kReg;
  out.mode = attr.mode;
  out.nlink = attr.nlink;
  out.uid = attr.uid;
  out.gid = attr.gid;
  out.size = attr.size;
  out.fileid = attr.fileid;
  out.atime = attr.atime;
  out.mtime = attr.mtime;
  out.ctime = attr.ctime;
  return out;
}

void EncodePostOp(xdr::Encoder& enc, const PostOpAttr& attr) {
  enc.PutBool(attr.has_value());
  if (attr.has_value()) attr->Encode(enc);
}

DecodeResult<PostOpAttr> DecodePostOp(xdr::Decoder& dec) {
  GVFS_TRY(present, dec.GetBool());
  if (!present) return PostOpAttr{};
  GVFS_TRY(attr, Fattr::Decode(dec));
  return PostOpAttr{attr};
}

namespace {

void EncodeStatus(xdr::Encoder& enc, Status s) {
  enc.PutU32(static_cast<std::uint32_t>(s));
}

DecodeResult<Status> DecodeStatus(xdr::Decoder& dec) {
  GVFS_TRY(raw, dec.GetU32());
  return static_cast<Status>(raw);
}

}  // namespace

DecodeResult<GetAttrArgs> GetAttrArgs::Decode(xdr::Decoder& dec) {
  GVFS_TRY(fh, Fh::Decode(dec));
  return GetAttrArgs{fh};
}

void GetAttrRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  if (status == Status::kOk) attr.Encode(enc);
}

DecodeResult<GetAttrRes> GetAttrRes::Decode(xdr::Decoder& dec) {
  GetAttrRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  if (status == Status::kOk) {
    GVFS_TRY(attr, Fattr::Decode(dec));
    out.attr = attr;
  }
  return out;
}

void SetAttrArgs::Encode(xdr::Encoder& enc) const {
  object.Encode(enc);
  enc.PutBool(mode.has_value());
  if (mode) enc.PutU32(*mode);
  enc.PutBool(size.has_value());
  if (size) enc.PutU64(*size);
  enc.PutBool(mtime.has_value());
  if (mtime) enc.PutI64(*mtime);
}

DecodeResult<SetAttrArgs> SetAttrArgs::Decode(xdr::Decoder& dec) {
  SetAttrArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.object = fh;
  GVFS_TRY(has_mode, dec.GetBool());
  if (has_mode) {
    GVFS_TRY(mode, dec.GetU32());
    out.mode = mode;
  }
  GVFS_TRY(has_size, dec.GetBool());
  if (has_size) {
    GVFS_TRY(size, dec.GetU64());
    out.size = size;
  }
  GVFS_TRY(has_mtime, dec.GetBool());
  if (has_mtime) {
    GVFS_TRY(mtime, dec.GetI64());
    out.mtime = mtime;
  }
  return out;
}

void SetAttrRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, attr);
}

DecodeResult<SetAttrRes> SetAttrRes::Decode(xdr::Decoder& dec) {
  SetAttrRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(attr, DecodePostOp(dec));
  out.attr = attr;
  return out;
}

void LookupArgs::Encode(xdr::Encoder& enc) const {
  dir.Encode(enc);
  enc.PutString(name);
}

DecodeResult<LookupArgs> LookupArgs::Decode(xdr::Decoder& dec) {
  LookupArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.dir = fh;
  GVFS_TRY(name, dec.GetString());
  out.name = name.Copy();
  return out;
}

void LookupRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  if (status == Status::kOk) object.Encode(enc);
  EncodePostOp(enc, obj_attr);
  EncodePostOp(enc, dir_attr);
}

DecodeResult<LookupRes> LookupRes::Decode(xdr::Decoder& dec) {
  LookupRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  if (status == Status::kOk) {
    GVFS_TRY(fh, Fh::Decode(dec));
    out.object = fh;
  }
  GVFS_TRY(obj_attr, DecodePostOp(dec));
  out.obj_attr = obj_attr;
  GVFS_TRY(dir_attr, DecodePostOp(dec));
  out.dir_attr = dir_attr;
  return out;
}

void AccessArgs::Encode(xdr::Encoder& enc) const {
  object.Encode(enc);
  enc.PutU32(access);
}

DecodeResult<AccessArgs> AccessArgs::Decode(xdr::Decoder& dec) {
  AccessArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.object = fh;
  GVFS_TRY(access, dec.GetU32());
  out.access = access;
  return out;
}

void AccessRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, attr);
  enc.PutU32(access);
}

DecodeResult<AccessRes> AccessRes::Decode(xdr::Decoder& dec) {
  AccessRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(attr, DecodePostOp(dec));
  out.attr = attr;
  GVFS_TRY(access, dec.GetU32());
  out.access = access;
  return out;
}

void ReadArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU64(offset);
  enc.PutU32(count);
}

DecodeResult<ReadArgs> ReadArgs::Decode(xdr::Decoder& dec) {
  ReadArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(offset, dec.GetU64());
  out.offset = offset;
  GVFS_TRY(count, dec.GetU32());
  out.count = count;
  return out;
}

void ReadRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, attr);
  if (status == Status::kOk) {
    enc.PutU32(count);
    enc.PutBool(eof);
    enc.PutOpaque(data);
  }
}

DecodeResult<ReadRes> ReadRes::Decode(xdr::Decoder& dec) {
  ReadRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(attr, DecodePostOp(dec));
  out.attr = attr;
  if (status == Status::kOk) {
    GVFS_TRY(count, dec.GetU32());
    out.count = count;
    GVFS_TRY(eof, dec.GetBool());
    out.eof = eof;
    GVFS_TRY(data, dec.GetOpaque());
    out.data = data.Copy();
  }
  return out;
}

void WriteArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU64(offset);
  enc.PutU32(static_cast<std::uint32_t>(stable));
  enc.PutOpaque(data);
}

DecodeResult<WriteArgs> WriteArgs::Decode(xdr::Decoder& dec) {
  WriteArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(offset, dec.GetU64());
  out.offset = offset;
  GVFS_TRY(stable, dec.GetU32());
  out.stable = static_cast<StableHow>(stable);
  GVFS_TRY(data, dec.GetOpaque());
  out.data = data.Copy();
  return out;
}

void WriteRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, attr);
  if (status == Status::kOk) {
    enc.PutU32(count);
    enc.PutU32(static_cast<std::uint32_t>(committed));
  }
}

DecodeResult<WriteRes> WriteRes::Decode(xdr::Decoder& dec) {
  WriteRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(attr, DecodePostOp(dec));
  out.attr = attr;
  if (status == Status::kOk) {
    GVFS_TRY(count, dec.GetU32());
    out.count = count;
    GVFS_TRY(committed, dec.GetU32());
    out.committed = static_cast<StableHow>(committed);
  }
  return out;
}

void CreateArgs::Encode(xdr::Encoder& enc) const {
  dir.Encode(enc);
  enc.PutString(name);
  enc.PutU32(mode);
  enc.PutBool(exclusive);
}

DecodeResult<CreateArgs> CreateArgs::Decode(xdr::Decoder& dec) {
  CreateArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.dir = fh;
  GVFS_TRY(name, dec.GetString());
  out.name = name.Copy();
  GVFS_TRY(mode, dec.GetU32());
  out.mode = mode;
  GVFS_TRY(exclusive, dec.GetBool());
  out.exclusive = exclusive;
  return out;
}

void CreateRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  if (status == Status::kOk) object.Encode(enc);
  EncodePostOp(enc, obj_attr);
  EncodePostOp(enc, dir_attr);
}

DecodeResult<CreateRes> CreateRes::Decode(xdr::Decoder& dec) {
  CreateRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  if (status == Status::kOk) {
    GVFS_TRY(fh, Fh::Decode(dec));
    out.object = fh;
  }
  GVFS_TRY(obj_attr, DecodePostOp(dec));
  out.obj_attr = obj_attr;
  GVFS_TRY(dir_attr, DecodePostOp(dec));
  out.dir_attr = dir_attr;
  return out;
}

void RemoveArgs::Encode(xdr::Encoder& enc) const {
  dir.Encode(enc);
  enc.PutString(name);
}

DecodeResult<RemoveArgs> RemoveArgs::Decode(xdr::Decoder& dec) {
  RemoveArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.dir = fh;
  GVFS_TRY(name, dec.GetString());
  out.name = name.Copy();
  return out;
}

void RemoveRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, dir_attr);
}

DecodeResult<RemoveRes> RemoveRes::Decode(xdr::Decoder& dec) {
  RemoveRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(dir_attr, DecodePostOp(dec));
  out.dir_attr = dir_attr;
  return out;
}

void RenameArgs::Encode(xdr::Encoder& enc) const {
  from_dir.Encode(enc);
  enc.PutString(from_name);
  to_dir.Encode(enc);
  enc.PutString(to_name);
}

DecodeResult<RenameArgs> RenameArgs::Decode(xdr::Decoder& dec) {
  RenameArgs out;
  GVFS_TRY(from_fh, Fh::Decode(dec));
  out.from_dir = from_fh;
  GVFS_TRY(from_name, dec.GetString());
  out.from_name = from_name.Copy();
  GVFS_TRY(to_fh, Fh::Decode(dec));
  out.to_dir = to_fh;
  GVFS_TRY(to_name, dec.GetString());
  out.to_name = to_name.Copy();
  return out;
}

void RenameRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, from_dir_attr);
  EncodePostOp(enc, to_dir_attr);
}

DecodeResult<RenameRes> RenameRes::Decode(xdr::Decoder& dec) {
  RenameRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(from_attr, DecodePostOp(dec));
  out.from_dir_attr = from_attr;
  GVFS_TRY(to_attr, DecodePostOp(dec));
  out.to_dir_attr = to_attr;
  return out;
}

void LinkArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  dir.Encode(enc);
  enc.PutString(name);
}

DecodeResult<LinkArgs> LinkArgs::Decode(xdr::Decoder& dec) {
  LinkArgs out;
  GVFS_TRY(file, Fh::Decode(dec));
  out.file = file;
  GVFS_TRY(dir, Fh::Decode(dec));
  out.dir = dir;
  GVFS_TRY(name, dec.GetString());
  out.name = name.Copy();
  return out;
}

void LinkRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, file_attr);
  EncodePostOp(enc, dir_attr);
}

DecodeResult<LinkRes> LinkRes::Decode(xdr::Decoder& dec) {
  LinkRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(file_attr, DecodePostOp(dec));
  out.file_attr = file_attr;
  GVFS_TRY(dir_attr, DecodePostOp(dec));
  out.dir_attr = dir_attr;
  return out;
}

void ReadDirArgs::Encode(xdr::Encoder& enc) const {
  dir.Encode(enc);
  enc.PutU64(cookie);
  enc.PutU32(max_entries);
}

DecodeResult<ReadDirArgs> ReadDirArgs::Decode(xdr::Decoder& dec) {
  ReadDirArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.dir = fh;
  GVFS_TRY(cookie, dec.GetU64());
  out.cookie = cookie;
  GVFS_TRY(max_entries, dec.GetU32());
  out.max_entries = max_entries;
  return out;
}

void ReadDirRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, dir_attr);
  if (status == Status::kOk) {
    enc.PutU32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      enc.PutU64(e.fileid);
      enc.PutString(e.name);
      enc.PutU64(e.cookie);
    }
    enc.PutBool(eof);
  }
}

DecodeResult<ReadDirRes> ReadDirRes::Decode(xdr::Decoder& dec) {
  ReadDirRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(dir_attr, DecodePostOp(dec));
  out.dir_attr = dir_attr;
  if (status == Status::kOk) {
    GVFS_TRY(n, dec.GetU32());
    out.entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ReadDirEntry entry;
      GVFS_TRY(fileid, dec.GetU64());
      entry.fileid = fileid;
      GVFS_TRY(name, dec.GetString());
      entry.name = name.Copy();
      GVFS_TRY(cookie, dec.GetU64());
      entry.cookie = cookie;
      out.entries.push_back(std::move(entry));
    }
    GVFS_TRY(eof, dec.GetBool());
    out.eof = eof;
  }
  return out;
}

DecodeResult<FsStatArgs> FsStatArgs::Decode(xdr::Decoder& dec) {
  GVFS_TRY(fh, Fh::Decode(dec));
  return FsStatArgs{fh};
}

void FsStatRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  if (status == Status::kOk) {
    enc.PutU64(total_bytes);
    enc.PutU64(used_bytes);
    enc.PutU64(total_files);
  }
}

DecodeResult<FsStatRes> FsStatRes::Decode(xdr::Decoder& dec) {
  FsStatRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  if (status == Status::kOk) {
    GVFS_TRY(total, dec.GetU64());
    out.total_bytes = total;
    GVFS_TRY(used, dec.GetU64());
    out.used_bytes = used;
    GVFS_TRY(files, dec.GetU64());
    out.total_files = files;
  }
  return out;
}

void CommitArgs::Encode(xdr::Encoder& enc) const {
  file.Encode(enc);
  enc.PutU64(offset);
  enc.PutU32(count);
}

DecodeResult<CommitArgs> CommitArgs::Decode(xdr::Decoder& dec) {
  CommitArgs out;
  GVFS_TRY(fh, Fh::Decode(dec));
  out.file = fh;
  GVFS_TRY(offset, dec.GetU64());
  out.offset = offset;
  GVFS_TRY(count, dec.GetU32());
  out.count = count;
  return out;
}

void CommitRes::Encode(xdr::Encoder& enc) const {
  EncodeStatus(enc, status);
  EncodePostOp(enc, attr);
}

DecodeResult<CommitRes> CommitRes::Decode(xdr::Decoder& dec) {
  CommitRes out;
  GVFS_TRY(status, DecodeStatus(dec));
  out.status = status;
  GVFS_TRY(attr, DecodePostOp(dec));
  out.attr = attr;
  return out;
}

}  // namespace gvfs::nfs3
