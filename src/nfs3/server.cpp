#include "nfs3/server.h"

#include <utility>

#include "common/logging.h"
#include "sim/sync.h"

namespace gvfs::nfs3 {
namespace {

constexpr std::uint64_t kBlockSize = 32 * 1024;

/// Encodes a status-only failure reply for any result type.
template <typename Res>
Bytes FailWith(Status status) {
  Res res;
  res.status = status;
  return Serialize(res);
}

}  // namespace

Nfs3Server::Nfs3Server(sim::Scheduler& sched, memfs::MemFs& fs, rpc::RpcNode& node,
                       ServerConfig config)
    : sched_(sched), fs_(fs), config_(config) {
  // The lambdas are not coroutines themselves; they forward to member
  // coroutines whose frames hold `this` plus moved-in args. The stats handle
  // is resolved once here, not per request.
  auto bind = [this, &node](Proc proc,
                            sim::Task<Bytes> (Nfs3Server::*method)(rpc::Body)) {
    const rpc::StatsMap::Handle stat = served_.Intern(ProcName(proc));
    node.RegisterHandler(kProgram, proc,
                         [this, stat, method](rpc::CallContext, rpc::Body args) {
                           served_.Count(stat, args.size());
                           return (this->*method)(std::move(args));
                         });
  };
  bind(kGetAttr, &Nfs3Server::HandleGetAttr);
  bind(kSetAttr, &Nfs3Server::HandleSetAttr);
  bind(kLookup, &Nfs3Server::HandleLookup);
  bind(kAccess, &Nfs3Server::HandleAccess);
  bind(kRead, &Nfs3Server::HandleRead);
  bind(kWrite, &Nfs3Server::HandleWrite);
  bind(kCreate, &Nfs3Server::HandleCreate);
  bind(kMkdir, &Nfs3Server::HandleMkdir);
  bind(kRemove, &Nfs3Server::HandleRemove);
  bind(kRmdir, &Nfs3Server::HandleRmdir);
  bind(kRename, &Nfs3Server::HandleRename);
  bind(kLink, &Nfs3Server::HandleLink);
  bind(kReadDir, &Nfs3Server::HandleReadDir);
  bind(kFsStat, &Nfs3Server::HandleFsStat);
  bind(kCommit, &Nfs3Server::HandleCommit);
  node.RegisterHandler(kProgram, kNull,
                       [](rpc::CallContext, rpc::Body) -> sim::Task<Bytes> {
                         co_return Bytes{};
                       });
}

sim::Sleep Nfs3Server::Service(std::uint64_t blocks) {
  return sim::Sleep(sched_,
                    config_.service_time +
                        static_cast<Duration>(blocks) * config_.per_block_time);
}

PostOpAttr Nfs3Server::AttrOf(memfs::InodeId ino) const {
  auto attr = fs_.GetAttr(ino);
  if (!attr) return std::nullopt;
  return ToFattr(*attr);
}

sim::Task<Bytes> Nfs3Server::HandleGetAttr(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<GetAttrArgs>(args);
  if (!parsed) co_return FailWith<GetAttrRes>(Status::kBadHandle);
  GetAttrRes res;
  auto attr = fs_.GetAttr(parsed->object.ino);
  if (!attr) {
    res.status = FromFsError(attr.error());
  } else {
    res.attr = ToFattr(*attr);
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleSetAttr(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<SetAttrArgs>(args);
  if (!parsed) co_return FailWith<SetAttrRes>(Status::kBadHandle);
  memfs::SetAttrRequest req;
  req.mode = parsed->mode;
  req.size = parsed->size;
  req.mtime = parsed->mtime;
  SetAttrRes res;
  auto attr = fs_.SetAttr(parsed->object.ino, req);
  if (!attr) {
    res.status = FromFsError(attr.error());
  } else {
    res.attr = ToFattr(*attr);
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleLookup(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<LookupArgs>(args);
  if (!parsed) co_return FailWith<LookupRes>(Status::kBadHandle);
  LookupRes res;
  res.dir_attr = AttrOf(parsed->dir.ino);
  auto found = fs_.Lookup(parsed->dir.ino, parsed->name);
  if (!found) {
    res.status = FromFsError(found.error());
  } else {
    res.object = FhFor(*found);
    res.obj_attr = AttrOf(*found);
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleAccess(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<AccessArgs>(args);
  if (!parsed) co_return FailWith<AccessRes>(Status::kBadHandle);
  AccessRes res;
  res.attr = AttrOf(parsed->object.ino);
  if (!res.attr.has_value()) {
    res.status = Status::kStale;
  } else {
    res.access = parsed->access;  // all requested access granted (ACL disabled)
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleRead(rpc::Body args) {
  auto parsed = Parse<ReadArgs>(args);
  if (!parsed) co_return FailWith<ReadRes>(Status::kBadHandle);
  co_await Service((parsed->count + kBlockSize - 1) / kBlockSize);
  ReadRes res;
  auto data = fs_.Read(parsed->file.ino, parsed->offset, parsed->count);
  res.attr = AttrOf(parsed->file.ino);
  if (!data) {
    res.status = FromFsError(data.error());
  } else {
    res.count = static_cast<std::uint32_t>(data->data.size());
    res.eof = data->eof;
    res.data = std::move(data->data);
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleWrite(rpc::Body args) {
  auto parsed = Parse<WriteArgs>(args);
  if (!parsed) co_return FailWith<WriteRes>(Status::kBadHandle);
  co_await Service((parsed->data.size() + kBlockSize - 1) / kBlockSize);
  WriteRes res;
  auto written = fs_.Write(parsed->file.ino, parsed->offset, parsed->data);
  res.attr = AttrOf(parsed->file.ino);
  if (!written) {
    res.status = FromFsError(written.error());
  } else {
    res.count = static_cast<std::uint32_t>(parsed->data.size());
    // MemFs is durable immediately; report FILE_SYNC ("synchronous access"
    // export in the paper's setup).
    res.committed = StableHow::kFileSync;
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleCreate(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<CreateArgs>(args);
  if (!parsed) co_return FailWith<CreateRes>(Status::kBadHandle);
  CreateRes res;
  auto created = fs_.Create(parsed->dir.ino, parsed->name, parsed->mode);
  if (!created) {
    if (created.error() == memfs::FsError::kExist && !parsed->exclusive) {
      // UNCHECKED create of an existing name succeeds and returns it.
      auto existing = fs_.Lookup(parsed->dir.ino, parsed->name);
      if (existing) {
        res.object = FhFor(*existing);
        res.obj_attr = AttrOf(*existing);
        res.dir_attr = AttrOf(parsed->dir.ino);
        co_return Serialize(res);
      }
    }
    res.status = FromFsError(created.error());
  } else {
    res.object = FhFor(*created);
    res.obj_attr = AttrOf(*created);
  }
  res.dir_attr = AttrOf(parsed->dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleMkdir(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<MkdirArgs>(args);
  if (!parsed) co_return FailWith<MkdirRes>(Status::kBadHandle);
  MkdirRes res;
  auto created = fs_.Mkdir(parsed->dir.ino, parsed->name, parsed->mode);
  if (!created) {
    res.status = FromFsError(created.error());
  } else {
    res.object = FhFor(*created);
    res.obj_attr = AttrOf(*created);
  }
  res.dir_attr = AttrOf(parsed->dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleRemove(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<RemoveArgs>(args);
  if (!parsed) co_return FailWith<RemoveRes>(Status::kBadHandle);
  RemoveRes res;
  auto removed = fs_.Remove(parsed->dir.ino, parsed->name);
  if (!removed) res.status = FromFsError(removed.error());
  res.dir_attr = AttrOf(parsed->dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleRmdir(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<RmdirArgs>(args);
  if (!parsed) co_return FailWith<RmdirRes>(Status::kBadHandle);
  RmdirRes res;
  auto removed = fs_.Rmdir(parsed->dir.ino, parsed->name);
  if (!removed) res.status = FromFsError(removed.error());
  res.dir_attr = AttrOf(parsed->dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleRename(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<RenameArgs>(args);
  if (!parsed) co_return FailWith<RenameRes>(Status::kBadHandle);
  RenameRes res;
  auto renamed = fs_.Rename(parsed->from_dir.ino, parsed->from_name,
                            parsed->to_dir.ino, parsed->to_name);
  if (!renamed) res.status = FromFsError(renamed.error());
  res.from_dir_attr = AttrOf(parsed->from_dir.ino);
  res.to_dir_attr = AttrOf(parsed->to_dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleLink(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<LinkArgs>(args);
  if (!parsed) co_return FailWith<LinkRes>(Status::kBadHandle);
  LinkRes res;
  auto linked = fs_.Link(parsed->file.ino, parsed->dir.ino, parsed->name);
  if (!linked) res.status = FromFsError(linked.error());
  res.file_attr = AttrOf(parsed->file.ino);
  res.dir_attr = AttrOf(parsed->dir.ino);
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleReadDir(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<ReadDirArgs>(args);
  if (!parsed) co_return FailWith<ReadDirRes>(Status::kBadHandle);
  ReadDirRes res;
  res.dir_attr = AttrOf(parsed->dir.ino);
  auto listed = fs_.ReadDir(parsed->dir.ino, parsed->cookie, parsed->max_entries);
  if (!listed) {
    res.status = FromFsError(listed.error());
  } else {
    for (const auto& e : *listed) {
      res.entries.push_back(ReadDirEntry{e.inode, e.name, e.cookie});
    }
    res.eof = listed->size() < parsed->max_entries;
  }
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleFsStat(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<FsStatArgs>(args);
  if (!parsed) co_return FailWith<FsStatRes>(Status::kBadHandle);
  FsStatRes res;
  res.total_bytes = 1ULL << 40;
  res.used_bytes = fs_.TotalBytes();
  res.total_files = fs_.InodeCount();
  co_return Serialize(res);
}

sim::Task<Bytes> Nfs3Server::HandleCommit(rpc::Body args) {
  co_await Service();
  auto parsed = Parse<CommitArgs>(args);
  if (!parsed) co_return FailWith<CommitRes>(Status::kBadHandle);
  CommitRes res;
  res.attr = AttrOf(parsed->file.ino);
  if (!res.attr.has_value()) res.status = Status::kStale;
  co_return Serialize(res);
}

}  // namespace gvfs::nfs3
