// Typed NFS3 call helper: wraps an RpcNode with per-procedure serialization.
// Used by the kernel-client emulation (talking to a server or a local GVFS
// proxy) and by the GVFS proxies themselves when forwarding upstream.
#pragma once

#include "common/expected.h"
#include "nfs3/proto.h"
#include "rpc/rpc.h"
#include "sim/task.h"

namespace gvfs::nfs3 {

/// Errors a typed call can produce: transport-level (RPC) or a decode
/// failure of the reply body.
enum class CallError { kRpc, kBadReply };

template <typename Res>
using CallResult = Expected<Res, CallError>;

class Nfs3Client {
 public:
  /// `node` issues the calls; `server` is the NFS (or proxy) endpoint.
  Nfs3Client(rpc::RpcNode& node, net::Address server)
      : node_(node), server_(server) {}

  net::Address server() const { return server_; }
  void set_server(net::Address server) { server_ = server; }
  rpc::RpcNode& node() { return node_; }

  /// Issues `proc` with typed args, returning the typed result. RPC-level
  /// failures (timeout after retransmissions) map to CallError::kRpc.
  template <typename Res, typename ArgsT>
  sim::Task<CallResult<Res>> Call(Proc proc, const ArgsT& args,
                                  rpc::CallOptions opts = {}) {
    if (opts.label.empty()) opts.label = ProcName(proc);
    auto reply = co_await node_.Call(server_, kProgram, proc, Serialize(args),
                                     std::move(opts));
    if (!reply) co_return Unexpected(CallError::kRpc);
    auto parsed = Parse<Res>(*reply);
    if (!parsed) co_return Unexpected(CallError::kBadReply);
    co_return std::move(*parsed);
  }

 private:
  rpc::RpcNode& node_;
  net::Address server_;
};

}  // namespace gvfs::nfs3
