// NFSv3-style protocol: procedure numbers, status codes, file handles,
// attributes, and per-procedure argument/result structs with XDR codecs.
//
// This mirrors the subset of RFC 1813 the paper's workloads exercise
// (GETATTR/LOOKUP/ACCESS/READ/WRITE/CREATE/MKDIR/REMOVE/RMDIR/RENAME/LINK/
// READDIR/FSSTAT/COMMIT/SETATTR). Replies carry post-op attributes, which the
// kernel-client emulation uses to refresh its attribute cache exactly as a
// real NFS client does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "common/types.h"
#include "memfs/memfs.h"
#include "xdr/xdr.h"

namespace gvfs::nfs3 {

constexpr std::uint32_t kProgram = 100003;

enum Proc : std::uint32_t {
  kNull = 0,
  kGetAttr = 1,
  kSetAttr = 2,
  kLookup = 3,
  kAccess = 4,
  kRead = 6,
  kWrite = 7,
  kCreate = 8,
  kMkdir = 9,
  kRemove = 12,
  kRmdir = 13,
  kRename = 14,
  kLink = 15,
  kReadDir = 16,
  kFsStat = 18,
  kCommit = 21,
};

const char* ProcName(std::uint32_t proc);

enum class Status : std::uint32_t {
  kOk = 0,
  kPerm = 1,
  kNoEnt = 2,
  kIo = 5,
  kAccess = 13,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kNotEmpty = 66,
  kStale = 70,
  kBadHandle = 10001,
  kNotSupp = 10004,
  kServerFault = 10006,
};

const char* StatusName(Status s);
Status FromFsError(memfs::FsError e);

/// Decode failures become kGarbage at the call site.
using xdr::DecodeError;
template <typename T>
using DecodeResult = Expected<T, DecodeError>;

/// NFS file handle: opaque to clients. Here: filesystem id + inode number
/// (inode numbers are never reused by MemFs, so deleted files yield ESTALE).
struct Fh {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;

  bool valid() const { return ino != 0; }
  void Encode(xdr::Encoder& enc) const {
    enc.PutU64(fsid);
    enc.PutU64(ino);
  }
  static DecodeResult<Fh> Decode(xdr::Decoder& dec);

  friend bool operator==(const Fh&, const Fh&) = default;
  friend auto operator<=>(const Fh&, const Fh&) = default;
};

enum class FType : std::uint32_t { kReg = 1, kDir = 2 };

struct Fattr {
  FType type = FType::kReg;
  std::uint32_t mode = 0;
  std::uint32_t nlink = 1;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  std::uint64_t fileid = 0;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;

  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<Fattr> Decode(xdr::Decoder& dec);

  friend bool operator==(const Fattr&, const Fattr&) = default;
};

Fattr ToFattr(const memfs::InodeAttr& attr);

/// post_op_attr: optionally present attributes in replies.
using PostOpAttr = std::optional<Fattr>;
void EncodePostOp(xdr::Encoder& enc, const PostOpAttr& attr);
DecodeResult<PostOpAttr> DecodePostOp(xdr::Decoder& dec);

// ---------------------------------------------------------------------------
// Per-procedure messages. Every struct has Encode/Decode; results carry a
// Status plus whatever post-op attributes the real protocol returns.
// ---------------------------------------------------------------------------

struct GetAttrArgs {
  Fh object;
  void Encode(xdr::Encoder& enc) const { object.Encode(enc); }
  static DecodeResult<GetAttrArgs> Decode(xdr::Decoder& dec);
};

struct GetAttrRes {
  Status status = Status::kOk;
  Fattr attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<GetAttrRes> Decode(xdr::Decoder& dec);
};

struct SetAttrArgs {
  Fh object;
  std::optional<std::uint32_t> mode;
  std::optional<std::uint64_t> size;
  std::optional<SimTime> mtime;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<SetAttrArgs> Decode(xdr::Decoder& dec);
};

struct SetAttrRes {
  Status status = Status::kOk;
  PostOpAttr attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<SetAttrRes> Decode(xdr::Decoder& dec);
};

struct LookupArgs {
  Fh dir;
  std::string name;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<LookupArgs> Decode(xdr::Decoder& dec);
};

struct LookupRes {
  Status status = Status::kOk;
  Fh object;
  PostOpAttr obj_attr;
  PostOpAttr dir_attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<LookupRes> Decode(xdr::Decoder& dec);
};

struct AccessArgs {
  Fh object;
  std::uint32_t access = 0;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<AccessArgs> Decode(xdr::Decoder& dec);
};

struct AccessRes {
  Status status = Status::kOk;
  PostOpAttr attr;
  std::uint32_t access = 0;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<AccessRes> Decode(xdr::Decoder& dec);
};

struct ReadArgs {
  Fh file;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<ReadArgs> Decode(xdr::Decoder& dec);
};

struct ReadRes {
  Status status = Status::kOk;
  PostOpAttr attr;
  std::uint32_t count = 0;
  bool eof = false;
  Bytes data;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<ReadRes> Decode(xdr::Decoder& dec);
};

enum class StableHow : std::uint32_t { kUnstable = 0, kDataSync = 1, kFileSync = 2 };

struct WriteArgs {
  Fh file;
  std::uint64_t offset = 0;
  StableHow stable = StableHow::kUnstable;
  Bytes data;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<WriteArgs> Decode(xdr::Decoder& dec);
};

struct WriteRes {
  Status status = Status::kOk;
  PostOpAttr attr;
  std::uint32_t count = 0;
  StableHow committed = StableHow::kFileSync;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<WriteRes> Decode(xdr::Decoder& dec);
};

struct CreateArgs {
  Fh dir;
  std::string name;
  std::uint32_t mode = 0644;
  bool exclusive = false;  // guarded/exclusive create: fail if name exists
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<CreateArgs> Decode(xdr::Decoder& dec);
};

struct CreateRes {
  Status status = Status::kOk;
  Fh object;
  PostOpAttr obj_attr;
  PostOpAttr dir_attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<CreateRes> Decode(xdr::Decoder& dec);
};

using MkdirArgs = CreateArgs;
using MkdirRes = CreateRes;

struct RemoveArgs {
  Fh dir;
  std::string name;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<RemoveArgs> Decode(xdr::Decoder& dec);
};

struct RemoveRes {
  Status status = Status::kOk;
  PostOpAttr dir_attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<RemoveRes> Decode(xdr::Decoder& dec);
};

using RmdirArgs = RemoveArgs;
using RmdirRes = RemoveRes;

struct RenameArgs {
  Fh from_dir;
  std::string from_name;
  Fh to_dir;
  std::string to_name;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<RenameArgs> Decode(xdr::Decoder& dec);
};

struct RenameRes {
  Status status = Status::kOk;
  PostOpAttr from_dir_attr;
  PostOpAttr to_dir_attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<RenameRes> Decode(xdr::Decoder& dec);
};

struct LinkArgs {
  Fh file;
  Fh dir;
  std::string name;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<LinkArgs> Decode(xdr::Decoder& dec);
};

struct LinkRes {
  Status status = Status::kOk;
  PostOpAttr file_attr;
  PostOpAttr dir_attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<LinkRes> Decode(xdr::Decoder& dec);
};

struct ReadDirArgs {
  Fh dir;
  std::uint64_t cookie = 0;
  std::uint32_t max_entries = 256;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<ReadDirArgs> Decode(xdr::Decoder& dec);
};

struct ReadDirEntry {
  std::uint64_t fileid = 0;
  std::string name;
  std::uint64_t cookie = 0;
};

struct ReadDirRes {
  Status status = Status::kOk;
  PostOpAttr dir_attr;
  std::vector<ReadDirEntry> entries;
  bool eof = false;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<ReadDirRes> Decode(xdr::Decoder& dec);
};

struct FsStatArgs {
  Fh root;
  void Encode(xdr::Encoder& enc) const { root.Encode(enc); }
  static DecodeResult<FsStatArgs> Decode(xdr::Decoder& dec);
};

struct FsStatRes {
  Status status = Status::kOk;
  std::uint64_t total_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t total_files = 0;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<FsStatRes> Decode(xdr::Decoder& dec);
};

struct CommitArgs {
  Fh file;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<CommitArgs> Decode(xdr::Decoder& dec);
};

struct CommitRes {
  Status status = Status::kOk;
  PostOpAttr attr;
  void Encode(xdr::Encoder& enc) const;
  static DecodeResult<CommitRes> Decode(xdr::Decoder& dec);
};

/// Serializes any message with an Encode method.
template <typename T>
Bytes Serialize(const T& msg) {
  xdr::Encoder enc;
  msg.Encode(enc);
  return enc.Take();
}

/// Parses a message; returns nullopt on any decode error. Accepts any view
/// of the body bytes (Bytes, rpc::Body, xdr::View) without copying.
template <typename T>
std::optional<T> Parse(ByteView body) {
  xdr::Decoder dec(body);
  auto result = T::Decode(dec);
  if (!result) return std::nullopt;
  return std::move(*result);
}

}  // namespace gvfs::nfs3
