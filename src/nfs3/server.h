// The kernel NFSv3 server: serves the full procedure set over an RpcNode,
// backed by a MemFs export. Stands in for the paper's kernel nfsd; the GVFS
// proxy server (src/gvfs) forwards to it over the server host's loopback.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "memfs/memfs.h"
#include "nfs3/proto.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace gvfs::nfs3 {

struct ServerConfig {
  /// CPU + disk time charged per request before the reply is produced.
  Duration service_time = Microseconds(100);
  /// Additional service time per 32 KB block moved by READ/WRITE.
  Duration per_block_time = Microseconds(50);
  /// Filesystem id stamped into every handle this server hands out.
  std::uint64_t fsid = 1;
};

class Nfs3Server {
 public:
  /// Registers handlers for all supported procedures on `node`. The server
  /// must outlive the node's last in-flight request.
  Nfs3Server(sim::Scheduler& sched, memfs::MemFs& fs, rpc::RpcNode& node,
             ServerConfig config = {});

  /// The exported root handle clients mount.
  Fh RootFh() const { return FhFor(fs_.root()); }

  Fh FhFor(memfs::InodeId ino) const { return Fh{config_.fsid, ino}; }

  memfs::MemFs& fs() { return fs_; }
  const ServerConfig& config() const { return config_; }

  /// Total requests served, by procedure (server-side view).
  const rpc::StatsMap& served() const { return served_; }

 private:
  sim::Task<Bytes> HandleGetAttr(rpc::Body args);
  sim::Task<Bytes> HandleSetAttr(rpc::Body args);
  sim::Task<Bytes> HandleLookup(rpc::Body args);
  sim::Task<Bytes> HandleAccess(rpc::Body args);
  sim::Task<Bytes> HandleRead(rpc::Body args);
  sim::Task<Bytes> HandleWrite(rpc::Body args);
  sim::Task<Bytes> HandleCreate(rpc::Body args);
  sim::Task<Bytes> HandleMkdir(rpc::Body args);
  sim::Task<Bytes> HandleRemove(rpc::Body args);
  sim::Task<Bytes> HandleRmdir(rpc::Body args);
  sim::Task<Bytes> HandleRename(rpc::Body args);
  sim::Task<Bytes> HandleLink(rpc::Body args);
  sim::Task<Bytes> HandleReadDir(rpc::Body args);
  sim::Task<Bytes> HandleFsStat(rpc::Body args);
  sim::Task<Bytes> HandleCommit(rpc::Body args);

  /// Charges base service time (plus per-block time for `blocks` blocks).
  /// Returns the Sleep awaitable directly — a full coroutine frame per
  /// request just to forward one sleep would be pure overhead.
  sim::Sleep Service(std::uint64_t blocks = 0);

  PostOpAttr AttrOf(memfs::InodeId ino) const;

  sim::Scheduler& sched_;
  memfs::MemFs& fs_;
  ServerConfig config_;
  rpc::StatsMap served_;
};

}  // namespace gvfs::nfs3
