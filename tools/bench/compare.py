#!/usr/bin/env python3
"""Perf gate: compare fresh benchmark output against the committed baselines.

Two kinds of numbers, two policies:

  virtual-time (BENCH_flush.json)  deterministic simulator output. Compared
      EXACTLY, field by field. Any difference is a correctness failure no
      matter how the run was flagged — a changed flush_s means the simulation
      itself changed, not the machine.

  wall-clock (BENCH_core.json)     machine-dependent throughput. Compared
      with a relative tolerance (default ±15%). Only benchmarks listed in the
      baseline's "gated" array are enforced; extra rows in the candidate are
      informational. --wall-mode=warn downgrades wall failures to warnings
      for noisy local machines (the ctest `perf` tier uses this); CI's bench
      job runs the default fail mode.

  virtual-time (BENCH_scale.json)  deterministic fleet-sweep rows from
      bench/fig_scale, keyed by (clients, shards, mode). Optional
      (--scale-baseline/--scale-candidate). Every candidate row must exist in
      the baseline and match EXACTLY — the candidate may be a subset (the
      --smoke sweep runs the small-N prefix of the same sweep), so the smoke
      tier gates against the committed full baseline.

Exit status: 0 clean, 1 any failure (including warnings promoted by mode).

Usage:
  tools/bench/compare.py \
      --core-baseline BENCH_core.json --core-candidate /tmp/BENCH_core.json \
      --flush-baseline BENCH_flush.json --flush-candidate /tmp/BENCH_flush.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_core(baseline, candidate, tolerance, wall_mode):
    """Returns (hard_failures, warnings) comparing gated wall-clock rows."""
    failures, warnings = [], []
    gated = baseline.get("gated", sorted(baseline["benchmarks"].keys()))
    base_rows = baseline["benchmarks"]
    cand_rows = candidate["benchmarks"]
    print(f"{'benchmark':<40} {'base':>12} {'cand':>12} {'ratio':>7}  verdict")
    for name in gated:
        if name not in cand_rows:
            failures.append(f"{name}: missing from candidate run")
            continue
        base = base_rows[name]["score_per_s"]
        cand = cand_rows[name]["score_per_s"]
        if base <= 0:
            failures.append(f"{name}: baseline throughput is zero")
            continue
        ratio = cand / base
        ok = ratio >= 1.0 - tolerance
        verdict = "ok" if ok else f"SLOWER than -{tolerance:.0%}"
        print(f"{name:<40} {base:>12.3g} {cand:>12.3g} {ratio:>7.2f}  {verdict}")
        if not ok:
            msg = (
                f"{name}: {cand:.3g} score/s vs baseline {base:.3g} "
                f"(ratio {ratio:.2f}, tolerance -{tolerance:.0%})"
            )
            if wall_mode == "warn":
                warnings.append(msg)
            else:
                failures.append(msg)
    return failures, warnings


def compare_flush(baseline, candidate):
    """Exact comparison of the deterministic virtual-time document."""
    failures = []
    if baseline == candidate:
        print("flush: virtual-time results identical to baseline")
        return failures
    for key in sorted(set(baseline) | set(candidate)):
        b, c = baseline.get(key), candidate.get(key)
        if b != c:
            failures.append(f"flush.{key}: baseline {b!r} != candidate {c!r}")
    return failures


def compare_scale(baseline, candidate):
    """Exact subset comparison of the deterministic fleet-sweep rows."""
    failures = []

    def key(row):
        return (row["clients"], row["shards"], row["mode"])

    base_rows = {key(r): r for r in baseline.get("points", [])}
    cand_points = candidate.get("points", [])
    if not cand_points:
        return ["scale: candidate has no sweep points"]
    for row in cand_points:
        k = key(row)
        tag = f"scale[clients={k[0]},shards={k[1]},{k[2]}]"
        base = base_rows.get(k)
        if base is None:
            failures.append(
                f"{tag}: not in baseline (regenerate BENCH_scale.json)"
            )
            continue
        for field in sorted(set(base) | set(row)):
            if base.get(field) != row.get(field):
                failures.append(
                    f"{tag}.{field}: baseline {base.get(field)!r} "
                    f"!= candidate {row.get(field)!r}"
                )
    if not failures:
        print(
            f"scale: {len(cand_points)} virtual-time sweep row(s) match "
            "baseline exactly"
        )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--core-baseline", required=True)
    ap.add_argument("--core-candidate", required=True)
    ap.add_argument("--flush-baseline", required=True)
    ap.add_argument("--flush-candidate", required=True)
    ap.add_argument("--scale-baseline")
    ap.add_argument("--scale-candidate")
    ap.add_argument("--wall-tolerance", type=float, default=0.15)
    ap.add_argument("--wall-mode", choices=["fail", "warn"], default="fail")
    args = ap.parse_args()
    if bool(args.scale_baseline) != bool(args.scale_candidate):
        ap.error("--scale-baseline and --scale-candidate must be given together")

    failures, warnings = compare_core(
        load(args.core_baseline),
        load(args.core_candidate),
        args.wall_tolerance,
        args.wall_mode,
    )
    failures += compare_flush(load(args.flush_baseline), load(args.flush_candidate))
    if args.scale_baseline:
        failures += compare_scale(
            load(args.scale_baseline), load(args.scale_candidate)
        )

    for w in warnings:
        print(f"WARN: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        print(f"perf gate: {len(failures)} failure(s)")
        return 1
    print("perf gate: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
