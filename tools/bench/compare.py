#!/usr/bin/env python3
"""Perf gate: compare fresh benchmark output against the committed baselines.

Two kinds of numbers, two policies:

  virtual-time (BENCH_flush.json)  deterministic simulator output. Compared
      EXACTLY, field by field. Any difference is a correctness failure no
      matter how the run was flagged — a changed flush_s means the simulation
      itself changed, not the machine.

  wall-clock (BENCH_core.json)     machine-dependent throughput. Compared
      with a relative tolerance (default ±15%). Only benchmarks listed in the
      baseline's "gated" array are enforced; extra rows in the candidate are
      informational. --wall-mode=warn downgrades wall failures to warnings
      for noisy local machines (the ctest `perf` tier uses this); CI's bench
      job runs the default fail mode.

  virtual-time (BENCH_scale.json)  deterministic fleet-sweep rows from
      bench/fig_scale, keyed by (clients, shards, mode). Optional
      (--scale-baseline/--scale-candidate). Every candidate row must exist in
      the baseline and match EXACTLY — the candidate may be a subset (the
      --smoke sweep runs the small-N prefix of the same sweep), so the smoke
      tier gates against the committed full baseline.

  virtual-time (BENCH_adapt.json)  deterministic fig_adapt rows, keyed by
      mode. Optional (--adapt-baseline/--adapt-candidate). Same subset rule
      as scale: --smoke runs the single-server prefix of the same point set.

Exit status: 0 clean, 1 any regression/mismatch. A structurally broken
input — a baseline or candidate document missing a key the comparison needs
(e.g. a baseline committed from an older schema) — exits 2 instead, naming
the key and the file it is missing from, so CI can distinguish "perf
regressed" from "the gate itself could not run".

Usage:
  tools/bench/compare.py \
      --core-baseline BENCH_core.json --core-candidate /tmp/BENCH_core.json \
      --flush-baseline BENCH_flush.json --flush-candidate /tmp/BENCH_flush.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


class MissingKeyError(Exception):
    """A document lacks a key the comparison needs (exit 2, not a perf fail)."""

    def __init__(self, key, path):
        super().__init__(f"missing key {key!r} (from {path})")
        self.key = key
        self.path = path


def require(doc, key, path):
    if key not in doc:
        raise MissingKeyError(key, path)
    return doc[key]


def compare_core(baseline, candidate, base_path, cand_path, tolerance, wall_mode):
    """Returns (hard_failures, warnings) comparing gated wall-clock rows."""
    failures, warnings = [], []
    base_rows = require(baseline, "benchmarks", base_path)
    gated = baseline.get("gated", sorted(base_rows.keys()))
    cand_rows = require(candidate, "benchmarks", cand_path)
    print(f"{'benchmark':<40} {'base':>12} {'cand':>12} {'ratio':>7}  verdict")
    for name in gated:
        if name not in cand_rows:
            failures.append(f"{name}: missing from candidate run")
            continue
        base = require(base_rows[name], "score_per_s", f"{base_path} [{name}]")
        cand = require(cand_rows[name], "score_per_s", f"{cand_path} [{name}]")
        if base <= 0:
            failures.append(f"{name}: baseline throughput is zero")
            continue
        ratio = cand / base
        ok = ratio >= 1.0 - tolerance
        verdict = "ok" if ok else f"SLOWER than -{tolerance:.0%}"
        print(f"{name:<40} {base:>12.3g} {cand:>12.3g} {ratio:>7.2f}  {verdict}")
        if not ok:
            msg = (
                f"{name}: {cand:.3g} score/s vs baseline {base:.3g} "
                f"(ratio {ratio:.2f}, tolerance -{tolerance:.0%})"
            )
            if wall_mode == "warn":
                warnings.append(msg)
            else:
                failures.append(msg)
    return failures, warnings


def compare_flush(baseline, candidate):
    """Exact comparison of the deterministic virtual-time document."""
    failures = []
    if baseline == candidate:
        print("flush: virtual-time results identical to baseline")
        return failures
    for key in sorted(set(baseline) | set(candidate)):
        b, c = baseline.get(key), candidate.get(key)
        if b != c:
            failures.append(f"flush.{key}: baseline {b!r} != candidate {c!r}")
    return failures


def compare_scale(baseline, candidate, base_path, cand_path):
    """Exact subset comparison of the deterministic fleet-sweep rows."""
    failures = []

    def key(row):
        return (row["clients"], row["shards"], row["mode"])

    base_rows = {key(r): r for r in require(baseline, "points", base_path)}
    cand_points = require(candidate, "points", cand_path)
    if not cand_points:
        return ["scale: candidate has no sweep points"]
    for row in cand_points:
        k = key(row)
        tag = f"scale[clients={k[0]},shards={k[1]},{k[2]}]"
        base = base_rows.get(k)
        if base is None:
            failures.append(
                f"{tag}: not in baseline (regenerate BENCH_scale.json)"
            )
            continue
        for field in sorted(set(base) | set(row)):
            if base.get(field) != row.get(field):
                failures.append(
                    f"{tag}.{field}: baseline {base.get(field)!r} "
                    f"!= candidate {row.get(field)!r}"
                )
    if not failures:
        print(
            f"scale: {len(cand_points)} virtual-time sweep row(s) match "
            "baseline exactly"
        )
    return failures


def compare_adapt(baseline, candidate, base_path, cand_path):
    """Exact subset comparison of the deterministic fig_adapt rows."""
    failures = []
    base_rows = {r["mode"]: r for r in require(baseline, "points", base_path)}
    cand_points = require(candidate, "points", cand_path)
    if not cand_points:
        return ["adapt: candidate has no points"]
    for row in cand_points:
        mode = row.get("mode")
        tag = f"adapt[{mode}]"
        base = base_rows.get(mode)
        if base is None:
            failures.append(f"{tag}: not in baseline (regenerate BENCH_adapt.json)")
            continue
        for field in sorted(set(base) | set(row)):
            if base.get(field) != row.get(field):
                failures.append(
                    f"{tag}.{field}: baseline {base.get(field)!r} "
                    f"!= candidate {row.get(field)!r}"
                )
    if not failures:
        print(
            f"adapt: {len(cand_points)} virtual-time row(s) match baseline "
            "exactly"
        )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--core-baseline", required=True)
    ap.add_argument("--core-candidate", required=True)
    ap.add_argument("--flush-baseline", required=True)
    ap.add_argument("--flush-candidate", required=True)
    ap.add_argument("--scale-baseline")
    ap.add_argument("--scale-candidate")
    ap.add_argument("--adapt-baseline")
    ap.add_argument("--adapt-candidate")
    ap.add_argument("--wall-tolerance", type=float, default=0.15)
    ap.add_argument("--wall-mode", choices=["fail", "warn"], default="fail")
    args = ap.parse_args()
    if bool(args.scale_baseline) != bool(args.scale_candidate):
        ap.error("--scale-baseline and --scale-candidate must be given together")
    if bool(args.adapt_baseline) != bool(args.adapt_candidate):
        ap.error("--adapt-baseline and --adapt-candidate must be given together")

    try:
        failures, warnings = compare_core(
            load(args.core_baseline),
            load(args.core_candidate),
            args.core_baseline,
            args.core_candidate,
            args.wall_tolerance,
            args.wall_mode,
        )
        failures += compare_flush(
            load(args.flush_baseline), load(args.flush_candidate)
        )
        if args.scale_baseline:
            failures += compare_scale(
                load(args.scale_baseline),
                load(args.scale_candidate),
                args.scale_baseline,
                args.scale_candidate,
            )
        if args.adapt_baseline:
            failures += compare_adapt(
                load(args.adapt_baseline),
                load(args.adapt_candidate),
                args.adapt_baseline,
                args.adapt_candidate,
            )
    except MissingKeyError as e:
        print(f"FAIL: {e}")
        print("perf gate: could not run (structurally broken input)")
        return 2

    for w in warnings:
        print(f"WARN: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        print(f"perf gate: {len(failures)} failure(s)")
        return 1
    print("perf gate: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
