#!/usr/bin/env python3
"""Regenerate the tracked perf baselines BENCH_core.json and BENCH_flush.json.

Runs the two micro benchmarks from an existing Release build and distils
their output into the two committed baseline files:

  BENCH_core.json   wall-clock micro benchmarks (google-benchmark): per-bench
                    real time and throughput. Machine-dependent; compared with
                    a relative tolerance by compare.py.
  BENCH_flush.json  micro_flush virtual-time results (flush latency vs
                    write-back window). Deterministic; compared exactly.
  BENCH_scale.json  fig_scale fleet sweep (GETINV load / buffer occupancy vs
                    client count across sharding and aggregation topologies).
                    Deterministic; compared exactly per (clients, shards,
                    mode) row — a smoke run gates as a subset.
  BENCH_adapt.json  fig_adapt adaptive-consistency points (three-phase mixed
                    workload across polling / delegation / adaptive /
                    adaptive-sharded). Deterministic; compared exactly per
                    mode row — a smoke run gates as a subset.

Usage:
  tools/bench/run_bench.py --build-dir build --out-dir .

`--repeat N` reruns the wall-clock micro_core suite N times and records the
per-benchmark median, shielding the committed baseline from one noisy run.

The committed copies at the repo root are the CI reference; regenerate them
with this script on a quiet machine whenever a PR intentionally moves perf
(see EXPERIMENTS.md, "Perf baseline").
"""

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys

# Benchmarks whose throughput defines the tracked baseline. Names must match
# bench/micro_core.cpp. The full-suite run produces more rows; anything not
# listed here is recorded but not gated (compare.py gates only what the
# baseline file contains).
CORE_BENCHMARKS = [
    "BM_SchedulerEventThroughput",
    "BM_XdrEncodeFattr",
    "BM_XdrDecodeFattr",
    "BM_XdrOpaqueRoundTrip/1024",
    "BM_XdrOpaqueRoundTrip/32768",
    "BM_DiskCacheAttrLookup",
    "BM_DiskCacheBlockWrite",
    "BM_MemFsCreateWrite",
    "BM_SimulatedGetattrRoundTrip",
]


def run_micro_core(build_dir, min_time):
    binary = os.path.join(build_dir, "bench", "micro_core")
    cmd = [
        binary,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    doc = json.loads(out.stdout)
    rows = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        real_ns = float(b["real_time"])
        items = float(b.get("items_per_second", 0.0))
        # Uniform "bigger is better" score: reported throughput when the
        # benchmark sets one, else iterations per second from wall time.
        score = items if items > 0 else 1e9 / real_ns
        rows[name] = {
            "real_time_ns": round(real_ns, 2),
            "items_per_second": round(items, 1),
            "score_per_s": round(score, 1),
        }
    missing = [n for n in CORE_BENCHMARKS if n not in rows]
    if missing:
        sys.exit(f"micro_core output is missing benchmarks: {missing}")
    return rows


def run_micro_core_repeated(build_dir, min_time, repeat):
    """Median-of-N wall-clock rows: reruns the whole micro_core suite
    `repeat` times and takes the per-benchmark, per-field median. Only the
    wall-clock keys exist in these rows, so a single noisy run (cron jitter,
    thermal throttling) cannot move the recorded baseline; the virtual-time
    documents are deterministic and never repeated."""
    runs = [run_micro_core(build_dir, min_time) for _ in range(repeat)]
    if repeat == 1:
        return runs[0]
    merged = {}
    for name in runs[0]:
        samples = [r[name] for r in runs if name in r]
        merged[name] = {
            "real_time_ns": round(
                statistics.median(s["real_time_ns"] for s in samples), 2),
            "items_per_second": round(
                statistics.median(s["items_per_second"] for s in samples), 1),
            "score_per_s": round(
                statistics.median(s["score_per_s"] for s in samples), 1),
        }
    return merged


def run_micro_flush(build_dir, out_path):
    binary = os.path.join(build_dir, "bench", "micro_flush")
    cmd = [binary, "--check", "--json-out", out_path]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def run_fig_scale(build_dir, out_path, smoke):
    binary = os.path.join(build_dir, "bench", "fig_scale")
    cmd = [binary, "--check", "--json-out", out_path]
    if smoke:
        cmd.append("--smoke")
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def run_fig_adapt(build_dir, out_path, smoke):
    binary = os.path.join(build_dir, "bench", "fig_adapt")
    cmd = [binary, "--check", "--json-out", out_path]
    if smoke:
        cmd.append("--smoke")
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out-dir", default=".")
    ap.add_argument(
        "--min-time",
        default="0.3",
        help="google-benchmark --benchmark_min_time per benchmark (seconds)",
    )
    ap.add_argument(
        "--gate-baseline-dir",
        default=None,
        help="after running, invoke compare.py against the committed "
        "BENCH_*.json in this directory and exit with its status",
    )
    ap.add_argument("--wall-mode", choices=["fail", "warn"], default="fail")
    ap.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the wall-clock micro_core suite N times and record the "
        "per-benchmark median (use 3-5 when regenerating the committed "
        "baseline; virtual-time documents are deterministic and run once)",
    )
    ap.add_argument(
        "--scale-smoke",
        action="store_true",
        help="run only the small-N prefix of the fig_scale sweep (rows still "
        "gate exactly, as a subset of the committed baseline)",
    )
    ap.add_argument(
        "--adapt-smoke",
        action="store_true",
        help="run only the single-server fig_adapt points (rows still gate "
        "exactly, as a subset of the committed baseline)",
    )
    args = ap.parse_args()

    os.makedirs(args.out_dir, exist_ok=True)

    if args.repeat < 1:
        sys.exit("--repeat must be >= 1")
    core_rows = run_micro_core_repeated(
        args.build_dir, args.min_time, args.repeat)
    core_doc = {
        "schema": "gvfs-bench-core/1",
        "note": (
            "Wall-clock micro benchmarks; machine-dependent. CI compares "
            "against this file with a relative tolerance (compare.py). "
            "Regenerate with tools/bench/run_bench.py on a quiet machine."
        ),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "gated": CORE_BENCHMARKS,
        "benchmarks": core_rows,
    }
    core_path = os.path.join(args.out_dir, "BENCH_core.json")
    with open(core_path, "w") as f:
        json.dump(core_doc, f, indent=1)
        f.write("\n")
    print(f"wrote {core_path}", file=sys.stderr)

    flush_path = os.path.join(args.out_dir, "BENCH_flush.json")
    flush_doc = run_micro_flush(args.build_dir, flush_path)
    print(f"wrote {flush_path}", file=sys.stderr)

    scale_path = os.path.join(args.out_dir, "BENCH_scale.json")
    run_fig_scale(args.build_dir, scale_path, args.scale_smoke)
    print(f"wrote {scale_path}", file=sys.stderr)

    adapt_path = os.path.join(args.out_dir, "BENCH_adapt.json")
    run_fig_adapt(args.build_dir, adapt_path, args.adapt_smoke)
    print(f"wrote {adapt_path}", file=sys.stderr)

    rt = core_rows.get("BM_SimulatedGetattrRoundTrip", {})
    print(
        f"roundtrip: {rt.get('items_per_second', 0) / 1e6:.2f}M sim-RPCs/s; "
        f"flush speedup w8/w1: {flush_doc.get('speedup_w8_vs_w1')}",
        file=sys.stderr,
    )

    if args.gate_baseline_dir:
        compare = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "compare.py"
        )
        rc = subprocess.run(
            [
                sys.executable,
                compare,
                "--core-baseline",
                os.path.join(args.gate_baseline_dir, "BENCH_core.json"),
                "--core-candidate",
                core_path,
                "--flush-baseline",
                os.path.join(args.gate_baseline_dir, "BENCH_flush.json"),
                "--flush-candidate",
                flush_path,
                "--scale-baseline",
                os.path.join(args.gate_baseline_dir, "BENCH_scale.json"),
                "--scale-candidate",
                scale_path,
                "--adapt-baseline",
                os.path.join(args.gate_baseline_dir, "BENCH_adapt.json"),
                "--adapt-candidate",
                adapt_path,
                "--wall-mode",
                args.wall_mode,
            ]
        ).returncode
        sys.exit(rc)


if __name__ == "__main__":
    main()
