#include "doctor.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "common/json_value.h"
#include "common/json_writer.h"
#include "gvfs/proto.h"
#include "policy/policy.h"
#include "trace/export.h"

namespace gvfs::doctor {

namespace {

using trace::Event;
using trace::EventType;

/// Timeline tail length per file and file count cap in a report.
constexpr std::size_t kTimelineEntries = 20;
constexpr std::size_t kMaxFiles = 16;

std::string FhString(std::uint64_t fsid, std::uint64_t ino) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64, fsid, ino);
  return buf;
}

const char* ModeName(std::uint32_t mode) {
  return policy::FileModeName(static_cast<policy::FileMode>(mode));
}

/// File identity of a file-scoped event; false for rpc/net/node events.
bool FileOf(const Event& ev, std::uint64_t* fsid, std::uint64_t* ino) {
  switch (ev.type) {
    case EventType::kCacheHit:
    case EventType::kCacheMiss:
    case EventType::kCacheWriteBack:
      *fsid = ev.u.cache.fsid;
      *ino = ev.u.cache.ino;
      return true;
    case EventType::kDelegGrant:
    case EventType::kDelegRecall:
    case EventType::kDelegRelease:
    case EventType::kDelegExpiry:
      *fsid = ev.u.deleg.fsid;
      *ino = ev.u.deleg.ino;
      return true;
    case EventType::kInvAppend:
    case EventType::kInvPoll:
    case EventType::kInvWrap:
    case EventType::kInvForce:
    case EventType::kAggFanout:
    case EventType::kAggIngest:
    case EventType::kAggDeliver:
    case EventType::kAggServe:
      *fsid = ev.u.inv.fsid;
      *ino = ev.u.inv.ino;
      return true;
    case EventType::kPolicyDecide:
    case EventType::kPolicyMigrate:
      *fsid = ev.u.policy.fsid;
      *ino = ev.u.policy.ino;
      return true;
    case EventType::kAnomaly:
      *fsid = ev.u.anomaly.fsid;
      *ino = ev.u.anomaly.ino;
      return (*fsid | *ino) != 0;
    default:
      return false;
  }
}

/// One timeline line for a file-scoped event, mirroring WriteTimeline but
/// with policy modes spelled out.
std::string RenderEventLine(const trace::TraceBuffer& buffer, const Event& ev) {
  char line[192];
  std::snprintf(line, sizeof(line), "[%12.6f] host %-3u %-15s",
                ToSeconds(ev.time), ev.host, trace::EventTypeName(ev.type));
  std::string out = line;
  switch (ev.type) {
    case EventType::kCacheHit:
    case EventType::kCacheMiss:
    case EventType::kCacheWriteBack:
      out += " ";
      out += buffer.LabelName(ev.u.cache.label);
      break;
    case EventType::kDelegGrant:
    case EventType::kDelegRecall:
    case EventType::kDelegRelease:
    case EventType::kDelegExpiry: {
      const auto& d = ev.u.deleg;
      std::snprintf(line, sizeof(line), " type=%s peer=host %u%s",
                    d.deleg_type == 2 ? "write" : "read", d.peer_host,
                    (d.flags & trace::kDelegFlagServerSide) != 0 ? " (server)"
                                                                 : "");
      out += line;
      break;
    }
    case EventType::kInvAppend:
    case EventType::kInvPoll:
    case EventType::kInvWrap:
    case EventType::kInvForce:
    case EventType::kAggFanout:
    case EventType::kAggIngest:
    case EventType::kAggDeliver:
    case EventType::kAggServe: {
      const auto& v = ev.u.inv;
      std::snprintf(line, sizeof(line), " ts=%" PRIu64 " count=%u peer=host %u",
                    v.timestamp, v.count, v.peer_host);
      out += line;
      break;
    }
    case EventType::kPolicyDecide:
    case EventType::kPolicyMigrate: {
      const auto& p = ev.u.policy;
      std::snprintf(line, sizeof(line), " %s -> %s%s%s", ModeName(p.from),
                    ModeName(p.to),
                    (p.flags & trace::kPolicyFlagServerSide) != 0 ? " (server)"
                                                                  : "",
                    (p.flags & trace::kPolicyFlagFrozen) != 0 ? " frozen" : "");
      out += line;
      break;
    }
    case EventType::kAnomaly: {
      const auto& a = ev.u.anomaly;
      std::snprintf(line, sizeof(line), " %s value=%.6g threshold=%.6g",
                    obs::AnomalyKindName(
                        static_cast<obs::AnomalyKind>(a.kind)),
                    a.value, a.threshold);
      out += line;
      break;
    }
    default:
      break;
  }
  return out;
}

bool ParseFh(const std::string& fh, std::uint64_t* fsid, std::uint64_t* ino) {
  const std::size_t colon = fh.find(':');
  if (colon == std::string::npos) return false;
  *fsid = std::strtoull(fh.c_str(), nullptr, 10);
  *ino = std::strtoull(fh.c_str() + colon + 1, nullptr, 10);
  return true;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(items[i]);
  }
  out += "]";
  return out;
}

}  // namespace

const char* VerdictFor(obs::AnomalyKind kind) {
  switch (kind) {
    case obs::AnomalyKind::kRecallStorm:
      return "delegation recalls are thrashing: raise the storm-breaker "
             "threshold, lengthen policy dwell, or disable write delegation "
             "for the contended files";
    case obs::AnomalyKind::kStalenessSlo:
      return "cached reads exceeded the proven poll_period + 2*RTT staleness "
             "budget: shorten the poll period, check for a stalled GETINV "
             "loop, or verify the server is draining its buffers";
    case obs::AnomalyKind::kMigrationFlap:
      return "a file keeps migrating back and forth between consistency "
             "modes: increase policy dwell or the hysteresis window";
    case obs::AnomalyKind::kInvOverflow:
      return "invalidation buffers wrapped or their occupancy keeps rising: "
             "raise inv_buffer_capacity, shorten client poll periods, or add "
             "shards to spread the append load";
    case obs::AnomalyKind::kShardImbalance:
      return "one shard carries a multiple of its peers' buffered load: "
             "rebalance the handle space or revisit the shard count";
  }
  return "?";
}

DoctorReport Diagnose(const obs::DumpFile& dump) {
  DoctorReport report;
  report.reason = dump.reason;
  report.time = dump.time;
  report.trace_events = dump.trace.size();
  report.trace_recorded = dump.trace_recorded;
  report.trace_dropped = dump.trace_dropped;
  report.trace_omitted = dump.trace_omitted;
  report.warnings = dump.notes;

  // 1. Re-run every protocol invariant over the captured ring.
  trace::TraceChecker checker(proxy::NfsTraceCheckerConfig());
  report.violations = checker.Check(dump.trace);
  for (const auto& w : checker.warnings()) report.warnings.push_back(w);
  if (dump.trace_dropped > 0 || dump.trace_omitted > 0) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "trace is incomplete (%" PRIu64 " dropped by the ring, %"
                  PRIu64 " omitted from the dump): the replay covers a "
                  "truncated suffix of the run",
                  dump.trace_dropped, dump.trace_omitted);
    report.warnings.push_back(msg);
  }

  // 2. Anomalies: the recorded firings, plus any kAnomaly event in the ring
  // the recorder did not capture (e.g. a trace-only ingest), deduplicated by
  // (kind, time).
  report.anomalies = dump.anomalies;
  std::set<std::pair<std::uint32_t, SimTime>> seen;
  for (const auto& a : report.anomalies) {
    seen.insert({static_cast<std::uint32_t>(a.kind), a.time});
  }
  for (std::size_t i = 0; i < dump.trace.size(); ++i) {
    const Event& ev = dump.trace.at(i);
    if (ev.type != EventType::kAnomaly) continue;
    const auto& p = ev.u.anomaly;
    if (p.kind >= obs::kDetectorCount) {
      report.warnings.push_back("trace carries an ANOMALY event of unknown "
                                "kind " + std::to_string(p.kind));
      continue;
    }
    if (!seen.insert({p.kind, ev.time}).second) continue;
    obs::Anomaly rec;
    rec.kind = static_cast<obs::AnomalyKind>(p.kind);
    rec.time = ev.time;
    rec.host = ev.host;
    rec.fsid = p.fsid;
    rec.ino = p.ino;
    rec.value = p.value;
    rec.threshold = p.threshold;
    rec.detail = std::string(obs::AnomalyKindName(rec.kind)) +
                 " (from trace event; no recorder detail)";
    report.anomalies.push_back(std::move(rec));
  }

  // 3. Per-file timelines.
  struct Accum {
    FileTimeline tl;
    std::deque<std::string> tail;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Accum> files;
  for (std::size_t i = 0; i < dump.trace.size(); ++i) {
    const Event& ev = dump.trace.at(i);
    std::uint64_t fsid = 0, ino = 0;
    if (!FileOf(ev, &fsid, &ino)) continue;
    Accum& acc = files[{fsid, ino}];
    acc.tl.fsid = fsid;
    acc.tl.ino = ino;
    ++acc.tl.events;
    switch (ev.type) {
      case EventType::kDelegGrant:
        ++acc.tl.grants;
        break;
      case EventType::kDelegRecall:
        ++acc.tl.recalls;
        break;
      case EventType::kInvAppend:
        ++acc.tl.invs_buffered;
        break;
      case EventType::kInvPoll:
        ++acc.tl.invs_applied;
        break;
      case EventType::kPolicyMigrate:
        if ((ev.u.policy.flags & trace::kPolicyFlagServerSide) == 0) {
          ++acc.tl.migrations;
        }
        break;
      default:
        break;
    }
    acc.tail.push_back(RenderEventLine(dump.trace, ev));
    if (acc.tail.size() > kTimelineEntries) acc.tail.pop_front();
  }

  // Flag the files the findings name: a violation points at the event it
  // fired on; file-scoped anomalies carry the handle directly.
  for (const auto& v : report.violations) {
    if (v.event_index >= dump.trace.size()) continue;
    std::uint64_t fsid = 0, ino = 0;
    if (FileOf(dump.trace.at(v.event_index), &fsid, &ino)) {
      auto it = files.find({fsid, ino});
      if (it != files.end()) it->second.tl.flagged = true;
    }
  }
  for (const auto& a : report.anomalies) {
    if ((a.fsid | a.ino) == 0) continue;
    auto it = files.find({a.fsid, a.ino});
    if (it != files.end()) it->second.tl.flagged = true;
  }

  for (auto& [key, acc] : files) {
    acc.tl.tail.assign(acc.tail.begin(), acc.tail.end());
    report.files.push_back(std::move(acc.tl));
  }
  std::stable_sort(report.files.begin(), report.files.end(),
                   [](const FileTimeline& a, const FileTimeline& b) {
                     if (a.flagged != b.flagged) return a.flagged;
                     return a.events > b.events;
                   });
  if (report.files.size() > kMaxFiles) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "%zu additional quiet files omitted from the report",
                  report.files.size() - kMaxFiles);
    report.files.resize(kMaxFiles);
    report.warnings.push_back(msg);
  }
  return report;
}

std::string RenderHuman(const DoctorReport& report) {
  char line[256];
  std::string out = "gvfs-doctor report";
  if (!report.source.empty()) out += " — " + report.source;
  out += "\n";
  if (!report.reason.empty()) out += "reason: " + report.reason + "\n";
  std::snprintf(line, sizeof(line),
                "sim time %.6f s; trace: %" PRIu64 " events (recorded %"
                PRIu64 ", dropped %" PRIu64 ", omitted %" PRIu64 ")\n",
                ToSeconds(report.time), report.trace_events,
                report.trace_recorded, report.trace_dropped,
                report.trace_omitted);
  out += line;

  if (report.healthy()) {
    out += "\nVERDICT: HEALTHY — no invariant violations, no anomalies\n";
  } else {
    std::snprintf(line, sizeof(line),
                  "\nVERDICT: UNHEALTHY — %zu invariant violation(s), %zu "
                  "anomaly(ies)\n",
                  report.violations.size(), report.anomalies.size());
    out += line;
  }

  if (!report.violations.empty()) {
    out += "\ninvariant violations:\n";
    out += trace::FormatViolations(report.violations);
  }
  if (!report.anomalies.empty()) {
    out += "\nanomalies:\n";
    for (const auto& a : report.anomalies) {
      std::snprintf(line, sizeof(line), "[%.6fs] %s", ToSeconds(a.time),
                    obs::AnomalyKindName(a.kind));
      out += line;
      if ((a.fsid | a.ino) != 0) out += " file " + FhString(a.fsid, a.ino);
      std::snprintf(line, sizeof(line), " (value %.6g, threshold %.6g)",
                    a.value, a.threshold);
      out += line;
      if (!a.detail.empty()) out += "\n  detail: " + a.detail;
      out += "\n  remedy: ";
      out += VerdictFor(a.kind);
      out += "\n";
    }
  }
  if (!report.warnings.empty()) {
    out += "\nwarnings:\n";
    for (const auto& w : report.warnings) out += "  " + w + "\n";
  }
  if (!report.files.empty()) {
    out += "\nper-file consistency timelines";
    out += report.files.front().flagged ? " (flagged files first):\n" : ":\n";
    for (const auto& f : report.files) {
      std::snprintf(line, sizeof(line),
                    "file %s — %" PRIu64 " events, %" PRIu64 " grant(s), %"
                    PRIu64 " recall(s), %" PRIu64 " inv buffered / %" PRIu64
                    " applied, %" PRIu64 " migration(s)%s\n",
                    FhString(f.fsid, f.ino).c_str(), f.events, f.grants,
                    f.recalls, f.invs_buffered, f.invs_applied, f.migrations,
                    f.flagged ? "  << FLAGGED" : "");
      out += line;
      if (f.flagged) {
        for (const auto& entry : f.tail) out += "  " + entry + "\n";
      }
    }
  }
  return out;
}

std::string RenderJson(const DoctorReport& report) {
  JsonObject doc;
  doc.Add("tool", "gvfs-doctor");
  doc.Add("source", report.source);
  doc.Add("reason", report.reason);
  doc.Add("time_ns", static_cast<std::uint64_t>(report.time));
  doc.Add("healthy", report.healthy());

  JsonObject tr;
  tr.Add("events", report.trace_events);
  tr.Add("recorded", report.trace_recorded);
  tr.Add("dropped", report.trace_dropped);
  tr.Add("omitted", report.trace_omitted);
  doc.Add("trace", tr);

  std::vector<JsonObject> violations;
  for (const auto& v : report.violations) {
    JsonObject o;
    o.Add("kind", trace::InvariantKindName(v.kind));
    o.Add("time_ns", static_cast<std::uint64_t>(v.time));
    o.Add("event_index", static_cast<std::uint64_t>(v.event_index));
    o.Add("detail", v.detail);
    violations.push_back(std::move(o));
  }
  doc.Add("violations", violations);

  std::vector<JsonObject> anomalies;
  for (const auto& a : report.anomalies) {
    JsonObject o;
    o.Add("kind", obs::AnomalyKindName(a.kind));
    o.Add("time_ns", static_cast<std::uint64_t>(a.time));
    if (a.host != kInvalidHost) o.Add("host", static_cast<std::uint64_t>(a.host));
    if ((a.fsid | a.ino) != 0) o.Add("fh", FhString(a.fsid, a.ino));
    o.Add("value", a.value);
    o.Add("threshold", a.threshold);
    o.Add("detail", a.detail);
    o.Add("remedy", VerdictFor(a.kind));
    anomalies.push_back(std::move(o));
  }
  doc.Add("anomalies", anomalies);

  doc.AddRaw("warnings", JsonStringArray(report.warnings));

  std::vector<JsonObject> files;
  for (const auto& f : report.files) {
    JsonObject o;
    o.Add("fh", FhString(f.fsid, f.ino));
    o.Add("flagged", f.flagged);
    o.Add("events", f.events);
    o.Add("grants", f.grants);
    o.Add("recalls", f.recalls);
    o.Add("invs_buffered", f.invs_buffered);
    o.Add("invs_applied", f.invs_applied);
    o.Add("migrations", f.migrations);
    files.push_back(std::move(o));
  }
  doc.Add("files", files);
  return doc.Dump() + "\n";
}

bool ReadChromeTrace(const std::string& path, obs::DumpFile* out,
                     std::string* error) {
  std::string parse_error;
  const JsonValue doc = ReadJsonFile(path, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (!doc.is_array()) {
    if (error != nullptr) *error = path + ": not a Chrome trace event array";
    return false;
  }

  // Events plus their cache-op label (interned only once the buffer exists;
  // the checker classifies read-class cache ops by label name).
  struct Ingested {
    Event ev{};
    std::string op;
  };
  std::vector<Ingested> events;
  std::uint64_t dropped = 0;
  std::uint64_t spans = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const JsonValue& e = doc[i];
    const std::string& name = e["name"].AsString();
    const std::string& ph = e["ph"].AsString();
    if (name == "TRACE_TRUNCATED") {
      dropped += e["args"]["dropped_events"].AsU64();
      continue;
    }
    if (ph == "X") {
      ++spans;
      continue;
    }
    if (ph != "i") continue;
    EventType type;
    if (!obs::EventTypeFromName(name, &type)) continue;
    Ingested rec;
    Event& ev = rec.ev;
    ev.type = type;
    // ts is microseconds; pid carries the host (plus any merge offset the
    // exporter applied — merged multi-run traces keep their runs apart).
    ev.time = static_cast<SimTime>(
        std::llround(e["ts"].AsDouble() * 1000.0));
    ev.host = static_cast<HostId>(e["pid"].AsU64());
    ev.port = static_cast<std::uint32_t>(e["tid"].AsU64());
    const JsonValue& args = e["args"];
    switch (type) {
      case EventType::kNetDrop:
        ev.u.net.dst_host =
            static_cast<std::uint32_t>(args["dst_host"].AsU64());
        ev.u.net.wire_size =
            static_cast<std::uint32_t>(args["wire_size"].AsU64());
        break;
      case EventType::kCacheHit:
      case EventType::kCacheMiss:
      case EventType::kCacheWriteBack:
        ParseFh(args["fh"].AsString(), &ev.u.cache.fsid, &ev.u.cache.ino);
        ev.u.cache.offset = args.Has("offset") ? args["offset"].AsU64()
                                               : trace::kNoOffset;
        rec.op = args["op"].AsString();
        break;
      case EventType::kDelegGrant:
      case EventType::kDelegRecall:
      case EventType::kDelegRelease:
      case EventType::kDelegExpiry:
        ParseFh(args["fh"].AsString(), &ev.u.deleg.fsid, &ev.u.deleg.ino);
        ev.u.deleg.deleg_type =
            static_cast<std::uint32_t>(args["type"].AsU64());
        ev.u.deleg.peer_host =
            static_cast<std::uint32_t>(args["peer_host"].AsU64());
        ev.u.deleg.flags = static_cast<std::uint32_t>(args["flags"].AsU64());
        ev.u.deleg.wanted_offset = args["wanted_offset"].AsU64();
        break;
      case EventType::kInvAppend:
      case EventType::kInvPoll:
      case EventType::kInvWrap:
      case EventType::kInvForce:
      case EventType::kAggFanout:
      case EventType::kAggIngest:
      case EventType::kAggDeliver:
      case EventType::kAggServe:
        ParseFh(args["fh"].AsString(), &ev.u.inv.fsid, &ev.u.inv.ino);
        ev.u.inv.timestamp = args["timestamp"].AsU64();
        ev.u.inv.count = static_cast<std::uint32_t>(args["count"].AsU64());
        ev.u.inv.peer_host =
            static_cast<std::uint32_t>(args["peer_host"].AsU64());
        break;
      case EventType::kPolicyDecide:
      case EventType::kPolicyMigrate:
        ParseFh(args["fh"].AsString(), &ev.u.policy.fsid, &ev.u.policy.ino);
        ev.u.policy.from = static_cast<std::uint32_t>(args["from"].AsU64());
        ev.u.policy.to = static_cast<std::uint32_t>(args["to"].AsU64());
        ev.u.policy.flags = static_cast<std::uint32_t>(args["flags"].AsU64());
        break;
      case EventType::kAnomaly:
        ParseFh(args["fh"].AsString(), &ev.u.anomaly.fsid, &ev.u.anomaly.ino);
        ev.u.anomaly.kind = static_cast<std::uint32_t>(args["kind"].AsU64());
        ev.u.anomaly.value = args["value"].AsDouble();
        ev.u.anomaly.threshold = args["threshold"].AsDouble();
        break;
      default:
        // RPC-family instants never appear in a Chrome trace (they become
        // spans) and node events carry no args.
        break;
    }
    events.push_back(std::move(rec));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ingested& a, const Ingested& b) {
                     return a.ev.time < b.ev.time;
                   });

  *out = obs::DumpFile();
  out->reason = "chrome-trace ingest";
  out->trace = trace::TraceBuffer(std::max<std::size_t>(1, events.size()));
  for (Ingested& rec : events) {
    if (!rec.op.empty()) rec.ev.u.cache.label = out->trace.InternLabel(rec.op);
    out->trace.Push(rec.ev);
    if (rec.ev.time > out->time) out->time = rec.ev.time;
  }
  out->trace_recorded = events.size() + dropped;
  out->trace_dropped = dropped;
  out->notes.push_back(
      "ingested from a Chrome trace: " + std::to_string(spans) +
      " RPC span(s) were collapsed by the exporter, so the DRC re-execution "
      "invariant cannot be re-checked");
  if (error != nullptr) error->clear();
  return true;
}

bool ReadMetricsSeries(const std::string& path, Duration staleness_budget,
                       obs::DumpFile* out, std::string* error) {
  std::string parse_error;
  const JsonValue doc = ReadJsonFile(path, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  const JsonValue& samples = doc["samples"];
  if (!samples.is_array() || samples.size() == 0) {
    if (error != nullptr) *error = path + ": no samples in time series";
    return false;
  }
  const JsonValue& last = samples[samples.size() - 1];

  *out = obs::DumpFile();
  out->reason = "metrics-series ingest";
  out->time =
      static_cast<SimTime>(std::llround(last["time_s"].AsDouble() * 1e9));
  out->trace = trace::TraceBuffer(1);

  const double budget_us =
      static_cast<double>(staleness_budget / kMicrosecond);
  for (const auto& [column, value] : last["values"].object()) {
    if (EndsWith(column, ".staleness_us.p99")) {
      const double p99 = value.AsDouble();
      char msg[160];
      if (budget_us > 0 && p99 > budget_us) {
        obs::Anomaly a;
        a.kind = obs::AnomalyKind::kStalenessSlo;
        a.time = out->time;
        a.value = p99;
        a.threshold = budget_us;
        std::snprintf(msg, sizeof(msg),
                      "%s p99 %.0f us exceeds the %.0f us budget",
                      column.c_str(), p99, budget_us);
        a.detail = msg;
        out->anomalies.push_back(std::move(a));
      } else {
        std::snprintf(msg, sizeof(msg), "%s final p99 = %.0f us",
                      column.c_str(), p99);
        out->notes.push_back(msg);
      }
    } else if (EndsWith(column, ".inv_wraps") && value.AsDouble() > 0) {
      obs::Anomaly a;
      a.kind = obs::AnomalyKind::kInvOverflow;
      a.time = out->time;
      a.value = value.AsDouble();
      a.threshold = 0;
      a.detail = column + " reports " +
                 std::to_string(static_cast<std::uint64_t>(value.AsDouble())) +
                 " invalidation-buffer wrap(s)";
      out->anomalies.push_back(std::move(a));
    }
  }
  out->notes.push_back("ingested from a metrics time series: no trace ring, "
                       "invariant replay is vacuous");
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace gvfs::doctor
