// gvfs-doctor CLI. See doctor.h for the diagnosis pipeline.
//
//   gvfs-doctor <run.gvfsdump> [--json-out report.json]
//   gvfs-doctor --trace chrome_trace.json [--json-out report.json]
//   gvfs-doctor --metrics series.json [--staleness-budget-ms N] [...]
//
// Exit codes: 0 healthy, 1 findings (invariant violations or anomalies),
// 2 unusable input / bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/json_writer.h"
#include "doctor.h"

namespace {

std::optional<std::string> FlagValue(int argc, char** argv,
                                     const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) return std::string(argv[i + 1]);
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: gvfs-doctor <run.gvfsdump> [--json-out report.json]\n"
      "       gvfs-doctor --trace chrome_trace.json [--json-out ...]\n"
      "       gvfs-doctor --metrics series.json [--staleness-budget-ms N]\n");
  return 2;
}

/// The first non-flag argument (skipping flag values), or nullopt.
std::optional<std::string> Positional(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') {
      // "--flag value" consumes the next argument unless written as
      // "--flag=value".
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
      continue;
    }
    return std::string(argv[i]);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using gvfs::obs::DumpFile;

  const auto trace_path = FlagValue(argc, argv, "--trace");
  const auto metrics_path = FlagValue(argc, argv, "--metrics");
  const auto json_out = FlagValue(argc, argv, "--json-out");
  const auto dump_path = Positional(argc, argv);

  gvfs::Duration budget = 0;
  if (const auto ms = FlagValue(argc, argv, "--staleness-budget-ms")) {
    budget = gvfs::Milliseconds(std::atol(ms->c_str()));
  }

  DumpFile dump;
  std::string source;
  std::string error;
  bool loaded = false;
  if (trace_path.has_value()) {
    source = *trace_path;
    loaded = gvfs::doctor::ReadChromeTrace(*trace_path, &dump, &error);
  } else if (metrics_path.has_value()) {
    source = *metrics_path;
    loaded = gvfs::doctor::ReadMetricsSeries(*metrics_path, budget, &dump,
                                             &error);
  } else if (dump_path.has_value()) {
    source = *dump_path;
    loaded = gvfs::obs::ReadDump(*dump_path, &dump, &error);
  } else {
    return Usage();
  }
  if (!loaded) {
    std::fprintf(stderr, "gvfs-doctor: %s\n",
                 error.empty() ? "unreadable input" : error.c_str());
    return 2;
  }

  gvfs::doctor::DoctorReport report = gvfs::doctor::Diagnose(dump);
  report.source = source;

  std::printf("%s", gvfs::doctor::RenderHuman(report).c_str());
  if (json_out.has_value()) {
    if (!gvfs::WriteTextFile(*json_out,
                             gvfs::doctor::RenderJson(report))) {
      return 2;
    }
    std::printf("\nwrote %s\n", json_out->c_str());
  }
  return report.healthy() ? 0 : 1;
}
