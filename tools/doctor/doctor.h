// gvfs-doctor: post-mortem diagnosis of consistency runs.
//
// The doctor consumes a flight-recorder snapshot (.gvfsdump, see
// src/obs/dump.h) — or raw run artifacts: a Chrome trace written by
// --trace-out, a metrics time series written by --metrics-out — and turns it
// into a diagnosis:
//
//   - re-runs every TraceChecker protocol invariant over the captured ring,
//   - lifts the recorded (and trace-embedded) anomaly firings into verdicts
//     with a per-detector remedy line,
//   - reconstructs per-file consistency timelines (delegation grants and
//     recalls, buffered/applied invalidations, policy migrations) so the
//     report names the offending file handles and migrations directly,
//   - renders the result as a human-readable report and a machine-readable
//     JSON verdict.
//
// Exit-code contract of the CLI (main.cpp): 0 healthy, 1 findings
// (violations or anomalies), 2 unusable input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/anomaly.h"
#include "obs/dump.h"
#include "trace/checker.h"

namespace gvfs::doctor {

/// One remedy line per detector kind. This table is a gvfs-lint
/// anomaly-coverage anchor: every obs::AnomalyKind must have a case here.
const char* VerdictFor(obs::AnomalyKind kind);

/// Per-file consistency history distilled from the trace ring.
struct FileTimeline {
  std::uint64_t fsid = 0;
  std::uint64_t ino = 0;
  std::uint64_t events = 0;  // all trace events touching this file
  std::uint64_t grants = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invs_buffered = 0;  // kInvAppend
  std::uint64_t invs_applied = 0;   // kInvPoll
  std::uint64_t migrations = 0;     // client-side kPolicyMigrate
  /// Named by a violation or a file-scoped anomaly.
  bool flagged = false;
  /// Newest `kTimelineEntries` rendered event lines, oldest first.
  std::vector<std::string> tail;
};

struct DoctorReport {
  std::string source;  // path the dump/trace/series came from
  std::string reason;  // the dump's trigger ("anomaly: ...", "fixture: ...")
  SimTime time = 0;    // sim time of the snapshot

  std::uint64_t trace_events = 0;    // events available to the replay
  std::uint64_t trace_recorded = 0;  // producer-side total
  std::uint64_t trace_dropped = 0;   // lost to ring overflow
  std::uint64_t trace_omitted = 0;   // left out of the dump itself

  std::vector<trace::Violation> violations;
  std::vector<obs::Anomaly> anomalies;
  std::vector<std::string> warnings;  // checker caveats + ingest caveats
  std::vector<FileTimeline> files;    // flagged first, then busiest

  bool healthy() const { return violations.empty() && anomalies.empty(); }
};

/// Re-checks invariants, lifts anomalies, and builds the timelines.
DoctorReport Diagnose(const obs::DumpFile& dump);

/// Human-readable report (the CLI's stdout).
std::string RenderHuman(const DoctorReport& report);

/// Machine-readable verdict (--json-out).
std::string RenderJson(const DoctorReport& report);

/// Ingests a Chrome trace (trace::ChromeTraceWriter output) as a synthetic
/// DumpFile: instant events round-trip losslessly; RPC spans are collapsed
/// views the exporter already consumed, so the DRC re-execution invariant
/// cannot be re-checked (a warning records this). Returns false on
/// unreadable/malformed input.
bool ReadChromeTrace(const std::string& path, obs::DumpFile* out,
                     std::string* error);

/// Ingests a metrics time series (metrics::TimeSeriesJson output) as a
/// synthetic DumpFile: the final sample's *.staleness_us.p99 columns are
/// gated against `staleness_budget` (0 = report only) and *.inv_wraps > 0
/// becomes an inv-overflow finding. Returns false on unreadable input.
bool ReadMetricsSeries(const std::string& path, Duration staleness_budget,
                       obs::DumpFile* out, std::string* error);

}  // namespace gvfs::doctor
