// Deterministic .gvfsdump fixtures for the doctor ctest tier.
//
//   gvfs_doctor_fixture --clean  out.gvfsdump   exits 0; dump is healthy
//   gvfs_doctor_fixture --unsafe out.gvfsdump   exits 0; dump carries an
//                                               invariant-6 violation
//
// Both run the same adaptive two-client scenario (mirroring the policy
// fault-injection test): client 1 earns a read delegation on /hot, client 0
// keeps writing so invalidations pile up in client 1's server-side buffer
// (the poll period is far too long to drain them), then contention demotes
// the file. With --unsafe the server is configured with unsafe_skip_drain,
// so the demotion MIGRATE skips the drain-before-switch step and the
// flight-recorder dump captures a version-discontinuous migration for
// gvfs-doctor to convict.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "workloads/testbed.h"

namespace gvfs {
namespace {

using bench::Drive;
using workloads::Testbed;

constexpr kclient::OpenFlags kRead{};
constexpr kclient::OpenFlags kReadWrite{.read = true, .write = true};
constexpr kclient::OpenFlags kCreateWrite{
    .read = true, .write = true, .create = true};

sim::Task<void> Advance(sim::Scheduler& sched, Duration d) {
  co_await sim::Sleep(sched, d);
}

sim::Task<void> Scenario(Testbed& bed, workloads::GvfsSession& session) {
  auto& writer = session.mount(0);
  auto& reader = session.mount(1);

  auto seed = co_await writer.Open("/hot", kCreateWrite);
  if (!seed.has_value()) co_return;
  (void)co_await writer.Write(*seed, 0, Bytes(64, 1));
  (void)co_await writer.Close(*seed);

  // Promote: the reader hammers /hot until the policy engine migrates it to
  // a read delegation.
  for (int i = 0; i < 12; ++i) {
    auto fd = co_await reader.Open("/hot", kRead);
    if (fd.has_value()) {
      (void)co_await reader.Read(*fd, 0, 64);
      (void)co_await reader.Close(*fd);
    }
    co_await Advance(bed.sched(), Seconds(1));
  }

  // Contend: each round the writer mutates (buffering an invalidation for
  // the reader and recalling its grant) and the reader reads + writes, so
  // the file classifies contended and demotes back to polling.
  for (int i = 0; i < 14; ++i) {
    auto wfd = co_await writer.Open("/hot", kReadWrite);
    if (wfd.has_value()) {
      (void)co_await writer.Write(*wfd, 0, Bytes(64, 2));
      (void)co_await writer.Close(*wfd);
    }
    auto rfd = co_await reader.Open("/hot", kReadWrite);
    if (rfd.has_value()) {
      (void)co_await reader.Read(*rfd, 0, 64);
      (void)co_await reader.Write(*rfd, 0, Bytes(64, 3));
      (void)co_await reader.Close(*rfd);
    }
    co_await Advance(bed.sched(), Seconds(1));
  }
  co_await Advance(bed.sched(), Seconds(12));
  co_await session.Shutdown();
}

int Run(bool skip_drain, const std::string& out_path) {
  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.adaptive = true;
  config.poll_period = Seconds(300);  // polling never beats the migration
  config.poll_max_period = Seconds(300);
  config.policy_period = Seconds(5);
  config.policy_dwell = Seconds(10);
  config.unsafe_skip_drain = skip_drain;

  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  bed.EnableTracing(1 << 18);
  bed.EnableDiagnosis();
  // Keep the whole ring in the dump: the invariant-6 evidence (the buffered
  // kInvAppend without a matching delivery) predates the migration by most
  // of the run.
  bed.recorder()->SetMaxTraceEvents(1 << 18);

  kclient::MountOptions observable;
  observable.noac = true;
  observable.max_cached_bytes = 0;
  auto& session = bed.CreateSession(config, {0, 1}, observable);

  Drive(bed.sched(), Scenario(bed, session));

  const char* reason = skip_drain
                           ? "fixture: unsafe_skip_drain seeded "
                             "(invariant-6 violation expected)"
                           : "fixture: clean adaptive run";
  if (!bed.recorder()->Dump(out_path, reason)) {
    std::fprintf(stderr, "fixture: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("fixture: wrote %s (%s; %llu trace events, %zu anomalies)\n",
              out_path.c_str(), skip_drain ? "unsafe" : "clean",
              static_cast<unsigned long long>(bed.trace_buffer()->recorded()),
              bed.watchdog()->anomalies().size());
  return 0;
}

}  // namespace
}  // namespace gvfs

int main(int argc, char** argv) {
  const bool unsafe = gvfs::bench::HasFlag(argc, argv, "--unsafe");
  const bool clean = gvfs::bench::HasFlag(argc, argv, "--clean");
  const char* out = argc > 2 ? argv[2] : nullptr;
  if ((unsafe == clean) || out == nullptr) {
    std::fprintf(stderr,
                 "usage: gvfs_doctor_fixture (--clean|--unsafe) out.gvfsdump\n");
    return 2;
  }
  return gvfs::Run(unsafe, out);
}
