#!/usr/bin/env python3
"""Doctor-tier ctest driver: exercises the gvfs-doctor CLI end to end.

Modes:
  clean   fixture --clean dump -> doctor must exit 0 and say HEALTHY
  unsafe  fixture --unsafe dump -> doctor must exit 1, name the violating
          file handle and migration, and emit a machine-readable verdict
          with healthy=false
  fig5    fig5_postmark --dump-out dump -> doctor must exit 0 (a passing
          benchmark run diagnoses clean)
  storm   fig_adapt --dump-on-anomaly dump --storm-threshold 2 -> the online
          recall-storm detector fires mid-run and snapshots the session; the
          doctor must reproduce the same recall-storm verdict from the dump
          (exit 1, healthy=false, a recall-storm anomaly in the JSON)
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys


def run(cmd, expect_rc=None):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if expect_rc is not None and proc.returncode != expect_rc:
        sys.exit(f"FAIL: {cmd[0]} exited {proc.returncode}, "
                 f"expected {expect_rc}")
    return proc


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--mode", required=True,
                        choices=["clean", "unsafe", "fig5", "storm"])
    parser.add_argument("--doctor", required=True)
    parser.add_argument("--fixture")
    parser.add_argument("--fig5")
    parser.add_argument("--fig-adapt")
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    dump = workdir / f"{args.mode}.gvfsdump"

    if args.mode == "storm":
        if not args.fig_adapt:
            sys.exit("FAIL: --fig-adapt is required in storm mode")
        run([args.fig_adapt, "--dump-on-anomaly", dump,
             "--storm-threshold", "2"], expect_rc=0)
        report_json = workdir / "storm_report.json"
        proc = run([args.doctor, dump, "--json-out", report_json],
                   expect_rc=1)
        if "VERDICT: UNHEALTHY" not in proc.stdout:
            sys.exit(f"FAIL: doctor did not flag the storm dump {dump}")
        if "recall-storm" not in proc.stdout:
            sys.exit(f"FAIL: diagnosis of {dump} does not name recall-storm")
        verdict = json.loads(report_json.read_text())
        if verdict["healthy"]:
            sys.exit("FAIL: JSON verdict claims healthy")
        kinds = {a["kind"] for a in verdict["anomalies"]}
        if "recall-storm" not in kinds:
            sys.exit(f"FAIL: JSON verdict lacks the recall-storm "
                     f"anomaly: {sorted(kinds)}")
        print("OK: recall-storm dump round-trips through the doctor "
              f"({sorted(kinds)})")
        return

    if args.mode == "fig5":
        if not args.fig5:
            sys.exit("FAIL: --fig5 is required in fig5 mode")
        run([args.fig5, "--dump-out", dump], expect_rc=0)
        run([args.doctor, dump], expect_rc=0)
        print("OK: doctor diagnoses a passing fig5 run as clean")
        return

    if not args.fixture:
        sys.exit("FAIL: --fixture is required in clean/unsafe modes")
    run([args.fixture, f"--{args.mode}", dump], expect_rc=0)

    if args.mode == "clean":
        proc = run([args.doctor, dump], expect_rc=0)
        if "VERDICT: HEALTHY" not in proc.stdout:
            sys.exit("FAIL: clean dump did not produce a HEALTHY verdict")
        print("OK: clean fixture dump diagnoses healthy")
        return

    # unsafe: the doctor must convict and name the evidence.
    report_json = workdir / "unsafe_report.json"
    proc = run([args.doctor, dump, "--json-out", report_json], expect_rc=1)
    if "VERDICT: UNHEALTHY" not in proc.stdout:
        sys.exit(f"FAIL: doctor did not flag the unsafe dump {dump}")
    if "migrat" not in proc.stdout:
        sys.exit(f"FAIL: diagnosis of {dump} does not mention the migration")
    if not re.search(r"\d+:\d+", proc.stdout):
        sys.exit(f"FAIL: diagnosis of {dump} does not name a file handle")
    verdict = json.loads(report_json.read_text())
    if verdict["healthy"]:
        sys.exit("FAIL: JSON verdict claims healthy")
    kinds = {v["kind"] for v in verdict["violations"]}
    if "policy-migration" not in kinds:
        sys.exit(f"FAIL: JSON verdict lacks the policy-migration "
                 f"violation: {sorted(kinds)}")
    print(f"OK: doctor convicted the unsafe dump ({sorted(kinds)})")


if __name__ == "__main__":
    main()
