#include "outline.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace gvfs::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsTypeQualifier(std::string_view s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "thread_local" || s == "mutable" || s == "typename" ||
         s == "volatile" || s == "register" || s == "inline";
}

/// Keywords that can never start a declaration's type.
bool IsStatementKeyword(std::string_view s) {
  static constexpr std::array<std::string_view, 22> kKeywords = {
      "if",       "else",     "for",       "while",    "do",
      "switch",   "case",     "default",   "break",    "continue",
      "return",   "co_return", "co_await", "co_yield", "goto",
      "using",    "throw",    "delete",    "new",      "try",
      "catch",    "namespace"};
  return std::find(kKeywords.begin(), kKeywords.end(), s) != kKeywords.end();
}

/// Built-in type words that are never a declarator name.
bool IsBuiltinTypeWord(std::string_view s) {
  static constexpr std::array<std::string_view, 12> kTypes = {
      "void", "bool",  "char",   "int",    "long",     "short",
      "auto", "float", "double", "signed", "unsigned", "wchar_t"};
  return std::find(kTypes.begin(), kTypes.end(), s) != kTypes.end();
}

std::string Flatten(const std::vector<Token>& toks, std::size_t b,
                    std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    const std::string& text = toks[i].text;
    const bool tight = text == "::" || text == "." || text == "," ||
                       text == "(" || text == ")" || text == "<" ||
                       text == ">" || text == "[" || text == "]";
    if (!out.empty() && !tight && out.back() != ':' && out.back() != '.' &&
        out.back() != '(' && out.back() != '<' && out.back() != '[') {
      out += ' ';
    }
    out += text;
  }
  return out;
}

/// Matching '>' for the '<' at `open`, or kNpos when this is not a template
/// argument list we can model (comparison chains, shift soup, statement
/// boundaries). Bounded so expression-heavy code cannot make this quadratic.
std::size_t TryMatchAngle(const std::vector<Token>& toks, std::size_t open,
                          std::size_t limit) {
  int depth = 0;
  const std::size_t bound = std::min(limit, open + 256);
  for (std::size_t i = open; i < bound; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i;
    } else if (t.text == "(" || t.text == "[" || t.text == "{") {
      const std::size_t close = MatchForward(toks, i);
      if (close >= bound) return kNpos;
      i = close;
    } else if (t.text == ";" || t.text == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

/// Splits [begin, end) — the inside of a parameter list — at top-level
/// commas. Template argument lists are kept whole via the angle heuristic
/// (a '<' directly after an identifier opens one).
std::vector<std::pair<std::size_t, std::size_t>> SplitParams(
    const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      const std::size_t close = MatchForward(toks, i);
      if (close >= end) break;
      i = close;
      continue;
    }
    if (t.text == "<" && i > begin && toks[i - 1].kind == TokKind::kIdent) {
      const std::size_t close = TryMatchAngle(toks, i, end);
      if (close != kNpos) i = close;
      continue;
    }
    if (t.text == ",") {
      chunks.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < end) chunks.emplace_back(start, end);
  return chunks;
}

bool ReferenceLikeTypeName(std::string_view s) {
  return s == "span" || s == "string_view" || s == "iterator" ||
         s == "const_iterator";
}

ParamInfo ParseOneParam(const std::vector<Token>& toks, std::size_t b,
                        std::size_t e) {
  ParamInfo info;
  if (b >= e) return info;
  info.line = toks[b].line;

  // Cut the default argument off at the top-level '='.
  std::size_t decl_end = e;
  for (std::size_t i = b; i < e; ++i) {
    if (IsPunct(toks[i], "(") || IsPunct(toks[i], "{") ||
        IsPunct(toks[i], "[")) {
      const std::size_t close = MatchForward(toks, i);
      if (close >= e) break;
      i = close;
      continue;
    }
    if (IsPunct(toks[i], "=")) {
      decl_end = i;
      break;
    }
  }

  int angle_depth = 0;
  std::size_t name_tok = kNpos;
  for (std::size_t i = b; i < decl_end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<" && i > b && toks[i - 1].kind == TokKind::kIdent) {
        ++angle_depth;
      } else if (t.text == ">" && angle_depth > 0) {
        --angle_depth;
      } else if ((t.text == "&" || t.text == "*") && angle_depth == 0) {
        info.reference_like = true;
      }
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      if (ReferenceLikeTypeName(t.text)) info.reference_like = true;
      if (!IsTypeQualifier(t.text) && !IsBuiltinTypeWord(t.text) &&
          angle_depth == 0) {
        name_tok = i;  // last plausible declarator identifier wins
      }
    }
  }
  // `Foo bar`: the last identifier is the name only if something type-ish
  // precedes it; a single identifier (`Foo`) is an unnamed parameter.
  if (name_tok != kNpos) {
    bool has_type_before = false;
    for (std::size_t i = b; i < name_tok; ++i) {
      if (toks[i].kind == TokKind::kIdent || IsPunct(toks[i], "&") ||
          IsPunct(toks[i], "*") || IsPunct(toks[i], ">")) {
        has_type_before = true;
        break;
      }
    }
    if (has_type_before) {
      info.name = toks[name_tok].text;
      info.type_text = Flatten(toks, b, name_tok);
    } else {
      info.type_text = Flatten(toks, b, decl_end);
    }
  } else {
    info.type_text = Flatten(toks, b, decl_end);
  }
  return info;
}

std::vector<ParamInfo> ParseParams(const std::vector<Token>& toks,
                                   std::size_t open, std::size_t close) {
  std::vector<ParamInfo> params;
  if (close <= open + 1) return params;
  for (const auto& [b, e] : SplitParams(toks, open + 1, close)) {
    ParamInfo info = ParseOneParam(toks, b, e);
    if (info.name.empty() && info.type_text.empty()) continue;
    if (info.type_text == "void" && info.name.empty()) continue;
    params.push_back(std::move(info));
  }
  return params;
}

// ---------------------------------------------------------------------------
// Lambdas
// ---------------------------------------------------------------------------

std::vector<CaptureInfo> ParseCaptures(const std::vector<Token>& toks,
                                       std::size_t open, std::size_t close) {
  std::vector<CaptureInfo> captures;
  std::size_t i = open + 1;
  while (i < close) {
    CaptureInfo cap;
    cap.line = toks[i].line;
    if (IsPunct(toks[i], "&")) {
      cap.by_ref = true;
      ++i;
    } else if (IsPunct(toks[i], "=")) {
      ++i;
    } else if (IsPunct(toks[i], "*")) {
      ++i;  // *this: by value
    }
    if (i < close && toks[i].kind == TokKind::kIdent) {
      cap.name = toks[i].text;
      ++i;
    }
    captures.push_back(std::move(cap));
    // Skip an init-capture's initializer and advance past the comma.
    int depth = 0;
    while (i < close) {
      if (IsPunct(toks[i], "(") || IsPunct(toks[i], "{") ||
          IsPunct(toks[i], "[")) {
        ++depth;
      } else if (IsPunct(toks[i], ")") || IsPunct(toks[i], "}") ||
                 IsPunct(toks[i], "]")) {
        --depth;
      } else if (depth == 0 && IsPunct(toks[i], ",")) {
        ++i;
        break;
      }
      ++i;
    }
  }
  return captures;
}

/// A lambda expression recovered from a body scan.
struct LambdaSite {
  TokRange whole;          // '[' .. matching '}' inclusive-end (+1)
  std::size_t intro_open;  // '['
  std::size_t intro_close; // ']'
  std::size_t params_open = kNpos;   // '(' or kNpos
  std::size_t params_close = kNpos;
  std::size_t body_open = 0;  // '{'
  std::size_t body_close = 0; // '}'
};

/// Top-level lambda expressions in [begin, end). Subscripts (`a[i]`) and
/// attributes (`[[...]]`) are skipped; a '[' that never reaches a body brace
/// is not a lambda. Nested lambdas are inside the returned ranges and found
/// when the outer lambda is itself outlined.
std::vector<LambdaSite> FindLambdas(const std::vector<Token>& toks,
                                    std::size_t begin, std::size_t end) {
  std::vector<LambdaSite> sites;
  for (std::size_t i = begin; i < end; ++i) {
    if (!IsPunct(toks[i], "[")) continue;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
          IsPunct(prev, ")") || IsPunct(prev, "]")) {
        const std::size_t close = MatchForward(toks, i);
        if (close >= end) break;
        i = close;
        continue;  // subscript
      }
    }
    if (i + 1 < end && IsPunct(toks[i + 1], "[")) {
      const std::size_t close = MatchForward(toks, i);  // [[attribute]]
      if (close >= end) break;
      i = close;
      continue;
    }
    LambdaSite site;
    site.intro_open = i;
    site.intro_close = MatchForward(toks, i);
    if (site.intro_close >= end) break;
    std::size_t j = site.intro_close + 1;
    if (j < end && IsPunct(toks[j], "(")) {
      site.params_open = j;
      site.params_close = MatchForward(toks, j);
      if (site.params_close >= end) {
        i = site.intro_close;
        continue;
      }
      j = site.params_close + 1;
    }
    // Specifiers and trailing return: anything up to the body brace, bailing
    // at statement-ish punctuation that proves this was not a lambda.
    bool found = false;
    while (j < end) {
      const Token& t = toks[j];
      if (IsPunct(t, "{")) {
        found = true;
        break;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == ";" || t.text == "," || t.text == ")" || t.text == "]" ||
           t.text == "}" || t.text == "=")) {
        break;
      }
      if (IsPunct(t, "(") || IsPunct(t, "<")) {
        const std::size_t close = IsPunct(t, "(")
                                      ? MatchForward(toks, j)
                                      : TryMatchAngle(toks, j, end);
        if (close == kNpos || close >= end) break;
        j = close + 1;
        continue;
      }
      ++j;
    }
    if (!found) {
      i = site.intro_close;
      continue;
    }
    site.body_open = j;
    site.body_close = MatchForward(toks, j);
    if (site.body_close >= end) break;
    site.whole = {site.intro_open, site.body_close + 1};
    sites.push_back(site);
    i = site.body_close;
  }
  return sites;
}

// ---------------------------------------------------------------------------
// Suspend points
// ---------------------------------------------------------------------------

/// One past the awaited operand of the co_await/co_yield at `k`: unary
/// prefixes, then a postfix chain of identifiers, member accesses, template
/// arguments, calls, and subscripts. Arguments inside the operand are
/// evaluated before the frame suspends.
std::size_t AwaitOperandEnd(const std::vector<Token>& toks, std::size_t k,
                            std::size_t limit) {
  std::size_t j = k + 1;
  while (j < limit &&
         (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
          IsPunct(toks[j], "!") || IsPunct(toks[j], "-") ||
          IsPunct(toks[j], "+"))) {
    ++j;
  }
  if (j < limit && IsPunct(toks[j], "(")) {
    const std::size_t close = MatchForward(toks, j);
    if (close >= limit) return limit;
    j = close + 1;
  } else if (j < limit && (toks[j].kind == TokKind::kIdent ||
                           toks[j].kind == TokKind::kNumber)) {
    ++j;
  } else {
    return j;
  }
  // Postfix continuations.
  while (j < limit) {
    const Token& t = toks[j];
    if (IsPunct(t, ".") || t.text == "::") {
      ++j;
      if (j < limit && toks[j].kind == TokKind::kIdent) ++j;
      continue;
    }
    if (IsPunct(t, "-") && j + 1 < limit && IsPunct(toks[j + 1], ">")) {
      j += 2;
      if (j < limit && toks[j].kind == TokKind::kIdent) ++j;
      continue;
    }
    if (IsPunct(t, "(") || IsPunct(t, "[")) {
      const std::size_t close = MatchForward(toks, j);
      if (close >= limit) return limit;
      j = close + 1;
      continue;
    }
    if (IsPunct(t, "<") && j > 0 && toks[j - 1].kind == TokKind::kIdent) {
      const std::size_t close = TryMatchAngle(toks, j, limit);
      if (close == kNpos) break;
      j = close + 1;
      continue;
    }
    break;
  }
  return j;
}

// ---------------------------------------------------------------------------
// Locals
// ---------------------------------------------------------------------------

bool IsIteratorCallName(std::string_view s) {
  return s == "find" || s == "begin" || s == "end" || s == "lower_bound" ||
         s == "upper_bound" || s == "rbegin" || s == "rend" ||
         s == "cbegin" || s == "cend";
}

bool IsInsertingCallName(std::string_view s) {
  return s == "emplace" || s == "emplace_hint" || s == "insert" ||
         s == "try_emplace";
}

/// Does [b, e) — an initializer — produce an iterator? `.find(...)`-family
/// calls do directly; `.emplace(...)/.insert(...)` do via `.first`.
bool InitializerYieldsIterator(const std::vector<Token>& toks, std::size_t b,
                               std::size_t e) {
  for (std::size_t i = b; i + 1 < e; ++i) {
    const bool member = IsPunct(toks[i], ".") ||
                        (i > 0 && IsPunct(toks[i - 1], "-") &&
                         IsPunct(toks[i], ">"));
    if (!member || toks[i + 1].kind != TokKind::kIdent) continue;
    const std::string& callee = toks[i + 1].text;
    if (i + 2 < e && IsPunct(toks[i + 2], "(")) {
      if (IsIteratorCallName(callee)) return true;
      if (IsInsertingCallName(callee)) {
        const std::size_t close = MatchForward(toks, i + 2);
        if (close + 2 < e && IsPunct(toks[close + 1], ".") &&
            IsIdent(toks[close + 2], "first")) {
          return true;
        }
      }
    }
  }
  return false;
}


/// Tries to parse a dangle-capable local declaration at statement start `s`.
/// Returns the locals found (possibly several for a structured binding) and
/// sets `*consumed` past the declarator name(s) on success.
std::vector<LocalInfo> TryParseLocal(const std::vector<Token>& toks,
                                     std::size_t s, std::size_t limit,
                                     std::size_t* consumed) {
  std::vector<LocalInfo> out;
  std::size_t j = s;
  while (j < limit && toks[j].kind == TokKind::kIdent &&
         IsTypeQualifier(toks[j].text)) {
    ++j;
  }
  if (j >= limit || toks[j].kind != TokKind::kIdent ||
      IsStatementKeyword(toks[j].text)) {
    return out;
  }
  const std::size_t type_begin = j;
  bool type_names_iterator = false;
  // One type name: either a run of builtin words (`unsigned long`) or a
  // single identifier extended by `::name` segments and template argument
  // lists. Two adjacent non-builtin identifiers are type-then-declarator,
  // never one type.
  if (IsBuiltinTypeWord(toks[j].text)) {
    while (j < limit && toks[j].kind == TokKind::kIdent &&
           (IsBuiltinTypeWord(toks[j].text) || IsTypeQualifier(toks[j].text))) {
      ++j;
    }
  } else {
    ++j;
    while (j < limit) {
      const Token& t = toks[j];
      if (t.text == "::" && j + 1 < limit &&
          toks[j + 1].kind == TokKind::kIdent) {
        if (toks[j + 1].text == "iterator" ||
            toks[j + 1].text == "const_iterator") {
          type_names_iterator = true;
        }
        j += 2;
        continue;
      }
      if (IsPunct(t, "<") && toks[j - 1].kind == TokKind::kIdent) {
        const std::size_t close = TryMatchAngle(toks, j, limit);
        if (close == kNpos) return out;
        j = close + 1;
        continue;
      }
      break;
    }
  }
  if (j >= limit || j == type_begin) return out;

  bool is_ref = false;
  bool is_ptr = false;
  while (j < limit && IsPunct(toks[j], "&")) {
    is_ref = true;
    ++j;
  }
  while (j < limit && IsPunct(toks[j], "*")) {
    if (!is_ref) is_ptr = true;
    ++j;
  }
  while (j < limit && toks[j].kind == TokKind::kIdent &&
         IsTypeQualifier(toks[j].text)) {
    ++j;  // `T* const p`
  }

  const bool is_auto = toks[type_begin].text == "auto";

  // Structured binding: `auto& [a, b] = ...` / `auto [it, ok] = ...`.
  if (j < limit && IsPunct(toks[j], "[") && is_auto) {
    const std::size_t close = MatchForward(toks, j);
    if (close >= limit) return out;
    const std::size_t live = StatementEndTok(toks, close + 1, limit);
    std::vector<std::size_t> names;
    for (std::size_t i = j + 1; i < close; ++i) {
      if (toks[i].kind == TokKind::kIdent) names.push_back(i);
    }
    if (names.empty()) return out;
    if (is_ref) {
      for (std::size_t n : names) {
        out.push_back(
            {toks[n].text, LocalKind::kReference, n, live, toks[n].line});
      }
    } else if (close + 1 < limit && IsPunct(toks[close + 1], "=")) {
      // By-value binding of an insert/emplace result: `.first` is the
      // iterator member, bound to the first name.
      bool inserts = false;
      for (std::size_t i = close + 1; i + 1 < live; ++i) {
        if ((IsPunct(toks[i], ".") ||
             (IsPunct(toks[i], ">") && i > 0 && IsPunct(toks[i - 1], "-"))) &&
            toks[i + 1].kind == TokKind::kIdent &&
            IsInsertingCallName(toks[i + 1].text)) {
          inserts = true;
          break;
        }
      }
      if (inserts) {
        const std::size_t n = names.front();
        out.push_back(
            {toks[n].text, LocalKind::kIterator, n, live, toks[n].line});
      }
    }
    *consumed = close + 1;
    return out;
  }

  if (j >= limit || toks[j].kind != TokKind::kIdent ||
      IsStatementKeyword(toks[j].text) || IsBuiltinTypeWord(toks[j].text)) {
    return out;
  }
  const std::size_t name_tok = j;
  const Token& next = j + 1 < limit ? toks[j + 1] : toks[j];
  // `=` introduces an initializer only when it is not the first half of a
  // split `==`: `while (running_ && epoch == epoch_)` must not parse as
  // `running_&& epoch = ...`.
  const bool next_is_init =
      IsPunct(next, "=") && !(j + 2 < limit && IsPunct(toks[j + 2], "="));
  const bool decl_shaped = next_is_init || IsPunct(next, ";") ||
                           IsPunct(next, "{") || IsPunct(next, "(");
  if (!decl_shaped) return out;
  // References require an initializer.
  if (is_ref && IsPunct(next, ";")) return out;

  LocalKind kind;
  if (is_ref) {
    kind = LocalKind::kReference;
  } else if (is_ptr) {
    kind = LocalKind::kPointer;
  } else if (type_names_iterator) {
    kind = LocalKind::kIterator;
  } else if (is_auto && IsPunct(next, "=")) {
    const std::size_t stmt_end = StatementEndTok(toks, name_tok + 1, limit);
    if (!InitializerYieldsIterator(toks, name_tok + 2, stmt_end)) return out;
    kind = LocalKind::kIterator;
  } else {
    return out;  // owned value; cannot dangle across a suspend
  }
  out.push_back({toks[name_tok].text, kind, name_tok,
                 StatementEndTok(toks, name_tok, limit), toks[name_tok].line});
  *consumed = name_tok + 1;
  return out;
}

// ---------------------------------------------------------------------------
// Whole-function walk
// ---------------------------------------------------------------------------

void ScanBody(const std::vector<Token>& toks, std::size_t body_begin,
              std::size_t body_end, Outline* o) {
  // Nested lambdas first: everything else skips their ranges.
  std::vector<LambdaSite> lambdas = FindLambdas(toks, body_begin + 1, body_end);
  for (const LambdaSite& site : lambdas) o->lambda_ranges.push_back(site.whole);

  auto skip_lambdas = [&](std::size_t i) {
    for (const TokRange& r : o->lambda_ranges) {
      if (i >= r.begin && i < r.end) return r.end;
    }
    return i;
  };

  bool stmt_start = true;
  for (std::size_t i = body_begin + 1; i < body_end; ++i) {
    const std::size_t skipped = skip_lambdas(i);
    if (skipped != i) {
      i = skipped - 1;  // loop ++ lands on the first token after the lambda
      stmt_start = false;
      continue;
    }
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      stmt_start = true;
      continue;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "co_await" || t.text == "co_yield")) {
      SuspendInfo s;
      s.tok = i;
      s.operand_end = AwaitOperandEnd(toks, i, body_end);
      s.line = t.line;
      o->suspends.push_back(s);
      stmt_start = false;
      continue;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "for" || t.text == "while" || t.text == "do" ||
         t.text == "if" || t.text == "switch")) {
      if (t.text == "do") {
        if (i + 1 < body_end && IsPunct(toks[i + 1], "{")) {
          const std::size_t close = MatchForward(toks, i + 1);
          if (close < body_end) {
            o->loops.push_back({{i + 2, close}, t.line, false, "", ""});
          }
        }
        stmt_start = true;
        continue;
      }
      if (i + 1 >= body_end || !IsPunct(toks[i + 1], "(")) continue;
      const std::size_t header_close = MatchForward(toks, i + 1);
      if (header_close >= body_end) continue;
      if (t.text == "for" || t.text == "while") {
        LoopInfo loop;
        loop.line = t.line;
        // Range-for: a top-level ':' inside the header.
        if (t.text == "for") {
          int depth = 0;
          for (std::size_t h = i + 2; h < header_close; ++h) {
            if (IsPunct(toks[h], "(") || IsPunct(toks[h], "[") ||
                IsPunct(toks[h], "{")) {
              ++depth;
            } else if (IsPunct(toks[h], ")") || IsPunct(toks[h], "]") ||
                       IsPunct(toks[h], "}")) {
              --depth;
            } else if (depth == 0 && IsPunct(toks[h], ":")) {
              loop.is_range_for = true;
              loop.range_expr = Flatten(toks, h + 1, header_close);
              bool by_ref = false;
              std::string var;
              for (std::size_t d = i + 2; d < h; ++d) {
                if (IsPunct(toks[d], "&")) by_ref = true;
                if (toks[d].kind == TokKind::kIdent &&
                    !IsTypeQualifier(toks[d].text) &&
                    !IsBuiltinTypeWord(toks[d].text)) {
                  var = toks[d].text;
                }
              }
              if (by_ref) loop.ref_var = var;
              break;
            }
          }
        }
        std::size_t body_open = header_close + 1;
        if (body_open < body_end && IsPunct(toks[body_open], "{")) {
          const std::size_t close = MatchForward(toks, body_open);
          if (close >= body_end) continue;
          loop.body = {body_open + 1, close};
        } else {
          loop.body = {body_open, StatementEndTok(toks, body_open, body_end)};
        }
        o->loops.push_back(std::move(loop));
      }
      // The header's init clause can declare locals (`for (auto it = ...;`,
      // `if (auto it = ...; ...)`): scan it as a statement start.
      if (!o->loops.empty() && o->loops.back().is_range_for &&
          o->loops.back().line == t.line && t.text == "for") {
        // Range-for variables re-bind every iteration; the loop-level
        // hidden-iterator rule owns this case.
        i = header_close;
        stmt_start = true;
        continue;
      }
      std::size_t consumed = 0;
      std::vector<LocalInfo> locals =
          TryParseLocal(toks, i + 2, header_close, &consumed);
      for (LocalInfo& l : locals) o->locals.push_back(std::move(l));
      stmt_start = false;
      continue;
    }
    if (stmt_start && t.kind == TokKind::kIdent) {
      std::size_t consumed = 0;
      std::vector<LocalInfo> locals =
          TryParseLocal(toks, i, body_end, &consumed);
      if (!locals.empty()) {
        for (LocalInfo& l : locals) o->locals.push_back(std::move(l));
        i = consumed - 1;
        stmt_start = false;
        continue;
      }
    }
    stmt_start = false;
  }
}

Outline OutlineRange(const std::vector<Token>& toks, std::string name,
                     int line, std::size_t sig_begin, std::size_t sig_end,
                     std::size_t params_open, std::size_t params_close,
                     std::size_t body_begin, std::size_t body_end,
                     bool is_lambda) {
  Outline o;
  o.name = std::move(name);
  o.line = line;
  o.is_lambda = is_lambda;
  o.body_begin = body_begin;
  o.body_end = body_end;
  if (params_open != kNpos) {
    o.params = ParseParams(toks, params_open, params_close);
  }
  for (std::size_t i = sig_begin; i < sig_end && i < toks.size(); ++i) {
    if (IsIdent(toks[i], "Task")) {
      o.returns_task = true;
      break;
    }
  }
  ScanBody(toks, body_begin, body_end, &o);
  return o;
}

}  // namespace

bool InRanges(const std::vector<TokRange>& ranges, std::size_t i) {
  for (const TokRange& r : ranges) {
    if (i >= r.begin && i < r.end) return true;
  }
  return false;
}

std::size_t StatementEndTok(const std::vector<Token>& toks, std::size_t s,
                            std::size_t limit) {
  int depth = 0;
  for (std::size_t i = s; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
    if (t.text == ")" || t.text == "}" || t.text == "]") {
      if (depth == 0) return i;
      --depth;
    }
    if (t.text == ";" && depth == 0) return i;
  }
  return limit;
}

std::vector<Outline> OutlineFile(const Lexed& lex) {
  const auto& toks = lex.tokens;
  std::vector<Outline> out;
  for (const FunctionDef& def : ParseFunctions(lex)) {
    out.push_back(OutlineRange(toks, def.name, def.line, def.sig_begin,
                               def.name_tok, def.params_begin, def.params_end,
                               def.body_begin, def.body_end,
                               /*is_lambda=*/false));
  }
  // Outline nested lambdas breadth-first: each lambda becomes a function of
  // its own, its by-ref captures recorded alongside its parameters.
  for (std::size_t fi = 0; fi < out.size(); ++fi) {
    // Copy what we need: out grows inside the loop and may reallocate.
    const std::string parent_name = out[fi].name;
    const std::vector<TokRange> ranges = out[fi].lambda_ranges;
    for (const TokRange& r : ranges) {
      std::vector<LambdaSite> sites = FindLambdas(toks, r.begin, r.end);
      for (const LambdaSite& site : sites) {
        if (site.whole.begin != r.begin) continue;  // only the range's own
        Outline o = OutlineRange(
            toks, parent_name + "::[lambda]", toks[site.intro_open].line,
            site.intro_open, site.intro_open, site.params_open,
            site.params_close, site.body_open, site.body_close,
            /*is_lambda=*/true);
        o.captures = ParseCaptures(toks, site.intro_open, site.intro_close);
        out.push_back(std::move(o));
      }
    }
  }
  return out;
}

}  // namespace gvfs::lint
