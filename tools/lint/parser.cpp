#include "parser.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace gvfs::lint {

namespace {

/// Identifiers that can precede a '(' without being a function name. Control
/// flow, operators-with-parens, and specifier-like keywords all qualify; a
/// candidate match on any of them would attach a body to the wrong anchor.
bool IsNonNameKeyword(std::string_view s) {
  static constexpr std::array<std::string_view, 22> kKeywords = {
      "if",       "for",      "while",     "switch",        "catch",
      "return",   "co_return", "co_await", "co_yield",      "sizeof",
      "alignof",  "alignas",  "decltype",  "noexcept",      "requires",
      "new",      "delete",   "throw",     "static_assert", "assert",
      "defined",  "__attribute__"};
  return std::find(kKeywords.begin(), kKeywords.end(), s) != kKeywords.end();
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

}  // namespace

std::size_t MatchForward(const std::vector<Token>& toks, std::size_t open) {
  if (open >= toks.size() || toks[open].kind != TokKind::kPunct) {
    return toks.size();
  }
  const std::string& opener = toks[open].text;
  std::string_view closer;
  if (opener == "(") {
    closer = ")";
  } else if (opener == "{") {
    closer = "}";
  } else if (opener == "[") {
    closer = "]";
  } else {
    return toks.size();
  }
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == opener) {
      ++depth;
    } else if (toks[i].text == closer && --depth == 0) {
      return i;
    }
  }
  return toks.size();
}

std::vector<FunctionDef> ParseFunctions(const Lexed& lex) {
  const auto& toks = lex.tokens;
  std::vector<FunctionDef> out;

  // Start of the current declaration, maintained as we pass statement and
  // scope boundaries; the recovered signature is [sig_begin, body_begin).
  std::size_t boundary = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      boundary = i + 1;
      continue;
    }
    // Access specifiers end a "declaration" too (class bodies).
    if (t.kind == TokKind::kIdent && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], ":") &&
        (t.text == "public" || t.text == "private" || t.text == "protected")) {
      boundary = i + 2;
      ++i;
      continue;
    }
    if (t.kind != TokKind::kIdent || IsNonNameKeyword(t.text)) continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;

    const std::size_t params_end = MatchForward(toks, i + 1);
    if (params_end >= toks.size()) continue;  // unbalanced: degrade to skip

    // Walk from the ')' towards a body '{'. Anything that ends the
    // declaration first (';' for declarations and `= default;`, ',' / ')'
    // / ']' when this was a call inside a larger expression) disqualifies
    // the candidate. A ':' switches into constructor-initializer mode,
    // where `name(...)` and `name{...}` elements are skipped as balanced
    // groups rather than mistaken for the body.
    std::size_t j = params_end + 1;
    bool init_list = false;
    std::size_t body = toks.size();
    while (j < toks.size()) {
      const Token& x = toks[j];
      if (x.kind != TokKind::kPunct) {  // const / noexcept / override / types
        ++j;
        continue;
      }
      if (x.text == ";" || x.text == ")" || x.text == "]" || x.text == "=") {
        break;
      }
      if (x.text == ",") {
        // Commas separate constructor-initializer elements; anywhere else
        // they mean this '(' was a call argument, not a parameter list.
        if (!init_list) break;
        ++j;
        continue;
      }
      if (x.text == ":") {
        init_list = true;
        ++j;
        continue;
      }
      if (x.text == "(" || x.text == "[") {
        const std::size_t close = MatchForward(toks, j);
        if (close >= toks.size()) break;
        j = close + 1;
        continue;
      }
      if (x.text == "{") {
        if (init_list && j > 0 &&
            (toks[j - 1].kind == TokKind::kIdent ||
             IsPunct(toks[j - 1], ">"))) {
          // Brace-init element of the initializer list: `member{...}`.
          const std::size_t close = MatchForward(toks, j);
          if (close >= toks.size()) break;
          j = close + 1;
          continue;
        }
        body = j;
        break;
      }
      ++j;  // '&', '*', '->' pieces, template angles, ...
    }
    if (body >= toks.size()) continue;

    const std::size_t body_end = MatchForward(toks, body);
    if (body_end >= toks.size()) continue;  // unbalanced body: degrade

    FunctionDef def;
    def.name = t.text;
    def.line = t.line;
    def.name_tok = i;
    def.sig_begin = boundary <= i ? boundary : i;
    def.params_begin = i + 1;
    def.params_end = params_end;
    def.body_begin = body;
    def.body_end = body_end;
    out.push_back(std::move(def));

    // Skip the body wholesale: statements inside it (if/for/calls) must not
    // be re-examined as definition candidates.
    i = body_end;
    boundary = body_end + 1;
  }
  return out;
}

}  // namespace gvfs::lint
