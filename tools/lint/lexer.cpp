#include "lexer.h"

#include <cctype>

namespace gvfs::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Encoding prefixes that turn a following quote into a literal rather than
/// an identifier-adjacent string: R"(raw)", u8"...", L'\0', etc.
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Lexed Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        Directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        StringLiteral();
        continue;
      }
      if (c == '\'') {
        CharLiteral();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        Number();
        continue;
      }
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      Punct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void LineComment() {
    const int start = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
    out_.comments.push_back({start, std::move(text)});
  }

  void BlockComment() {
    const int start = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    out_.comments.push_back({start, std::move(text)});
  }

  /// `#include <...>` / `#include "..."` lines are recorded and consumed
  /// whole. Every other directive just drops the `#`; the rest of the line is
  /// tokenized normally so rules still see identifiers in macro bodies.
  void Directive() {
    const std::size_t hash = pos_++;
    std::size_t p = pos_;
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    std::size_t word_end = p;
    while (word_end < src_.size() && IsIdentChar(src_[word_end])) ++word_end;
    if (src_.substr(p, word_end - p) != "include") {
      (void)hash;
      at_line_start_ = false;
      return;
    }
    p = word_end;
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    if (p < src_.size() && (src_[p] == '<' || src_[p] == '"')) {
      const bool angled = src_[p] == '<';
      const char close = angled ? '>' : '"';
      std::string header;
      ++p;
      while (p < src_.size() && src_[p] != close && src_[p] != '\n') {
        header += src_[p++];
      }
      out_.includes.push_back({line_, std::move(header), angled});
    }
    // Skip the remainder of the directive line.
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    at_line_start_ = false;
  }

  void StringLiteral() {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // unterminated; keep line counts honest
      ++pos_;
      if (c == '"') return;
    }
  }

  void RawStringLiteral() {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        return;
      }
      ++pos_;
    }
  }

  void CharLiteral() {
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\n') return;  // stray quote, not a literal; resync
      ++pos_;
      if (c == '\'') return;
    }
  }

  void Number() {
    std::string text;
    // pp-number: digits, idents, separators, exponent signs, dots.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '\'' || c == '.') {
        text += c;
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          ++pos_;
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back({TokKind::kNumber, std::move(text), line_});
  }

  void Identifier() {
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) text += src_[pos_++];
    if (pos_ < src_.size() && src_[pos_] == '"' && IsRawStringPrefix(text)) {
      RawStringLiteral();
      return;  // the prefix is part of the literal, not an identifier
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      CharLiteral();
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      StringLiteral();
      return;
    }
    out_.tokens.push_back({TokKind::kIdent, std::move(text), line_});
  }

  void Punct() {
    if (src_[pos_] == ':' && Peek(1) == ':') {
      out_.tokens.push_back({TokKind::kPunct, "::", line_});
      pos_ += 2;
      return;
    }
    out_.tokens.push_back({TokKind::kPunct, std::string(1, src_[pos_]), line_});
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  Lexed out_;
};

}  // namespace

Lexed Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace gvfs::lint
