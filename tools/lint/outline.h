// Function outlines for gvfs-analyze: the per-function summary the dataflow
// pass consumes. For every definition the parser recovers, the outline
// records
//
//   - the parameter list, with each parameter classified reference-like
//     (T&, T&&, T*, std::span, std::string_view, iterator types) or owned;
//   - local declarations that can dangle across a suspend: references
//     (`auto& x = ...`, `T& x = ...`), pointers (`T* p = ...`), and
//     iterators (declared iterator types, or `auto it = c.find(...)`-style
//     initializers, including the `.first` of emplace/insert results);
//   - lambda captures (by-ref captures can outlive their frame) and the
//     token ranges of nested lambdas, which are *excluded* from the
//     enclosing function's analysis — a suspend inside a lambda body belongs
//     to the lambda's own coroutine frame, not the enclosing one;
//   - the ordered suspend points (`co_await` / `co_yield`), each with the
//     end of its awaited operand: arguments of the awaited call are captured
//     before the frame suspends, so uses inside the operand are pre-suspend;
//   - loop bodies (for/while/do ranges), so the dataflow pass can model the
//     back edge: a value created before a loop and used inside it crosses
//     any suspend the loop also contains.
//
// Nested lambdas are outlined as functions in their own right (is_lambda),
// with their by-ref captures standing in for reference parameters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"
#include "parser.h"

namespace gvfs::lint {

struct ParamInfo {
  std::string name;
  std::string type_text;        // flattened declarator, for diagnostics
  bool reference_like = false;  // can dangle if the frame outlives the caller
  int line = 0;
};

struct CaptureInfo {
  std::string name;  // empty for a default capture ([&] / [=])
  bool by_ref = false;
  int line = 0;
};

enum class LocalKind {
  kReference,  // auto& / T&  — aliases storage owned elsewhere
  kPointer,    // T* / auto*  — same, spelled with '*' (incl. &local escapes)
  kIterator,   // container iterators — invalidated by mutation, not just
               // destruction
};

struct LocalInfo {
  std::string name;
  LocalKind kind = LocalKind::kReference;
  std::size_t decl_tok = 0;   // index of the name token
  std::size_t live_from = 0;  // end of the declaration statement: the value
                              // exists only after its initializer ran, which
                              // matters when the initializer itself awaits
                              // (`auto& r = co_await f();` is not stale)
  int line = 0;
};

struct SuspendInfo {
  std::size_t tok = 0;       // the co_await / co_yield token
  std::size_t operand_end = 0;  // one past the awaited operand
  int line = 0;
};

/// Half-open token range.
struct TokRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A for/while/do statement: `body` is the loop's statement range; for
/// range-fors, `range_expr` flattens the sequence expression and `ref_var`
/// names a by-reference loop variable (empty otherwise).
struct LoopInfo {
  TokRange body;
  int line = 0;
  bool is_range_for = false;
  std::string range_expr;
  std::string ref_var;
};

struct Outline {
  std::string name;
  int line = 0;
  bool is_lambda = false;
  bool returns_task = false;  // `Task` appears in the return segment
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<ParamInfo> params;
  std::vector<CaptureInfo> captures;  // lambdas only
  std::vector<LocalInfo> locals;
  std::vector<SuspendInfo> suspends;  // ordered; nested-lambda bodies excluded
  std::vector<LoopInfo> loops;
  std::vector<TokRange> lambda_ranges;  // nested lambdas, excluded from scans
};

/// Outlines every function definition in the file, then every nested lambda
/// (flattened into the same list, after its enclosing function). Constructs
/// the parser cannot model simply produce no outline.
std::vector<Outline> OutlineFile(const Lexed& lex);

/// True if token index `i` falls inside any of `ranges` (used to skip nested
/// lambda bodies when scanning an enclosing function).
bool InRanges(const std::vector<TokRange>& ranges, std::size_t i);

/// End of the statement starting at `s`: the next ';' at the same nesting
/// depth, stopping at an unmatched closer, capped at `limit`. Shared with the
/// dataflow pass, which positions assignment effects after the whole
/// right-hand side (including any suspend inside it) has run.
std::size_t StatementEndTok(const std::vector<Token>& toks, std::size_t s,
                            std::size_t limit);

}  // namespace gvfs::lint
