// A small comment- and string-aware C++ lexer for gvfs-lint.
//
// The analyzer's rules match identifier tokens and token sequences, never raw
// text, so a banned name inside a doc comment, a string literal (including raw
// strings), or as a substring of a longer identifier (`ObserveMtime` vs
// `time`) can never fire a rule. Comments are kept on the side: inline
// suppressions (an `allow(<rule>): <reason>` annotation behind the
// analyzer's comment prefix) are parsed from them.
//
// This is deliberately not a preprocessor: macro bodies are tokenized like
// ordinary code (so a banned call hidden in a #define still fires), and
// #include directives are recorded separately for the include rules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gvfs::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. digit separators, suffixes)
  kPunct,   // punctuation; "::" is a single token, all others one char
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;      // first line of the comment
  std::string text;  // body without the // or /* */ markers
};

struct IncludeDirective {
  int line = 0;
  std::string header;  // path between the delimiters
  bool angled = false; // <...> vs "..."
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes `source`. Never fails: malformed input (unterminated literals,
/// stray bytes) degrades to skipping, which at worst loses findings in the
/// garbage region rather than producing false ones.
Lexed Lex(std::string_view source);

}  // namespace gvfs::lint
