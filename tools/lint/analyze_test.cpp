// gvfs-analyze unit tests: the structural parser, the function outliner, the
// suspend-safety dataflow pass, and the suppression audit. The golden
// fire/pass/suppressed fixtures live in lint_test.cpp with the other rules;
// this file tests the layers underneath them, in-process.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataflow.h"
#include "lint.h"
#include "outline.h"
#include "parser.h"

namespace gvfs::lint {
namespace {

std::vector<FunctionDef> Parse(std::string_view source) {
  return ParseFunctions(Lex(source));
}

std::vector<Outline> Outlines(std::string_view source) {
  return OutlineFile(Lex(source));
}

const Outline* Find(const std::vector<Outline>& outlines,
                    std::string_view name) {
  for (const Outline& o : outlines) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

/// Runs the three per-file suspend rules over `source` as a src/ file and
/// returns the findings (suppressions not applied — these are engine tests).
std::vector<Finding> Analyze(std::string_view source) {
  const FileUnit unit = MakeUnit("src/gvfs/t.cpp", source);
  std::vector<Finding> out;
  CheckUseAfterSuspend(unit, out);
  CheckIterAfterSuspend(unit, out);
  CheckLockAcrossSuspend(unit, out);
  return out;
}

bool HasRule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, FindsPlainFunctions) {
  const auto defs = Parse(R"(
int Add(int a, int b) { return a + b; }
void Noop() {}
)");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "Add");
  EXPECT_EQ(defs[1].name, "Noop");
}

TEST(Parser, SkipsDeclarationsAndCalls) {
  const auto defs = Parse(R"(
int Add(int a, int b);
void Caller() {
  int x = Add(1, Add(2, 3));
  if (x > 0) { x = Add(x, 1); }
}
)");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "Caller");
}

TEST(Parser, HandlesMemberFunctionsAndQualifiers) {
  const auto defs = Parse(R"(
struct S {
  int Get() const noexcept { return v_; }
  int v_ = 0;
};
Task<int> S2::Fetch(const Key& k) const { co_return 1; }
)");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "Get");
  EXPECT_EQ(defs[1].name, "Fetch");
}

TEST(Parser, HandlesConstructorInitializerLists) {
  const auto defs = Parse(R"(
struct S {
  S(int a, int b) : a_(a), b_{b}, v_{1, 2, 3} { Init(); }
  int a_, b_;
  std::vector<int> v_;
};
)");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "S");
}

TEST(Parser, TemplatedSignaturesAndDefaultArgs) {
  const auto defs = Parse(R"(
template <typename T, typename U = std::map<int, T>>
T Pick(const std::vector<T>& v, std::size_t i = 0) { return v[i]; }
)");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "Pick");
}

TEST(Parser, RawStringsWithBracesDoNotConfuse) {
  const auto defs = Parse(R"__(
const char* kJson = R"({"a": {"b": 1}})";
void After() { Use(kJson); }
)__");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "After");
}

TEST(Parser, UnbalancedPreprocessorBranchDegradesToSkip) {
  // The #ifdef arm opens a brace the #else arm closes; the parser must not
  // crash and must not fabricate a body for Broken().
  const auto defs = Parse(R"(
#ifdef WEIRD
void Broken() {
#else
void Broken2() {
#endif
}
void Fine() { int x = 0; }
)");
  for (const FunctionDef& def : defs) {
    EXPECT_LT(def.body_end, 1000u);
  }
  const bool has_fine =
      std::any_of(defs.begin(), defs.end(),
                  [](const FunctionDef& d) { return d.name == "Fine"; });
  EXPECT_TRUE(has_fine);
}

TEST(Parser, MacroInvocationAtNamespaceScopeIsNotAFunction) {
  const auto defs = Parse(R"(
DEFINE_THING(Widget, 42);
static_assert(sizeof(int) == 4);
void Real() {}
)");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "Real");
}

// ---------------------------------------------------------------------------
// Outline
// ---------------------------------------------------------------------------

TEST(Outline, ClassifiesParameters) {
  const auto outlines = Outlines(R"(
void F(int a, const Bytes& data, Attr* attr, std::string_view name,
       std::span<const Block> blocks, Fh fh) {}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->params.size(), 6u);
  EXPECT_FALSE(f->params[0].reference_like);  // int a
  EXPECT_TRUE(f->params[1].reference_like);   // const Bytes&
  EXPECT_TRUE(f->params[2].reference_like);   // Attr*
  EXPECT_TRUE(f->params[3].reference_like);   // string_view
  EXPECT_TRUE(f->params[4].reference_like);   // span
  EXPECT_FALSE(f->params[5].reference_like);  // Fh by value
  EXPECT_EQ(f->params[1].name, "data");
  EXPECT_EQ(f->params[2].name, "attr");
}

TEST(Outline, RecordsSuspendsInOrder) {
  const auto outlines = Outlines(R"(
Task<int> F() {
  co_await A();
  int x = co_await B();
  co_yield x;
  co_return x;
}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->returns_task);
  ASSERT_EQ(f->suspends.size(), 3u);
  EXPECT_LT(f->suspends[0].tok, f->suspends[1].tok);
  EXPECT_LT(f->suspends[1].tok, f->suspends[2].tok);
}

TEST(Outline, FindsReferencePointerAndIteratorLocals) {
  const auto outlines = Outlines(R"(
void F(Cache& cache_) {
  auto& fc = cache_.Get(1);
  const Attr* attr = fc.attr();
  auto it = map_.find(key);
  std::map<int, int>::iterator jt = map_.begin();
  auto [kt, inserted] = map_.emplace(key, 1);
  int plain = 3;
}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->locals.size(), 5u);
  EXPECT_EQ(f->locals[0].name, "fc");
  EXPECT_EQ(f->locals[0].kind, LocalKind::kReference);
  EXPECT_EQ(f->locals[1].name, "attr");
  EXPECT_EQ(f->locals[1].kind, LocalKind::kPointer);
  EXPECT_EQ(f->locals[2].name, "it");
  EXPECT_EQ(f->locals[2].kind, LocalKind::kIterator);
  EXPECT_EQ(f->locals[3].name, "jt");
  EXPECT_EQ(f->locals[3].kind, LocalKind::kIterator);
  EXPECT_EQ(f->locals[4].name, "kt");
  EXPECT_EQ(f->locals[4].kind, LocalKind::kIterator);
}

TEST(Outline, NestedLambdaGetsItsOwnOutline) {
  const auto outlines = Outlines(R"(
void F() {
  auto& big = state();
  auto cb = [&big](int x) { return big.Use(x); };
  cb(1);
}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->lambda_ranges.size(), 1u);
  const Outline* lam = Find(outlines, "F::[lambda]");
  ASSERT_NE(lam, nullptr);
  EXPECT_TRUE(lam->is_lambda);
  ASSERT_EQ(lam->captures.size(), 1u);
  EXPECT_EQ(lam->captures[0].name, "big");
  EXPECT_TRUE(lam->captures[0].by_ref);
}

TEST(Outline, SubscriptIsNotALambda) {
  const auto outlines = Outlines(R"(
void F() {
  int a[3] = {1, 2, 3};
  int x = a[0] + a[1];
  table_[key] = x;
}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->lambda_ranges.empty());
}

TEST(Outline, RangeForIsRecorded) {
  const auto outlines = Outlines(R"(
void F() {
  for (auto& [fh, st] : cache_) { Use(fh, st); }
  for (int i = 0; i < 3; ++i) { Use(i); }
}
)");
  const Outline* f = Find(outlines, "F");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->loops.size(), 2u);
  EXPECT_TRUE(f->loops[0].is_range_for);
  EXPECT_EQ(f->loops[0].range_expr, "cache_");
  EXPECT_FALSE(f->loops[1].is_range_for);
}

// ---------------------------------------------------------------------------
// Dataflow: use-after-suspend
// ---------------------------------------------------------------------------

TEST(UseAfterSuspend, FiresOnStaleReference) {
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& fc = cache_[fh];
  co_await Fetch(fh);
  fc.Use();
  co_return;
}
)");
  ASSERT_TRUE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, CleanWhenReacquiredAfterSuspend) {
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& fc = cache_[fh];
  fc.Prep();
  co_await Fetch(fh);
  fc = cache_[fh];
  fc.Use();
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, CleanWhenInitializerItselfAwaits) {
  // `auto& r = co_await f();` — the value is created *after* that suspend.
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& r = co_await Open(fh);
  r.Use();
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, UseInsideAwaitOperandIsPreSuspend) {
  // Arguments are captured before the frame parks: `co_await Write(fc.data)`
  // does not use fc after the suspend.
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& fc = cache_[fh];
  co_await Write(fc.data());
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, AssignmentTargetWithAwaitedRhsFires) {
  // `fc.attr = co_await Fetch()` writes fc *after* resumption.
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& fc = cache_[fh];
  fc.attr = co_await FetchAttr(fh);
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, LoopBackEdgeFires) {
  // The reference is created before the loop; the suspend and the use share
  // the body, so the second iteration uses it stale.
  const auto findings = Analyze(R"(
Task<void> F() {
  auto& fc = cache_[fh];
  while (More()) {
    fc.Step();
    co_await Tick();
  }
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, NamedFunctionRefParamIsCallerKeptAlive) {
  // Caller-awaits convention: the caller's frame holds `data` for the whole
  // co_await, so named coroutines' reference params are not tracked.
  const auto findings = Analyze(R"(
Task<void> F(const Bytes& data) {
  co_await Flush();
  Use(data);
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, LambdaRefParamFires) {
  // Lambda coroutines are routinely detached (sim::Spawn / WaitGroup), so
  // their reference-like parameters get no caller-keeps-alive guarantee.
  const auto findings = Analyze(R"(
void F() {
  wg.Spawn([](Buffer* buf) -> Task<void> {
    co_await Tick();
    buf->Use();
  }(&local));
}
)");
  EXPECT_TRUE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, BranchThatReturnsDoesNotTaintLaterCode) {
  // The suspend sits in a branch that co_returns; straight-line code after
  // the branch never crossed it.
  const auto findings = Analyze(R"(
Task<void> F() {
  auto* child = cache_.Find(fh);
  if (!child->valid()) {
    co_await sim::Sleep(sched_, t);
    co_return;
  }
  child->Use();
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, SuspendInsideNestedLambdaDoesNotCount) {
  // The lambda body belongs to its own frame; the enclosing function has no
  // suspend of its own.
  const auto findings = Analyze(R"(
void F() {
  auto& fc = cache_[fh];
  auto task = [&]() -> Task<void> { co_await Tick(); co_return; };
  fc.Use();
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

TEST(UseAfterSuspend, ValueLocalsAreNotTracked) {
  const auto findings = Analyze(R"(
Task<void> F() {
  Attr attr = cache_[fh].attr();
  co_await Fetch(fh);
  Use(attr);
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "use-after-suspend"));
}

// ---------------------------------------------------------------------------
// Dataflow: iter-after-suspend
// ---------------------------------------------------------------------------

TEST(IterAfterSuspend, FiresOnFindHeldAcrossAwait) {
  const auto findings = Analyze(R"(
Task<void> F() {
  auto it = writes_.find(fh);
  co_await Drain(fh);
  if (it != writes_.end()) writes_.erase(it);
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, CleanWhenReacquired) {
  const auto findings = Analyze(R"(
Task<void> F() {
  auto it = writes_.find(fh);
  co_await Drain(fh);
  it = writes_.find(fh);
  if (it != writes_.end()) writes_.erase(it);
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, RangeForOverMemberWithSuspendFires) {
  const auto findings = Analyze(R"(
Task<void> F() {
  for (auto& [fh, st] : cache_) {
    co_await Revalidate(fh);
  }
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, RangeForOverLocalSnapshotIsClean) {
  const auto findings = Analyze(R"(
Task<void> F() {
  std::vector<Fh> snapshot;
  for (Fh fh : snapshot) {
    co_await Revalidate(fh);
  }
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, RangeForOverValueLocalMemberIsClean) {
  // `info` is a frame-private value; nothing else can mutate info.victims
  // while the frame is parked.
  const auto findings = Analyze(R"(
Task<void> F() {
  OpInfo info = Classify(proc, args);
  for (const auto& fh : info.victims) {
    co_await Recall(fh);
  }
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, RangeForOverTrackedReferenceFires) {
  // `aw` aliases member state, so the hidden iterator is exposed.
  const auto findings = Analyze(R"(
Task<void> F() {
  AsyncWrites& aw = AsyncWritesFor(fh);
  for (const auto& range : aw.ranges) {
    co_await Probe(range);
  }
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "iter-after-suspend"));
}

TEST(IterAfterSuspend, SuspendFollowedByBreakIsClean) {
  // The loop never advances past that suspend: drain-then-break idiom.
  const auto findings = Analyze(R"(
Task<void> F() {
  for (const auto& range : ranges_) {
    if (Overlaps(range)) {
      co_await Drain(fh);
      break;
    }
  }
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "iter-after-suspend"));
}

// ---------------------------------------------------------------------------
// Dataflow: lock-across-suspend
// ---------------------------------------------------------------------------

TEST(LockAcrossSuspend, FiresWhenHeldOverAwait) {
  const auto findings = Analyze(R"(
Task<void> F() {
  co_await mu_.Lock();
  co_await SlowWrite();
  mu_.Unlock();
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "lock-across-suspend"));
}

TEST(LockAcrossSuspend, CleanWhenReleasedFirst) {
  const auto findings = Analyze(R"(
Task<void> F() {
  co_await mu_.Lock();
  counter_++;
  mu_.Unlock();
  co_await SlowWrite();
  co_return;
}
)");
  EXPECT_FALSE(HasRule(findings, "lock-across-suspend"));
}

TEST(LockAcrossSuspend, SemaphoreAcquireFiresToo) {
  const auto findings = Analyze(R"(
Task<void> F() {
  co_await slots_.Acquire();
  co_await Write();
  slots_.Release();
  co_return;
}
)");
  EXPECT_TRUE(HasRule(findings, "lock-across-suspend"));
}

// ---------------------------------------------------------------------------
// Dataflow: detached-task
// ---------------------------------------------------------------------------

TEST(DetachedTask, FiresOnDiscardedTaskCall) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
Task<void> Background(Fh fh) { co_await Tick(); co_return; }
void Caller(Fh fh) {
  Background(fh);
}
)");
  tree.emplace(unit.rel_path, std::move(unit));
  std::vector<Finding> out;
  CheckDetachedTask(tree, out);
  ASSERT_TRUE(HasRule(out, "detached-task"));
}

TEST(DetachedTask, AwaitedAndSpawnedAreClean) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
Task<void> Background(Fh fh) { co_await Tick(); co_return; }
Task<void> Caller(Fh fh) {
  co_await Background(fh);
  sim::Spawn(sched, Background(fh));
  auto task = Background(fh);
  co_return;
}
)");
  tree.emplace(unit.rel_path, std::move(unit));
  std::vector<Finding> out;
  CheckDetachedTask(tree, out);
  EXPECT_FALSE(HasRule(out, "detached-task"));
}

TEST(DetachedTask, NonTaskFunctionIsClean) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
void Log(Fh fh) { Record(fh); }
void Caller(Fh fh) {
  Log(fh);
}
)");
  tree.emplace(unit.rel_path, std::move(unit));
  std::vector<Finding> out;
  CheckDetachedTask(tree, out);
  EXPECT_FALSE(HasRule(out, "detached-task"));
}

// ---------------------------------------------------------------------------
// Robustness: the analyzer must never fire on what it cannot model
// ---------------------------------------------------------------------------

TEST(Robustness, GnarlyInputProducesNoFalseFindings) {
  const auto findings = Analyze(R"__(
#define WRAP(x) do { Use(x); } while (0)
const char* kBlob = R"({"nested": [1, {"deep": true}]})";
template <typename T>
struct Holder {
  template <typename U>
  auto Map(U&& u) -> decltype(auto) {
    auto outer = [this](auto&& v) {
      auto inner = [&v]() { return v; };
      return inner();
    };
    return outer(u);
  }
};
#if defined(NEVER)
Task<void> Ghost() { auto& x = broken(
#endif
void Fine() { WRAP(kBlob); }
)__");
  EXPECT_TRUE(findings.empty());
}

TEST(Robustness, EpochGuardIdiomIsNotTracked) {
  // The project's re-validation idiom: copy a value, await, compare. No
  // reference-like value crosses the suspend.
  const auto findings = Analyze(R"(
Task<void> F() {
  const std::uint64_t epoch = epoch_;
  co_await Refresh();
  if (epoch != epoch_) co_return;
  Apply();
  co_return;
}
)");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Suppression audit
// ---------------------------------------------------------------------------

TEST(Audit, LiveSuppressionPasses) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
#include <map>
// gvfs-lint: allow(unordered-container): scratch set, order never escapes
std::unordered_map<int, int> scratch;
)");
  tree.emplace(unit.rel_path, std::move(unit));
  EXPECT_TRUE(AuditSuppressions(tree).empty());
}

TEST(Audit, StaleSuppressionIsReported) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
// gvfs-lint: allow(unordered-container): leftover from a refactor
std::map<int, int> ordered_now;
)");
  tree.emplace(unit.rel_path, std::move(unit));
  const auto stale = AuditSuppressions(tree);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "unordered-container");
  EXPECT_EQ(stale[0].file, "src/gvfs/t.cpp");
}

TEST(Audit, MalformedSuppressionIsSkippedNotStale) {
  // No reason / unknown rule are bad-suppression findings, not audit stale.
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/t.cpp", R"(
// gvfs-lint: allow(unordered-container)
std::map<int, int> a;
// gvfs-lint: allow(no-such-rule): whatever
std::map<int, int> b;
)");
  tree.emplace(unit.rel_path, std::move(unit));
  EXPECT_TRUE(AuditSuppressions(tree).empty());
}

// ---------------------------------------------------------------------------
// Seeded bug corpus
// ---------------------------------------------------------------------------

// The PR-8 kernel-client bug, reduced: a page-cache reference held across
// the block-fetch await. This is the bug class the rule family exists for,
// so the reduced shape is kept as a checked-in fixture.
TEST(SeededBugs, CatchesPr8KclientShape) {
  const std::filesystem::path path =
      std::filesystem::path(LINT_TESTDATA_DIR) / "analyze" / "kclient_pr8.cpp";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture: " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const auto findings = Analyze(ss.str());
  EXPECT_TRUE(HasRule(findings, "use-after-suspend"));
}

}  // namespace
}  // namespace gvfs::lint
