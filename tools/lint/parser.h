// Structural front end for gvfs-analyze: a brace/paren matcher over the
// lexer's token stream that recovers function *definitions* — name, signature
// range, parameter-list range, body range — without building an AST.
//
// This is deliberately not a C++ parser. It understands exactly the structure
// the suspend-safety rules need (balanced delimiters, constructor initializer
// lists, trailing return types, statement boundaries) and degrades to
// *skipping* on anything it cannot model: unbalanced preprocessor branches,
// exotic macros, expression soup. The contract mirrors the lexer's — never a
// crash, never a fabricated structure; at worst a function is not outlined
// and the analyzer stays silent about it (losing findings, never inventing
// them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace gvfs::lint {

/// One function definition recovered from the token stream. All indices point
/// into the Lexed::tokens vector the definition was parsed from.
struct FunctionDef {
  std::string name;  // last identifier before the parameter list
  int line = 0;      // line of the name token

  std::size_t sig_begin = 0;     // first token of the best-effort signature
                                 // (return type, qualifiers, name)
  std::size_t name_tok = 0;      // the name token itself
  std::size_t params_begin = 0;  // the '(' opening the parameter list
  std::size_t params_end = 0;    // the matching ')'
  std::size_t body_begin = 0;    // the '{' opening the body
  std::size_t body_end = 0;      // the matching '}'
};

/// Index of the delimiter matching the opener at `open` ('(' / '{' / '['),
/// or tokens.size() when the stream ends unbalanced.
std::size_t MatchForward(const std::vector<Token>& toks, std::size_t open);

/// Every function definition in the stream, in token order. Bodies are
/// skipped once matched, so control-flow statements inside them are never
/// mistaken for definitions. Malformed regions yield no entry.
std::vector<FunctionDef> ParseFunctions(const Lexed& lex);

}  // namespace gvfs::lint
