// Cross-file protocol-coverage rules: structural proofs over the proc
// dispatch, the consistency machinery, and the trace-event tables. Where the
// TraceChecker observes at runtime that invalidations happened, these rules
// prove at lint time that the code paths which produce them exist:
//
//   proc-coverage        every nfs3::Proc is registered in ProxyServer's
//                        kProcs table and classified in Classify(); every
//                        GvfsProc has a RegisterHandler call in src/gvfs/.
//   stats-name-coverage  every proc has a ProcName / GvfsProcName case, so
//                        per-proc RPC stats and trace labels never collapse
//                        into "UNKNOWN".
//   inv-coverage         every proc the NFS protocol defines as mutating is
//                        classified mutating, and the mutating path appends
//                        to the invalidation buffers (RecordInvalidation ->
//                        push_back). The fleet aggregation tier is held to
//                        the same bar: Ingest() must fan handles out and
//                        Fanout() must append downstream.
//   trace-coverage       the append is traced (kInvAppend; kAggIngest /
//                        kAggFanout in the aggregation tier), and every
//                        trace::EventType has an EventTypeName entry.
//   anomaly-coverage     every obs::AnomalyKind is registered in kDetectors,
//                        named by AnomalyKindName, and given a remedy by the
//                        doctor's VerdictFor — detectors stay actionable
//                        from the online firing to the offline post-mortem.
//
// All parsing is over the lexer's token stream; the helpers below understand
// just enough C++ structure (enum bodies, function bodies, case labels) to
// anchor the checks. A rule whose anchor files are absent from the scanned
// tree passes silently, so gvfs-lint stays usable on partial trees and on
// the test fixtures.
#include <algorithm>
#include <array>
#include <set>
#include <string_view>

#include "lint.h"

namespace gvfs::lint {

namespace {

bool Is(const Token& t, std::string_view text) { return t.text == text; }

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Looks a file up by rel_path suffix (so fixture trees can live anywhere
/// under the scan root).
const FileUnit* FindUnit(const Tree& tree, std::string_view suffix) {
  for (const auto& [rel, unit] : tree) {
    if (rel.size() >= suffix.size() &&
        rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return &unit;
    }
  }
  return nullptr;
}

/// Half-open token range [begin, end) into a file's token stream.
struct Span {
  const std::vector<Token>* toks = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  int line = 0;  // line of the anchor (enum name / function name)

  bool ok() const { return toks != nullptr; }
};

/// Enumerator names of `enum [class] <name> [: type] { ... }`.
std::vector<std::string> EnumValues(const Lexed& lex, std::string_view name,
                                    int* line_out) {
  const auto& toks = lex.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() &&
        (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct"))) {
      ++j;
    }
    if (j >= toks.size() || !IsIdent(toks[j], name)) continue;
    if (line_out != nullptr) *line_out = toks[j].line;
    while (j < toks.size() && !Is(toks[j], "{")) {
      if (Is(toks[j], ";")) break;  // forward declaration
      ++j;
    }
    if (j >= toks.size() || !Is(toks[j], "{")) continue;
    std::vector<std::string> values;
    ++j;
    while (j < toks.size() && !Is(toks[j], "}")) {
      if (toks[j].kind == TokKind::kIdent) {
        values.push_back(toks[j].text);
        // Skip the initializer (if any) up to the comma or closing brace.
        int depth = 0;
        while (j < toks.size()) {
          if (Is(toks[j], "(") || Is(toks[j], "{")) ++depth;
          if (Is(toks[j], ")") || (depth > 0 && Is(toks[j], "}"))) --depth;
          if (depth == 0 && (Is(toks[j], ",") || Is(toks[j], "}"))) break;
          ++j;
        }
        if (j < toks.size() && Is(toks[j], "}")) break;
      }
      ++j;
    }
    return values;
  }
  return {};
}

/// Body of the first *definition* of `name` (a call or declaration — name,
/// parens, then `;` — is skipped; a definition reaches `{`).
Span FunctionBody(const Lexed& lex, std::string_view name) {
  const auto& toks = lex.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], name) || !Is(toks[i + 1], "(")) continue;
    // Match the parameter list.
    std::size_t j = i + 1;
    int parens = 0;
    for (; j < toks.size(); ++j) {
      if (Is(toks[j], "(")) ++parens;
      if (Is(toks[j], ")") && --parens == 0) break;
    }
    if (j >= toks.size()) return {};
    // Scan to the body, bailing at `;` (declaration / call statement).
    ++j;
    bool is_definition = false;
    for (; j < toks.size(); ++j) {
      if (Is(toks[j], ";") || Is(toks[j], ",") || Is(toks[j], ")")) break;
      if (Is(toks[j], "{")) {
        is_definition = true;
        break;
      }
    }
    if (!is_definition) continue;
    Span body;
    body.toks = &toks;
    body.begin = j + 1;
    body.line = toks[i].line;
    int braces = 1;
    for (++j; j < toks.size(); ++j) {
      if (Is(toks[j], "{")) ++braces;
      if (Is(toks[j], "}") && --braces == 0) break;
    }
    body.end = j;
    return body;
  }
  return {};
}

bool SpanContains(const Span& span, std::string_view ident) {
  if (!span.ok()) return false;
  for (std::size_t i = span.begin; i < span.end; ++i) {
    if (IsIdent((*span.toks)[i], ident)) return true;
  }
  return false;
}

/// Case-label groups of every switch inside `body`: each group maps the
/// labels of consecutive `case X:` lines to the statement tokens that follow
/// (up to the next case/default), so fallthrough groups share one block.
struct CaseGroup {
  std::vector<std::string> labels;
  Span block;
};

std::vector<CaseGroup> CaseGroups(const Span& body) {
  std::vector<CaseGroup> groups;
  if (!body.ok()) return groups;
  const auto& toks = *body.toks;
  std::size_t i = body.begin;
  while (i < body.end) {
    if (!IsIdent(toks[i], "case")) {
      ++i;
      continue;
    }
    CaseGroup group;
    // Collect consecutive `case <qualified-name> :` labels.
    while (i < body.end && IsIdent(toks[i], "case")) {
      std::string label;
      ++i;
      while (i < body.end && !Is(toks[i], ":")) {
        if (toks[i].kind == TokKind::kIdent) label = toks[i].text;
        ++i;
      }
      if (i < body.end) ++i;  // ':'
      if (!label.empty()) group.labels.push_back(label);
    }
    // The group's block runs to the next case/default at any depth (good
    // enough for the dispatch switches this rule anchors on).
    group.block.toks = body.toks;
    group.block.begin = i;
    while (i < body.end && !IsIdent(toks[i], "case") &&
           !IsIdent(toks[i], "default")) {
      ++i;
    }
    group.block.end = i;
    groups.push_back(std::move(group));
  }
  return groups;
}

const CaseGroup* GroupFor(const std::vector<CaseGroup>& groups,
                          std::string_view label) {
  for (const CaseGroup& g : groups) {
    if (std::find(g.labels.begin(), g.labels.end(), label) != g.labels.end()) {
      return &g;
    }
  }
  return nullptr;
}

/// Identifiers of an initializer list `name[] = { ... }` (the kProcs table).
/// Plain uses of the name (range-fors, indexing) are skipped: only a brace
/// init introduced by `=` matches, so the table can be defined after its
/// first use in the file.
std::vector<std::string> ArrayInitIdents(const Lexed& lex,
                                         std::string_view name, int* line_out) {
  const auto& toks = lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], name)) continue;
    std::size_t j = i;
    bool saw_eq = false;
    while (j < toks.size() && !Is(toks[j], "{")) {
      if (Is(toks[j], ";")) break;
      if (Is(toks[j], "=")) saw_eq = true;
      ++j;
    }
    if (j >= toks.size() || !Is(toks[j], "{") || !saw_eq) continue;
    if (line_out != nullptr) *line_out = toks[i].line;
    std::vector<std::string> idents;
    int depth = 1;
    for (++j; j < toks.size() && depth > 0; ++j) {
      if (Is(toks[j], "{")) ++depth;
      if (Is(toks[j], "}")) --depth;
      if (toks[j].kind == TokKind::kIdent) idents.push_back(toks[j].text);
    }
    return idents;
  }
  return {};
}

void Add(std::vector<Finding>& out, const char* rule, const FileUnit& unit,
         int line, std::string message) {
  out.push_back({rule, unit.rel_path, line, std::move(message)});
}

bool Contains(const std::vector<std::string>& haystack, const std::string& v) {
  return std::find(haystack.begin(), haystack.end(), v) != haystack.end();
}

/// The NFSv3 procedures that mutate server state. This is protocol
/// knowledge, not repo convention: RFC 1813 defines these as the
/// state-changing subset, so the linter may hardcode it and demand that the
/// proxy treats each one as mutating.
constexpr std::array<std::string_view, 8> kMutatingProcs = {
    "kSetAttr", "kWrite", "kCreate", "kMkdir",
    "kRemove",  "kRmdir", "kRename", "kLink"};

}  // namespace

// ---------------------------------------------------------------------------
// proc-coverage
// ---------------------------------------------------------------------------

void CheckProcCoverage(const Tree& tree, std::vector<Finding>& out) {
  const FileUnit* nfs_proto = FindUnit(tree, "src/nfs3/proto.h");
  const FileUnit* server = FindUnit(tree, "src/gvfs/proxy_server.cpp");
  if (nfs_proto != nullptr && server != nullptr) {
    int enum_line = 0;
    std::vector<std::string> procs =
        EnumValues(nfs_proto->lex, "Proc", &enum_line);

    int table_line = 0;
    std::vector<std::string> registered =
        ArrayInitIdents(server->lex, "kProcs", &table_line);
    Span classify = FunctionBody(server->lex, "Classify");
    std::vector<CaseGroup> cases = CaseGroups(classify);

    for (const std::string& proc : procs) {
      if (proc == "kNull") continue;  // NULL is a ping; the proxy never sees it
      if (registered.empty() || !Contains(registered, proc)) {
        Add(out, "proc-coverage", *server, table_line,
            "NFS proc '" + proc + "' is missing from the kProcs handler "
            "registration table; calls to it bypass the proxy");
      }
      if (classify.ok() && GroupFor(cases, proc) == nullptr) {
        Add(out, "proc-coverage", *server, classify.line,
            "NFS proc '" + proc + "' has no case in Classify(); it is "
            "forwarded with no consistency handling");
      }
    }
    if (!classify.ok()) {
      Add(out, "proc-coverage", *server, 1,
          "Classify() definition not found; request classification is the "
          "anchor for all consistency handling");
    }
  }

  // Every GVFS proc must have a RegisterHandler somewhere under src/gvfs/
  // (server side registers GETINV; the client side registers CALLBACK and
  // RECOVERY).
  const FileUnit* gvfs_proto = FindUnit(tree, "src/gvfs/proto.h");
  if (gvfs_proto == nullptr) return;
  int gvfs_enum_line = 0;
  std::vector<std::string> gvfs_procs =
      EnumValues(gvfs_proto->lex, "GvfsProc", &gvfs_enum_line);
  if (gvfs_procs.empty()) return;

  std::set<std::string> handler_args;
  for (const auto& [rel, unit] : tree) {
    if (rel.find("src/gvfs/") == std::string::npos) continue;
    const auto& toks = unit.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "RegisterHandler") || !Is(toks[i + 1], "(")) {
        continue;
      }
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (Is(toks[j], "(")) ++depth;
        if (Is(toks[j], ")") && --depth == 0) break;
        if (toks[j].kind == TokKind::kIdent) handler_args.insert(toks[j].text);
      }
    }
  }
  for (const std::string& proc : gvfs_procs) {
    if (handler_args.count(proc) == 0) {
      Add(out, "proc-coverage", *gvfs_proto, gvfs_enum_line,
          "GVFS proc '" + proc + "' has no RegisterHandler call under "
          "src/gvfs/; calls to it time out");
    }
  }
}

// ---------------------------------------------------------------------------
// stats-name-coverage
// ---------------------------------------------------------------------------

namespace {

void CheckNameTable(const Tree& tree, const char* rule,
                    std::string_view enum_file, std::string_view enum_name,
                    std::string_view impl_file, std::string_view func,
                    std::string_view consequence, std::vector<Finding>& out) {
  const FileUnit* decl = FindUnit(tree, enum_file);
  const FileUnit* impl = FindUnit(tree, impl_file);
  if (decl == nullptr || impl == nullptr) return;
  int enum_line = 0;
  std::vector<std::string> values =
      EnumValues(decl->lex, enum_name, &enum_line);
  if (values.empty()) return;
  Span body = FunctionBody(impl->lex, func);
  if (!body.ok()) {
    Add(out, rule, *impl, 1,
        std::string(func) + "() definition not found; " +
        std::string(consequence));
    return;
  }
  std::vector<CaseGroup> cases = CaseGroups(body);
  for (const std::string& value : values) {
    if (GroupFor(cases, value) == nullptr) {
      Add(out, rule, *impl, body.line,
          "'" + value + "' has no case in " + std::string(func) + "(); " +
          std::string(consequence));
    }
  }
}

}  // namespace

void CheckStatsNameCoverage(const Tree& tree, std::vector<Finding>& out) {
  CheckNameTable(tree, "stats-name-coverage", "src/nfs3/proto.h", "Proc",
                 "src/nfs3/proto.cpp", "ProcName",
                 "its stats/trace label degrades to the unknown bucket", out);
  CheckNameTable(tree, "stats-name-coverage", "src/gvfs/proto.h", "GvfsProc",
                 "src/gvfs/proto.cpp", "GvfsProcName",
                 "its stats/trace label degrades to the unknown bucket", out);
}

// ---------------------------------------------------------------------------
// inv-coverage
// ---------------------------------------------------------------------------

void CheckInvCoverage(const Tree& tree, std::vector<Finding>& out) {
  const FileUnit* nfs_proto = FindUnit(tree, "src/nfs3/proto.h");
  const FileUnit* server = FindUnit(tree, "src/gvfs/proxy_server.cpp");
  if (nfs_proto != nullptr && server != nullptr) {
    std::vector<std::string> procs =
        EnumValues(nfs_proto->lex, "Proc", nullptr);
    Span classify = FunctionBody(server->lex, "Classify");
    std::vector<CaseGroup> cases = CaseGroups(classify);

    // Each protocol-defined mutating proc must be classified mutating — that
    // flag is the sole gate to RecordInvalidation and the staleness stamps.
    for (std::string_view proc : kMutatingProcs) {
      const std::string name(proc);
      if (!Contains(procs, name)) continue;  // partial tree / fixture subset
      const CaseGroup* group = GroupFor(cases, name);
      if (group == nullptr) continue;  // proc-coverage already reports this
      if (!SpanContains(group->block, "mutating")) {
        Add(out, "inv-coverage", *server, classify.line,
            "mutating NFS proc '" + name + "' is not marked mutating in "
            "Classify(); its invalidation-buffer append and staleness stamp "
            "are skipped");
      }
    }

    // The mutating path itself: HandleNfs must reach RecordInvalidation —
    // directly, or through PropagateInvalidation (the sharded form, which
    // records locally or forwards to the owning shard with NOTIFYINV) — and
    // RecordInvalidation must actually append.
    Span handle = FunctionBody(server->lex, "HandleNfs");
    if (handle.ok()) {
      if (!SpanContains(handle, "RecordInvalidation") &&
          !SpanContains(handle, "PropagateInvalidation")) {
        Add(out, "inv-coverage", *server, handle.line,
            "HandleNfs() never calls RecordInvalidation or "
            "PropagateInvalidation; mutating procs leave no "
            "invalidation-buffer entries");
      }
    }
    Span propagate = FunctionBody(server->lex, "PropagateInvalidation");
    if (propagate.ok() && !SpanContains(propagate, "RecordInvalidation")) {
      Add(out, "inv-coverage", *server, propagate.line,
          "PropagateInvalidation() never calls RecordInvalidation; "
          "owned-shard mutations leave no invalidation-buffer entries");
    }
    Span record = FunctionBody(server->lex, "RecordInvalidation");
    if (record.ok()) {
      if (!SpanContains(record, "push_back")) {
        Add(out, "inv-coverage", *server, record.line,
            "RecordInvalidation() never appends to a client invalidation "
            "buffer; polling clients stop seeing peer writes");
      }
    } else {
      Add(out, "inv-coverage", *server, 1,
          "RecordInvalidation() definition not found; the "
          "invalidation-polling model has no producer");
    }
  }

  // The aggregation tier re-publishes upstream invalidations to the clients
  // it fronts: Ingest() must fan every handle out and Fanout() must actually
  // append to the downstream buffer — otherwise clients behind the tier
  // silently stop seeing peer writes while the direct path still works.
  const FileUnit* agg = FindUnit(tree, "src/fleet/inv_aggregator.cpp");
  if (agg == nullptr) return;
  Span ingest = FunctionBody(agg->lex, "Ingest");
  if (ingest.ok() && !SpanContains(ingest, "Fanout")) {
    Add(out, "inv-coverage", *agg, ingest.line,
        "Ingest() never calls Fanout(); upstream invalidations are dropped "
        "at the aggregation tier");
  }
  Span fanout = FunctionBody(agg->lex, "Fanout");
  if (fanout.ok()) {
    if (!SpanContains(fanout, "push_back")) {
      Add(out, "inv-coverage", *agg, fanout.line,
          "Fanout() never appends to a downstream invalidation buffer; "
          "clients behind the aggregation tier stop seeing peer writes");
    }
  } else {
    Add(out, "inv-coverage", *agg, 1,
        "Fanout() definition not found; the aggregation tier has no "
        "downstream producer");
  }
}

// ---------------------------------------------------------------------------
// migrate-coverage
// ---------------------------------------------------------------------------

void CheckMigrateCoverage(const Tree& tree, std::vector<Finding>& out) {
  // The adaptive engine's safety argument is the drain-before-switch chain:
  // a MIGRATE reply may only switch a file's mode after the server has
  // recalled conflicting delegations and delivered the caller's buffered
  // invalidations for that file, and the client may only issue a MIGRATE
  // after flushing and dropping its own delegation state. TraceChecker
  // invariant 6 observes violations at runtime; this rule proves at lint
  // time that the code path producing the handshake still exists.
  const FileUnit* server = FindUnit(tree, "src/gvfs/proxy_server.cpp");
  if (server != nullptr) {
    Span migrate = FunctionBody(server->lex, "HandleMigrate");
    if (migrate.ok()) {
      if (!SpanContains(migrate, "DrainInvEntries")) {
        Add(out, "migrate-coverage", *server, migrate.line,
            "HandleMigrate() never calls DrainInvEntries(); a mutation "
            "buffered before the mode switch becomes invisible after it");
      }
      if (!SpanContains(migrate, "RecallConflicts")) {
        Add(out, "migrate-coverage", *server, migrate.line,
            "HandleMigrate() never calls RecallConflicts(); a migration can "
            "switch modes under a live conflicting delegation");
      }
    }
    Span drain = FunctionBody(server->lex, "DrainInvEntries");
    if (drain.ok()) {
      if (!SpanContains(drain, "erase")) {
        Add(out, "migrate-coverage", *server, drain.line,
            "DrainInvEntries() never erases buffer entries; drained "
            "invalidations would be delivered twice");
      }
      if (!SpanContains(drain, "kInvPoll")) {
        Add(out, "migrate-coverage", *server, drain.line,
            "DrainInvEntries() does not trace its deliveries as kInvPoll; "
            "TraceChecker invariant 6 cannot credit the drain");
      }
    } else if (migrate.ok()) {
      Add(out, "migrate-coverage", *server, migrate.line,
          "DrainInvEntries() definition not found; the MIGRATE handshake "
          "has no drain step");
    }
  }

  const FileUnit* client = FindUnit(tree, "src/gvfs/proxy_client.cpp");
  if (client != nullptr) {
    Span migrate = FunctionBody(client->lex, "MigrateMode");
    if (migrate.ok()) {
      if (!SpanContains(migrate, "FlushFile")) {
        Add(out, "migrate-coverage", *client, migrate.line,
            "MigrateMode() never calls FlushFile(); dirty data can be "
            "stranded behind a delegation the switch abandons");
      }
      if (!SpanContains(migrate, "DropDelegation")) {
        Add(out, "migrate-coverage", *client, migrate.line,
            "MigrateMode() never calls DropDelegation(); stale client "
            "delegation state survives the mode switch");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// trace-coverage
// ---------------------------------------------------------------------------

void CheckTraceCoverage(const Tree& tree, std::vector<Finding>& out) {
  // The invalidation append must be observable in traces: the TraceChecker's
  // invariants (and the staleness analysis) are blind to unrecorded appends.
  const FileUnit* server = FindUnit(tree, "src/gvfs/proxy_server.cpp");
  if (server != nullptr) {
    Span record = FunctionBody(server->lex, "RecordInvalidation");
    if (record.ok() && !SpanContains(record, "kInvAppend")) {
      Add(out, "trace-coverage", *server, record.line,
          "RecordInvalidation() does not emit a kInvAppend trace event; the "
          "TraceChecker cannot see these appends");
    }
  }

  // Same discipline for the aggregation tier: fan-outs and ingests must be
  // traced, or the checker's kAggTier invariant (no invalidation lost or
  // duplicated crossing the tier) has nothing to match against.
  const FileUnit* agg = FindUnit(tree, "src/fleet/inv_aggregator.cpp");
  if (agg != nullptr) {
    Span fanout = FunctionBody(agg->lex, "Fanout");
    if (fanout.ok() && !SpanContains(fanout, "kAggFanout")) {
      Add(out, "trace-coverage", *agg, fanout.line,
          "Fanout() does not emit a kAggFanout trace event; the kAggTier "
          "invariant cannot see tier fan-outs");
    }
    Span ingest = FunctionBody(agg->lex, "Ingest");
    if (ingest.ok() && !SpanContains(ingest, "kAggIngest")) {
      Add(out, "trace-coverage", *agg, ingest.line,
          "Ingest() does not emit a kAggIngest trace event; the kAggTier "
          "invariant cannot pair fan-outs with their upstream ingest");
    }
  }

  // Every trace::EventType must have an EventTypeName case, or exporters
  // render events that cannot be told apart.
  CheckNameTable(tree, "trace-coverage", "src/trace/trace.h", "EventType",
                 "src/trace/trace.cpp", "EventTypeName",
                 "its stats/trace label degrades to the unknown bucket", out);
}

// ---------------------------------------------------------------------------
// anomaly-coverage
// ---------------------------------------------------------------------------

void CheckAnomalyCoverage(const Tree& tree, std::vector<Finding>& out) {
  // Every obs::AnomalyKind must stay wired end to end through the diagnosis
  // layer: a kDetectors registry entry (drives the per-kind observatory
  // counters and the dump rendering), an AnomalyKindName case (the
  // kebab-case wire name round-tripped through .gvfsdump files), and a
  // gvfs-doctor VerdictFor case (the operator-facing remedy). A detector
  // missing any link still fires online but renders as "?" offline — the
  // post-mortem names an anomaly nobody can act on.
  const FileUnit* decl = FindUnit(tree, "src/obs/anomaly.h");
  const FileUnit* impl = FindUnit(tree, "src/obs/anomaly.cpp");
  if (decl == nullptr || impl == nullptr) return;
  int enum_line = 0;
  std::vector<std::string> kinds =
      EnumValues(decl->lex, "AnomalyKind", &enum_line);
  if (kinds.empty()) return;

  int table_line = 0;
  std::vector<std::string> registered =
      ArrayInitIdents(impl->lex, "kDetectors", &table_line);
  if (registered.empty()) {
    Add(out, "anomaly-coverage", *impl, 1,
        "kDetectors registry not found; the watchdog has no detector table "
        "to attach counters or render dumps from");
  } else {
    for (const std::string& kind : kinds) {
      if (!Contains(registered, kind)) {
        Add(out, "anomaly-coverage", *impl, table_line,
            "AnomalyKind '" + kind + "' is missing from the kDetectors "
            "registry; its observatory counter and dump rendering vanish");
      }
    }
  }

  CheckNameTable(tree, "anomaly-coverage", "src/obs/anomaly.h", "AnomalyKind",
                 "src/obs/anomaly.cpp", "AnomalyKindName",
                 "its wire name degrades to '?' in dumps and counters", out);
  CheckNameTable(tree, "anomaly-coverage", "src/obs/anomaly.h", "AnomalyKind",
                 "tools/doctor/doctor.cpp", "VerdictFor",
                 "the doctor has no remedy text for that anomaly", out);
}

}  // namespace gvfs::lint
