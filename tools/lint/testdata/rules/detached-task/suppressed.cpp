// Fixture: the same dropped task, silenced by a reasoned suppression.
#include "sim/task.h"

sim::Task<void> Background() { co_return; }

void Caller() {
  Background();  // gvfs-lint: allow(detached-task): prewarming only; the handle is intentionally dropped in this probe
}
