// Fixture: awaiting the task or handing it to the scheduler consumes the
// result; neither must fire detached-task.
#include "sim/task.h"

sim::Task<void> Background() { co_return; }

sim::Task<void> Caller() {
  co_await Background();
  sim::Spawn(Background());
}
