// Fixture: Task is lazy — a call whose result is dropped never runs.
#include "sim/task.h"

sim::Task<void> Background() { co_return; }

void Caller() {
  Background();
}
