// Fixture: simulation time, identifiers containing "time", and mentions in
// comments or strings must not fire wall-clock.
#include "sim/scheduler.h"

gvfs::SimTime Now(gvfs::sim::Scheduler& sched) { return sched.Now(); }

// gettimeofday() and time(nullptr) in a comment are documentation.
gvfs::SimTime ObserveMtime(gvfs::SimTime mtime) { return mtime; }

const char* Doc() { return "time(nullptr) in a string is not a call"; }

struct Timer {
  gvfs::SimTime deadline = 0;  // "deadline" and "mtime" are just names
};
