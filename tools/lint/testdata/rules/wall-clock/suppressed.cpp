// Fixture: the same wall-clock read, silenced by a reasoned suppression.
#include <cstdint>

// gvfs-lint: allow(wall-clock): host timestamp is log-file metadata only
long WallSeconds() { return time(nullptr); }
