// Fixture: every statement below reads real time and must fire wall-clock.
#include <cstdint>

long WallSeconds() { return time(nullptr); }

long WallMicros() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return tv.tv_usec;
}

long Monotonic() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long System() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
