// Fixture: reasoned suppressions — registration-time type erasure and a
// report-feeding ordered index are allowed when justified.
#include <functional>
#include <map>
#include <string>

struct Registry {
  // gvfs-lint: allow(hot-path-type): handler erasure is registration-time only, never per packet
  using Handler = std::function<int(int)>;

  // gvfs-lint: allow(hot-path-type): ordered iteration feeds the stats report
  std::map<std::string, int> index;
};
