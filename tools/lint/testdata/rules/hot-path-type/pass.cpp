// Fixture: hot-path idioms — inline-storage callable, flat containers.
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "sim/callback.h"

struct Scheduler {
  void Post(gvfs::sim::EventFn fn);
};

struct Dispatch {
  gvfs::FlatMap<unsigned, int> handlers;
  std::vector<std::pair<unsigned, int>> ports;
};
