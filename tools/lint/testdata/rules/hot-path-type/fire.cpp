// Fixture: std::function stored per event and std::map consulted per call.
#include <functional>
#include <map>

struct Scheduler {
  void Post(std::function<void()> fn);
};

struct Dispatch {
  std::map<unsigned, int> handlers;
  int Lookup(unsigned proc) { return handlers[proc]; }
};
