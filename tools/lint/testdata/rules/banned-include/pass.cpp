// Fixture: ordinary includes must not fire; "<random>" in a comment or a
// string is not a directive.
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

const char* Doc() { return "#include <random>"; }
