// Fixture: reasoned suppression of a banned include.
// gvfs-lint: allow(banned-include): chrono literals used for config parsing only
#include <chrono>

int x = 0;
