// Fixture: headers that exist to provide wall clocks / ambient randomness.
#include <chrono>
#include <ctime>
#include <random>
#include <sys/time.h>

int x = 0;
