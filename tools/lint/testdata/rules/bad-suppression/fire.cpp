// Fixture: malformed suppressions are themselves findings.
#include <cstdint>

// gvfs-lint: allow(wall-clock)
int missing_reason = 0;

// gvfs-lint: allow(not-a-real-rule): the rule name is a typo
int unknown_rule = 0;
