// Fixture: a well-formed suppression (real rule, real reason) is clean even
// when it ends up covering nothing.
#include <cstdint>

// gvfs-lint: allow(wall-clock): defensive annotation retained after refactor
int plain = 0;
