// Fixture: iterators acquired after the suspend, or re-acquired before
// every post-suspend use, must not fire iter-after-suspend.
#include "sim/task.h"

sim::Task<void> Drain(int key) {
  co_await Flush(key);
  auto it = writes_.find(key);
  Consume(it->second);
}

sim::Task<void> Refresh(int key) {
  auto it = writes_.find(key);
  Consume(it->second);
  co_await Flush(key);
  it = writes_.find(key);
  Consume(it->second);
}
