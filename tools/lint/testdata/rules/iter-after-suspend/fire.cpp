// Fixture: an iterator acquired before a suspend point and dereferenced
// after it must fire iter-after-suspend.
#include "sim/task.h"

sim::Task<void> Drain(int key) {
  auto it = writes_.find(key);
  co_await Flush(key);
  Consume(it->second);
}
