// Fixture: the same held iterator, silenced by a reasoned suppression on
// the flagged (post-suspend use) line.
#include "sim/task.h"

sim::Task<void> Drain(int key) {
  auto it = writes_.find(key);
  co_await Flush(key);
  Consume(it->second);  // gvfs-lint: allow(iter-after-suspend): writes_ entries are only ever inserted; map iterators stay valid
}
