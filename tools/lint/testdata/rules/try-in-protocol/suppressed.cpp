// Fixture: reasoned suppression of a catch in scheduler-boundary code.
#include <exception>

void RunAll(void (*step)()) {
  // gvfs-lint: allow(try-in-protocol): scheduler top-level converts stray test exceptions to aborts
  try { step(); } catch (...) { __builtin_trap(); }
}
