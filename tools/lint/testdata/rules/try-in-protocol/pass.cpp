// Fixture: Expected<>-style control flow; "try" inside identifiers
// (retry_count) or comments must not fire.
#include "common/expected.h"

// Callers try the operation and inspect the result — no catch blocks.
gvfs::Expected<int, int> Attempt(int retry_count) {
  if (retry_count > 3) return gvfs::Unexpected(-1);
  return retry_count;
}
