// Fixture: try/catch in a protocol path must fire.
#include <exception>

int Guarded(int (*f)()) {
  try {
    return f();
  } catch (const std::exception&) {
    return -1;
  }
}
