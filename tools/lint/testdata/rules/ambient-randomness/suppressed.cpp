// Fixture: reasoned suppression of an ambient-randomness finding.
#include <cstdint>

std::uint64_t Entropy() {
  // gvfs-lint: allow(ambient-randomness): seeds the CLI's --seed default only
  std::random_device rd;
  return rd();
}
