// Fixture: ambient/unseeded randomness must fire.
#include <cstdint>

int Dice() { return rand() % 6; }

std::uint64_t Seed() {
  std::random_device rd;
  return rd();
}

std::uint64_t Engine() {
  std::mt19937 gen;  // default-seeded: different libstdc++, different stream
  return gen();
}
