// Fixture: the repo's explicit-seed Rng is the sanctioned randomness source.
#include "common/rng.h"

std::uint64_t Pick(std::uint64_t seed, std::uint64_t bound) {
  gvfs::Rng rng(seed);
  return rng.Below(bound);
}

// rand() and std::random_device in comments are fine, as is the identifier
// "randomized" below.
bool randomized_order = false;
