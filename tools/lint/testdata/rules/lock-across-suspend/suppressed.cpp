// Fixture: the same held lock, silenced by a reasoned suppression.
#include "sim/task.h"

sim::Task<void> Critical() {
  co_await gate_.Lock();  // gvfs-lint: allow(lock-across-suspend): flushes must serialize across the RPC by design
  co_await Fetch(0);
  gate_.Unlock();
}
