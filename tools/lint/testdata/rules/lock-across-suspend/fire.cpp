// Fixture: a lock acquired and then held across an unrelated await must
// fire lock-across-suspend — every other frame queues for the full RPC.
#include "sim/task.h"

sim::Task<void> Critical() {
  co_await gate_.Lock();
  co_await Fetch(0);
  gate_.Unlock();
}
