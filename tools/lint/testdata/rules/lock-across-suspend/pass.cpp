// Fixture: releasing before the next await keeps the critical section
// RPC-free; must not fire lock-across-suspend.
#include "sim/task.h"

sim::Task<void> Critical() {
  co_await gate_.Lock();
  Mutate();
  gate_.Unlock();
  co_await Fetch(0);
}
