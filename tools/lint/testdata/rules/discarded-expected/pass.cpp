// Fixture: handling the result — or discarding a plain variable — is fine.
#include "common/expected.h"

struct Upstream {
  gvfs::Expected<int, int> SetAttr(int ino, int size);
};

int Extend(Upstream& upstream, int ino, int unused_arg) {
  (void)unused_arg;  // a variable discard carries no Expected
  auto res = upstream.SetAttr(ino, 4096);
  if (!res) return res.error();
  return *res;
}
