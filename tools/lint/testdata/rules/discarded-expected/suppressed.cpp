// Fixture: reasoned suppression of a best-effort call whose failure is
// recovered elsewhere.
#include "common/expected.h"

struct Upstream {
  gvfs::Expected<int, int> SetAttr(int ino, int size);
};

void Extend(Upstream& upstream, int ino) {
  // gvfs-lint: allow(discarded-expected): best-effort hint; the write-back monitor retries
  (void)upstream.SetAttr(ino, 4096);
}
