// Fixture: (void)-discarding a call result in a protocol path swallows an
// Expected<> and must fire.
#include "common/expected.h"

struct Upstream {
  gvfs::Expected<int, int> SetAttr(int ino, int size);
};

void Extend(Upstream& upstream, int ino) {
  (void)upstream.SetAttr(ino, 4096);
}
