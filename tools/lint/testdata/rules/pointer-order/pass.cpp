// Fixture: keying on stable ids is deterministic; hashing values is fine,
// and `a < b` comparisons near "hash" must not be mistaken for templates.
#include <cstdint>
#include <string>

struct Session {
  std::uint64_t id = 0;
};

std::uint64_t Key(const Session& s) { return s.id; }

std::size_t HashName(const std::string& name) {
  return std::hash<std::string>{}(name);
}

bool Less(std::uint64_t hash, std::uint64_t limit) { return hash < limit; }
