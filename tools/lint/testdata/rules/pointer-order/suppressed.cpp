// Fixture: reasoned suppression of a pointer-hash finding.
#include <cstdint>

struct Session;

std::size_t HashPtr(Session* s) {
  // gvfs-lint: allow(pointer-order): transient debug map, order never escapes
  return std::hash<Session*>{}(s);
}
