// Fixture: ordering/hashing by pointer value varies run to run.
#include <cstdint>

struct Session;

std::uintptr_t Key(const Session* s) {
  return reinterpret_cast<std::uintptr_t>(s);
}

std::size_t HashPtr(Session* s) { return std::hash<Session*>{}(s); }
