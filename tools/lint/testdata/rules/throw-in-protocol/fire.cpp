// Fixture: exceptions thrown in a protocol path must fire.
#include <stdexcept>

void Validate(int status) {
  if (status != 0) throw std::runtime_error("bad status");
}
