// Fixture: reasoned suppression — the coroutine plumbing itself may rethrow.
#include <exception>

struct Promise {
  std::exception_ptr exception;

  void Resume() {
    // gvfs-lint: allow(throw-in-protocol): promise plumbing resurfaces captured test exceptions
    if (exception) std::rethrow_exception(exception);
  }
};
