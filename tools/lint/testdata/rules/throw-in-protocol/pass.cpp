// Fixture: errors travel as Expected<> values. Mentions of throw in comments
// and the "nothrow"/"throws_" identifiers must not fire.
#include "common/expected.h"

// A handler must never throw; it returns Unexpected instead.
gvfs::Expected<int, int> Validate(int status) {
  if (status != 0) return gvfs::Unexpected(status);
  return 1;
}

bool nothrow_mode = true;
