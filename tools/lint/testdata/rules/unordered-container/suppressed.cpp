// Fixture: reasoned suppression — membership-only use, order never escapes.
#include <cstdint>

struct Seen {
  // gvfs-lint: allow(unordered-container): membership checks only; never iterated
  std::unordered_set<std::uint64_t> xids;
};
