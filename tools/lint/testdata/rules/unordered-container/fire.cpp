// Fixture: hash containers iterate in nondeterministic order and must fire.
#include <cstdint>

struct Index {
  std::unordered_map<std::uint64_t, int> by_ino;
  std::unordered_set<std::uint64_t> dirty;
};
