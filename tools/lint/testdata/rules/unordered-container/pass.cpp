// Fixture: ordered containers are the deterministic default.
#include <map>
#include <set>

struct Index {
  std::map<unsigned long, int> by_ino;
  std::set<unsigned long> dirty;  // unordered_map only in this comment
};
