// Fixture: the same stale reference, silenced by a reasoned suppression on
// the flagged (post-suspend use) line.
#include "sim/task.h"

sim::Task<void> Stale(std::map<int, Entry>& cache, int key) {
  Entry& e = cache[key];
  co_await Fetch(key);
  e.bytes += 1;  // gvfs-lint: allow(use-after-suspend): cache nodes are never erased while a frame is parked
}
