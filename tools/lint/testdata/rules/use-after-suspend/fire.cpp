// Fixture: a reference local created before a suspend point and used after
// it must fire use-after-suspend — the frame parks, the world moves, and
// whatever the reference aliased may be gone when it resumes.
#include "sim/task.h"

sim::Task<void> Stale(std::map<int, Entry>& cache, int key) {
  Entry& e = cache[key];
  co_await Fetch(key);
  e.bytes += 1;
}
