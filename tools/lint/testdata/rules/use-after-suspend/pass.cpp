// Fixture: references used only before the suspend, or re-acquired after
// it, must not fire use-after-suspend.
#include "sim/task.h"

sim::Task<void> Fresh(std::map<int, Entry>& cache, int key) {
  Entry& before = cache[key];
  before.bytes += 1;
  co_await Fetch(key);
  Entry& after = cache[key];
  after.bytes += 1;
}
