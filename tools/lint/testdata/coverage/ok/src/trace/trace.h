// Coverage fixture: the trace event vocabulary.
#pragma once

#include <cstdint>

namespace trace {

enum class EventType : std::uint8_t {
  kRpcSend = 0,
  kInvAppend = 1,
};

const char* EventTypeName(EventType type);

}  // namespace trace
