#include "trace.h"

namespace trace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRpcSend: return "RPC_SEND";
    case EventType::kInvAppend: return "INV_APPEND";
  }
  return "UNKNOWN";
}

}  // namespace trace
