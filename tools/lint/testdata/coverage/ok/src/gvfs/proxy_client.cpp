// Coverage fixture: the client side registers the server-initiated procs
// (CALLBACK for delegation breaks, RECOVERY for post-crash re-sync).
#include "proto.h"

namespace gvfs {

class ProxyClient {
 public:
  void Start();

 private:
  void HandleCallback(int req);
  void HandleRecovery(int req);
};

void ProxyClient::Start() {
  RegisterHandler(kCallback, HandleCallback);
  RegisterHandler(kRecovery, HandleRecovery);
}

}  // namespace gvfs
