// Coverage fixture: the GVFS control-channel procs.
#pragma once

#include <cstdint>

namespace gvfs {

enum GvfsProc : std::uint32_t {
  kGetInv = 1,
  kCallback = 2,
  kRecovery = 3,
  kMigrate = 4,
};

const char* GvfsProcName(GvfsProc proc);

}  // namespace gvfs
