#include "proto.h"

namespace gvfs {

const char* GvfsProcName(GvfsProc proc) {
  switch (proc) {
    case kGetInv: return "GETINV";
    case kCallback: return "CALLBACK";
    case kRecovery: return "RECOVERY";
    case kMigrate: return "MIGRATE";
  }
  return "UNKNOWN";
}

}  // namespace gvfs
