// Coverage fixture: a structurally faithful skeleton of the aggregation
// tier's re-publish path — Ingest() fans every upstream handle out to the
// downstream buffers, Fanout() performs the traced append. The cross-file
// rules anchor on exactly these shapes.
#include <cstdint>
#include <map>
#include <vector>

namespace gvfs::fleet {

struct Fh {
  std::uint64_t ino = 0;
};

struct Entry {
  std::uint64_t timestamp = 0;
  Fh fh;
};

struct Downstream {
  std::vector<Entry> buffer;
  bool overflowed = false;
};

struct Tracer {
  void Inv(int type, int client, const Fh& fh);
};

class InvAggregator {
 public:
  void Ingest(const Fh& fh, int shard);

 private:
  bool Fanout(int client, Downstream& state, const Fh& fh);

  std::map<int, Downstream> clients_;
  std::uint64_t agg_clock_ = 0;
  Tracer tracer_;
};

void InvAggregator::Ingest(const Fh& fh, int shard) {
  ++agg_clock_;
  for (auto& [client, state] : clients_) {
    if (state.overflowed) continue;
    Fanout(client, state, fh);
  }
  tracer_.Inv(trace::kAggIngest, shard, fh);
}

bool InvAggregator::Fanout(int client, Downstream& state, const Fh& fh) {
  state.buffer.push_back(Entry{agg_clock_, fh});
  tracer_.Inv(trace::kAggFanout, client, fh);
  return true;
}

}  // namespace gvfs::fleet
