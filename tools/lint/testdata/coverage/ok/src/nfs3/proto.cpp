#include "proto.h"

namespace nfs3 {

const char* ProcName(Proc proc) {
  switch (proc) {
    case kNull: return "NULL";
    case kGetAttr: return "GETATTR";
    case kWrite: return "WRITE";
    case kRemove: return "REMOVE";
  }
  return "UNKNOWN";
}

}  // namespace nfs3
