// Coverage fixture: a subset of the NFSv3 proc enum. The cross-file rules
// intersect their protocol knowledge with the procs actually present, so a
// mini-tree only needs a representative slice (one read-only proc, two
// mutating ones).
#pragma once

#include <cstdint>

namespace nfs3 {

enum Proc : std::uint32_t {
  kNull = 0,
  kGetAttr = 1,
  kWrite = 7,
  kRemove = 12,
};

const char* ProcName(Proc proc);

}  // namespace nfs3
