// Coverage fixture: the anomaly detector vocabulary.
#pragma once

#include <cstdint>

namespace obs {

enum class AnomalyKind : std::uint32_t {
  kRecallStorm,
  kInvOverflow,
};

const char* AnomalyKindName(AnomalyKind kind);

}  // namespace obs
