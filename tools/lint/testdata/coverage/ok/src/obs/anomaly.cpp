#include "anomaly.h"

namespace obs {

struct DetectorInfo {
  AnomalyKind kind;
  const char* name;
};

const DetectorInfo kDetectors[] = {
    {AnomalyKind::kRecallStorm, "recall-storm"},
    {AnomalyKind::kInvOverflow, "inv-overflow"},
};

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRecallStorm: return "recall-storm";
    case AnomalyKind::kInvOverflow: return "inv-overflow";
  }
  return "?";
}

}  // namespace obs
