// Coverage fixture: the doctor's per-anomaly remedy table.
#include "obs/anomaly.h"

namespace doctor {

const char* VerdictFor(obs::AnomalyKind kind) {
  switch (kind) {
    case obs::AnomalyKind::kRecallStorm:
      return "raise the storm-breaker threshold or lengthen policy dwell";
    case obs::AnomalyKind::kInvOverflow:
      return "raise inv_buffer_capacity or shorten client poll periods";
  }
  return "?";
}

}  // namespace doctor
