// Seeded violation: RECOVERY is never registered, so post-crash re-sync
// calls would time out. proc-coverage must catch it.
#include "proto.h"

namespace gvfs {

class ProxyClient {
 public:
  void Start();

 private:
  void HandleCallback(int req);
};

void ProxyClient::Start() {
  RegisterHandler(kCallback, HandleCallback);
}

}  // namespace gvfs
