// Seeded violation: the aggregation tier still traces its fan-out, but the
// downstream buffer append was deleted — clients behind the tier silently
// stop seeing peer writes while the direct path keeps working.
#include <cstdint>
#include <map>
#include <vector>

namespace gvfs::fleet {

struct Fh {
  std::uint64_t ino = 0;
};

struct Entry {
  std::uint64_t timestamp = 0;
  Fh fh;
};

struct Downstream {
  std::vector<Entry> buffer;
  bool overflowed = false;
};

struct Tracer {
  void Inv(int type, int client, const Fh& fh);
};

class InvAggregator {
 public:
  void Ingest(const Fh& fh, int shard);

 private:
  bool Fanout(int client, Downstream& state, const Fh& fh);

  std::map<int, Downstream> clients_;
  std::uint64_t agg_clock_ = 0;
  Tracer tracer_;
};

void InvAggregator::Ingest(const Fh& fh, int shard) {
  ++agg_clock_;
  for (auto& [client, state] : clients_) {
    if (state.overflowed) continue;
    Fanout(client, state, fh);
  }
  tracer_.Inv(trace::kAggIngest, shard, fh);
}

bool InvAggregator::Fanout(int client, Downstream& state, const Fh& fh) {
  tracer_.Inv(trace::kAggFanout, client, fh);
  return true;
}

}  // namespace gvfs::fleet
