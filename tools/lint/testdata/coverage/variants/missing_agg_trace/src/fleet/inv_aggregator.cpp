// Seeded violation: the aggregation tier appends correctly but emits no
// kAggIngest / kAggFanout events — the TraceChecker's kAggTier invariant is
// blind to the tier, so a lost or duplicated invalidation goes unnoticed.
#include <cstdint>
#include <map>
#include <vector>

namespace gvfs::fleet {

struct Fh {
  std::uint64_t ino = 0;
};

struct Entry {
  std::uint64_t timestamp = 0;
  Fh fh;
};

struct Downstream {
  std::vector<Entry> buffer;
  bool overflowed = false;
};

class InvAggregator {
 public:
  void Ingest(const Fh& fh, int shard);

 private:
  bool Fanout(int client, Downstream& state, const Fh& fh);

  std::map<int, Downstream> clients_;
  std::uint64_t agg_clock_ = 0;
};

void InvAggregator::Ingest(const Fh& fh, int shard) {
  ++agg_clock_;
  for (auto& [client, state] : clients_) {
    if (state.overflowed) continue;
    Fanout(client, state, fh);
  }
}

bool InvAggregator::Fanout(int client, Downstream& state, const Fh& fh) {
  state.buffer.push_back(Entry{agg_clock_, fh});
  return true;
}

}  // namespace gvfs::fleet
