// Seeded violation: the doctor's remedy table forgot kInvOverflow, so a
// post-mortem names the anomaly but offers no action to take.
#include "obs/anomaly.h"

namespace doctor {

const char* VerdictFor(obs::AnomalyKind kind) {
  switch (kind) {
    case obs::AnomalyKind::kRecallStorm:
      return "raise the storm-breaker threshold or lengthen policy dwell";
    default:
      break;
  }
  return "?";
}

}  // namespace doctor
