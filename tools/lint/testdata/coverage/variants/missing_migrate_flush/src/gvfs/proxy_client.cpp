// Seeded violation: MigrateMode() drops the delegation but no longer
// flushes dirty blocks first, stranding writes behind the abandoned grant.
#include "proto.h"

namespace gvfs {

class ProxyClient {
 public:
  void Start();
  bool MigrateMode(int fh, int from, int to);

 private:
  void HandleCallback(int req);
  void HandleRecovery(int req);
  void FlushFile(int fh);
  void DropDelegation(int fh);
  int Call(GvfsProc proc, int fh, int from, int to);
};

void ProxyClient::Start() {
  RegisterHandler(kCallback, HandleCallback);
  RegisterHandler(kRecovery, HandleRecovery);
}

bool ProxyClient::MigrateMode(int fh, int from, int to) {
  DropDelegation(fh);
  return Call(kMigrate, fh, from, to) == 0;
}

}  // namespace gvfs
