// Seeded violation: the buffer append happens but is never traced, leaving
// the TraceChecker blind to it. trace-coverage must catch it.
#include <cstdint>
#include <map>
#include <vector>

#include "proto.h"

namespace gvfs {

struct Fh {
  std::uint64_t ino = 0;
};

struct InvEntry {
  std::uint64_t seq = 0;
  Fh fh;
};

struct Request {
  int client = 0;
  int proc = 0;
  Fh fh;
};

struct ProcInfo {
  bool mutating = false;
  bool dir_op = false;
};

struct Tracer {
  void Inv(int type, int client, const Fh& fh);
};

struct ClientState {
  std::vector<InvEntry> buffer;
};

constexpr int kProcs[] = {
    nfs3::kGetAttr,
    nfs3::kWrite,
    nfs3::kRemove,
};

class ProxyServer {
 public:
  void Start();
  void HandleNfs(Request& req);

 private:
  ProcInfo Classify(int proc);
  void RecordInvalidation(int client, const Fh& fh);
  void Forward(Request& req);
  void HandleGetInv(Request& req);

  std::map<int, ClientState> sessions_;
  std::uint64_t inv_clock_ = 0;
  Tracer tracer_;
};

void ProxyServer::Start() {
  RegisterHandler(kGetInv, HandleGetInv);
}

ProcInfo ProxyServer::Classify(int proc) {
  ProcInfo info;
  switch (proc) {
    case nfs3::kGetAttr:
      info.dir_op = false;
      break;
    case nfs3::kWrite:
      info.mutating = true;
      break;
    case nfs3::kRemove:
      info.mutating = true;
      info.dir_op = true;
      break;
  }
  return info;
}

void ProxyServer::HandleNfs(Request& req) {
  ProcInfo info = Classify(req.proc);
  if (info.mutating) {
    RecordInvalidation(req.client, req.fh);
  }
  Forward(req);
}

void ProxyServer::RecordInvalidation(int client, const Fh& fh) {
  for (auto& [id, state] : sessions_) {
    if (id == client) continue;
    state.buffer.push_back(InvEntry{inv_clock_, fh});
  }
  ++inv_clock_;
}

}  // namespace gvfs
