// Seeded violation: HandleMigrate() recalls conflicting delegations but no
// longer drains the caller's buffered invalidations before the mode switch.
#include <cstdint>
#include <map>
#include <vector>

#include "proto.h"

namespace gvfs {

struct Fh {
  std::uint64_t ino = 0;
};

struct InvEntry {
  std::uint64_t seq = 0;
  Fh fh;
};

struct Request {
  int client = 0;
  int proc = 0;
  Fh fh;
};

struct ProcInfo {
  bool mutating = false;
  bool dir_op = false;
};

struct Tracer {
  void Inv(int type, int client, const Fh& fh);
};

struct ClientState {
  std::vector<InvEntry> buffer;
};

constexpr int kProcs[] = {
    nfs3::kGetAttr,
    nfs3::kWrite,
    nfs3::kRemove,
};

class ProxyServer {
 public:
  void Start();
  void HandleNfs(Request& req);

 private:
  ProcInfo Classify(int proc);
  void RecordInvalidation(int client, const Fh& fh);
  void Forward(Request& req);
  void HandleGetInv(Request& req);
  void HandleMigrate(Request& req);
  std::uint64_t DrainInvEntries(int client, const Fh& fh);
  void RecallConflicts(int client, const Fh& fh);

  std::map<int, ClientState> sessions_;
  std::uint64_t inv_clock_ = 0;
  Tracer tracer_;
};

void ProxyServer::Start() {
  RegisterHandler(kGetInv, HandleGetInv);
  RegisterHandler(kMigrate, HandleMigrate);
}

ProcInfo ProxyServer::Classify(int proc) {
  ProcInfo info;
  switch (proc) {
    case nfs3::kGetAttr:
      info.dir_op = false;
      break;
    case nfs3::kWrite:
      info.mutating = true;
      break;
    case nfs3::kRemove:
      info.mutating = true;
      info.dir_op = true;
      break;
  }
  return info;
}

void ProxyServer::HandleNfs(Request& req) {
  ProcInfo info = Classify(req.proc);
  if (info.mutating) {
    RecordInvalidation(req.client, req.fh);
  }
  Forward(req);
}

void ProxyServer::HandleMigrate(Request& req) {
  RecallConflicts(req.client, req.fh);
}

std::uint64_t ProxyServer::DrainInvEntries(int client, const Fh& fh) {
  auto& buffer = sessions_[client].buffer;
  std::uint64_t drained = 0;
  for (auto it = buffer.begin(); it != buffer.end();) {
    if (it->fh.ino == fh.ino) {
      tracer_.Inv(trace::kInvPoll, client, it->fh);
      it = buffer.erase(it);
      ++drained;
    } else {
      ++it;
    }
  }
  return drained;
}

void ProxyServer::RecordInvalidation(int client, const Fh& fh) {
  for (auto& [id, state] : sessions_) {
    if (id == client) continue;
    state.buffer.push_back(InvEntry{inv_clock_, fh});
    tracer_.Inv(trace::kInvAppend, id, fh);
  }
  ++inv_clock_;
}

}  // namespace gvfs
