#include "anomaly.h"

namespace obs {

struct DetectorInfo {
  AnomalyKind kind;
  const char* name;
};

// Seeded violation: kInvOverflow was dropped from the registry, so its
// observatory counter and dump rendering disappear while the name table
// and the doctor still know the kind.
const DetectorInfo kDetectors[] = {
    {AnomalyKind::kRecallStorm, "recall-storm"},
};

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRecallStorm: return "recall-storm";
    case AnomalyKind::kInvOverflow: return "inv-overflow";
  }
  return "?";
}

}  // namespace obs
