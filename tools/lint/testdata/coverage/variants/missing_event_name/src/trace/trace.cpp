// Seeded violation: kInvAppend has no EventTypeName case, so exporters
// cannot tell its events apart. trace-coverage must catch it.
#include "trace.h"

namespace trace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRpcSend: return "RPC_SEND";
  }
  return "UNKNOWN";
}

}  // namespace trace
