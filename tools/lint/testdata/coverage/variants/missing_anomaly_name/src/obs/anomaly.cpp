#include "anomaly.h"

namespace obs {

struct DetectorInfo {
  AnomalyKind kind;
  const char* name;
};

const DetectorInfo kDetectors[] = {
    {AnomalyKind::kRecallStorm, "recall-storm"},
    {AnomalyKind::kInvOverflow, "inv-overflow"},
};

// Seeded violation: kInvOverflow lost its AnomalyKindName case, so the
// anomaly serialises as "?" and a dump can no longer be round-tripped.
const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRecallStorm: return "recall-storm";
    default: break;
  }
  return "?";
}

}  // namespace obs
