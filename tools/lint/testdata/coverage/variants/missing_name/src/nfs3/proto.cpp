// Seeded violation: REMOVE has no ProcName case, so its stats and trace
// labels degrade to the unknown bucket. stats-name-coverage must catch it.
#include "proto.h"

namespace nfs3 {

const char* ProcName(Proc proc) {
  switch (proc) {
    case kNull: return "NULL";
    case kGetAttr: return "GETATTR";
    case kWrite: return "WRITE";
  }
  return "UNKNOWN";
}

}  // namespace nfs3
