// Seeded reproduction of the PR-8 kernel-client bug shape: a reference into
// the page cache is taken, the frame parks on the block fetch, and the cache
// is touched through the stale reference after resuming. A concurrent frame
// can erase the entry during the await (eviction, REMOVE, truncate), so the
// post-await accesses alias freed memory. gvfs-analyze must flag this.
#include "sim/task.h"

sim::Task<Bytes> ReadBlock(Fh fh, std::uint64_t index) {
  auto& fc = file_cache_[fh];
  auto cached = fc.blocks.find(index);
  if (cached == fc.blocks.end()) {
    auto res = co_await client_.Call(fh, index);
    cached = fc.blocks.emplace(index, res).first;
  }
  co_return cached->second.data;
}
