#!/usr/bin/env sh
# Times a repo-wide gvfs-lint/gvfs-analyze run and warns when it blows the
# wall-clock budget. The analyzer sits on the inner loop of CI and of
# developer pre-commit hooks, so keeping it fast is a feature; today a full
# run is ~0.1s, and the budget leaves an order of magnitude of headroom.
#
# Usage: tools/lint/bench_lint.sh [path-to-gvfs-lint] [budget-seconds]
set -eu

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BIN="${1:-$ROOT/build/tools/lint/gvfs-lint}"
BUDGET="${2:-5}"

if [ ! -x "$BIN" ]; then
  echo "bench_lint: analyzer binary not found at $BIN (build it first)" >&2
  exit 2
fi

START=$(date +%s.%N 2>/dev/null || date +%s)
# Findings are expected to be zero on a clean tree, but the bench measures
# wall clock either way; don't let exit 1 abort the timing.
"$BIN" --root "$ROOT" src tests bench examples tools >/dev/null || true
END=$(date +%s.%N 2>/dev/null || date +%s)

ELAPSED=$(awk -v a="$START" -v b="$END" 'BEGIN { printf "%.3f", b - a }')
echo "bench_lint: repo-wide run took ${ELAPSED}s (budget ${BUDGET}s)"

OVER=$(awk -v e="$ELAPSED" -v b="$BUDGET" 'BEGIN { print (e > b) ? 1 : 0 }')
if [ "$OVER" = "1" ]; then
  echo "bench_lint: WARNING: exceeded the ${BUDGET}s wall-clock budget" >&2
  exit 1
fi
exit 0
