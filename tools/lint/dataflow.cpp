#include "dataflow.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>

namespace gvfs::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

void Add(std::vector<Finding>& out, const FileUnit& unit, const char* rule,
         int line, std::string message) {
  out.push_back({rule, unit.rel_path, line, std::move(message)});
}

/// True when the identifier at `i` is a member/scope selection
/// (`x.name`, `p->name`, `NS::name`) — a different entity than a local
/// called `name`.
bool IsMemberSelection(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ".") || prev.text == "::") return true;
  return i >= 2 && IsPunct(prev, ">") && IsPunct(toks[i - 2], "-");
}

/// The `=` of a whole-value assignment whose left-hand side starts at `i`
/// (`name = ...`, but not `==`, `!=`, `+=`). Returns the '=' index or kNpos.
std::size_t AssignmentEq(const std::vector<Token>& toks, std::size_t i,
                         std::size_t limit) {
  if (i + 1 >= limit || !IsPunct(toks[i + 1], "=")) return kNpos;
  if (i + 2 < limit && IsPunct(toks[i + 2], "=")) return kNpos;  // ==
  return i + 1;
}

// ---------------------------------------------------------------------------
// The per-value timeline
// ---------------------------------------------------------------------------

enum class EvKind {
  kSuspend = 0,  // ties sort first: the frame parks before the statement
                 // carrying the suspend completes
  kCreate = 1,
  kKill = 2,
  kReturn = 3,  // co_return/return: flow that continues past this point in
                // token order never executed it, so it cannot have crossed a
                // suspend that sits before it in the same straight line
  kUse = 4,
};

struct Ev {
  std::size_t pos = 0;
  EvKind kind = EvKind::kUse;
  int line = 0;
  int aux_line = 0;  // suspends: their own source line for the message
};

bool EvBefore(const Ev& a, const Ev& b) {
  if (a.pos != b.pos) return a.pos < b.pos;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

/// Unrolls each loop body twice so back-edge flows (created before the loop,
/// used after a suspend the loop contains) appear in the linear scan. Depth
/// is capped: beyond it a nested body is emitted once, which only loses
/// findings.
class Expander {
 public:
  Expander(const std::vector<Ev>& evs, std::vector<TokRange> loops)
      : evs_(evs), loops_(std::move(loops)) {
    std::sort(loops_.begin(), loops_.end(),
              [](const TokRange& a, const TokRange& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;  // outer loop first
              });
  }

  std::vector<Ev> Run(std::size_t begin, std::size_t end) {
    Range(begin, end, 0);
    return std::move(out_);
  }

 private:
  void Range(std::size_t begin, std::size_t end, int depth) {
    std::size_t cursor = begin;
    for (const TokRange& loop : loops_) {
      if (loop.begin < cursor || loop.begin >= end) continue;
      if (loop.end > end) continue;
      // A body equal to the whole range is the loop we just recursed into.
      if (loop.begin == begin && loop.end == end) continue;
      Emit(cursor, loop.begin);
      const int times = depth < 3 ? 2 : 1;
      for (int k = 0; k < times; ++k) Range(loop.begin, loop.end, depth + 1);
      cursor = loop.end;
    }
    Emit(cursor, end);
  }

  void Emit(std::size_t begin, std::size_t end) {
    for (const Ev& ev : evs_) {
      if (ev.pos >= begin && ev.pos < end) out_.push_back(ev);
    }
  }

  const std::vector<Ev>& evs_;
  std::vector<TokRange> loops_;
  std::vector<Ev> out_;
};

/// One value to follow through a function body.
struct TrackedValue {
  std::string name;
  std::string what;          // "reference 'fc'", "parameter 'data'", ...
  std::size_t live_from = 0;  // kNpos: live for the whole body (params)
  bool track = true;
};

struct StaleUse {
  int use_line = 0;
  int suspend_line = 0;
};

/// Core query: does `value` have a use that observes it across a suspend?
/// Returns the first offending use in (unrolled) program order.
bool FindStaleUse(const std::vector<Token>& toks, const Outline& o,
                  const TrackedValue& value, StaleUse* hit) {
  std::vector<Ev> evs;
  // Creation.
  if (value.live_from == kNpos) {
    evs.push_back({o.body_begin, EvKind::kCreate, o.line, 0});
  } else {
    evs.push_back({value.live_from, EvKind::kCreate, 0, 0});
  }
  // Suspends, positioned after their operand: uses inside the operand are
  // captured before the frame parks.
  for (const SuspendInfo& s : o.suspends) {
    evs.push_back({s.operand_end, EvKind::kSuspend, s.line, s.line});
  }
  // Kills and uses.
  for (std::size_t i = o.body_begin + 1; i < o.body_end; ++i) {
    if (InRanges(o.lambda_ranges, i)) continue;
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent &&
        (t.text == "co_return" || t.text == "return")) {
      // Only an *unconditional* return resets the crossing: `if (err)
      // co_return;` is an exit some flows skip, so code after it may still
      // have crossed the suspend. Unconditional means the return starts its
      // own statement (previous token ends one) rather than being the
      // braceless body of an if/else.
      const bool own_statement =
          i > 0 && (IsPunct(toks[i - 1], ";") || IsPunct(toks[i - 1], "{") ||
                    IsPunct(toks[i - 1], "}"));
      if (own_statement) {
        evs.push_back(
            {StatementEndTok(toks, i, o.body_end), EvKind::kReturn, t.line, 0});
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || t.text != value.name) continue;
    if (IsMemberSelection(toks, i)) continue;
    if (value.live_from != kNpos && i < value.live_from &&
        StatementEndTok(toks, i, o.body_end) == value.live_from) {
      continue;  // the declaration itself (incl. its initializer scan)
    }
    const std::size_t eq = AssignmentEq(toks, i, o.body_end);
    if (eq != kNpos) {
      // Whole-value assignment: re-acquisition, effective once the statement
      // (and any suspend inside its right-hand side) completes.
      evs.push_back(
          {StatementEndTok(toks, i, o.body_end), EvKind::kKill, t.line, 0});
      continue;
    }
    // A use on the left of an assignment whose right-hand side suspends
    // (`fc.attr = co_await Fetch()`) is written after resumption: position
    // it at the end of the statement.
    std::size_t pos = i;
    const std::size_t stmt_end = StatementEndTok(toks, i, o.body_end);
    for (std::size_t j = i + 1; j + 1 < stmt_end; ++j) {
      if (!IsPunct(toks[j], "=") || IsPunct(toks[j + 1], "=") ||
          (j > 0 && IsPunct(toks[j - 1], "=")) ||
          (j > 0 && (IsPunct(toks[j - 1], "!") || IsPunct(toks[j - 1], "<") ||
                     IsPunct(toks[j - 1], ">")))) {
        continue;
      }
      for (std::size_t k = j + 1; k < stmt_end; ++k) {
        if (toks[k].kind == TokKind::kIdent &&
            (toks[k].text == "co_await" || toks[k].text == "co_yield")) {
          pos = stmt_end;
          break;
        }
      }
      break;  // only the first top-level-ish '='
    }
    evs.push_back({pos, EvKind::kUse, t.line, 0});
  }
  std::sort(evs.begin(), evs.end(), EvBefore);

  std::vector<TokRange> loop_bodies;
  for (const LoopInfo& l : o.loops) loop_bodies.push_back(l.body);
  const std::vector<Ev> timeline =
      Expander(evs, std::move(loop_bodies)).Run(o.body_begin, o.body_end + 1);

  bool live = false;
  bool crossed = false;
  int suspend_line = 0;
  for (const Ev& ev : timeline) {
    switch (ev.kind) {
      case EvKind::kCreate:
      case EvKind::kKill:
        live = true;
        crossed = false;
        break;
      case EvKind::kSuspend:
        if (live && !crossed) {
          crossed = true;
          suspend_line = ev.aux_line;
        }
        break;
      case EvKind::kReturn:
        crossed = false;
        break;
      case EvKind::kUse:
        if (live && crossed) {
          hit->use_line = ev.line;
          hit->suspend_line = suspend_line;
          return true;
        }
        break;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// use-after-suspend
// ---------------------------------------------------------------------------

void CheckUseAfterSuspend(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (const Outline& o : OutlineFile(unit.lex)) {
    if (o.suspends.empty()) continue;
    std::vector<TrackedValue> values;
    for (const LocalInfo& l : o.locals) {
      if (l.kind == LocalKind::kReference) {
        values.push_back({l.name, "reference '" + l.name + "'", l.live_from});
      } else if (l.kind == LocalKind::kPointer) {
        values.push_back({l.name, "pointer '" + l.name + "'", l.live_from});
      }
    }
    // Named coroutines follow the repo's caller-awaits convention: the
    // caller keeps reference arguments alive for the whole co_await, so
    // their reference-like parameters are stable across suspends. Lambda
    // coroutines are routinely detached (sim::Spawn, WaitGroup::Spawn) and
    // get no such guarantee, so only their parameters are tracked.
    if (o.is_lambda) {
      for (const ParamInfo& p : o.params) {
        if (p.reference_like && !p.name.empty()) {
          values.push_back(
              {p.name, "reference-like parameter '" + p.name + "'", kNpos});
        }
      }
    }
    for (const CaptureInfo& c : o.captures) {
      if (c.by_ref && !c.name.empty() && c.name != "this") {
        values.push_back({c.name, "by-ref capture '" + c.name + "'", kNpos});
      }
    }
    for (const TrackedValue& v : values) {
      StaleUse hit;
      if (FindStaleUse(toks, o, v, &hit)) {
        Add(out, unit, "use-after-suspend", hit.use_line,
            v.what + " in " + o.name + "() was created before the suspend "
            "point on line " + std::to_string(hit.suspend_line) +
            " and used after it; whatever it aliases may be gone — copy the "
            "value before suspending or re-acquire it after");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// iter-after-suspend
// ---------------------------------------------------------------------------

namespace {

/// A range expression whose storage other frames can reach while this one is
/// parked. The root of the expression decides: a member (trailing-underscore
/// convention or explicit `this`), or a local that itself aliases non-local
/// state (tracked reference/pointer/iterator). Plain value locals — and
/// temporaries returned by calls — are frame-private, so anything rooted in
/// them stays silent.
bool RangeExprIsNonLocal(const std::string& expr, const Outline& o) {
  std::size_t root_end = 0;
  while (root_end < expr.size() &&
         (std::isalnum(static_cast<unsigned char>(expr[root_end])) ||
          expr[root_end] == '_')) {
    ++root_end;
  }
  if (root_end == 0) return false;
  const std::string root = expr.substr(0, root_end);
  if (root == "this") return true;
  if (root.back() == '_') return true;
  for (const LocalInfo& l : o.locals) {
    if (l.name == root) return true;  // aliases state owned elsewhere
  }
  return false;
}

/// True when the statement carrying this suspend is immediately followed by
/// an unconditional exit (`break`, `co_return`, `return`): the loop never
/// advances its hidden iterator after that suspend.
bool SuspendExitsLoop(const std::vector<Token>& toks, const SuspendInfo& s,
                      std::size_t limit) {
  const std::size_t stmt_end = StatementEndTok(toks, s.tok, limit);
  if (stmt_end + 1 >= limit) return false;
  const Token& next = toks[stmt_end + 1];
  return next.kind == TokKind::kIdent &&
         (next.text == "break" || next.text == "co_return" ||
          next.text == "return");
}

}  // namespace

void CheckIterAfterSuspend(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (const Outline& o : OutlineFile(unit.lex)) {
    if (o.suspends.empty()) continue;
    for (const LocalInfo& l : o.locals) {
      if (l.kind != LocalKind::kIterator) continue;
      StaleUse hit;
      TrackedValue v{l.name, "", l.live_from};
      if (FindStaleUse(toks, o, v, &hit)) {
        Add(out, unit, "iter-after-suspend", hit.use_line,
            "iterator '" + l.name + "' in " + o.name + "() was acquired "
            "before the suspend point on line " +
            std::to_string(hit.suspend_line) + " and used after it; the "
            "container may have mutated while the frame was parked — "
            "re-acquire the iterator after resuming");
      }
    }
    // The hidden iterator of a range-for whose body suspends: if the
    // sequence is non-local state, anything the body awaits can mutate it
    // and invalidate the traversal.
    for (const LoopInfo& loop : o.loops) {
      if (!loop.is_range_for || !RangeExprIsNonLocal(loop.range_expr, o)) {
        continue;
      }
      for (const SuspendInfo& s : o.suspends) {
        if (s.tok >= loop.body.begin && s.tok < loop.body.end &&
            !SuspendExitsLoop(toks, s, loop.body.end)) {
          Add(out, unit, "iter-after-suspend", loop.line,
              "range-for over '" + loop.range_expr + "' in " + o.name +
              "() suspends on line " + std::to_string(s.line) + "; the "
              "hidden iterator is invalidated if the container mutates "
              "during the await — iterate a snapshot of the keys instead");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-across-suspend
// ---------------------------------------------------------------------------

void CheckLockAcrossSuspend(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (const Outline& o : OutlineFile(unit.lex)) {
    if (o.suspends.size() < 2) continue;
    for (std::size_t si = 0; si < o.suspends.size(); ++si) {
      const SuspendInfo& s = o.suspends[si];
      // Match `co_await <recv>.Lock()` / `co_await <recv>.Acquire()` inside
      // the operand.
      std::size_t dot = kNpos;
      std::string verb;
      for (std::size_t i = s.tok + 1; i + 2 < s.operand_end; ++i) {
        if (!IsPunct(toks[i], ".")) continue;
        if (toks[i + 1].kind == TokKind::kIdent &&
            (toks[i + 1].text == "Lock" || toks[i + 1].text == "Acquire") &&
            IsPunct(toks[i + 2], "(")) {
          dot = i;
          verb = toks[i + 1].text;
          break;
        }
      }
      if (dot == kNpos) continue;
      const std::string recv = (dot > s.tok + 1)
                                   ? toks[dot - 1].text
                                   : std::string();
      if (recv.empty()) continue;
      const std::string_view release =
          verb == "Lock" ? "Unlock" : "Release";
      // Held until `<recv>.Unlock()` / `<recv>.Release()`; any suspend in
      // between is a finding.
      std::size_t release_pos = o.body_end;
      for (std::size_t i = s.operand_end; i + 2 < o.body_end; ++i) {
        if (toks[i].kind == TokKind::kIdent && toks[i].text == recv &&
            IsPunct(toks[i + 1], ".") &&
            toks[i + 2].kind == TokKind::kIdent &&
            toks[i + 2].text == release) {
          release_pos = i;
          break;
        }
      }
      for (std::size_t sj = si + 1; sj < o.suspends.size(); ++sj) {
        const SuspendInfo& later = o.suspends[sj];
        if (later.tok >= release_pos) break;
        Add(out, unit, "lock-across-suspend", s.line,
            "'" + recv + "' acquired here is still held at the suspend "
            "point on line " + std::to_string(later.line) + " in " + o.name +
            "(); other frames block on it for the whole await — release "
            "first, or suppress with the serialization rationale");
        break;  // one finding per acquire site
      }
    }
  }
}

// ---------------------------------------------------------------------------
// detached-task
// ---------------------------------------------------------------------------

namespace {

bool IsStatementStartKeyword(std::string_view s) {
  return s == "return" || s == "co_return" || s == "co_await" ||
         s == "co_yield" || s == "if" || s == "for" || s == "while" ||
         s == "do" || s == "switch" || s == "case" || s == "else" ||
         s == "break" || s == "continue" || s == "goto" || s == "using" ||
         s == "delete" || s == "new" || s == "throw" || s == "try";
}

/// If the statement [begin, end) is exactly a discarded call — a postfix
/// chain ending in `(...)`, optionally behind a `(void)` cast — returns the
/// callee's final name; empty otherwise.
std::string DiscardedCallName(const std::vector<Token>& toks,
                              std::size_t begin, std::size_t end) {
  std::size_t i = begin;
  if (i + 2 < end && IsPunct(toks[i], "(") &&
      toks[i + 1].kind == TokKind::kIdent && toks[i + 1].text == "void" &&
      IsPunct(toks[i + 2], ")")) {
    i += 3;
  }
  if (i >= end || toks[i].kind != TokKind::kIdent ||
      IsStatementStartKeyword(toks[i].text)) {
    return {};
  }
  std::string last_ident;
  std::string called;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent) {
      last_ident = t.text;
      ++i;
      continue;
    }
    if (IsPunct(t, ".") || t.text == "::") {
      ++i;
      continue;
    }
    if (IsPunct(t, "-") && i + 1 < end && IsPunct(toks[i + 1], ">")) {
      i += 2;
      continue;
    }
    if (IsPunct(t, "(")) {
      const std::size_t close = MatchForward(toks, i);
      if (close >= end) return {};
      called = last_ident;
      i = close + 1;
      continue;
    }
    return {};  // any operator: not a plain discarded call
  }
  return called;
}

}  // namespace

void CheckDetachedTask(const Tree& tree, std::vector<Finding>& out) {
  // Pass 1: every function name whose definitions all return Task.
  std::map<std::string, bool> returns_task;
  std::map<std::string, std::vector<Outline>> outlines;
  for (const auto& [rel, unit] : tree) {
    std::vector<Outline> file_outlines = OutlineFile(unit.lex);
    for (const Outline& o : file_outlines) {
      if (o.is_lambda) continue;
      auto [it, inserted] = returns_task.emplace(o.name, o.returns_task);
      if (!inserted) it->second = it->second && o.returns_task;
    }
    outlines.emplace(rel, std::move(file_outlines));
  }

  // Pass 2: discarded bare-statement calls to those names.
  for (const auto& [rel, unit] : tree) {
    if (!InSrc(rel)) continue;
    const auto& toks = unit.lex.tokens;
    for (const Outline& o : outlines[rel]) {
      std::size_t i = o.body_begin + 1;
      while (i < o.body_end) {
        if (InRanges(o.lambda_ranges, i)) {
          ++i;
          continue;
        }
        const std::size_t stmt_end = StatementEndTok(toks, i, o.body_end);
        if (toks[i].kind == TokKind::kIdent ||
            (IsPunct(toks[i], "(") && !InRanges(o.lambda_ranges, i))) {
          const std::string callee = DiscardedCallName(toks, i, stmt_end);
          auto it = returns_task.find(callee);
          if (!callee.empty() && it != returns_task.end() && it->second) {
            out.push_back(
                {"detached-task", unit.rel_path, toks[i].line,
                 "result of Task-returning '" + callee + "' is discarded; "
                 "Task is lazy, so the coroutine never runs — co_await it, "
                 "hand it to sim::Spawn, or store it"});
          }
        }
        i = stmt_end + 1;
      }
    }
  }
}

}  // namespace gvfs::lint
