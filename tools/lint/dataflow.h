// Suspend-safety dataflow rules for gvfs-analyze, built on the function
// outlines (outline.h). The model is deliberately simple and biased so that
// everything it cannot prove stays silent:
//
//   A reference-like value (reference/pointer local, iterator, by-ref lambda
//   capture, reference-like parameter) is *created* when its declaration
//   statement completes and *re-acquired* by any whole-value assignment.
//   A use that observes a value whose creation point is separated from the
//   use by a suspend point (`co_await` / `co_yield`) is a finding: whatever
//   the value aliases may have been destroyed, moved, or rehashed while the
//   frame was suspended.
//
// Ordering is token order with two refinements: uses inside the awaited
// operand happen before the frame suspends (call arguments are captured
// first), and assignment targets take effect only after the whole statement
// — including any suspend on its right-hand side — has run. Loops are
// modeled by unrolling each body twice, so a value created before a loop and
// used inside it is seen to cross any suspend the loop also contains via the
// back edge.
#pragma once

#include "lint.h"
#include "outline.h"

namespace gvfs::lint {

/// use-after-suspend: reference-like locals, by-ref captures, and
/// reference-like parameters used after a suspend point without
/// re-acquisition.
void CheckUseAfterSuspend(const FileUnit& unit, std::vector<Finding>& out);

/// iter-after-suspend: iterators held across a suspend (the container may
/// mutate while the frame is parked), including the hidden iterator of a
/// range-for over non-local state whose body suspends.
void CheckIterAfterSuspend(const FileUnit& unit, std::vector<Finding>& out);

/// lock-across-suspend: a sim::Mutex lock or sim::Semaphore slot acquired
/// by `co_await x.Lock()` / `co_await x.Acquire()` and still held at a later
/// suspend point. Legitimate designs (whole-file flush serialization, write
/// throttles) say so with a reasoned suppression.
void CheckLockAcrossSuspend(const FileUnit& unit, std::vector<Finding>& out);

/// detached-task (cross-file): a call to a Task-returning function whose
/// result is discarded. Task is lazy: a discarded Task is a coroutine that
/// never runs. The set of Task-returning names is collected from every
/// definition in the scanned tree; a name with any non-Task definition is
/// excluded.
void CheckDetachedTask(const Tree& tree, std::vector<Finding>& out);

}  // namespace gvfs::lint
